//! Transistor-aging modeling for the Vega workflow.
//!
//! Implements the reaction–diffusion model of bias temperature instability
//! (BTI) the paper builds on (§2.3.3, Eq. 1):
//!
//! ```text
//! ΔVth ∝ exp(Ea / kT) · (t − t₀)^(1/6)
//! ```
//!
//! and the signal-probability-driven stress profile of §2.3.4: a cell
//! whose output idles at logical `0` keeps its (more BTI-susceptible)
//! p-type transistors under static stress and therefore ages fastest,
//! while a regularly toggling cell experiences only AC stress and recovers
//! partially between stress phases.
//!
//! The crate's second half is Vega's substitute for SPICE-based library
//! characterization: [`AgingAwareTimingLibrary`] converts threshold-voltage
//! shifts into per-cell propagation-delay multipliers, precomputed per
//! (cell kind, signal probability, age) exactly like the paper's
//! pre-computed aging-aware timing library (§3.2.2, Fig. 4).
//!
//! # Example
//!
//! ```
//! use vega_aging::{AgingModel, AgingAwareTimingLibrary};
//! use vega_netlist::{CellKind, StdCellLibrary};
//!
//! let model = AgingModel::cmos28_worst_case();
//! let lib = AgingAwareTimingLibrary::build(StdCellLibrary::cmos28(), model, 10.0);
//! // A cell stuck at 0 for ten years ages far more than a toggling one.
//! let stuck = lib.degradation_factor(CellKind::Xor2, 0.0);
//! let toggling = lib.degradation_factor(CellKind::Xor2, 0.5);
//! assert!(stuck > toggling);
//! assert!(stuck > 1.05 && stuck < 1.07); // ~6 % worst case
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod library;
mod model;

pub use library::{AgingAwareTimingLibrary, DegradationPoint};
pub use model::AgingModel;

/// Boltzmann constant in eV/K, used by the Arrhenius temperature factor.
pub const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;
