//! Aging-aware timing library generation.
//!
//! The paper pre-computes, per standard cell, how signal probability maps
//! to switching-delay degradation over time, using SPICE analog simulation
//! (§3.2.2). This module reproduces that artifact: a bucketed lookup table
//! from `(cell kind, signal probability)` to a delay multiplier at a fixed
//! age, generated from the analytic [`AgingModel`] instead of SPICE.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use vega_netlist::{CellKind, CellTiming, StdCellLibrary};

use crate::AgingModel;

/// Number of signal-probability buckets in the precomputed table.
const SP_BUCKETS: usize = 64;

/// One point of a delay-degradation curve (Fig. 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationPoint {
    /// Age in years.
    pub years: f64,
    /// Signal probability of the cell's output.
    pub sp: f64,
    /// Fractional delay increase (`0.06` = 6 % slower).
    pub degradation: f64,
}

/// A standard-cell library with aging applied: for each cell kind, a
/// precomputed table of delay multipliers indexed by signal probability,
/// at a fixed circuit age.
///
/// Because many designs share one standard-cell library, the table is
/// computed once per `(library, model, age)` and reused across netlists,
/// mirroring the pre-computation the paper performs to accelerate
/// aging-aware STA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgingAwareTimingLibrary {
    /// The unaged base library.
    pub base: StdCellLibrary,
    /// The aging model used to generate the table.
    pub model: AgingModel,
    /// Circuit age, in years, at which the table was generated.
    pub years: f64,
    /// Per-kind, per-SP-bucket delay multipliers (≥ 1.0).
    table: BTreeMap<CellKind, Vec<f64>>,
}

impl AgingAwareTimingLibrary {
    /// Characterize `base` under `model` at the given age.
    pub fn build(base: StdCellLibrary, model: AgingModel, years: f64) -> Self {
        let mut table = BTreeMap::new();
        for kind in CellKind::ALL {
            let weight = Self::kind_weight(kind);
            let multipliers: Vec<f64> = (0..SP_BUCKETS)
                .map(|bucket| {
                    let sp = bucket as f64 / (SP_BUCKETS - 1) as f64;
                    1.0 + weight * model.delay_degradation(sp, years)
                })
                .collect();
            table.insert(kind, multipliers);
        }
        AgingAwareTimingLibrary {
            base,
            model,
            years,
            table,
        }
    }

    /// Relative BTI susceptibility per cell kind.
    ///
    /// Stacked-PMOS pull-ups (NOR-like gates) degrade slightly faster;
    /// transmission-gate structures (XOR/MUX) carry the nominal weight;
    /// pseudo-cells do not age.
    fn kind_weight(kind: CellKind) -> f64 {
        match kind {
            CellKind::Const0 | CellKind::Const1 | CellKind::Random => 0.0,
            CellKind::Nor2 | CellKind::Or2 => 1.05,
            CellKind::Nand2 | CellKind::And2 => 0.97,
            CellKind::Not | CellKind::Buf | CellKind::Delay => 0.95,
            CellKind::Xor2 | CellKind::Xnor2 | CellKind::Mux2 | CellKind::Maj3 => 1.0,
            CellKind::Dff => 0.98,
            CellKind::ClockBuf | CellKind::ClockGate => 0.95,
        }
    }

    /// The delay multiplier (≥ 1.0) for a cell of `kind` whose output has
    /// signal probability `sp`, at this library's age.
    pub fn degradation_factor(&self, kind: CellKind, sp: f64) -> f64 {
        let sp = sp.clamp(0.0, 1.0);
        let buckets = &self.table[&kind];
        // Linear interpolation between adjacent buckets.
        let pos = sp * (SP_BUCKETS - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(SP_BUCKETS - 1);
        let frac = pos - lo as f64;
        buckets[lo] * (1.0 - frac) + buckets[hi] * frac
    }

    /// The aged timing of a cell of `kind` at signal probability `sp`.
    ///
    /// Both the maximum and minimum propagation delays scale by the same
    /// degradation factor: an aged cell is slower on every arc, which
    /// worsens setup slack and (on clock paths) shifts capture edges.
    pub fn aged_timing(&self, kind: CellKind, sp: f64) -> CellTiming {
        let factor = self.degradation_factor(kind, sp);
        let base = self.base.timing(kind);
        CellTiming {
            max_delay_ns: base.max_delay_ns * factor,
            min_delay_ns: base.min_delay_ns * factor,
        }
    }

    /// Generate the delay-degradation curve of one cell kind over a grid
    /// of signal probabilities and ages — the data behind the paper's
    /// Fig. 4.
    pub fn degradation_curve(
        base: &StdCellLibrary,
        model: &AgingModel,
        kind: CellKind,
        sps: &[f64],
        years: &[f64],
    ) -> Vec<DegradationPoint> {
        let _ = base;
        let weight = Self::kind_weight(kind);
        let mut points = Vec::with_capacity(sps.len() * years.len());
        for &sp in sps {
            for &y in years {
                points.push(DegradationPoint {
                    years: y,
                    sp,
                    degradation: weight * model.delay_degradation(sp, y),
                });
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> AgingAwareTimingLibrary {
        AgingAwareTimingLibrary::build(
            StdCellLibrary::cmos28(),
            AgingModel::cmos28_worst_case(),
            10.0,
        )
    }

    #[test]
    fn factors_bounded_and_monotone_in_sp() {
        let l = lib();
        for kind in [CellKind::Xor2, CellKind::Nand2, CellKind::Dff] {
            let mut last = f64::INFINITY;
            for i in 0..=32 {
                let sp = i as f64 / 32.0;
                let f = l.degradation_factor(kind, sp);
                assert!((1.0..1.08).contains(&f), "{kind:?} sp={sp} f={f}");
                assert!(f <= last + 1e-12);
                last = f;
            }
        }
    }

    #[test]
    fn pseudo_cells_do_not_age() {
        let l = lib();
        assert_eq!(l.degradation_factor(CellKind::Const0, 0.0), 1.0);
        assert_eq!(l.degradation_factor(CellKind::Random, 0.0), 1.0);
    }

    #[test]
    fn aged_timing_scales_both_arcs() {
        let l = lib();
        let base = l.base.timing(CellKind::Xor2);
        let aged = l.aged_timing(CellKind::Xor2, 0.0);
        let factor = l.degradation_factor(CellKind::Xor2, 0.0);
        assert!((aged.max_delay_ns - base.max_delay_ns * factor).abs() < 1e-12);
        assert!((aged.min_delay_ns - base.min_delay_ns * factor).abs() < 1e-12);
        assert!(aged.max_delay_ns > base.max_delay_ns);
    }

    #[test]
    fn interpolation_matches_extremes() {
        let l = lib();
        let model = AgingModel::cmos28_worst_case();
        let at0 = l.degradation_factor(CellKind::Xor2, 0.0);
        assert!((at0 - (1.0 + model.delay_degradation(0.0, 10.0))).abs() < 1e-9);
        let at1 = l.degradation_factor(CellKind::Xor2, 1.0);
        assert!((at1 - (1.0 + model.delay_degradation(1.0, 10.0))).abs() < 1e-9);
    }

    #[test]
    fn degradation_curve_grows_with_age() {
        let base = StdCellLibrary::cmos28();
        let model = AgingModel::cmos28_worst_case();
        let curve = AgingAwareTimingLibrary::degradation_curve(
            &base,
            &model,
            CellKind::Xor2,
            &[0.1],
            &[1.0, 5.0, 10.0],
        );
        assert_eq!(curve.len(), 3);
        assert!(curve[0].degradation < curve[1].degradation);
        assert!(curve[1].degradation < curve[2].degradation);
    }

    #[test]
    fn serde_round_trip() {
        let l = lib();
        let json = serde_json::to_string(&l).unwrap();
        let back: AgingAwareTimingLibrary = serde_json::from_str(&json).unwrap();
        for kind in [CellKind::Xor2, CellKind::Dff, CellKind::ClockBuf] {
            for sp in [0.0, 0.25, 0.5, 1.0] {
                assert!(
                    (l.degradation_factor(kind, sp) - back.degradation_factor(kind, sp)).abs()
                        < 1e-12
                );
            }
        }
        assert_eq!(back.base.name, "cmos28");
    }
}
