//! The reaction–diffusion BTI model.

use serde::{Deserialize, Serialize};

use crate::BOLTZMANN_EV_PER_K;

/// Parameters of the reaction–diffusion transistor-aging model.
///
/// The model predicts the threshold-voltage shift of a transistor under
/// BTI stress (paper Eq. 1) and converts it into a propagation-delay
/// degradation through a first-order drive-current sensitivity — the part
/// the paper delegates to SPICE characterization.
///
/// Signal probability enters through [`AgingModel::duty_factor`]: a cell
/// output resting at logical `0` (SP → 0) keeps the pull-up PMOS network
/// under *static* (DC) NBTI stress; a toggling output (SP ≈ 0.5) sees AC
/// stress with partial recovery between phases; an output resting at `1`
/// still degrades through the weaker n-type PBTI mechanism, captured by
/// the AC floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    /// Activation energy `Ea` of the process technology, in eV.
    pub activation_energy_ev: f64,
    /// Operating (junction) temperature, in kelvin. STA uses the foundry's
    /// pessimistic corner (e.g. 398 K = 125 °C).
    pub temperature_k: f64,
    /// Reference temperature at which [`AgingModel::max_delta_vth_v`] was
    /// characterized, in kelvin.
    pub reference_temperature_k: f64,
    /// Time-dependence exponent; 1/6 in the reaction–diffusion model.
    pub time_exponent: f64,
    /// Reference lifetime, in years, at which a DC-stressed transistor
    /// reaches [`AgingModel::max_delta_vth_v`].
    pub reference_years: f64,
    /// Threshold-voltage shift after `reference_years` of DC stress at the
    /// reference temperature, in volts.
    pub max_delta_vth_v: f64,
    /// Residual degradation fraction for fully AC (or opposite-polarity)
    /// stress relative to DC stress — the measured AC/DC BTI ratio plus
    /// the weaker PBTI contribution.
    pub ac_floor: f64,
    /// Shape exponent of the duty-cycle dependence: higher values
    /// concentrate degradation onto cells that idle close to SP = 0.
    pub duty_exponent: f64,
    /// Supply voltage, in volts (delay sensitivity denominator).
    pub vdd_v: f64,
    /// Unaged threshold voltage, in volts.
    pub vth0_v: f64,
    /// Dimensionless delay sensitivity: `Δd/d = sensitivity · ΔVth /
    /// (Vdd − Vth0)`. Absorbs the alpha-power-law drive-current exponent.
    pub delay_sensitivity: f64,
}

impl AgingModel {
    /// The 28 nm worst-case corner used throughout the evaluation:
    /// 125 °C junction temperature, 0.9 V supply, and a DC ΔVth of 50 mV
    /// over a 10-year mission lifetime. Calibrated so a DC-stressed cell
    /// slows by ≈6 % and a toggling cell by ≈1.9 % after 10 years,
    /// matching the span the paper reports (Fig. 8).
    pub fn cmos28_worst_case() -> Self {
        AgingModel {
            activation_energy_ev: 0.49,
            temperature_k: 398.15,
            reference_temperature_k: 398.15,
            time_exponent: 1.0 / 6.0,
            reference_years: 10.0,
            max_delta_vth_v: 0.050,
            ac_floor: 0.3167,
            duty_exponent: 2.2,
            vdd_v: 0.90,
            vth0_v: 0.35,
            delay_sensitivity: 0.66,
        }
    }

    /// Arrhenius acceleration factor of the current temperature relative
    /// to the reference temperature.
    pub fn arrhenius_factor(&self) -> f64 {
        let k = BOLTZMANN_EV_PER_K;
        // exp(Ea/kT) grows as T *drops* in Eq. 1's ΔVth ∝ exp(Ea/kT) form
        // as printed; physically BTI accelerates with temperature, so the
        // standard Arrhenius acceleration exp(-Ea/k · (1/T − 1/Tref)) is
        // used, which is 1 at the reference corner and > 1 above it.
        (-self.activation_energy_ev / k
            * (1.0 / self.temperature_k - 1.0 / self.reference_temperature_k))
            .exp()
    }

    /// The duty-cycle stress factor for a cell whose output has the given
    /// signal probability, in `[ac_floor, 1]`.
    ///
    /// SP = 0 (always low, static pull-up stress) → 1. SP = 1 → the AC
    /// floor. Monotonically decreasing in between.
    pub fn duty_factor(&self, sp: f64) -> f64 {
        let sp = sp.clamp(0.0, 1.0);
        self.ac_floor + (1.0 - self.ac_floor) * (1.0 - sp).powf(self.duty_exponent)
    }

    /// Threshold-voltage shift, in volts, of a transistor stressed for
    /// `years` at duty factor corresponding to signal probability `sp`
    /// (paper Eq. 1 with duty-cycle scaling).
    pub fn delta_vth_v(&self, sp: f64, years: f64) -> f64 {
        if years <= 0.0 {
            return 0.0;
        }
        self.max_delta_vth_v
            * self.duty_factor(sp)
            * (years / self.reference_years).powf(self.time_exponent)
            * self.arrhenius_factor()
    }

    /// Partial-recovery form: the residual ΔVth after `stress_years` of
    /// stress followed by `recovery_years` without stress. The
    /// reaction–diffusion model predicts a fractional recovery with the
    /// same power-law time dependence (paper §2.3.3).
    pub fn delta_vth_after_recovery_v(
        &self,
        sp: f64,
        stress_years: f64,
        recovery_years: f64,
    ) -> f64 {
        let stressed = self.delta_vth_v(sp, stress_years);
        if recovery_years <= 0.0 || stress_years <= 0.0 {
            return stressed;
        }
        // Fraction recovered follows xi · (t_rec / (t_rec + t_stress))^n
        // with xi the recoverable component (~0.5 for NBTI).
        let xi = 0.5;
        let frac = recovery_years / (recovery_years + stress_years);
        stressed * (1.0 - xi * frac.powf(self.time_exponent))
    }

    /// Fractional propagation-delay increase (`Δd/d`) for a cell at the
    /// given signal probability and age.
    ///
    /// A result of `0.06` means the cell has slowed by 6 %.
    pub fn delay_degradation(&self, sp: f64, years: f64) -> f64 {
        self.delay_sensitivity * self.delta_vth_v(sp, years) / (self.vdd_v - self.vth0_v)
    }

    /// The share of end-of-life degradation already accumulated by
    /// `years`: `(years / reference_years)^(1/6)`.
    ///
    /// The paper notes ~70 % of a 10-year ΔVth accrues within the first
    /// year; this helper exposes that front-loading.
    pub fn lifetime_fraction(&self, years: f64) -> f64 {
        if years <= 0.0 {
            return 0.0;
        }
        (years / self.reference_years)
            .powf(self.time_exponent)
            .min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AgingModel {
        AgingModel::cmos28_worst_case()
    }

    #[test]
    fn calibration_endpoints() {
        let m = model();
        // DC-stressed cell (SP = 0) at end of life: ~6 % slower.
        let dc = m.delay_degradation(0.0, 10.0);
        assert!((dc - 0.06).abs() < 0.002, "dc = {dc}");
        // Fully "1"-resting cell: the AC/PBTI floor, ~1.9 %.
        let ac = m.delay_degradation(1.0, 10.0);
        assert!((ac - 0.019).abs() < 0.002, "ac = {ac}");
    }

    #[test]
    fn duty_factor_is_monotone_decreasing() {
        let m = model();
        let mut last = f64::INFINITY;
        for i in 0..=20 {
            let sp = i as f64 / 20.0;
            let f = m.duty_factor(sp);
            assert!(f <= last + 1e-12, "not monotone at sp={sp}");
            assert!((m.ac_floor..=1.0 + 1e-12).contains(&f));
            last = f;
        }
        assert!((m.duty_factor(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn front_loaded_time_dependence() {
        let m = model();
        // ~68 % of 10-year degradation within the first year: 0.1^(1/6).
        let one_year = m.lifetime_fraction(1.0);
        assert!((one_year - 0.1f64.powf(1.0 / 6.0)).abs() < 1e-12);
        assert!(one_year > 0.65 && one_year < 0.72);
        assert_eq!(m.lifetime_fraction(0.0), 0.0);
        assert_eq!(m.lifetime_fraction(10.0), 1.0);
    }

    #[test]
    fn temperature_accelerates_aging() {
        let mut hot = model();
        hot.temperature_k = 420.0;
        let cool = model();
        assert!(hot.delta_vth_v(0.0, 10.0) > cool.delta_vth_v(0.0, 10.0));
        assert!(
            (cool.arrhenius_factor() - 1.0).abs() < 1e-12,
            "reference corner is neutral"
        );
    }

    #[test]
    fn recovery_reduces_but_never_erases() {
        let m = model();
        let stressed = m.delta_vth_v(0.0, 5.0);
        let recovered = m.delta_vth_after_recovery_v(0.0, 5.0, 5.0);
        assert!(recovered < stressed);
        assert!(
            recovered > 0.5 * stressed,
            "recoverable component is bounded"
        );
        // No recovery time: unchanged.
        assert_eq!(m.delta_vth_after_recovery_v(0.0, 5.0, 0.0), stressed);
    }

    #[test]
    fn zero_age_means_zero_shift() {
        let m = model();
        assert_eq!(m.delta_vth_v(0.3, 0.0), 0.0);
        assert_eq!(m.delay_degradation(0.3, 0.0), 0.0);
    }
}
