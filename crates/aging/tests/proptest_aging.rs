//! Property tests for the BTI model: physical sanity over the whole
//! parameter space.

use proptest::prelude::*;

use vega_aging::{AgingAwareTimingLibrary, AgingModel};
use vega_netlist::{CellKind, StdCellLibrary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ΔVth is nonnegative, bounded by the DC end-of-life budget (scaled
    /// by the Arrhenius factor), and monotone in time and stress.
    #[test]
    fn delta_vth_is_physical(sp in 0.0f64..=1.0, years in 0.0f64..=10.0) {
        let m = AgingModel::cmos28_worst_case();
        let v = m.delta_vth_v(sp, years);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= m.max_delta_vth_v * m.arrhenius_factor() + 1e-12);
        // Monotone in time.
        prop_assert!(m.delta_vth_v(sp, years + 0.5) >= v - 1e-15);
        // Monotone in stress (lower SP = more stress).
        if sp >= 0.05 {
            prop_assert!(m.delta_vth_v(sp - 0.05, years) >= v - 1e-15);
        }
    }

    /// Recovery reduces ΔVth but never below half (the recoverable
    /// component bound), and never increases it.
    #[test]
    fn recovery_is_bounded(
        sp in 0.0f64..=1.0,
        stress in 0.1f64..=10.0,
        recovery in 0.0f64..=10.0,
    ) {
        let m = AgingModel::cmos28_worst_case();
        let stressed = m.delta_vth_v(sp, stress);
        let after = m.delta_vth_after_recovery_v(sp, stress, recovery);
        prop_assert!(after <= stressed + 1e-15);
        prop_assert!(after >= stressed * 0.5 - 1e-15);
    }

    /// Library degradation factors: ≥ 1, monotone decreasing in SP, and
    /// interpolation stays within the bucket extremes.
    #[test]
    fn degradation_factor_properties(sp in 0.0f64..=1.0, years in 0.0f64..=10.0) {
        let lib = AgingAwareTimingLibrary::build(
            StdCellLibrary::cmos28(),
            AgingModel::cmos28_worst_case(),
            years,
        );
        for kind in [CellKind::Xor2, CellKind::Nand2, CellKind::Dff, CellKind::ClockBuf] {
            let f = lib.degradation_factor(kind, sp);
            prop_assert!(f >= 1.0 - 1e-12, "{kind:?}");
            prop_assert!(f <= 1.10, "{kind:?}: {f}");
            let f_higher_sp = lib.degradation_factor(kind, (sp + 0.1).min(1.0));
            prop_assert!(f_higher_sp <= f + 1e-9, "{kind:?} not monotone");
        }
    }

    /// Aged timing never gets faster, and min stays below max.
    #[test]
    fn aged_timing_is_consistent(sp in 0.0f64..=1.0) {
        let lib = AgingAwareTimingLibrary::build(
            StdCellLibrary::cmos28(),
            AgingModel::cmos28_worst_case(),
            10.0,
        );
        for kind in CellKind::ALL {
            let base = lib.base.timing(kind);
            let aged = lib.aged_timing(kind, sp);
            prop_assert!(aged.max_delay_ns >= base.max_delay_ns - 1e-12, "{kind:?}");
            prop_assert!(aged.min_delay_ns >= base.min_delay_ns - 1e-12, "{kind:?}");
            prop_assert!(aged.min_delay_ns <= aged.max_delay_ns + 1e-12, "{kind:?}");
        }
    }
}
