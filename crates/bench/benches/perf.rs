//! Criterion performance benchmarks for Vega's substrates: gate-level
//! simulation throughput, SAT solving, aging-aware STA, bounded model
//! checking, and test-suite execution.
//!
//! Run: `cargo bench -p vega-bench`

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vega::*;
use vega_circuits::{alu::build_alu, fpu::build_fpu};
use vega_formal::{check_cover, BmcConfig, Property};
use vega_sat::{Lit, Solver};
use vega_sim::{RandomStimulus, Simulator};

fn bench_simulator(c: &mut Criterion) {
    let alu = build_alu();
    let fpu = build_fpu();
    let mut group = c.benchmark_group("simulator");
    group.bench_function("alu_1000_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&alu);
            let mut stim = RandomStimulus::new(&alu, 7);
            stim.drive(&mut sim, 1000);
            black_box(sim.output("r"))
        })
    });
    group.bench_function("fpu_100_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&fpu);
            let mut stim = RandomStimulus::new(&fpu, 7);
            stim.drive(&mut sim, 100);
            black_box(sim.output("r"))
        })
    });
    group.finish();
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat");
    group.sample_size(20);
    group.bench_function("pigeonhole_8_7", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            let grid: Vec<Vec<_>> = (0..8)
                .map(|_| (0..7).map(|_| solver.new_var()).collect())
                .collect();
            for row in &grid {
                let clause: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
                solver.add_clause(&clause);
            }
            for h in 0..7 {
                for (p1, row1) in grid.iter().enumerate() {
                    for row2 in grid.iter().skip(p1 + 1) {
                        solver.add_clause(&[Lit::neg(row1[h]), Lit::neg(row2[h])]);
                    }
                }
            }
            black_box(solver.solve())
        })
    });
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let config = WorkflowConfig::cmos28_10y();
    let alu = prepare_unit(build_alu(), ModuleKind::Alu, &config);
    let fpu = prepare_unit(build_fpu(), ModuleKind::Fpu, &config);
    let aged = AgingAwareTimingLibrary::build(config.cell_library.clone(), config.model, 10.0);
    let mut group = c.benchmark_group("sta");
    group.sample_size(20);
    group.bench_function("alu_aged_analysis", |b| {
        let mut sta = StaConfig::with_period(alu.clock_period_ns);
        sta.max_paths = 1000;
        b.iter(|| black_box(analyze(&alu.netlist, &aged, None, &sta)))
    });
    group.bench_function("fpu_aged_analysis", |b| {
        let mut sta = StaConfig::with_period(fpu.clock_period_ns);
        sta.max_paths = 1000;
        b.iter(|| black_box(analyze(&fpu.netlist, &aged, None, &sta)))
    });
    group.finish();
}

fn bench_formal(c: &mut Criterion) {
    let alu = build_alu();
    let r0 = alu.port("r").unwrap().bits[0];
    let mut group = c.benchmark_group("formal");
    group.sample_size(10);
    group.bench_function("alu_cover_r0", |b| {
        b.iter(|| {
            black_box(check_cover(
                &alu,
                &Property::net_equals(r0, true),
                &[],
                &BmcConfig {
                    max_cycles: 4,
                    max_induction: 1,
                    conflict_budget: 1_000_000,
                },
            ))
        })
    });
    group.finish();
}

fn bench_suite(c: &mut Criterion) {
    let netlist = build_alu();
    let suite = vega_bench::random_suite(ModuleKind::Alu, 8, 9);
    let mut group = c.benchmark_group("suite");
    group.bench_function("alu_8_tests", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&netlist);
            black_box(run_suite(&mut sim, ModuleKind::Alu, &suite))
        })
    });
    group.finish();
}

fn bench_aging(c: &mut Criterion) {
    let mut group = c.benchmark_group("aging");
    group.bench_function("build_timing_library", |b| {
        b.iter(|| {
            black_box(AgingAwareTimingLibrary::build(
                StdCellLibrary::cmos28(),
                AgingModel::cmos28_worst_case(),
                10.0,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_sat,
    bench_sta,
    bench_formal,
    bench_suite,
    bench_aging
);
criterion_main!(benches);
