//! Ablation: the formal tool's resource budget vs. Table 4's "FF"
//! (formal failure / timeout) column. The paper's JasperGold timed out
//! on 4.9–8.5 % of FPU pairs; our CDCL solver finishes these cones under
//! the default budget, so this sweep shows where the FF regime begins.
//!
//! Run: `cargo run --release -p vega-bench --bin ablation_budget`

use vega::*;
use vega_bench::{pairs_for_lifting, print_table, setup_units};
use vega_formal::BmcConfig;

fn main() {
    println!("== Ablation: formal conflict budget vs construction outcomes ==\n");
    let (_, fpu) = setup_units();
    let pairs = pairs_for_lifting(&fpu);

    let mut rows = Vec::new();
    for budget in [10u64, 25, 50, 100, 500, 10_000, 400_000] {
        // Retries stay disabled (the default policy): this sweep measures
        // the raw budget cliff, not the escalation that papers over it.
        let config = LiftConfig {
            mitigation: false,
            bmc: Some(BmcConfig {
                max_cycles: 6,
                max_induction: 2,
                conflict_budget: budget,
            }),
            ..LiftConfig::default()
        };
        let report = generate_suite(&fpu.unit.netlist, ModuleKind::Fpu, &pairs, &config);
        let (s, ur, ff, fc) = report.table4_row();
        rows.push(vec![
            format!("{budget}"),
            format!("{s:.1}"),
            format!("{ur:.1}"),
            format!("{ff:.1}"),
            format!("{fc:.1}"),
        ]);
    }
    print_table(&["conflict budget", "S %", "UR %", "FF %", "FC %"], &rows);
    println!("\nreading: FF appears once the budget drops below what the FPU's");
    println!("multiplier cones need — the same resource cliff behind the paper's");
    println!("JasperGold timeouts, reproduced deterministically in conflicts");
    println!("instead of wall-clock minutes.");
}
