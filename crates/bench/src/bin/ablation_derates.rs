//! Ablation: how much of the violating-path population comes from the
//! foundry-mandated pessimistic analysis corners (paper §6.2 discusses
//! these as a source of real-world false positives).
//!
//! Run: `cargo run --release -p vega-bench --bin ablation_derates`

use vega::*;
use vega_bench::{print_table, setup_units};

fn main() {
    println!("== Ablation: STA derate pessimism ==\n");
    let (alu, fpu) = setup_units();
    let config = vega_bench::workflow_config();
    let aged =
        AgingAwareTimingLibrary::build(config.cell_library.clone(), config.model, config.years);

    let corners: [(&str, Derates); 3] = [
        ("nominal", Derates::nominal()),
        ("default", Derates::default()),
        (
            "heavy",
            Derates {
                data_late: 1.10,
                data_early: 0.90,
                clock_late: 1.06,
                clock_early: 0.94,
            },
        ),
    ];

    let mut rows = Vec::new();
    for setup in [&alu, &fpu] {
        for (label, derates) in &corners {
            let mut sta = StaConfig::with_period(setup.unit.clock_period_ns);
            sta.derates = *derates;
            sta.max_paths = 10_000;
            let report = analyze(&setup.unit.netlist, &aged, Some(&setup.profile), &sta);
            rows.push(vec![
                setup.name.to_string(),
                label.to_string(),
                format!("{:.0}ps", report.wns_setup_ns * 1000.0),
                format!("{}", report.setup_path_count.min(9_999_999)),
                format!("{:.0}ps", report.wns_hold_ns * 1000.0),
                format!("{}", report.hold_path_count),
                format!(
                    "{}",
                    report.unique_setup_pairs().len() + report.unique_hold_pairs().len()
                ),
            ]);
        }
    }
    print_table(
        &[
            "unit",
            "corner",
            "setup WNS",
            "setup paths",
            "hold WNS",
            "hold paths",
            "pairs",
        ],
        &rows,
    );
    println!("\nreading: pessimistic corners inflate the failing-path population;");
    println!("paths flagged only under heavy derates are the candidates the paper");
    println!("calls false positives that better environmental modeling could drop.");
}
