//! Ablation (paper §6.3 future work, implemented): fuzzing-based test
//! generation vs. the formal cover search, compared on the same
//! aging-prone pairs — success rate and work spent.
//!
//! Run: `cargo run --release -p vega-bench --bin ablation_fuzz_lifting`

use std::time::Instant;

use vega::*;
use vega_bench::{pairs_for_lifting, print_table, setup_units};
use vega_lift::fuzz::{fuzz_test_case, FuzzConfig};
use vega_lift::instrument_with_shadow;

fn main() {
    println!("== Ablation: fuzzing-based vs formal error lifting ==\n");
    let (alu, fpu) = setup_units();

    let mut rows = Vec::new();
    for setup in [&alu, &fpu] {
        let pairs = pairs_for_lifting(setup);

        // Formal path.
        let started = Instant::now();
        let formal_report = lift_errors(&setup.unit, &pairs, &vega_bench::workflow_config());
        let formal_time = started.elapsed();
        let formal_success = formal_report
            .pairs
            .iter()
            .filter(|p| p.class() == PairClass::Success)
            .count();
        let formal_proofs = formal_report
            .pairs
            .iter()
            .filter(|p| p.class() == PairClass::Unreachable)
            .count();

        // Fuzzing path: one campaign per pair with C = 1 (its easiest
        // configuration).
        let started = Instant::now();
        let mut fuzz_success = 0usize;
        let mut cycles = 0u64;
        for (index, &path) in pairs.iter().enumerate() {
            let instrumented = instrument_with_shadow(
                &setup.unit.netlist,
                path,
                FaultValue::One,
                FaultActivation::OnChange,
            );
            let config = FuzzConfig {
                candidates: 200,
                max_cycles: 8,
                seed: 77 + index as u64,
            };
            if let Ok(Some((_, _, stats))) = fuzz_test_case(
                setup.unit.module,
                &instrumented,
                &config,
                format!("fuzz_{index}"),
                path.label(&setup.unit.netlist),
            ) {
                fuzz_success += 1;
                cycles += stats.cycles_simulated;
            }
        }
        let fuzz_time = started.elapsed();

        rows.push(vec![
            setup.name.to_string(),
            format!("{}", pairs.len()),
            format!("{formal_success} (+{formal_proofs} proofs)"),
            format!("{:.1}s", formal_time.as_secs_f64()),
            format!("{fuzz_success}"),
            format!("{:.1}s", fuzz_time.as_secs_f64()),
            format!("{cycles}"),
        ]);
    }
    print_table(
        &[
            "unit",
            "pairs",
            "formal hits",
            "formal t",
            "fuzz hits",
            "fuzz t",
            "fuzz cycles",
        ],
        &rows,
    );
    println!("\nreading: fuzzing finds the easy faults quickly but can neither");
    println!("prove the remaining pairs harmless nor bound its own search — the");
    println!("hybrid the paper sketches (fuzz first, prove the leftovers) falls");
    println!("out of combining both code paths on the same ShadowInstrumented.");
}
