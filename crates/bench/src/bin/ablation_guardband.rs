//! Ablation: the signoff guard band vs. aging headroom — how much rated
//! frequency buys how many violation-free years.
//!
//! Run: `cargo run --release -p vega-bench --bin ablation_guardband`

use vega::*;
use vega_bench::print_table;
use vega_circuits::alu::build_alu;

fn main() {
    println!("== Ablation: setup guard band vs years-to-first-violation ==\n");
    let base_config = vega_bench::workflow_config();

    let mut rows = Vec::new();
    for guard in [0.01, 0.02, 0.04, 0.06, 0.08] {
        let mut config = base_config.clone();
        config.guard_fraction = guard;
        let unit = prepare_unit(build_alu(), ModuleKind::Alu, &config);

        // Find the first year (in 0.5y steps) at which setup WNS goes
        // negative under worst-case SP.
        let mut first_violation = None;
        let mut wns_10y = 0.0;
        for half_years in 0..=20u32 {
            let years = f64::from(half_years) * 0.5;
            let lib =
                AgingAwareTimingLibrary::build(config.cell_library.clone(), config.model, years);
            let mut sta = StaConfig::with_period(unit.clock_period_ns);
            sta.default_sp = 0.1; // stressed profile
            sta.max_paths = 1;
            let report = analyze(&unit.netlist, &lib, None, &sta);
            if years >= 10.0 {
                wns_10y = report.wns_setup_ns;
            }
            if report.wns_setup_ns < 0.0 && first_violation.is_none() {
                first_violation = Some(years);
            }
        }
        rows.push(vec![
            format!("{:.0}%", guard * 100.0),
            format!("{:.1} MHz", unit.frequency_mhz()),
            first_violation
                .map(|y| format!("{y:.1} y"))
                .unwrap_or_else(|| "> 10 y".to_string()),
            format!("{:.0}ps", wns_10y * 1000.0),
        ]);
    }
    print_table(
        &["guard band", "rated freq", "first violation", "WNS @ 10y"],
        &rows,
    );
    println!("\nreading: because BTI degradation is front-loaded (t^1/6), small");
    println!("guard bands are consumed within the first year; out-running 10-year");
    println!("aging entirely costs several percent of rated frequency — which is");
    println!("why the paper argues for runtime detection instead of margining.");
}
