//! Ablation: operating temperature vs. aging-induced timing failures.
//! BTI follows an Arrhenius law, so the junction-temperature corner the
//! foundry mandates (125 °C here) dominates how much guard band a design
//! needs — the environmental-noise discussion of paper §6.2.
//!
//! Run: `cargo run --release -p vega-bench --bin ablation_temperature`

use vega::*;
use vega_bench::print_table;
use vega_circuits::alu::build_alu;

fn main() {
    println!("== Ablation: junction temperature vs 10-year aging impact ==\n");
    let base = vega_bench::workflow_config();
    let unit = prepare_unit(build_alu(), ModuleKind::Alu, &base);

    let mut rows = Vec::new();
    for celsius in [25.0, 55.0, 85.0, 105.0, 125.0, 150.0] {
        let mut model = base.model;
        model.temperature_k = celsius + 273.15;
        let lib = AgingAwareTimingLibrary::build(base.cell_library.clone(), model, 10.0);
        let mut sta = StaConfig::with_period(unit.clock_period_ns);
        sta.default_sp = 0.1;
        sta.max_paths = 1;
        let report = analyze(&unit.netlist, &lib, None, &sta);
        rows.push(vec![
            format!("{celsius:.0} C"),
            format!("{:.3}", model.arrhenius_factor()),
            format!("{:.2}%", model.delay_degradation(0.0, 10.0) * 100.0),
            format!("{:.0}ps", report.wns_setup_ns * 1000.0),
            format!("{}", report.setup_path_count),
        ]);
    }
    print_table(
        &[
            "junction T",
            "Arrhenius",
            "worst cell slowdown",
            "setup WNS",
            "paths",
        ],
        &rows,
    );
    println!("\nreading: cooling the part buys headroom exponentially; the");
    println!("pessimistic 125 C signoff corner is what makes the 2% guard band");
    println!("insufficient — and why the paper flags worst-case temperature");
    println!("assumptions as a source of false positives in the field (§6.2).");
}
