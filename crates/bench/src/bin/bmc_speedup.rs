//! BMC engine cost: rebuild-per-depth vs the incremental session.
//!
//! For every lifted aging pair of the ALU and FPU, runs the same cover
//! query (shadow-instrumented netlist, `any_differ` property, module
//! assumptions and budget) through both engines:
//!
//! * the rebuild oracle — a fresh solver and a full re-encoding of
//!   cycles `0..=t` at every depth `t` (`check_cover_rebuild_with_stats`);
//! * the incremental session — one persistent unrolling per query,
//!   cone-of-influence + polarity-pruned encoding, `fire@t` assumed and
//!   `!fire@t` asserted on refutation, learned clauses kept throughout
//!   (`check_cover_with_stats`).
//!
//! Both engines must agree on every outcome (same verdict, same minimal
//! fire cycle); the artifact records per-pair and per-unit conflicts,
//! propagations, encoded clauses, and wall-clock, plus the aggregate
//! ratios. The FPU — deeper unrollings, harder cones — is where the
//! incremental engine must show at least a 3x conflict reduction.
//!
//! A third column measures **portfolio racing** (`--portfolio N`, default
//! 4): each query additionally runs every roster backend solo (the honest
//! "best single backend" baseline) and then races the whole roster via
//! [`race_round`], recording per-query race wall-clock, the winning
//! backend, and the per-unit winner distribution. On multi-core hosts the
//! race must land within an overhead allowance of the best solo backend;
//! on a 1-CPU host (or under `VEGA_QUICK=1`) the numbers are recorded
//! honestly but not asserted, mirroring `fleet_scale` — the artifact's
//! `portfolio.asserted` flag says which happened.
//!
//! Writes `bench_results/bmc_speedup.json` (via the fleet's canonical
//! JSON writer) alongside a human-readable table on stdout.
//!
//! Run: `cargo run --release -p vega-bench --bin bmc_speedup`
//! (set `VEGA_QUICK=1` for smoke sizes; `--out <path>` to redirect the
//! artifact; `--portfolio N` to size the race roster)

use std::collections::BTreeMap;
use std::time::Instant;

use vega_bench::{pairs_for_lifting, print_table, quick, setup_units, UnitSetup};
use vega_fleet::Json;
use vega_formal::{
    check_cover_rebuild_with_stats, check_cover_with_stats, race_round, CoverOutcome, CoverStats,
    Property, SessionSnapshot,
};
use vega_lift::{instrument_with_shadow, FaultActivation, FaultValue, ModuleKind};
use vega_sat::SolverConfig;

/// Wall-clock allowance for a race over the best solo backend: thread
/// spawn/teardown plus cache contention. Generous on purpose — the bar
/// is "racing never costs more than a constant", not a microbenchmark.
const RACE_OVERHEAD_FACTOR: f64 = 1.5;
const RACE_OVERHEAD_SECONDS: f64 = 0.25;

#[derive(Default)]
struct EngineTotals {
    conflicts: u64,
    propagations: u64,
    encoded_clauses: u64,
    seconds: f64,
}

impl EngineTotals {
    fn add(&mut self, stats: &CoverStats, seconds: f64) {
        self.conflicts += stats.conflicts;
        self.propagations += stats.propagations;
        self.encoded_clauses += stats.encoded_clauses;
        self.seconds += seconds;
    }

    fn json(&self) -> Json {
        Json::obj(vec![
            ("conflicts", Json::UInt(self.conflicts)),
            ("propagations", Json::UInt(self.propagations)),
            ("encoded_clauses", Json::UInt(self.encoded_clauses)),
            ("seconds", Json::Float(self.seconds)),
        ])
    }
}

/// `a / b` with the zero-denominator convention that suits ratios of
/// work counters: no work on either side is a neutral 1.0.
fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}

fn outcome_name(outcome: &CoverOutcome) -> &'static str {
    match outcome {
        CoverOutcome::Trace(_) => "trace",
        CoverOutcome::ProvedUnreachable { .. } => "proved_unreachable",
        CoverOutcome::BoundedOnly { .. } => "bounded_only",
        CoverOutcome::BudgetExhausted => "budget_exhausted",
    }
}

fn bench_unit(
    setup: &UnitSetup,
    module: ModuleKind,
    racers: &[SolverConfig],
    assert_race_wall: bool,
    rows: &mut Vec<Vec<String>>,
) -> (Json, f64) {
    let netlist = &setup.unit.netlist;
    let assumptions = module.assumptions(netlist);
    let config = module.bmc_config();
    let pairs = pairs_for_lifting(setup);
    // The non-quick pair lists are large and each pair runs two fault
    // values through two engines; a deterministic stride keeps the bench
    // minutes-scale while still spanning the list — a prefix would sample
    // one launch flop's easy SAT queries and miss the proved-unreachable
    // pairs whose deep Unsat sweeps are where the engines differ most.
    let cap = if quick() { 4 } else { 12 };
    let stride = (pairs.len() / cap).max(1);
    let pairs: Vec<_> = pairs.iter().step_by(stride).take(cap).copied().collect();

    let mut rebuild = EngineTotals::default();
    let mut incremental = EngineTotals::default();
    let mut portfolio = EngineTotals::default();
    let mut best_solo_total = 0.0_f64;
    let mut winners: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut pair_json = Vec::new();
    for &path in &pairs {
        for value in FaultValue::FORMAL {
            let instrumented =
                instrument_with_shadow(netlist, path, value, FaultActivation::OnChange);
            if instrumented.observable_pairs.is_empty() {
                continue;
            }
            let property = Property::any_differ(instrumented.observable_pairs.clone());

            let start = Instant::now();
            let (reb_outcome, reb_stats) = check_cover_rebuild_with_stats(
                &instrumented.netlist,
                &property,
                &assumptions,
                &config,
            );
            let reb_seconds = start.elapsed().as_secs_f64();

            let start = Instant::now();
            let (inc_outcome, inc_stats) =
                check_cover_with_stats(&instrumented.netlist, &property, &assumptions, &config);
            let inc_seconds = start.elapsed().as_secs_f64();

            // The engines must agree: same verdict, and for witnesses the
            // same minimal fire cycle (input values may differ — both are
            // valid witnesses of the same shallowest firing depth).
            assert_eq!(
                outcome_name(&inc_outcome),
                outcome_name(&reb_outcome),
                "{}: engines disagree on {} C={value:?}",
                setup.name,
                path.label(netlist),
            );
            if let (CoverOutcome::Trace(a), CoverOutcome::Trace(b)) = (&inc_outcome, &reb_outcome) {
                assert_eq!(
                    a.fire_cycle,
                    b.fire_cycle,
                    "{}: minimal fire cycle differs on {} C={value:?}",
                    setup.name,
                    path.label(netlist),
                );
            }

            // Portfolio column. Every roster backend solo first — the
            // "best single backend" baseline must be measured, not
            // assumed, because which configuration is fastest varies per
            // query (that variance is the whole reason racing pays).
            let snapshot = SessionSnapshot {
                next_depth: property.earliest_cycle,
                next_k: 1,
                in_induction: false,
            };
            let mut best_solo = f64::INFINITY;
            let mut best_solo_backend = "";
            for backend in racers {
                let start = Instant::now();
                let solo = race_round(
                    &instrumented.netlist,
                    &property,
                    &assumptions,
                    &config,
                    &snapshot,
                    config.conflict_budget,
                    std::slice::from_ref(backend),
                    None,
                );
                let solo_seconds = start.elapsed().as_secs_f64();
                assert_eq!(
                    outcome_name(&solo.outcome),
                    outcome_name(&inc_outcome),
                    "{}: backend {} disagrees on {} C={value:?}",
                    setup.name,
                    backend.name,
                    path.label(netlist),
                );
                if solo_seconds < best_solo {
                    best_solo = solo_seconds;
                    best_solo_backend = backend.name;
                }
            }

            let start = Instant::now();
            let race = race_round(
                &instrumented.netlist,
                &property,
                &assumptions,
                &config,
                &snapshot,
                config.conflict_budget,
                racers,
                None,
            );
            let race_seconds = start.elapsed().as_secs_f64();
            assert_eq!(
                outcome_name(&race.outcome),
                outcome_name(&inc_outcome),
                "{}: portfolio disagrees on {} C={value:?}",
                setup.name,
                path.label(netlist),
            );
            if let (CoverOutcome::Trace(a), CoverOutcome::Trace(b)) = (&race.outcome, &inc_outcome)
            {
                // Witness content may differ between backends (each is
                // replay-validated in the lift pipeline and the
                // equivalence grid); the minimal fire cycle may not.
                assert_eq!(
                    a.fire_cycle,
                    b.fire_cycle,
                    "{}: portfolio minimal fire cycle differs on {} C={value:?}",
                    setup.name,
                    path.label(netlist),
                );
            }
            let winner_name = race.winner.map_or("(inconclusive)", |(name, _)| name);
            *winners.entry(winner_name).or_insert(0) += 1;
            if assert_race_wall {
                assert!(
                    race_seconds <= best_solo * RACE_OVERHEAD_FACTOR + RACE_OVERHEAD_SECONDS,
                    "{}: race took {race_seconds:.3}s on {} C={value:?}, \
                     best solo ({best_solo_backend}) took {best_solo:.3}s",
                    setup.name,
                    path.label(netlist),
                );
            }

            rebuild.add(&reb_stats, reb_seconds);
            incremental.add(&inc_stats, inc_seconds);
            portfolio.add(&race.stats, race_seconds);
            best_solo_total += best_solo;
            pair_json.push(Json::obj(vec![
                ("pair", Json::Str(path.label(netlist))),
                ("fault_value", Json::Str(format!("{value:?}"))),
                ("outcome", Json::Str(outcome_name(&inc_outcome).to_string())),
                ("rebuild_conflicts", Json::UInt(reb_stats.conflicts)),
                ("incremental_conflicts", Json::UInt(inc_stats.conflicts)),
                ("rebuild_propagations", Json::UInt(reb_stats.propagations)),
                (
                    "incremental_propagations",
                    Json::UInt(inc_stats.propagations),
                ),
                (
                    "rebuild_encoded_clauses",
                    Json::UInt(reb_stats.encoded_clauses),
                ),
                (
                    "incremental_encoded_clauses",
                    Json::UInt(inc_stats.encoded_clauses),
                ),
                ("rebuild_seconds", Json::Float(reb_seconds)),
                ("incremental_seconds", Json::Float(inc_seconds)),
                ("portfolio_seconds", Json::Float(race_seconds)),
                ("portfolio_conflicts", Json::UInt(race.stats.conflicts)),
                ("portfolio_winner", Json::Str(winner_name.to_string())),
                ("best_solo_seconds", Json::Float(best_solo)),
                (
                    "best_solo_backend",
                    Json::Str(best_solo_backend.to_string()),
                ),
            ]));
        }
    }

    let conflict_ratio = ratio(rebuild.conflicts, incremental.conflicts);
    let clause_ratio = ratio(rebuild.encoded_clauses, incremental.encoded_clauses);
    let wall_ratio = rebuild.seconds / incremental.seconds.max(1e-12);
    let race_vs_best = portfolio.seconds / best_solo_total.max(1e-12);
    rows.push(vec![
        setup.name.to_string(),
        format!("{}", pair_json.len()),
        format!("{}", rebuild.conflicts),
        format!("{}", incremental.conflicts),
        format!("{conflict_ratio:.1}x"),
        format!("{clause_ratio:.1}x"),
        format!("{wall_ratio:.1}x"),
        format!("{race_vs_best:.2}"),
    ]);

    let winners_json = winners
        .iter()
        .map(|(name, count)| ((*name).to_string(), Json::UInt(*count)))
        .collect();
    let json = Json::obj(vec![
        ("unit", Json::Str(setup.name.to_string())),
        ("queries", Json::UInt(pair_json.len() as u64)),
        ("rebuild", rebuild.json()),
        ("incremental", incremental.json()),
        (
            "portfolio",
            Json::obj(vec![
                ("racers", Json::UInt(racers.len() as u64)),
                ("conflicts", Json::UInt(portfolio.conflicts)),
                ("propagations", Json::UInt(portfolio.propagations)),
                ("seconds", Json::Float(portfolio.seconds)),
                ("best_solo_seconds", Json::Float(best_solo_total)),
                ("race_wall_vs_best_solo", Json::Float(race_vs_best)),
                ("asserted", Json::Bool(assert_race_wall)),
                ("winners", Json::Obj(winners_json)),
            ]),
        ),
        ("conflict_reduction", Json::Float(conflict_ratio)),
        ("propagation_reduction", {
            Json::Float(ratio(rebuild.propagations, incremental.propagations))
        }),
        ("encoded_clause_reduction", Json::Float(clause_ratio)),
        ("wall_clock_speedup", Json::Float(wall_ratio)),
        ("outcomes_identical", Json::Bool(true)),
        ("pairs", Json::Arr(pair_json)),
    ]);
    (json, conflict_ratio)
}

fn main() {
    let mut out_path = String::from("bench_results/bmc_speedup.json");
    let mut racer_count = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--portfolio" => {
                racer_count = args
                    .next()
                    .expect("--portfolio needs a count")
                    .parse()
                    .expect("--portfolio count must be a positive integer");
                assert!(racer_count >= 1, "--portfolio needs at least 1 racer");
            }
            other => {
                eprintln!("unknown argument `{other}` (supported: --out <path>, --portfolio <n>)");
                std::process::exit(2);
            }
        }
    }

    let racers = SolverConfig::portfolio(racer_count);
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    // Same honesty contract as `fleet_scale`: wall-clock claims about
    // parallel speed are only asserted where parallelism exists (and not
    // under quick smoke sizes, where per-query time is all overhead).
    let assert_race_wall = host_cpus >= 2 && !quick();

    println!("== BMC: rebuild-per-depth vs incremental session vs portfolio ==\n");
    println!(
        "portfolio roster: {} racer(s), host cpus: {host_cpus}, race wall asserted: {assert_race_wall}\n",
        racers.len()
    );
    let (alu, fpu) = setup_units();

    let mut rows = Vec::new();
    let (alu_json, _) = bench_unit(&alu, ModuleKind::Alu, &racers, assert_race_wall, &mut rows);
    let (fpu_json, fpu_ratio) =
        bench_unit(&fpu, ModuleKind::Fpu, &racers, assert_race_wall, &mut rows);

    print_table(
        &[
            "unit",
            "queries",
            "rebuild cfl",
            "incremental cfl",
            "cfl ratio",
            "clause ratio",
            "wall ratio",
            "race/best",
        ],
        &rows,
    );
    println!("\n(cfl = SAT conflicts summed over every cover query; ratios are");
    println!("rebuild/incremental, so higher means the incremental engine wins;");
    println!("race/best is portfolio race wall over the best solo backend's — ");
    println!("near 1.0 means racing costs no more than the per-query best config)");

    let artifact = Json::obj(vec![
        ("benchmark", Json::Str("bmc_speedup".to_string())),
        ("quick", Json::Bool(quick())),
        ("host_cpus", Json::UInt(host_cpus as u64)),
        ("portfolio_racers", Json::UInt(racers.len() as u64)),
        ("portfolio_asserted", Json::Bool(assert_race_wall)),
        ("units", Json::Arr(vec![alu_json, fpu_json])),
    ]);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, artifact.to_pretty()).expect("write artifact");
    println!("\nwrote {out_path}");

    // The acceptance bar (checked after the artifact lands, so a failing
    // run still leaves its numbers behind): the FPU's deep cones are
    // where persistent learning and assumption solving must pay off.
    assert!(
        fpu_ratio >= 3.0,
        "FPU conflict reduction {fpu_ratio:.2}x is below the 3x bar"
    );
}
