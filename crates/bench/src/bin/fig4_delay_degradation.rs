//! Figure 4: switching-delay degradation of a 28 nm XOR cell under
//! different signal probabilities over a 10-year period.
//!
//! Run: `cargo run --release -p vega-bench --bin fig4_delay_degradation`

use vega::{AgingAwareTimingLibrary, AgingModel, StdCellLibrary};
use vega_netlist::CellKind;

fn main() {
    println!("== Figure 4: XOR cell delay degradation vs age, by SP ==\n");
    let base = StdCellLibrary::cmos28();
    let model = AgingModel::cmos28_worst_case();
    let sps = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
    let years: Vec<f64> = (0..=10).map(f64::from).collect();

    let mut rows = Vec::new();
    for &sp in &sps {
        let curve = AgingAwareTimingLibrary::degradation_curve(
            &base,
            &model,
            CellKind::Xor2,
            &[sp],
            &years,
        );
        let mut row = vec![format!("SP={sp:.2}")];
        row.extend(
            curve
                .iter()
                .map(|p| format!("{:.2}%", p.degradation * 100.0)),
        );
        rows.push(row);
    }
    let mut headers = vec!["series".to_string()];
    headers.extend(years.iter().map(|y| format!("{y:.0}y")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    vega_bench::print_table(&header_refs, &rows);

    println!("\nshape checks (cf. paper Fig. 4):");
    let at = |sp: f64, y: f64| model.delay_degradation(sp, y) * 100.0;
    println!(
        "  front-loading: 1-year degradation is {:.0}% of the 10-year value",
        at(0.0, 1.0) / at(0.0, 10.0) * 100.0
    );
    println!(
        "  SP spread at 10y: {:.2}% (SP=0, DC stress) vs {:.2}% (SP=1, AC floor)",
        at(0.0, 10.0),
        at(1.0, 10.0)
    );
}
