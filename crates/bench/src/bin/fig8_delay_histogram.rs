//! Figure 8: distribution of aging-induced delay increase across the
//! logical cells of the ALU and FPU, under the representative workload's
//! signal-probability profile at 10 years.
//!
//! Run: `cargo run --release -p vega-bench --bin fig8_delay_histogram`

use vega::{AgingAwareTimingLibrary, SpProfile};
use vega_bench::{setup_units, workflow_config};
use vega_netlist::Netlist;

fn histogram(netlist: &Netlist, profile: &SpProfile, lib: &AgingAwareTimingLibrary) -> Vec<u64> {
    // Buckets of 0.5% delay increase: [0, 0.5), [0.5, 1.0), ... [7.5, 8).
    let mut buckets = vec![0u64; 16];
    for cell in netlist.cells() {
        if cell.kind.arity() == 0 {
            continue; // ties and pseudo-cells don't age
        }
        let sp = profile.sp(&cell.name).unwrap_or(0.5);
        let increase = (lib.degradation_factor(cell.kind, sp) - 1.0) * 100.0;
        let bucket = ((increase / 0.5) as usize).min(buckets.len() - 1);
        buckets[bucket] += 1;
    }
    buckets
}

fn main() {
    println!("== Figure 8: aging-induced delay increase histogram ==\n");
    let config = workflow_config();
    let (alu, fpu) = setup_units();
    let lib =
        AgingAwareTimingLibrary::build(config.cell_library.clone(), config.model, config.years);

    let mut rows = Vec::new();
    let alu_hist = histogram(&alu.unit.netlist, &alu.profile, &lib);
    let fpu_hist = histogram(&fpu.unit.netlist, &fpu.profile, &lib);
    let alu_total: u64 = alu_hist.iter().sum();
    let fpu_total: u64 = fpu_hist.iter().sum();
    for (i, (&a, &f)) in alu_hist.iter().zip(&fpu_hist).enumerate() {
        if a == 0 && f == 0 {
            continue;
        }
        rows.push(vec![
            format!("[{:.1}%, {:.1}%)", i as f64 * 0.5, (i + 1) as f64 * 0.5),
            format!("{:.1}%", a as f64 / alu_total as f64 * 100.0),
            format!("{:.1}%", f as f64 / fpu_total as f64 * 100.0),
        ]);
    }
    vega_bench::print_table(&["delay increase", "ALU cells", "FPU cells"], &rows);

    // The paper's headline numbers: a large mode near the maximum
    // (~6%, cells resting at SP≈0 under DC stress) and a second mode at
    // the AC floor (~1.9%).
    let near = |hist: &[u64], total: u64, lo: f64, hi: f64| {
        let lo_bucket = (lo / 0.5) as usize;
        let hi_bucket = ((hi / 0.5) as usize).min(hist.len() - 1);
        hist[lo_bucket..=hi_bucket].iter().sum::<u64>() as f64 / total as f64 * 100.0
    };
    println!("\nshape checks (cf. paper: 52%/35% of cells near 6%, 35%/25% near 1.9%):");
    println!(
        "  ALU: {:.0}% of cells in [5.5%, 6.5%), {:.0}% in [1.5%, 2.5%)",
        near(&alu_hist, alu_total, 5.5, 6.0),
        near(&alu_hist, alu_total, 1.5, 2.0),
    );
    println!(
        "  FPU: {:.0}% of cells in [5.5%, 6.5%), {:.0}% in [1.5%, 2.5%)",
        near(&fpu_hist, fpu_total, 5.5, 6.0),
        near(&fpu_hist, fpu_total, 1.5, 2.0),
    );
}
