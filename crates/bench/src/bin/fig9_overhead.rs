//! Figure 9: performance overhead of the embench-style benchmark set
//! with Vega's profile-guided test integration. "-N" enables only the
//! test cases generated without the mitigation, "-M" only those with it
//! (larger suite).
//!
//! Run: `cargo run --release -p vega-bench --bin fig9_overhead`

use vega::PgiConfig;
use vega_bench::{lift, print_table, setup_units};
use vega_integrate::pgi::{integrate, measured_overhead};
use vega_integrate::workloads;

fn main() {
    println!("== Figure 9: overhead of profile-guided test integration ==\n");
    let (alu, fpu) = setup_units();

    // Suite costs: both units' suites are embedded together, as a data
    // center would monitor every analyzed unit.
    let cost = |mitigation: bool| {
        lift(&alu, mitigation).suite_cpu_cycles() + lift(&fpu, mitigation).suite_cpu_cycles()
    };
    let cycles_n = cost(false);
    let cycles_m = cost(true);
    println!("suite cost: {cycles_n} cycles (-N), {cycles_m} cycles (-M)\n");

    let config = PgiConfig::default();
    let mut rows = Vec::new();
    let mut sums = (0.0f64, 0.0f64);
    let programs = workloads::all();
    for program in &programs {
        let mut row = vec![program.name.clone()];
        for (suite_cycles, slot) in [(cycles_n, 0usize), (cycles_m, 1)] {
            let integrated = integrate(program, suite_cycles, &config)
                .expect("every workload has a routine block");
            // Measure over enough executions for the gate to fire several
            // times even on small programs with large gates.
            let (point_profile, _) = vega_integrate::pgi::profile(program, config.profile_runs);
            let per_run = (point_profile.counts[integrated.integration_point]
                / u64::from(config.profile_runs))
            .max(1);
            let repeats = 48u32.max((u64::from(integrated.every) * 3 / per_run + 1) as u32);
            let (overhead, invocations) = measured_overhead(program, &integrated.program, repeats);
            row.push(format!("{:+.2}%", overhead * 100.0));
            row.push(format!("{}", invocations));
            if slot == 0 {
                sums.0 += overhead;
            } else {
                sums.1 += overhead;
            }
        }
        rows.push(row);
    }
    rows.push(vec![
        "average".into(),
        format!("{:+.2}%", sums.0 / programs.len() as f64 * 100.0),
        String::new(),
        format!("{:+.2}%", sums.1 / programs.len() as f64 * 100.0),
        String::new(),
    ]);
    print_table(
        &["benchmark", "-N overhead", "runs", "-M overhead", "runs"],
        &rows,
    );

    println!("\nshape checks (cf. paper Fig. 9: per-benchmark overheads within");
    println!("a few percent, average 0.8%, some indistinguishable from noise):");
    println!("  - the integrator's probability gate keeps every benchmark at or");
    println!("    under the 1% threshold while the tests still run regularly");
}
