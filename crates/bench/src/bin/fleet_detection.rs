//! Fleet-scale detection: scheduling policies compared at equal budget.
//!
//! Builds the ALU and FPU pools once (phases 1–2), then simulates the
//! same seeded fleet under each scan policy — identical machines,
//! identical faults, identical per-epoch cycle budget — and compares
//! mean detection latency, coverage, and quarantine quality. Averaged
//! over several seeds so no policy wins on a lucky draw.
//!
//! Writes the aggregate to `bench_results/fleet_detection.json` (via
//! the fleet's canonical JSON writer, so the artifact is
//! byte-reproducible) alongside the human-readable table on stdout.
//!
//! Run: `cargo run --release -p vega-bench --bin fleet_detection`
//! (set `VEGA_QUICK=1` for a smoke-sized fleet)

use vega::obs::{Level, MetricsRegistry, TestRecorder};
use vega::{build_unit_pool, Fleet, FleetConfig, Obs, Policy, UnitPool};
use vega_bench::{lift, print_table, quick, setup_units};
use vega_fleet::Json;

struct PolicyAggregate {
    policy: Policy,
    latency: f64,
    coverage: f64,
    quarantined: f64,
    false_quarantines: u64,
    cleared: u64,
    tests: u64,
    cycles: u64,
    per_seed: Vec<(u64, f64, f64)>,
    provenance: Option<EffortProvenance>,
}

/// Effort provenance for one policy, derived from the observability
/// journal of its first-seed run (not from [`vega::FleetTelemetry`]) and
/// cross-checked against the telemetry summary.
struct EffortProvenance {
    seed: u64,
    journal_events: usize,
    epochs: u64,
    tests_run: u64,
    cycles_spent: u64,
    detections: u64,
    journal_mean_latency: f64,
    matches_telemetry: bool,
}

fn main() {
    println!("== Fleet detection: scheduling policies at equal budget ==\n");
    let (alu, fpu) = setup_units();
    let pools: Vec<UnitPool> = [&alu, &fpu]
        .into_iter()
        .map(|setup| {
            let report = lift(setup, false);
            build_unit_pool(setup.name, &setup.unit, &setup.analysis, &report)
        })
        .collect();
    for pool in &pools {
        println!(
            "pool {}: {} tests, {} fault candidates",
            pool.name,
            pool.suite.len(),
            pool.candidates.len()
        );
    }

    let (machines, epochs, seeds): (usize, u64, Vec<u64>) = if quick() {
        (16, 8, vec![1, 2])
    } else {
        (64, 32, vec![1, 2, 3])
    };
    // Equal budget for every policy: the default derivation depends only
    // on the pools and fleet size, so pin it once explicitly.
    let budget = {
        let probe = FleetConfig::new(machines, epochs, Policy::RoundRobin, 1);
        Fleet::build(pools.clone(), probe).budget_cycles()
    };
    println!(
        "\nfleet: {machines} machines, {epochs} epochs, {budget} cycles/epoch, seeds {seeds:?}\n"
    );

    let mut aggregates = Vec::new();
    for policy in Policy::ALL {
        let mut agg = PolicyAggregate {
            policy,
            latency: 0.0,
            coverage: 0.0,
            quarantined: 0.0,
            false_quarantines: 0,
            cleared: 0,
            tests: 0,
            cycles: 0,
            per_seed: Vec::new(),
            provenance: None,
        };
        for &seed in &seeds {
            let mut config = FleetConfig::new(machines, epochs, policy, seed);
            config.budget_cycles = Some(budget);
            let mut fleet = Fleet::build(pools.clone(), config);
            // Record the first seed's run through the observability layer
            // so the JSON artifact carries journal-derived effort
            // provenance alongside the telemetry-derived aggregates.
            let recorder = (seed == seeds[0]).then(TestRecorder::new);
            if let Some(recorder) = &recorder {
                fleet.set_obs(Obs::new(Level::Summary, recorder.clone()));
            }
            let telemetry = fleet.run();
            let s = &telemetry.summary;
            if let Some(recorder) = &recorder {
                recorder.assert_well_formed();
                let mut registry = MetricsRegistry::new();
                for event in recorder.events() {
                    registry.absorb(&event);
                }
                let journal_mean_latency = registry
                    .histogram("phase3.fleet.detection_latency_epochs")
                    .and_then(|h| h.mean())
                    .unwrap_or(0.0);
                agg.provenance = Some(EffortProvenance {
                    seed,
                    journal_events: recorder.events().len(),
                    epochs: registry.counter("phase3.fleet.epochs"),
                    tests_run: registry.counter("phase3.fleet.tests_run"),
                    cycles_spent: registry.counter("phase3.fleet.cycles_spent"),
                    detections: registry.counter("phase3.fleet.detections"),
                    journal_mean_latency,
                    matches_telemetry: (journal_mean_latency - s.mean_detection_latency_epochs)
                        .abs()
                        < 1e-9,
                });
            }
            agg.latency += s.mean_detection_latency_epochs;
            agg.coverage += s.detection_coverage;
            agg.quarantined += s.quarantined_faulty as f64;
            agg.false_quarantines += s.false_quarantines;
            agg.cleared += s.cleared_suspects;
            agg.tests += s.total_tests;
            agg.cycles += s.total_cycles;
            agg.per_seed
                .push((seed, s.mean_detection_latency_epochs, s.detection_coverage));
        }
        let n = seeds.len() as f64;
        agg.latency /= n;
        agg.coverage /= n;
        agg.quarantined /= n;
        aggregates.push(agg);
    }

    let rows: Vec<Vec<String>> = aggregates
        .iter()
        .map(|a| {
            vec![
                a.policy.label().to_string(),
                format!("{:.2}", a.latency),
                format!("{:.0}%", a.coverage * 100.0),
                format!("{:.1}", a.quarantined),
                format!("{}", a.false_quarantines),
                format!("{}", a.cleared),
                format!("{}", a.tests),
                format!("{}", a.cycles),
            ]
        })
        .collect();
    print_table(
        &[
            "policy",
            "latency (epochs)",
            "coverage",
            "quarantined",
            "false-q",
            "cleared",
            "tests",
            "cycles",
        ],
        &rows,
    );

    let adaptive = aggregates
        .iter()
        .find(|a| a.policy == Policy::Adaptive)
        .expect("adaptive aggregated");
    let round_robin = aggregates
        .iter()
        .find(|a| a.policy == Policy::RoundRobin)
        .expect("round-robin aggregated");
    println!(
        "\nadaptive vs round-robin: {:.2} vs {:.2} epochs mean detection latency ({})",
        adaptive.latency,
        round_robin.latency,
        if adaptive.latency < round_robin.latency {
            "adaptive wins"
        } else {
            "NO improvement — investigate"
        }
    );

    for agg in &aggregates {
        let Some(p) = &agg.provenance else { continue };
        println!(
            "journal cross-check [{}, seed {}]: {} events, {} epochs, {} tests, \
             latency {:.2} epochs ({})",
            agg.policy.label(),
            p.seed,
            p.journal_events,
            p.epochs,
            p.tests_run,
            p.journal_mean_latency,
            if p.matches_telemetry {
                "matches telemetry"
            } else {
                "DIVERGES from telemetry — investigate"
            }
        );
        assert!(
            p.matches_telemetry,
            "{}: journal-derived detection latency diverges from telemetry",
            agg.policy.label()
        );
    }

    let json = Json::obj(vec![
        ("machines", Json::UInt(machines as u64)),
        ("epochs", Json::UInt(epochs)),
        ("budget_cycles", Json::UInt(budget)),
        (
            "seeds",
            Json::Arr(seeds.iter().map(|&s| Json::UInt(s)).collect()),
        ),
        (
            "policies",
            Json::Arr(
                aggregates
                    .iter()
                    .map(|a| {
                        let effort = match &a.provenance {
                            None => Json::Null,
                            Some(p) => Json::obj(vec![
                                ("seed", Json::UInt(p.seed)),
                                ("journal_events", Json::UInt(p.journal_events as u64)),
                                ("epochs", Json::UInt(p.epochs)),
                                ("tests_run", Json::UInt(p.tests_run)),
                                ("cycles_spent", Json::UInt(p.cycles_spent)),
                                ("detections", Json::UInt(p.detections)),
                                (
                                    "journal_mean_detection_latency_epochs",
                                    Json::Float(p.journal_mean_latency),
                                ),
                                ("matches_telemetry", Json::Bool(p.matches_telemetry)),
                            ]),
                        };
                        Json::obj(vec![
                            ("policy", Json::Str(a.policy.label().to_string())),
                            ("mean_detection_latency_epochs", Json::Float(a.latency)),
                            ("detection_coverage", Json::Float(a.coverage)),
                            ("quarantined_faulty_mean", Json::Float(a.quarantined)),
                            ("false_quarantines", Json::UInt(a.false_quarantines)),
                            ("cleared_suspects", Json::UInt(a.cleared)),
                            ("total_tests", Json::UInt(a.tests)),
                            ("total_cycles", Json::UInt(a.cycles)),
                            ("effort_provenance", effort),
                            (
                                "per_seed",
                                Json::Arr(
                                    a.per_seed
                                        .iter()
                                        .map(|&(seed, latency, coverage)| {
                                            Json::obj(vec![
                                                ("seed", Json::UInt(seed)),
                                                (
                                                    "mean_detection_latency_epochs",
                                                    Json::Float(latency),
                                                ),
                                                ("detection_coverage", Json::Float(coverage)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "adaptive_beats_round_robin",
            Json::Bool(adaptive.latency < round_robin.latency),
        ),
    ]);
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/fleet_detection.json", json.to_pretty())
        .expect("write fleet_detection.json");
    println!("wrote bench_results/fleet_detection.json");
}
