//! Fleet-scale detection: scheduling policies compared at equal budget.
//!
//! Builds the ALU and FPU pools once (phases 1–2), then simulates the
//! same seeded fleet under each scan policy — identical machines,
//! identical faults, identical per-epoch cycle budget — and compares
//! mean detection latency, coverage, and quarantine quality. Averaged
//! over several seeds so no policy wins on a lucky draw.
//!
//! Writes the aggregate to `bench_results/fleet_detection.json` (via
//! the fleet's canonical JSON writer, so the artifact is
//! byte-reproducible) alongside the human-readable table on stdout.
//!
//! Run: `cargo run --release -p vega-bench --bin fleet_detection`
//! (set `VEGA_QUICK=1` for a smoke-sized fleet)

use vega::{build_unit_pool, Fleet, FleetConfig, Policy, UnitPool};
use vega_bench::{lift, print_table, quick, setup_units};
use vega_fleet::Json;

struct PolicyAggregate {
    policy: Policy,
    latency: f64,
    coverage: f64,
    quarantined: f64,
    false_quarantines: u64,
    cleared: u64,
    tests: u64,
    cycles: u64,
    per_seed: Vec<(u64, f64, f64)>,
}

fn main() {
    println!("== Fleet detection: scheduling policies at equal budget ==\n");
    let (alu, fpu) = setup_units();
    let pools: Vec<UnitPool> = [&alu, &fpu]
        .into_iter()
        .map(|setup| {
            let report = lift(setup, false);
            build_unit_pool(setup.name, &setup.unit, &setup.analysis, &report)
        })
        .collect();
    for pool in &pools {
        println!(
            "pool {}: {} tests, {} fault candidates",
            pool.name,
            pool.suite.len(),
            pool.candidates.len()
        );
    }

    let (machines, epochs, seeds): (usize, u64, Vec<u64>) = if quick() {
        (16, 8, vec![1, 2])
    } else {
        (64, 32, vec![1, 2, 3])
    };
    // Equal budget for every policy: the default derivation depends only
    // on the pools and fleet size, so pin it once explicitly.
    let budget = {
        let probe = FleetConfig::new(machines, epochs, Policy::RoundRobin, 1);
        Fleet::build(pools.clone(), probe).budget_cycles()
    };
    println!(
        "\nfleet: {machines} machines, {epochs} epochs, {budget} cycles/epoch, seeds {seeds:?}\n"
    );

    let mut aggregates = Vec::new();
    for policy in Policy::ALL {
        let mut agg = PolicyAggregate {
            policy,
            latency: 0.0,
            coverage: 0.0,
            quarantined: 0.0,
            false_quarantines: 0,
            cleared: 0,
            tests: 0,
            cycles: 0,
            per_seed: Vec::new(),
        };
        for &seed in &seeds {
            let mut config = FleetConfig::new(machines, epochs, policy, seed);
            config.budget_cycles = Some(budget);
            let mut fleet = Fleet::build(pools.clone(), config);
            let telemetry = fleet.run();
            let s = &telemetry.summary;
            agg.latency += s.mean_detection_latency_epochs;
            agg.coverage += s.detection_coverage;
            agg.quarantined += s.quarantined_faulty as f64;
            agg.false_quarantines += s.false_quarantines;
            agg.cleared += s.cleared_suspects;
            agg.tests += s.total_tests;
            agg.cycles += s.total_cycles;
            agg.per_seed
                .push((seed, s.mean_detection_latency_epochs, s.detection_coverage));
        }
        let n = seeds.len() as f64;
        agg.latency /= n;
        agg.coverage /= n;
        agg.quarantined /= n;
        aggregates.push(agg);
    }

    let rows: Vec<Vec<String>> = aggregates
        .iter()
        .map(|a| {
            vec![
                a.policy.label().to_string(),
                format!("{:.2}", a.latency),
                format!("{:.0}%", a.coverage * 100.0),
                format!("{:.1}", a.quarantined),
                format!("{}", a.false_quarantines),
                format!("{}", a.cleared),
                format!("{}", a.tests),
                format!("{}", a.cycles),
            ]
        })
        .collect();
    print_table(
        &[
            "policy",
            "latency (epochs)",
            "coverage",
            "quarantined",
            "false-q",
            "cleared",
            "tests",
            "cycles",
        ],
        &rows,
    );

    let adaptive = aggregates
        .iter()
        .find(|a| a.policy == Policy::Adaptive)
        .expect("adaptive aggregated");
    let round_robin = aggregates
        .iter()
        .find(|a| a.policy == Policy::RoundRobin)
        .expect("round-robin aggregated");
    println!(
        "\nadaptive vs round-robin: {:.2} vs {:.2} epochs mean detection latency ({})",
        adaptive.latency,
        round_robin.latency,
        if adaptive.latency < round_robin.latency {
            "adaptive wins"
        } else {
            "NO improvement — investigate"
        }
    );

    let json = Json::obj(vec![
        ("machines", Json::UInt(machines as u64)),
        ("epochs", Json::UInt(epochs)),
        ("budget_cycles", Json::UInt(budget)),
        (
            "seeds",
            Json::Arr(seeds.iter().map(|&s| Json::UInt(s)).collect()),
        ),
        (
            "policies",
            Json::Arr(
                aggregates
                    .iter()
                    .map(|a| {
                        Json::obj(vec![
                            ("policy", Json::Str(a.policy.label().to_string())),
                            ("mean_detection_latency_epochs", Json::Float(a.latency)),
                            ("detection_coverage", Json::Float(a.coverage)),
                            ("quarantined_faulty_mean", Json::Float(a.quarantined)),
                            ("false_quarantines", Json::UInt(a.false_quarantines)),
                            ("cleared_suspects", Json::UInt(a.cleared)),
                            ("total_tests", Json::UInt(a.tests)),
                            ("total_cycles", Json::UInt(a.cycles)),
                            (
                                "per_seed",
                                Json::Arr(
                                    a.per_seed
                                        .iter()
                                        .map(|&(seed, latency, coverage)| {
                                            Json::obj(vec![
                                                ("seed", Json::UInt(seed)),
                                                (
                                                    "mean_detection_latency_epochs",
                                                    Json::Float(latency),
                                                ),
                                                ("detection_coverage", Json::Float(coverage)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "adaptive_beats_round_robin",
            Json::Bool(adaptive.latency < round_robin.latency),
        ),
    ]);
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/fleet_detection.json", json.to_pretty())
        .expect("write fleet_detection.json");
    println!("wrote bench_results/fleet_detection.json");
}
