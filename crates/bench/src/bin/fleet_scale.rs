//! Fleet scale-out: the SoA + sharded-epoch engine from 1k to 1M
//! machines.
//!
//! One adder pool (phases 1–2 run once) is fanned out across four fleet
//! tiers — 1k, 10k, 100k, 1M machines — under every combination of
//! scheduler (`central`, `hierarchical`) and worker-thread count
//! (1 and 8). For each run the harness records:
//!
//! * **machine-epochs/sec** — wall-clock throughput of the epoch loop;
//! * **bytes/machine** — live heap delta of `Fleet::build` measured by
//!   a counting global allocator, asserted ≤ 128 at the largest tier
//!   (the SoA contract: a machine is a row of columns, not a heap
//!   object graph);
//! * **detection latency and coverage** — the quality metrics, proving
//!   scale-out does not degrade what the fleet is for;
//! * **state digest** — asserted byte-identical across thread counts
//!   for every (tier, scheduler), unconditionally.
//!
//! The 8-vs-1-thread speedup at the 100k tier is asserted ≥ 5× only
//! when the host actually has ≥ 8 CPUs (`host_cpus` is recorded in the
//! artifact either way — a 1-CPU container produces honest ≈1× numbers,
//! not fabricated ones). A separate 64-machine comparison asserts the
//! hierarchical scheduler's mean detection latency stays within a small
//! factor of central-adaptive, so the O(regions + scanned) selection
//! never silently costs detection quality.
//!
//! Writes `bench_results/fleet_scale.json`.
//!
//! Run: `cargo run --release -p vega-bench --bin fleet_scale`
//! (pass `--quick` or set `VEGA_QUICK=1` for a CI-sized sweep, < 60 s)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use vega::{
    analyze_aging, build_unit_pool, lift_errors, prepare_unit, profile_standalone, Fleet,
    FleetConfig, ModuleKind, Policy, Scheduler, UnitPool, WorkflowConfig,
};
use vega_fleet::Json;

/// Counts live heap bytes so `bytes/machine` is a measurement, not an
/// estimate. Allocation size is tracked at alloc/dealloc/realloc; the
/// counter is read before and after `Fleet::build`.
struct CountingAllocator;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE_BYTES.fetch_add(new_size, Ordering::Relaxed);
            LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        }
        p
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn live_bytes() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// One measured fleet run.
struct RunResult {
    scheduler: Scheduler,
    threads: usize,
    wall_seconds: f64,
    machine_epochs_per_sec: f64,
    bytes_per_machine: f64,
    latency: f64,
    coverage: f64,
    digest: u64,
}

fn adder_pool() -> UnitPool {
    let netlist = vega_circuits::adder_example::build_paper_adder();
    let config = WorkflowConfig::paper_demo();
    let unit = prepare_unit(netlist, ModuleKind::PaperAdder, &config);
    let profile = profile_standalone(&unit.netlist, 300, 42).expect("profile");
    let analysis = analyze_aging(&unit, &profile, &config);
    let pairs: Vec<_> = analysis.unique_pairs.iter().copied().take(2).collect();
    let report = lift_errors(&unit, &pairs, &config);
    let pool = build_unit_pool("adder", &unit, &analysis, &report);
    assert!(!pool.suite.is_empty(), "adder must lift test cases");
    pool
}

fn measure(
    pool: &UnitPool,
    machines: usize,
    epochs: u64,
    scheduler: Scheduler,
    threads: usize,
) -> RunResult {
    let mut config = FleetConfig::new(machines, epochs, Policy::Adaptive, 1);
    config.scheduler = scheduler;
    config.threads = threads;
    let before = live_bytes();
    let mut fleet = Fleet::build(vec![pool.clone()], config);
    let after = live_bytes();
    let start = Instant::now();
    let telemetry = fleet.run();
    let wall = start.elapsed().as_secs_f64();
    let s = &telemetry.summary;
    RunResult {
        scheduler,
        threads,
        wall_seconds: wall,
        machine_epochs_per_sec: (machines as u64 * epochs) as f64 / wall.max(1e-9),
        bytes_per_machine: after.saturating_sub(before) as f64 / machines as f64,
        latency: s.mean_detection_latency_epochs,
        coverage: s.detection_coverage,
        digest: fleet.state_digest(),
    }
}

/// 64-machine quality gate: hierarchical scheduling (8 regions of 8)
/// vs the central adaptive baseline, averaged over seeds.
fn quality_gate(pool: &UnitPool, seeds: &[u64]) -> (f64, f64) {
    let mut latency = [0.0f64; 2];
    for (slot, scheduler) in [Scheduler::Central, Scheduler::Hierarchical]
        .into_iter()
        .enumerate()
    {
        for &seed in seeds {
            let mut config = FleetConfig::new(64, 32, Policy::Adaptive, seed);
            config.scheduler = scheduler;
            config.regions = Some(8);
            let telemetry = Fleet::build(vec![pool.clone()], config).run();
            latency[slot] += telemetry.summary.mean_detection_latency_epochs;
        }
        latency[slot] /= seeds.len() as f64;
    }
    (latency[0], latency[1])
}

fn main() {
    let quick = vega_bench::quick() || std::env::args().any(|a| a == "--quick");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== Fleet scale-out: SoA + sharded epochs, 1k → 1M machines ==");
    println!("host cpus: {host_cpus}, quick: {quick}\n");

    let pool = adder_pool();
    println!(
        "pool adder: {} tests, {} fault candidates\n",
        pool.suite.len(),
        pool.candidates.len()
    );

    // Epochs shrink as machines grow so every tier finishes in sane
    // wall-clock; machine-epochs/sec normalizes the comparison.
    let tiers: &[(usize, u64)] = if quick {
        &[(1_000, 4), (10_000, 2)]
    } else {
        &[(1_000, 16), (10_000, 8), (100_000, 4), (1_000_000, 2)]
    };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 8] };

    let mut tier_json = Vec::new();
    let mut speedups = Vec::new();
    for &(machines, epochs) in tiers {
        println!("-- tier: {machines} machines, {epochs} epochs --");
        let mut runs = Vec::new();
        for scheduler in Scheduler::ALL {
            for &threads in thread_counts {
                let r = measure(&pool, machines, epochs, scheduler, threads);
                println!(
                    "  {:>12} x{} threads: {:>12.0} machine-epochs/s, {:>6.1} B/machine, \
                     latency {:.2} epochs, coverage {:.0}%, {:.2}s",
                    scheduler.label(),
                    r.threads,
                    r.machine_epochs_per_sec,
                    r.bytes_per_machine,
                    r.latency,
                    r.coverage * 100.0,
                    r.wall_seconds
                );
                runs.push(r);
            }
            // Determinism is unconditional: every thread count must land
            // on the same digest, latency, and coverage per scheduler.
            let of_sched: Vec<&RunResult> =
                runs.iter().filter(|r| r.scheduler == scheduler).collect();
            for r in &of_sched[1..] {
                assert_eq!(
                    r.digest,
                    of_sched[0].digest,
                    "{machines} machines / {}: digest diverges between {} and {} threads",
                    scheduler.label(),
                    of_sched[0].threads,
                    r.threads
                );
            }
        }
        // The SoA contract, measured where fixed pool overhead has
        // amortized away: the largest tiers must cost ≤ 128 B/machine.
        if machines >= 100_000 || (quick && machines >= 10_000) {
            for r in &runs {
                assert!(
                    r.bytes_per_machine <= 128.0,
                    "{machines} machines / {} x{}: {:.1} bytes/machine exceeds the 128-byte \
                     SoA budget",
                    r.scheduler.label(),
                    r.threads,
                    r.bytes_per_machine
                );
            }
        }
        let max_threads = *thread_counts.last().expect("thread counts");
        for scheduler in Scheduler::ALL {
            let at = |t: usize| {
                runs.iter()
                    .find(|r| r.scheduler == scheduler && r.threads == t)
                    .expect("run recorded")
            };
            let speedup = at(max_threads).machine_epochs_per_sec / at(1).machine_epochs_per_sec;
            if machines == 100_000 {
                speedups.push((scheduler, speedup));
            }
            println!(
                "  {:>12}: {max_threads}-thread speedup {speedup:.2}x",
                scheduler.label()
            );
        }
        tier_json.push(Json::obj(vec![
            ("machines", Json::UInt(machines as u64)),
            ("epochs", Json::UInt(epochs)),
            (
                "runs",
                Json::Arr(
                    runs.iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("scheduler", Json::Str(r.scheduler.label().to_string())),
                                ("threads", Json::UInt(r.threads as u64)),
                                ("wall_seconds", Json::Float(r.wall_seconds)),
                                (
                                    "machine_epochs_per_sec",
                                    Json::Float(r.machine_epochs_per_sec),
                                ),
                                ("bytes_per_machine", Json::Float(r.bytes_per_machine)),
                                ("mean_detection_latency_epochs", Json::Float(r.latency)),
                                ("detection_coverage", Json::Float(r.coverage)),
                                ("state_digest", Json::Str(format!("{:016x}", r.digest))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
        println!();
    }

    // The ≥5× scale-out claim is only assertable on a host that can
    // actually run 8 workers; elsewhere the honest numbers are recorded
    // and the assertion is skipped (and flagged in the artifact).
    let speedup_asserted = host_cpus >= 8 && !quick;
    for &(scheduler, speedup) in &speedups {
        if speedup_asserted {
            assert!(
                speedup >= 5.0,
                "100k tier / {}: 8-thread speedup {speedup:.2}x < 5x on a {host_cpus}-cpu host",
                scheduler.label()
            );
        } else {
            println!(
                "note: 100k-tier speedup assertion skipped ({}): host has {host_cpus} cpus{}",
                scheduler.label(),
                if quick { ", quick mode" } else { "" }
            );
        }
    }

    let gate_seeds: &[u64] = if quick { &[1, 2] } else { &[1, 2, 3] };
    let (central_latency, hierarchical_latency) = quality_gate(&pool, gate_seeds);
    let latency_factor = hierarchical_latency / central_latency.max(1e-9);
    println!(
        "\n64-machine quality gate: hierarchical {hierarchical_latency:.2} vs central \
         {central_latency:.2} epochs mean detection latency ({latency_factor:.2}x)"
    );
    assert!(
        latency_factor <= 1.5,
        "hierarchical scheduling costs {latency_factor:.2}x central-adaptive detection \
         latency at 64 machines — the quality gate allows at most 1.5x"
    );

    let json = Json::obj(vec![
        ("host_cpus", Json::UInt(host_cpus as u64)),
        ("quick", Json::Bool(quick)),
        ("tiers", Json::Arr(tier_json)),
        (
            "speedup_at_100k",
            Json::Arr(
                speedups
                    .iter()
                    .map(|&(scheduler, speedup)| {
                        Json::obj(vec![
                            ("scheduler", Json::Str(scheduler.label().to_string())),
                            ("speedup_vs_1_thread", Json::Float(speedup)),
                            ("asserted_ge_5x", Json::Bool(speedup_asserted)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "quality_gate_64_machines",
            Json::obj(vec![
                (
                    "central_mean_detection_latency_epochs",
                    Json::Float(central_latency),
                ),
                (
                    "hierarchical_mean_detection_latency_epochs",
                    Json::Float(hierarchical_latency),
                ),
                ("latency_factor", Json::Float(latency_factor)),
                ("max_allowed_factor", Json::Float(1.5)),
            ]),
        ),
        ("digests_thread_invariant", Json::Bool(true)),
    ]);
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/fleet_scale.json", json.to_pretty())
        .expect("write fleet_scale.json");
    println!("wrote bench_results/fleet_scale.json");
}
