//! Observability overhead: what does recording cost the pipeline?
//!
//! Two workloads — the adder lift pipeline (phases 1–2) and a
//! 10k-machine fleet simulation (phase 3) — are each run under four
//! observability configurations:
//!
//! * **off** — `Obs::null()`, the zero-cost baseline;
//! * **summary** — JSONL journal at `Level::Summary`;
//! * **detail** — JSONL journal at `Level::Detail` (per-pair spans);
//! * **summary+live** — the `--listen` configuration: a summary journal
//!   teed with in-process [`LiveRecorder`] folding.
//!
//! Each configuration is repeated and the **median** wall time kept, so
//! one slow repeat (page cache, scheduler) cannot skew a mode. The
//! headline claim — live folding adds **< 5 %** wall over the summary
//! journal alone — is asserted in full mode; in `--quick`/`VEGA_QUICK=1`
//! runs the workloads are too short for a stable ratio, so the numbers
//! are recorded but the assertion is skipped (and flagged in the
//! artifact). The bench also re-checks the equivalence contract on real
//! work: the live registry must equal the registry folded from the
//! journal of the same run, byte-for-byte in canonical JSON.
//!
//! Writes `bench_results/obs_overhead.json`.
//!
//! Run: `cargo run --release -p vega-bench --bin obs_overhead`

use std::path::{Path, PathBuf};
use std::time::Instant;

use vega::obs::{Journal, JsonlRecorder, Level, LiveMetrics, LiveRecorder, Obs, TeeRecorder};
use vega::*;
use vega_fleet::Json;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Off,
    Summary,
    Detail,
    SummaryLive,
}

impl Mode {
    const ALL: [Mode; 4] = [Mode::Off, Mode::Summary, Mode::Detail, Mode::SummaryLive];

    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Summary => "summary",
            Mode::Detail => "detail",
            Mode::SummaryLive => "summary+live",
        }
    }
}

/// The observability sink a mode implies. The journal path keeps each
/// repeat's file separate so creation cost is paid identically.
fn build_obs(mode: Mode, journal: &Path) -> (Obs, Option<LiveMetrics>) {
    match mode {
        Mode::Off => (Obs::null(), None),
        Mode::Summary => (
            Obs::new(
                Level::Summary,
                JsonlRecorder::create(journal).expect("create journal"),
            ),
            None,
        ),
        Mode::Detail => (
            Obs::new(
                Level::Detail,
                JsonlRecorder::create(journal).expect("create journal"),
            ),
            None,
        ),
        Mode::SummaryLive => {
            let live = LiveRecorder::new();
            let metrics = live.metrics();
            (
                Obs::new(
                    Level::Summary,
                    TeeRecorder::new(
                        JsonlRecorder::create(journal).expect("create journal"),
                        live,
                    ),
                ),
                Some(metrics),
            )
        }
    }
}

struct ModeResult {
    mode: Mode,
    median_wall_seconds: f64,
    walls: Vec<f64>,
}

struct WorkloadResult {
    name: &'static str,
    repeats: usize,
    modes: Vec<ModeResult>,
    live_overhead_vs_summary: f64,
    live_equals_journal_fold: bool,
}

fn median(walls: &[f64]) -> f64 {
    let mut sorted = walls.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite wall time"));
    sorted[sorted.len() / 2]
}

/// Run `work` under every mode, `repeats` times each, and verify the
/// live-equals-journal contract on the `summary+live` runs.
///
/// Repeats are interleaved round-robin across the modes (off, summary,
/// detail, summary+live, off, summary, ...) so slow machine drift —
/// thermal state, page cache, a background daemon — lands on every mode
/// evenly instead of biasing whichever mode ran last.
fn bench_workload(
    name: &'static str,
    dir: &Path,
    repeats: usize,
    mut work: impl FnMut(&Obs),
) -> WorkloadResult {
    // Warm caches and the branch predictor outside the measurement.
    work(&Obs::null());
    let mut walls: Vec<Vec<f64>> = vec![Vec::new(); Mode::ALL.len()];
    let mut live_equals_journal_fold = true;
    for repeat in 0..repeats {
        for (slot, mode) in Mode::ALL.into_iter().enumerate() {
            let journal = dir.join(format!("{name}-{}-{repeat}.jsonl", mode.label()));
            let (obs, live) = build_obs(mode, &journal);
            let start = Instant::now();
            work(&obs);
            obs.flush();
            walls[slot].push(start.elapsed().as_secs_f64());
            drop(obs); // close the journal file before reading it back
            if let Some(live) = live {
                let loaded = Journal::load(&journal).expect("journal parses");
                let folded = vega::obs::MetricsRegistry::from_journal(&loaded);
                if live.to_canonical_json() != folded.to_canonical_json() {
                    live_equals_journal_fold = false;
                }
            }
            let _ = std::fs::remove_file(&journal);
        }
    }
    let modes: Vec<ModeResult> = Mode::ALL
        .into_iter()
        .zip(walls)
        .map(|(mode, walls)| ModeResult {
            mode,
            median_wall_seconds: median(&walls),
            walls,
        })
        .collect();
    let of = |mode: Mode| {
        modes
            .iter()
            .find(|r| r.mode == mode)
            .expect("mode measured")
            .median_wall_seconds
    };
    let summary = of(Mode::Summary);
    let result = WorkloadResult {
        name,
        repeats,
        live_overhead_vs_summary: (of(Mode::SummaryLive) - summary) / summary.max(1e-9),
        modes,
        live_equals_journal_fold,
    };
    println!("-- workload: {name} ({repeats} repeats) --");
    for r in &result.modes {
        println!(
            "  {:>13}: median {:8.4}s  (runs: {})",
            r.mode.label(),
            r.median_wall_seconds,
            r.walls
                .iter()
                .map(|w| format!("{w:.4}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    println!(
        "  summary+live vs summary: {:+.2}% | live == journal fold: {}\n",
        result.live_overhead_vs_summary * 100.0,
        result.live_equals_journal_fold
    );
    result
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vega-obs-overhead-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn main() {
    let quick = vega_bench::quick() || std::env::args().any(|a| a == "--quick");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== Observability overhead: off / summary / detail / summary+live ==");
    println!("host cpus: {host_cpus}, quick: {quick}\n");
    let dir = temp_dir();
    let repeats = if quick { 3 } else { 9 };

    // Workload 1: phases 1–2 on the paper adder — profile, aging STA,
    // error lifting — iterated enough times per measurement that the
    // summary-mode wall is well above timer noise (the adder is tiny).
    let (profile_cycles, pairs, iters) = if quick {
        (2_000, 2, 1)
    } else {
        (60_000, 4, 50)
    };
    let lift = bench_workload("adder_lift", &dir, repeats, |obs| {
        for _ in 0..iters {
            let mut config = WorkflowConfig::paper_demo();
            config.obs = obs.clone();
            let unit = prepare_unit(
                vega_circuits::adder_example::build_paper_adder(),
                ModuleKind::PaperAdder,
                &config,
            );
            let profile = profile_standalone_obs(
                &unit.netlist,
                profile_cycles,
                42,
                config.threads,
                &config.obs,
            )
            .expect("profiling enabled");
            let analysis = analyze_aging(&unit, &profile, &config);
            let pairs: Vec<_> = analysis.unique_pairs.iter().copied().take(pairs).collect();
            let report = lift_errors(&unit, &pairs, &config);
            assert!(!report.pairs.is_empty());
        }
    });

    // Workload 2: a 10k-machine fleet run — the phase-3 hot loop, where
    // per-epoch telemetry and detection-latency histograms are recorded.
    let pool = {
        let config = WorkflowConfig::paper_demo();
        let unit = prepare_unit(
            vega_circuits::adder_example::build_paper_adder(),
            ModuleKind::PaperAdder,
            &config,
        );
        let profile = profile_standalone(&unit.netlist, 300, 42).expect("profile");
        let analysis = analyze_aging(&unit, &profile, &config);
        let pairs: Vec<_> = analysis.unique_pairs.iter().copied().take(2).collect();
        let report = lift_errors(&unit, &pairs, &config);
        build_unit_pool("adder", &unit, &analysis, &report)
    };
    assert!(!pool.suite.is_empty(), "adder must lift test cases");
    let (machines, epochs) = if quick { (2_000, 2) } else { (10_000, 8) };
    let fleet = bench_workload("fleet_10k", &dir, repeats, |obs| {
        let config = FleetConfig::new(machines, epochs, Policy::Adaptive, 1);
        let mut fleet = Fleet::build(vec![pool.clone()], config);
        fleet.set_obs(obs.clone());
        fleet.run();
    });

    let results = [lift, fleet];
    for r in &results {
        assert!(
            r.live_equals_journal_fold,
            "{}: live registry diverged from the journal fold",
            r.name
        );
    }
    // The < 5 % claim is asserted only in full mode: quick workloads
    // finish in milliseconds, where timer noise swamps the ratio. The
    // quick numbers are still recorded honestly in the artifact.
    let overhead_asserted = !quick;
    for r in &results {
        if overhead_asserted {
            assert!(
                r.live_overhead_vs_summary < 0.05,
                "{}: live folding costs {:+.2}% over the summary journal (budget < 5%)",
                r.name,
                r.live_overhead_vs_summary * 100.0
            );
        } else {
            println!(
                "note: {}: < 5% assertion skipped in quick mode ({:+.2}% measured)",
                r.name,
                r.live_overhead_vs_summary * 100.0
            );
        }
    }

    let json = Json::obj(vec![
        ("host_cpus", Json::UInt(host_cpus as u64)),
        ("quick", Json::Bool(quick)),
        (
            "workloads",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.to_string())),
                            ("repeats", Json::UInt(r.repeats as u64)),
                            (
                                "modes",
                                Json::Arr(
                                    r.modes
                                        .iter()
                                        .map(|m| {
                                            Json::obj(vec![
                                                ("mode", Json::Str(m.mode.label().to_string())),
                                                (
                                                    "median_wall_seconds",
                                                    Json::Float(m.median_wall_seconds),
                                                ),
                                                (
                                                    "walls",
                                                    Json::Arr(
                                                        m.walls
                                                            .iter()
                                                            .map(|&w| Json::Float(w))
                                                            .collect(),
                                                    ),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            (
                                "live_overhead_vs_summary",
                                Json::Float(r.live_overhead_vs_summary),
                            ),
                            (
                                "live_equals_journal_fold",
                                Json::Bool(r.live_equals_journal_fold),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("live_overhead_budget", Json::Float(0.05)),
        ("overhead_asserted", Json::Bool(overhead_asserted)),
    ]);
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/obs_overhead.json", json.to_pretty())
        .expect("write obs_overhead.json");
    println!("wrote bench_results/obs_overhead.json");
    let _ = std::fs::remove_dir_all(&dir);
}
