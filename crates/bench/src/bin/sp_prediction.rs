//! SP prediction: ML-guided Phase-1 at fleet scale.
//!
//! Builds the ALU and FPU pools once (phases 1–2), trains per-net SP
//! predictors on the healthy netlists, then simulates the same seeded
//! fleet under each Phase-1 mode — exact per-machine profiling,
//! prediction only, and prediction with guard-band fallback — at an
//! identical scan budget. Compares Phase-1 simulation cycles, detection
//! coverage, and mean detection latency, and asserts the paper's claim:
//! the fallback mode cuts Phase-1 cycles several-fold with detection
//! outcomes unchanged.
//!
//! Writes the aggregate to `bench_results/sp_prediction.json` (via the
//! fleet's canonical JSON writer, so the artifact is byte-reproducible)
//! alongside the human-readable tables on stdout.
//!
//! Run: `cargo run --release -p vega-bench --bin sp_prediction`
//! (set `VEGA_QUICK=1` for a smoke-sized fleet)

use vega::obs::{Level, MetricsRegistry, TestRecorder};
use vega::{
    attach_sp_predictor, build_unit_pool, extract_features, Fleet, FleetConfig, Obs, Policy,
    SpMode, TrainOptions, TrainerKind, UnitPool,
};
use vega_bench::{lift, print_table, quick, setup_units, workflow_config};
use vega_fleet::Json;
use vega_predict::train;

/// Cycles of uniform-random probe stimulus feeding the workload
/// features (matches the `vega predict` CLI default).
const PROBE_CYCLES: usize = 256;

/// Holdout prediction error for one (unit, trainer) pair.
struct TrainerError {
    unit: &'static str,
    trainer: TrainerKind,
    rows: usize,
    n_train: usize,
    n_holdout: usize,
    mae_holdout: f64,
    rmse_holdout: f64,
    max_abs_err_holdout: f64,
    spearman_holdout: f64,
}

/// One Phase-1 mode aggregated over the seeds.
struct ModeAggregate {
    mode: SpMode,
    latency: f64,
    coverage: f64,
    false_quarantines: u64,
    phase1_cycles: u64,
    phase1_exact: u64,
    phase1_predicted: u64,
    phase1_escalations: u64,
    /// (seed, latency, coverage, phase1_cycles) per seed.
    per_seed: Vec<(u64, f64, f64, u64)>,
    byte_identical: bool,
    provenance: Option<PredictProvenance>,
}

/// Phase-1 effort provenance for one mode, derived from the
/// observability journal of its first-seed run and cross-checked
/// against the telemetry summary.
struct PredictProvenance {
    seed: u64,
    journal_events: usize,
    exact_profiles: u64,
    predicted: u64,
    escalations: u64,
    cycles: u64,
    matches_telemetry: bool,
}

fn main() {
    println!("== SP prediction: ML-guided Phase-1 at fleet scale ==\n");
    let (alu, fpu) = setup_units();
    let config = workflow_config();

    // Per-unit prediction error for both trainers, on the same
    // probe-augmented features and exact-profile targets the fleet
    // predictors are trained on.
    let mut errors: Vec<TrainerError> = Vec::new();
    for setup in [&alu, &fpu] {
        let probe =
            vega_sim::profile_sharded(&setup.unit.netlist, PROBE_CYCLES, 0xA11CE, config.threads);
        let features = extract_features(
            &setup.unit.netlist,
            Some(&probe),
            config.threads,
            &Obs::null(),
        )
        .expect("feature extraction");
        let targets = features.targets_from(&setup.analysis.profile);
        for trainer in [TrainerKind::Ridge, TrainerKind::Boosted] {
            let options = TrainOptions {
                trainer,
                ..TrainOptions::default()
            };
            let trained =
                train(&features, &targets, &options, &Obs::null()).expect("training succeeds");
            let e = &trained.eval;
            errors.push(TrainerError {
                unit: setup.name,
                trainer,
                rows: features.rows.len(),
                n_train: e.n_train,
                n_holdout: e.n_holdout,
                mae_holdout: e.mae_holdout,
                rmse_holdout: e.rmse_holdout,
                max_abs_err_holdout: e.max_abs_err_holdout,
                spearman_holdout: e.spearman_holdout,
            });
        }
    }
    let rows: Vec<Vec<String>> = errors
        .iter()
        .map(|e| {
            vec![
                e.unit.to_string(),
                e.trainer.label().to_string(),
                format!("{}", e.rows),
                format!("{}/{}", e.n_train, e.n_holdout),
                format!("{:.4}", e.mae_holdout),
                format!("{:.4}", e.rmse_holdout),
                format!("{:.4}", e.max_abs_err_holdout),
                format!("{:.3}", e.spearman_holdout),
            ]
        })
        .collect();
    print_table(
        &[
            "unit",
            "trainer",
            "nets",
            "train/holdout",
            "MAE",
            "RMSE",
            "max-err",
            "spearman",
        ],
        &rows,
    );
    // Quick mode profiles a single workload, so its targets are noisier.
    let spearman_floor = if quick() { 0.2 } else { 0.5 };
    for e in &errors {
        assert!(
            e.spearman_holdout > spearman_floor,
            "{} {}: holdout rank correlation too weak for scan ranking",
            e.unit,
            e.trainer.label()
        );
    }

    // Pools with attached predictors (ridge, the production default).
    let pools: Vec<UnitPool> = [&alu, &fpu]
        .into_iter()
        .map(|setup| {
            let report = lift(setup, false);
            let mut pool = build_unit_pool(setup.name, &setup.unit, &setup.analysis, &report);
            let eval = attach_sp_predictor(
                &mut pool,
                &setup.unit,
                &setup.analysis,
                &config,
                PROBE_CYCLES,
                &TrainOptions::default(),
            )
            .expect("predictor attaches");
            println!(
                "\npool {}: {} tests, {} candidates, {} risk paths, holdout MAE {:.4}",
                pool.name,
                pool.suite.len(),
                pool.candidates.len(),
                pool.risk.len(),
                eval.mae_holdout
            );
            pool
        })
        .collect();

    let (machines, epochs, seeds): (usize, u64, Vec<u64>) = if quick() {
        (16, 8, vec![1, 2])
    } else {
        (64, 32, vec![1, 2, 3])
    };
    // Equal scan budget for every mode, pinned once from the pools.
    let budget = {
        let probe = FleetConfig::new(machines, epochs, Policy::Adaptive, 1);
        Fleet::build(pools.clone(), probe).budget_cycles()
    };
    let defaults = FleetConfig::new(machines, epochs, Policy::Adaptive, 1);
    let (guard_band_ns, sp_profile_cycles) =
        (defaults.sp_guard_band_ns, defaults.sp_profile_cycles);
    println!(
        "\nfleet: {machines} machines, {epochs} epochs, {budget} cycles/epoch, seeds {seeds:?}, \
         guard band {guard_band_ns} ns, {sp_profile_cycles} exact-profile cycles\n"
    );

    let modes = [SpMode::Exact, SpMode::Predicted, SpMode::PredictedFallback];
    let mut aggregates = Vec::new();
    for mode in modes {
        let make_config = |seed: u64| {
            let mut config = FleetConfig::new(machines, epochs, Policy::Adaptive, seed);
            config.budget_cycles = Some(budget);
            config.sp_mode = Some(mode);
            config
        };
        let mut agg = ModeAggregate {
            mode,
            latency: 0.0,
            coverage: 0.0,
            false_quarantines: 0,
            phase1_cycles: 0,
            phase1_exact: 0,
            phase1_predicted: 0,
            phase1_escalations: 0,
            per_seed: Vec::new(),
            byte_identical: false,
            provenance: None,
        };
        for &seed in &seeds {
            let mut fleet = Fleet::build(pools.clone(), make_config(seed));
            // Record the first seed's run through the observability
            // layer so the artifact carries journal-derived Phase-1
            // effort provenance alongside the telemetry aggregates.
            let recorder = (seed == seeds[0]).then(TestRecorder::new);
            if let Some(recorder) = &recorder {
                fleet.set_obs(Obs::new(Level::Summary, recorder.clone()));
            }
            let telemetry = fleet.run();
            let s = &telemetry.summary;
            if let Some(recorder) = &recorder {
                recorder.assert_well_formed();
                let mut registry = MetricsRegistry::new();
                for event in recorder.events() {
                    registry.absorb(&event);
                }
                let exact_profiles = registry.counter("phase1.predict.exact_profiles");
                let predicted = registry.counter("phase1.predict.predicted");
                let escalations = registry.counter("phase1.predict.escalations");
                let cycles = registry.counter("phase1.predict.cycles");
                agg.provenance = Some(PredictProvenance {
                    seed,
                    journal_events: recorder.events().len(),
                    exact_profiles,
                    predicted,
                    escalations,
                    cycles,
                    matches_telemetry: exact_profiles == s.phase1_exact_profiles
                        && predicted == s.phase1_predicted
                        && escalations == s.phase1_escalations
                        && cycles == s.phase1_cycles,
                });
                // Same seed, same mode: the canonical artifact must be
                // byte-identical on a repeated run.
                let again = Fleet::build(pools.clone(), make_config(seed)).run();
                agg.byte_identical = again.to_json_string() == telemetry.to_json_string();
            }
            agg.latency += s.mean_detection_latency_epochs;
            agg.coverage += s.detection_coverage;
            agg.false_quarantines += s.false_quarantines;
            agg.phase1_cycles += s.phase1_cycles;
            agg.phase1_exact += s.phase1_exact_profiles;
            agg.phase1_predicted += s.phase1_predicted;
            agg.phase1_escalations += s.phase1_escalations;
            agg.per_seed.push((
                seed,
                s.mean_detection_latency_epochs,
                s.detection_coverage,
                s.phase1_cycles,
            ));
        }
        let n = seeds.len() as f64;
        agg.latency /= n;
        agg.coverage /= n;
        aggregates.push(agg);
    }

    let rows: Vec<Vec<String>> = aggregates
        .iter()
        .map(|a| {
            vec![
                a.mode.label().to_string(),
                format!("{:.2}", a.latency),
                format!("{:.0}%", a.coverage * 100.0),
                format!("{}", a.false_quarantines),
                format!("{}", a.phase1_cycles),
                format!("{}", a.phase1_exact),
                format!("{}", a.phase1_predicted),
                format!("{}", a.phase1_escalations),
            ]
        })
        .collect();
    print_table(
        &[
            "sp mode",
            "latency (epochs)",
            "coverage",
            "false-q",
            "phase1 cycles",
            "exact",
            "predicted",
            "escalated",
        ],
        &rows,
    );

    let exact = &aggregates[0];
    let fallback = &aggregates[2];

    // Detection outcomes must be unchanged: every mode matches the
    // exact-profiling coverage on every seed, with zero false
    // quarantines anywhere.
    let mut coverage_unchanged = true;
    for agg in &aggregates {
        assert_eq!(
            agg.false_quarantines,
            0,
            "{}: false quarantines",
            agg.mode.label()
        );
        for (&(seed, _, coverage, _), &(_, _, exact_coverage, _)) in
            agg.per_seed.iter().zip(&exact.per_seed)
        {
            coverage_unchanged &= coverage == exact_coverage;
            assert_eq!(
                coverage,
                exact_coverage,
                "{} seed {seed}: coverage diverged from exact profiling",
                agg.mode.label()
            );
        }
        assert!(
            agg.byte_identical,
            "{}: same-seed rerun not byte-identical",
            agg.mode.label()
        );
        let p = agg.provenance.as_ref().expect("first seed recorded");
        println!(
            "journal cross-check [{}, seed {}]: {} events, {} exact, {} predicted, \
             {} escalated, {} cycles ({})",
            agg.mode.label(),
            p.seed,
            p.journal_events,
            p.exact_profiles,
            p.predicted,
            p.escalations,
            p.cycles,
            if p.matches_telemetry {
                "matches telemetry"
            } else {
                "DIVERGES from telemetry — investigate"
            }
        );
        assert!(
            p.matches_telemetry,
            "{}: journal-derived phase1 counters diverge from telemetry",
            agg.mode.label()
        );
    }

    let cycles_saved = exact.phase1_cycles as f64 / (fallback.phase1_cycles.max(1)) as f64;
    let latency_regression = if exact.latency > 0.0 {
        (fallback.latency - exact.latency) / exact.latency
    } else {
        0.0
    };
    println!(
        "\npredicted-fallback vs exact: {:.1}x fewer Phase-1 cycles ({} -> {}), \
         latency {:+.1}%, coverage {}",
        cycles_saved,
        exact.phase1_cycles,
        fallback.phase1_cycles,
        latency_regression * 100.0,
        if coverage_unchanged {
            "unchanged"
        } else {
            "CHANGED — investigate"
        }
    );
    // The headline claims hold at evaluation scale; the smoke fleet is
    // too small for relative-latency thresholds (one reordered epoch on
    // 16 machines is a double-digit percentage).
    if !quick() {
        assert!(
            cycles_saved >= 5.0,
            "guard-band fallback saved only {cycles_saved:.1}x Phase-1 cycles (need >= 5x)"
        );
        assert!(
            latency_regression < 0.10,
            "fallback mean detection latency regressed {:.1}% vs exact",
            latency_regression * 100.0
        );
    }
    assert!(
        cycles_saved > 1.0,
        "guard-band fallback must cut Phase-1 cycles"
    );

    let json = Json::obj(vec![
        ("machines", Json::UInt(machines as u64)),
        ("epochs", Json::UInt(epochs)),
        ("budget_cycles", Json::UInt(budget)),
        (
            "seeds",
            Json::Arr(seeds.iter().map(|&s| Json::UInt(s)).collect()),
        ),
        ("guard_band_ns", Json::Float(guard_band_ns)),
        ("sp_profile_cycles", Json::UInt(sp_profile_cycles as u64)),
        ("probe_cycles", Json::UInt(PROBE_CYCLES as u64)),
        (
            "prediction_error",
            Json::Arr(
                errors
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("unit", Json::Str(e.unit.to_string())),
                            ("trainer", Json::Str(e.trainer.label().to_string())),
                            ("nets", Json::UInt(e.rows as u64)),
                            ("n_train", Json::UInt(e.n_train as u64)),
                            ("n_holdout", Json::UInt(e.n_holdout as u64)),
                            ("mae_holdout", Json::Float(e.mae_holdout)),
                            ("rmse_holdout", Json::Float(e.rmse_holdout)),
                            ("max_abs_err_holdout", Json::Float(e.max_abs_err_holdout)),
                            ("spearman_holdout", Json::Float(e.spearman_holdout)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "modes",
            Json::Arr(
                aggregates
                    .iter()
                    .map(|a| {
                        let effort = match &a.provenance {
                            None => Json::Null,
                            Some(p) => Json::obj(vec![
                                ("seed", Json::UInt(p.seed)),
                                ("journal_events", Json::UInt(p.journal_events as u64)),
                                ("exact_profiles", Json::UInt(p.exact_profiles)),
                                ("predicted", Json::UInt(p.predicted)),
                                ("escalations", Json::UInt(p.escalations)),
                                ("cycles", Json::UInt(p.cycles)),
                                ("matches_telemetry", Json::Bool(p.matches_telemetry)),
                            ]),
                        };
                        Json::obj(vec![
                            ("mode", Json::Str(a.mode.label().to_string())),
                            ("mean_detection_latency_epochs", Json::Float(a.latency)),
                            ("detection_coverage", Json::Float(a.coverage)),
                            ("false_quarantines", Json::UInt(a.false_quarantines)),
                            ("phase1_cycles", Json::UInt(a.phase1_cycles)),
                            ("phase1_exact_profiles", Json::UInt(a.phase1_exact)),
                            ("phase1_predicted", Json::UInt(a.phase1_predicted)),
                            ("phase1_escalations", Json::UInt(a.phase1_escalations)),
                            ("byte_identical_rerun", Json::Bool(a.byte_identical)),
                            ("effort_provenance", effort),
                            (
                                "per_seed",
                                Json::Arr(
                                    a.per_seed
                                        .iter()
                                        .map(|&(seed, latency, coverage, cycles)| {
                                            Json::obj(vec![
                                                ("seed", Json::UInt(seed)),
                                                (
                                                    "mean_detection_latency_epochs",
                                                    Json::Float(latency),
                                                ),
                                                ("detection_coverage", Json::Float(coverage)),
                                                ("phase1_cycles", Json::UInt(cycles)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("phase1_cycles_saved_factor", Json::Float(cycles_saved)),
        (
            "latency_regression_vs_exact",
            Json::Float(latency_regression),
        ),
        ("coverage_unchanged", Json::Bool(coverage_unchanged)),
    ]);
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/sp_prediction.json", json.to_pretty())
        .expect("write sp_prediction.json");
    println!("wrote bench_results/sp_prediction.json");
}
