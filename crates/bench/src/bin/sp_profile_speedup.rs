//! SP-profiling throughput: scalar vs the bit-parallel 64-lane backend,
//! and thread-sharded scaling.
//!
//! Measures, for the ALU and FPU circuits:
//!
//! * the scalar baseline — `Simulator` + `RandomStimulus`, one stimulus
//!   pattern per settle pass, profiling enabled;
//! * the 64-lane backend at one thread — `profile_sharded(.., threads=1)`,
//!   64 patterns per settle pass via word-level gate evaluation and
//!   popcount SP counters;
//! * the same run sharded over 1/2/4 threads, asserting the profiles are
//!   byte-identical across thread counts (the determinism contract).
//!
//! Rates are lane-cycles per second, so the scalar and wide numbers are
//! directly comparable. Thread scaling is wall-clock and therefore bounded
//! by the cores actually available; `host_cpus` is recorded so a run on a
//! starved machine (e.g. a 1-core CI container) is legible as such.
//!
//! Writes `bench_results/sp_profile_speedup.json` (via the fleet's
//! canonical JSON writer) alongside a human-readable table on stdout.
//!
//! Run: `cargo run --release -p vega-bench --bin sp_profile_speedup`
//! (set `VEGA_QUICK=1` for smoke sizes; `--out <path>` to redirect the
//! artifact)

use std::time::Instant;

use vega_bench::{print_table, quick};
use vega_circuits::{alu::build_alu, fpu::build_fpu};
use vega_fleet::Json;
use vega_netlist::Netlist;
use vega_sim::{profile_sharded, RandomStimulus, Simulator, SpProfile};

const SEED: u64 = 42;
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Measurement {
    /// Lane-cycles actually profiled.
    cycles: u64,
    seconds: f64,
}

impl Measurement {
    fn rate(&self) -> f64 {
        self.cycles as f64 / self.seconds.max(1e-12)
    }
}

fn bench_scalar(netlist: &Netlist, cycles: usize) -> (Measurement, SpProfile) {
    let start = Instant::now();
    let mut sim = Simulator::with_seed(netlist, SEED);
    sim.enable_profiling();
    let mut stimulus = RandomStimulus::new(netlist, SEED);
    stimulus.drive(&mut sim, cycles);
    let profile = sim.profile().expect("profiling enabled");
    let seconds = start.elapsed().as_secs_f64();
    (
        Measurement {
            cycles: profile.cycles,
            seconds,
        },
        profile,
    )
}

fn bench_wide(netlist: &Netlist, cycles: usize, threads: usize) -> (Measurement, SpProfile) {
    let start = Instant::now();
    let profile = profile_sharded(netlist, cycles, SEED, threads);
    let seconds = start.elapsed().as_secs_f64();
    (
        Measurement {
            cycles: profile.cycles,
            seconds,
        },
        profile,
    )
}

fn bench_circuit(
    name: &str,
    netlist: &Netlist,
    scalar_cycles: usize,
    wide_cycles: usize,
    host_cpus: usize,
    rows: &mut Vec<Vec<String>>,
) -> Json {
    let (scalar, _) = bench_scalar(netlist, scalar_cycles);
    let mut wide_runs = Vec::new();
    let mut reference: Option<SpProfile> = None;
    let mut deterministic = true;
    for &threads in &THREAD_COUNTS {
        let (m, profile) = bench_wide(netlist, wide_cycles, threads);
        match &reference {
            None => reference = Some(profile),
            Some(r) => deterministic &= *r == profile,
        }
        wide_runs.push((threads, m));
    }
    assert!(
        deterministic,
        "{name}: profiles must be identical across thread counts"
    );
    let wide1 = &wide_runs[0].1;
    let speedup = wide1.rate() / scalar.rate();

    rows.push(vec![
        name.to_string(),
        format!("{:.0}", scalar.rate()),
        format!("{:.0}", wide1.rate()),
        format!("{speedup:.1}x"),
        wide_runs
            .iter()
            .map(|(t, m)| format!("{t}t:{:.2}s", m.seconds))
            .collect::<Vec<_>>()
            .join(" "),
    ]);

    let threads_json = wide_runs
        .iter()
        .map(|(threads, m)| {
            // Wall-clock scaling cannot exceed the cores the host grants
            // us; normalize against that bound so a starved host reads as
            // full efficiency rather than a scaling failure.
            let usable = (*threads).min(host_cpus) as f64;
            Json::obj(vec![
                ("threads", Json::UInt(*threads as u64)),
                ("seconds", Json::Float(m.seconds)),
                ("lane_cycles_per_sec", Json::Float(m.rate())),
                ("speedup_vs_1_thread", Json::Float(m.rate() / wide1.rate())),
                (
                    "efficiency_vs_available_cores",
                    Json::Float(m.rate() / wide1.rate() / usable),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("circuit", Json::Str(name.to_string())),
        ("cells", Json::UInt(netlist.cell_count() as u64)),
        (
            "scalar",
            Json::obj(vec![
                ("cycles", Json::UInt(scalar.cycles)),
                ("seconds", Json::Float(scalar.seconds)),
                ("lane_cycles_per_sec", Json::Float(scalar.rate())),
            ]),
        ),
        (
            "wide_1_thread",
            Json::obj(vec![
                ("cycles", Json::UInt(wide1.cycles)),
                ("seconds", Json::Float(wide1.seconds)),
                ("lane_cycles_per_sec", Json::Float(wide1.rate())),
            ]),
        ),
        ("speedup_wide_vs_scalar", Json::Float(speedup)),
        ("threads", Json::Arr(threads_json)),
        ("deterministic_across_threads", Json::Bool(deterministic)),
    ])
}

fn main() {
    let mut out_path = String::from("bench_results/sp_profile_speedup.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument `{other}` (supported: --out <path>)");
                std::process::exit(2);
            }
        }
    }

    println!("== SP profiling: scalar vs bit-parallel 64-lane backend ==\n");
    let (scalar_cycles, wide_cycles) = if quick() {
        (4_000, 256_000)
    } else {
        (60_000, 3_840_000)
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "scalar workload: {scalar_cycles} cycles; wide workload: {wide_cycles} lane-cycles; \
         host cpus: {host_cpus}\n"
    );

    let mut rows = Vec::new();
    let circuits = [("ALU", build_alu()), ("FPU", build_fpu())];
    let circuit_json: Vec<Json> = circuits
        .iter()
        .map(|(name, netlist)| {
            bench_circuit(
                name,
                netlist,
                scalar_cycles,
                wide_cycles,
                host_cpus,
                &mut rows,
            )
        })
        .collect();

    print_table(
        &[
            "circuit",
            "scalar lc/s",
            "wide lc/s (1t)",
            "speedup",
            "sharded wall",
        ],
        &rows,
    );
    println!("\n(lc/s = lane-cycles per second; thread scaling is wall-clock");
    println!("and bounded by `host_cpus` — see the JSON artifact for details)");

    let artifact = Json::obj(vec![
        ("benchmark", Json::Str("sp_profile_speedup".to_string())),
        ("quick", Json::Bool(quick())),
        ("seed", Json::UInt(SEED)),
        ("host_cpus", Json::UInt(host_cpus as u64)),
        ("circuits", Json::Arr(circuit_json)),
    ]);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, artifact.to_pretty()).expect("write artifact");
    println!("\nwrote {out_path}");
}
