//! Table 1: the signal-probability profile of the worked example's
//! netlist (paper §3.2.1) — the per-cell SP values the aging analysis
//! consumes, in the paper's `$1`–`$10` layout.
//!
//! Run: `cargo run --release -p vega-bench --bin table1_sp_profile`

use vega_bench::print_table;
use vega_circuits::adder_example::build_paper_adder;
use vega_sim::Simulator;

fn main() {
    println!("== Table 1: SP profile of the example adder ==\n");
    let netlist = build_paper_adder();
    let mut sim = Simulator::new(&netlist);
    sim.enable_profiling();
    // A representative workload: per-bit biased random inputs so the
    // registered SPs land near the paper's table (0.85 / 0.27 / 0.54 /
    // 0.38 for $1..$4).
    let mut state = 0x2024u64;
    let mut chance = |per_mille: u64| -> bool {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % 1000 < per_mille
    };
    for _ in 0..20_000 {
        sim.set_input_bit("a", 0, chance(850));
        sim.set_input_bit("a", 1, chance(540));
        sim.set_input_bit("b", 0, chance(380));
        sim.set_input_bit("b", 1, chance(270));
        sim.step();
    }
    let profile = sim.profile().unwrap();

    // Paper naming: dff1 is $1 ... dff10 is $10.
    let paper_name = |cell: &str| -> String {
        let digits: String = cell.chars().filter(|c| c.is_ascii_digit()).collect();
        let kind = if cell.starts_with("dff") {
            "DFF"
        } else if cell.starts_with("and") {
            "AND"
        } else {
            "XOR"
        };
        format!("{kind}${digits}")
    };
    let mut rows = Vec::new();
    for cell in netlist.cells() {
        let entry = &profile.cells[&cell.name];
        rows.push(vec![
            paper_name(&cell.name),
            format!("{:.2}", entry.sp),
            format!("{:.2}", entry.toggle_rate),
        ]);
    }
    print_table(&["signal", "SP", "toggle rate"], &rows);
    println!("\n(cf. paper Table 1: SPs spread 0.13–0.85; the most extreme cell");
    println!("is the one under the highest BTI pressure)");
    let (worst, sp) = profile.most_extreme()[0];
    println!("most extreme here: {worst} at SP {sp:.2}");
}
