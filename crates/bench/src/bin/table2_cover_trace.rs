//! Table 2: the cover trace for the worked example's instrumented
//! failure (paper §3.3.3) — the module-level input sequence that makes
//! `o[1]` and its shadow `o_s[1]` diverge, printed cycle by cycle.
//!
//! Run: `cargo run --release -p vega-bench --bin table2_cover_trace`

use vega_bench::print_table;
use vega_circuits::adder_example::build_paper_adder;
use vega_formal::{check_cover, BmcConfig, CoverOutcome, Property};
use vega_lift::{instrument_with_shadow, AgingPath, FaultActivation, FaultValue};
use vega_sim::Simulator;
use vega_sta::ViolationKind;

fn main() {
    println!("== Table 2: cover trace for the $4 -> $10 setup failure (C = 1) ==\n");
    let netlist = build_paper_adder();
    let path = AgingPath {
        launch: netlist.cell_by_name("dff4").unwrap().id,
        capture: netlist.cell_by_name("dff10").unwrap().id,
        violation: ViolationKind::Setup,
    };
    let instrumented =
        instrument_with_shadow(&netlist, path, FaultValue::One, FaultActivation::OnChange);
    println!(
        "instrumented netlist: {} cells ({} shadow/instrumentation cells added)",
        instrumented.netlist.cell_count(),
        instrumented.netlist.cell_count() - netlist.cell_count()
    );
    println!(
        "cover property: any of {:?} differs from its shadow\n",
        instrumented.observable_labels
    );

    let property = Property::any_differ(instrumented.observable_pairs.clone());
    let outcome = check_cover(&instrumented.netlist, &property, &[], &BmcConfig::default());
    let CoverOutcome::Trace(trace) = outcome else {
        println!("unexpected outcome: {outcome:?}");
        return;
    };

    // Replay and capture the signals of the paper's table.
    let mut sim = Simulator::new(&instrumented.netlist);
    let mut rows = Vec::new();
    let mut header = vec!["cycle".to_string()];
    header.extend(["a", "b", "o[1]", "o_s[1]"].map(String::from));
    for (t, cycle) in trace.inputs.iter().enumerate() {
        for (port, value) in cycle {
            sim.set_input(port, *value);
        }
        sim.settle_inputs();
        rows.push(vec![
            format!("{}", t + 1), // the paper's table is 1-based
            format!("'b{:02b}", cycle["a"]),
            format!("'b{:02b}", cycle["b"]),
            format!("'b{}", sim.output("o") >> 1 & 1),
            format!("'b{}", sim.output("o_s") >> 1 & 1),
        ]);
        sim.step();
    }
    print_table(
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows,
    );
    println!("\n(cf. paper Table 2: o[1] and o_s[1] mismatch at cycle 3)");
    println!(
        "mismatch observed at cycle {} of {}",
        trace.fire_cycle + 1,
        trace.len()
    );
}
