//! Table 3: STA results with aging-aware timing libraries — worst
//! negative slack and number of violated paths (setup/hold) for the ALU
//! and FPU after 10 years of aging.
//!
//! Run: `cargo run --release -p vega-bench --bin table3_sta`

use vega_bench::{print_table, setup_units};

fn main() {
    println!("== Table 3: STA result with aging-aware timing libraries ==\n");
    let (alu, fpu) = setup_units();

    let mut rows = Vec::new();
    for setup in [&alu, &fpu] {
        let r = &setup.analysis.report;
        let fmt = |wns: f64, count: u64| {
            if count == 0 {
                "- / 0".to_string()
            } else if count >= 10_000_000 {
                // The multiplier's reconvergent fan-out makes the exact
                // path count combinatorial; the counter stops at 10M.
                format!("{:.0}ps / >10M", wns * 1000.0)
            } else {
                format!("{:.0}ps / {}", wns * 1000.0, count)
            }
        };
        rows.push(vec![
            setup.name.to_string(),
            format!("{:.1} MHz", setup.unit.frequency_mhz()),
            fmt(r.wns_setup_ns, r.setup_path_count),
            fmt(r.wns_hold_ns, r.hold_path_count),
            format!("{}", setup.analysis.unique_pairs.len()),
        ]);
    }
    print_table(
        &[
            "unit",
            "rated",
            "setup WNS / paths",
            "hold WNS / paths",
            "unique pairs",
        ],
        &rows,
    );

    println!("\nshape checks (cf. paper Table 3: ALU -76ps/11 setup, -/0 hold;");
    println!("FPU -157ps/1363 setup, -1ps/3 hold; 6 and 41 unique pairs):");
    println!("  - both units meet timing unaged and violate setup after aging");
    println!("  - the FPU has orders of magnitude more violating setup paths");
    println!("  - only the FPU (gated clocks) develops hold violations");
    println!(
        "  - FPU aged clock skew: {:.1} ps",
        fpu.analysis.report.max_clock_skew_ns() * 1000.0
    );
}
