//! Table 4: result of test case construction — percentages of unique
//! endpoint pairs for which a test case was constructed (S), the failing
//! path was proven harmless (UR), the formal tool gave up (FF), or the
//! waveform could not be converted (FC); with and without the mitigation
//! for initial-value dependency.
//!
//! A second table reports the incremental formal engine's effort behind
//! each row — conflicts, decisions, propagations, and encoded clauses
//! summed over every pair, attempt, and budget-escalation round — so a
//! construction-rate regression can be told apart from a solver-cost one.
//! Each run is also recorded through the observability layer, and the
//! journal-derived `phase2.bmc.*` counters are cross-checked against the
//! report's own effort totals: two independent tallies of the same work.
//!
//! Run: `cargo run --release -p vega-bench --bin table4_construction`

use vega::obs::{Level, MetricsRegistry, TestRecorder};
use vega::Obs;
use vega_bench::{lift_obs, print_table, setup_units};

fn main() {
    println!("== Table 4: result of test case construction ==\n");
    let (alu, fpu) = setup_units();

    let mut rows = Vec::new();
    let mut effort_rows = Vec::new();
    let mut cross_checked = 0usize;
    for setup in [&alu, &fpu] {
        for mitigation in [false, true] {
            let recorder = TestRecorder::new();
            let obs = Obs::new(Level::Summary, recorder.clone());
            let report = lift_obs(setup, mitigation, &obs);
            let (s, ur, ff, fc) = report.table4_row();
            rows.push(vec![
                setup.name.to_string(),
                if mitigation { "w/" } else { "w/o" }.to_string(),
                format!("{s:.1}"),
                format!("{ur:.1}"),
                format!("{ff:.1}"),
                format!("{fc:.1}"),
                format!("{}", report.pairs.len()),
            ]);
            let (conflicts, decisions, propagations, encoded) = report.solver_effort();
            effort_rows.push(vec![
                setup.name.to_string(),
                if mitigation { "w/" } else { "w/o" }.to_string(),
                format!("{conflicts}"),
                format!("{decisions}"),
                format!("{propagations}"),
                format!("{encoded}"),
            ]);
            // The journal counts solver effort independently of the
            // report (at emission time inside the cover session, not by
            // summing persisted rounds); any divergence is a bug.
            let mut registry = MetricsRegistry::new();
            for event in recorder.events() {
                registry.absorb(&event);
            }
            let journal = (
                registry.counter("phase2.bmc.conflicts"),
                registry.counter("phase2.bmc.decisions"),
                registry.counter("phase2.bmc.propagations"),
                registry.counter("phase2.bmc.encoded_clauses"),
            );
            assert_eq!(
                journal,
                (conflicts, decisions, propagations, encoded),
                "{} (mitigation {mitigation}): journal effort diverges from the report",
                setup.name
            );
            cross_checked += 1;
        }
    }
    print_table(
        &["unit", "mitigation", "S %", "UR %", "FF %", "FC %", "pairs"],
        &rows,
    );

    println!("\n== Solver effort behind each row (incremental engine) ==\n");
    print_table(
        &[
            "unit",
            "mitigation",
            "conflicts",
            "decisions",
            "propagations",
            "encoded clauses",
        ],
        &effort_rows,
    );
    println!(
        "\njournal cross-check: {cross_checked}/{} rows' phase2.bmc.* counters match the report",
        effort_rows.len()
    );

    println!("\nshape checks (cf. paper Table 4: ALU 66.7/33.3/0/0 w/o, 33.3/66.7/0/0 w/;");
    println!("FPU 51.2/43.9/4.9/0 w/o, 40.2/43.9/8.5/7.3 w/):");
    println!("  - most pairs either lift to a test case or are proven harmless");
    println!("  - FF/FC, when present, appear only for the FPU (bigger cones,");
    println!("    flag-only observability)");
    println!("  - mitigation trades per-attempt success rate for a larger,");
    println!("    more robust suite (up to 4 attempts per pair instead of 2)");
}
