//! Table 5: the quantity of generated test cases and the CPU cycles one
//! full suite execution takes, with and without the mitigation.
//!
//! Run: `cargo run --release -p vega-bench --bin table5_cycles`

use vega_bench::{lift, print_table, setup_units};

fn main() {
    println!("== Table 5: test case quantity and execution cycles ==\n");
    let (alu, fpu) = setup_units();

    let mut rows = Vec::new();
    for setup in [&alu, &fpu] {
        let without = lift(setup, false);
        let with = lift(setup, true);
        rows.push(vec![
            setup.name.to_string(),
            format!("{}", without.suite().len()),
            format!("{}", without.suite_cpu_cycles()),
            format!("{}", with.suite().len()),
            format!("{}", with.suite_cpu_cycles()),
        ]);
    }
    print_table(
        &[
            "unit",
            "tests (w/o)",
            "cycles (w/o)",
            "tests (w/)",
            "cycles (w/)",
        ],
        &rows,
    );

    println!("\nshape checks (cf. paper Table 5: ALU 8 tests / 124 cycles,");
    println!("FPU 42 / 685 w/o mitigation; 8 / 134 and 66 / 1202 w/):");
    println!("  - whole suites execute in hundreds to a couple thousand cycles,");
    println!("    so per-second (or faster) scheduling is practical");
    println!("  - mitigation grows the suite (more activation variants)");
}
