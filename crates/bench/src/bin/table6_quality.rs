//! Table 6: quality of the generated test cases, measured by their
//! ability to detect the failing netlists — overall detection rate
//! ("Det."), detections by earlier tests ("B"), detections by later
//! tests after the dedicated test missed ("L"), and CPU stalls ("S");
//! per failure mode (C = 0, 1, random), with and without the mitigation.
//!
//! Run: `cargo run --release -p vega-bench --bin table6_quality`

use vega_bench::{evaluate_suite, lift, print_table, setup_units};
use vega_riscv::FailureMode;

fn main() {
    println!("== Table 6: quality of the generated test cases ==\n");
    let (alu, fpu) = setup_units();

    let mut rows = Vec::new();
    for setup in [&alu, &fpu] {
        for mitigation in [false, true] {
            let report = lift(setup, mitigation);
            let suite = report.suite();
            for mode in FailureMode::ALL {
                let stats = evaluate_suite(setup, &report, &suite, mode);
                rows.push(vec![
                    setup.name.to_string(),
                    if mitigation { "w/" } else { "w/o" }.to_string(),
                    mode.label().to_string(),
                    format!("{:.1}", stats.pct(stats.detected)),
                    format!("{:.1}", stats.pct(stats.before)),
                    format!("{:.1}", stats.pct(stats.later)),
                    format!("{:.1}", stats.pct(stats.stalled)),
                    format!("{}", stats.total),
                ]);
            }
        }
    }
    print_table(
        &[
            "unit", "mitig", "FM", "Det. %", "B %", "L %", "S %", "netlists",
        ],
        &rows,
    );

    println!("\nshape checks (cf. paper Table 6: ALU 100% detection in every");
    println!("mode; FPU 95.4% w/o mitigation rising to 100% w/ mitigation for");
    println!("constant C; many failures caught by earlier tests (B); stalls");
    println!("appear for handshake faults):");
    println!("  - detection is high across modes and rises with the mitigation");
    println!("  - a large fraction of failures is caught before the dedicated");
    println!("    test runs, because suites share operand patterns");
}
