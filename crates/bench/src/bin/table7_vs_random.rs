//! Table 7: effectiveness of Vega-generated vs randomly generated test
//! cases, measured by the fraction of failing netlists detected. Random
//! suites match Vega's style and quantity (one random instruction with
//! random operands per test case); 10 random experiments are averaged
//! per configuration (paper §5.2.3).
//!
//! Run: `cargo run --release -p vega-bench --bin table7_vs_random`

use vega_bench::{evaluate_suite, lift, print_table, random_suite, setup_units};
use vega_riscv::FailureMode;

fn main() {
    println!("== Table 7: Vega vs random test cases ==\n");
    let (alu, fpu) = setup_units();
    let experiments = 10;

    let mut rows = Vec::new();
    for setup in [&alu, &fpu] {
        let report = lift(setup, false);
        let vega_suite = report.suite();
        let report_m = lift(setup, true);
        let vega_suite_m = report_m.suite();
        for mode in FailureMode::ALL {
            let vega_stats = evaluate_suite(setup, &report, &vega_suite, mode);
            let vega_stats_m = evaluate_suite(setup, &report_m, &vega_suite_m, mode);

            let mut random_total = 0.0;
            for experiment in 0..experiments {
                let suite = random_suite(setup.unit.module, vega_suite.len(), 1000 + experiment);
                let stats = evaluate_suite(setup, &report, &suite, mode);
                random_total += stats.pct(stats.detected);
            }
            rows.push(vec![
                setup.name.to_string(),
                mode.label().to_string(),
                format!("{:.1}%", vega_stats.pct(vega_stats.detected)),
                format!("{:.1}%", vega_stats_m.pct(vega_stats_m.detected)),
                format!("{:.1}%", random_total / f64::from(experiments as u32)),
            ]);
        }
    }
    print_table(
        &[
            "unit",
            "FM",
            "Vega (w/o mitig)",
            "Vega (w/ mitig)",
            "Random (avg of 10)",
        ],
        &rows,
    );

    println!("\nshape checks (cf. paper Table 7: Vega 100% almost everywhere;");
    println!("random 35-50% for ALU and C=0 FPU, but up to ~97% for FPU with");
    println!("C=1/random, where faults corrupt visibly regardless of operands):");
    println!("  - Vega dominates where faults need targeted activation");
    println!("  - random tests close the gap only when the fault is easy to hit");
    println!("  - only Vega additionally *proves* some paths harmless (Table 4)");
}
