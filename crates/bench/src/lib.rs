//! Shared setup for the experiment binaries that regenerate every table
//! and figure of the Vega paper's evaluation (§5).
//!
//! Each table/figure has a dedicated binary (see `src/bin/`); this
//! library holds the common pipeline: build the units, sign them off,
//! profile them under the representative workload, run the aging-aware
//! STA, and lift the unique pairs. Everything is seeded and
//! deterministic.
//!
//! Set `VEGA_QUICK=1` to shrink workloads and pair counts for smoke runs.

use vega::*;
use vega_circuits::{alu::build_alu, fpu::build_fpu};
use vega_integrate::mini_ir::Program;
use vega_integrate::workloads;

/// Whether quick mode is enabled (`VEGA_QUICK=1`).
pub fn quick() -> bool {
    std::env::var("VEGA_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// One prepared-and-analyzed unit.
pub struct UnitSetup {
    /// Display name ("ALU"/"FPU").
    pub name: &'static str,
    /// The signed-off unit.
    pub unit: PreparedUnit,
    /// The workload-driven SP profile.
    pub profile: SpProfile,
    /// Phase 1 results.
    pub analysis: AgingAnalysis,
}

/// The representative workloads used for SP profiling. The paper uses
/// embench's `minver` (§4); a couple of integer kernels are added so the
/// FPU experiences realistic idle stretches.
pub fn profiling_workloads() -> Vec<Program> {
    if quick() {
        vec![workloads::minver()]
    } else {
        vec![workloads::minver(), workloads::crc32(), workloads::huff()]
    }
}

/// Build, sign off, profile, and analyze both units.
pub fn setup_units() -> (UnitSetup, UnitSetup) {
    let mut config = workflow_config();
    config.max_paths = 10_000; // stored paths; total counts are exact

    let alu_unit = prepare_unit(build_alu(), ModuleKind::Alu, &config);
    let fpu_unit = prepare_unit(build_fpu(), ModuleKind::Fpu, &config);

    let programs = profiling_workloads();
    let (alu_profile, fpu_profile) =
        profile_units(&alu_unit.netlist, &fpu_unit.netlist, &programs, 2024)
            .expect("profiling enabled");

    let alu_analysis = analyze_aging(&alu_unit, &alu_profile, &config);
    let fpu_analysis = analyze_aging(&fpu_unit, &fpu_profile, &config);

    (
        UnitSetup {
            name: "ALU",
            unit: alu_unit,
            profile: alu_profile,
            analysis: alu_analysis,
        },
        UnitSetup {
            name: "FPU",
            unit: fpu_unit,
            profile: fpu_profile,
            analysis: fpu_analysis,
        },
    )
}

/// The evaluation's workflow configuration (28 nm, 10 years, pessimistic
/// corner).
pub fn workflow_config() -> WorkflowConfig {
    WorkflowConfig::cmos28_10y()
}

/// The unique pairs a lifting experiment works on, optionally capped in
/// quick mode.
pub fn pairs_for_lifting(setup: &UnitSetup) -> Vec<AgingPath> {
    let cap = if quick() { 4 } else { usize::MAX };
    setup
        .analysis
        .unique_pairs
        .iter()
        .copied()
        .take(cap)
        .collect()
}

/// Run Error Lifting over the unit's unique pairs.
pub fn lift(setup: &UnitSetup, mitigation: bool) -> LiftReport {
    lift_obs(setup, mitigation, &Obs::null())
}

/// Like [`lift`], but with the run recorded to `obs`: `phase2.*` spans,
/// per-outcome tallies, and the incremental solver's effort counters —
/// the provenance the effort tables cross-check against each report.
pub fn lift_obs(setup: &UnitSetup, mitigation: bool, obs: &Obs) -> LiftReport {
    let mut config = workflow_config();
    config.mitigation = mitigation;
    config.obs = obs.clone();
    let pairs = pairs_for_lifting(setup);
    lift_errors(&setup.unit, &pairs, &config)
}

/// Render a simple aligned table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

use std::collections::BTreeMap;
use vega_circuits::golden::{alu_golden, fpu_golden, AluOp, FpuOp};
use vega_lift::{Check, TestCase};

/// Generate a random test suite "in the style and quantity of Vega's
/// trace-generated test cases": each case verifies the functional
/// correctness of a single random instruction with random inputs
/// (paper §5.2.3's baseline).
pub fn random_suite(module: ModuleKind, count: usize, seed: u64) -> Vec<TestCase> {
    let mut state = seed | 1;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..count)
        .map(|i| {
            let mut stimulus = BTreeMap::new();
            let mut checks = Vec::new();
            let latency = module.latency();
            match module {
                ModuleKind::Alu => {
                    let op = AluOp::ALL[(rand() % 10) as usize];
                    let a = rand() as u32;
                    let b = rand() as u32;
                    stimulus.insert("op".to_string(), op.encoding());
                    stimulus.insert("a".to_string(), u64::from(a));
                    stimulus.insert("b".to_string(), u64::from(b));
                    checks.push(Check::PortAt {
                        cycle: latency,
                        port: "r".into(),
                        expected: u64::from(alu_golden(op, a, b)),
                    });
                }
                ModuleKind::Fpu => {
                    let op = FpuOp::ALL[(rand() % 8) as usize];
                    let a = rand() as u32;
                    let b = rand() as u32;
                    stimulus.insert("op".to_string(), op.encoding());
                    stimulus.insert("valid".to_string(), 1);
                    stimulus.insert("tag".to_string(), 0);
                    stimulus.insert("a".to_string(), u64::from(a));
                    stimulus.insert("b".to_string(), u64::from(b));
                    let golden = fpu_golden(op, a, b);
                    checks.push(Check::PortAt {
                        cycle: latency,
                        port: "r".into(),
                        expected: u64::from(golden.bits),
                    });
                    checks.push(Check::PortAt {
                        cycle: latency,
                        port: "out_valid".into(),
                        expected: 1,
                    });
                    checks.push(Check::StickyOr {
                        cycles: vec![latency],
                        port: "flags".into(),
                        expected: u64::from(golden.flags.to_bits()),
                    });
                }
                ModuleKind::PaperAdder => {
                    let a = rand() % 4;
                    let b = rand() % 4;
                    stimulus.insert("a".to_string(), a);
                    stimulus.insert("b".to_string(), b);
                    checks.push(Check::PortAt {
                        cycle: latency,
                        port: "o".into(),
                        expected: (a + b) % 4,
                    });
                }
            }
            TestCase {
                name: format!("random_{i}"),
                target: "random".into(),
                stimulus: vec![stimulus],
                checks,
                instructions: Vec::new(),
                cpu_cycles: 8,
                provenance: Provenance::Fuzzed,
            }
        })
        .collect()
}

/// The outcome classification of one failing netlist against a suite —
/// the columns of the paper's Table 6.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectionStats {
    /// Failing netlists evaluated.
    pub total: usize,
    /// Detected by any test ("Det.").
    pub detected: usize,
    /// Detected by a test scheduled *before* the pair's own test ("B").
    pub before: usize,
    /// Missed by its own test but caught by a later one ("L").
    pub later: usize,
    /// Detection manifested as a CPU stall ("S").
    pub stalled: usize,
}

impl DetectionStats {
    /// Percentage helper.
    pub fn pct(&self, n: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 / self.total as f64 * 100.0
        }
    }
}

/// Run `suite` (in order, one simulator, no resets) against the failing
/// netlist for each pair in `report` that lifted successfully, with the
/// fault value per `mode`. Classifies per the paper's Table 6.
pub fn evaluate_suite(
    setup: &UnitSetup,
    report: &LiftReport,
    suite: &[TestCase],
    mode: vega_riscv::FailureMode,
) -> DetectionStats {
    use vega_lift::TestOutcome;
    let mut stats = DetectionStats::default();
    for pair in &report.pairs {
        if pair.class() != PairClass::Success {
            continue;
        }
        let value = match mode {
            vega_riscv::FailureMode::Const0 => FaultValue::Zero,
            vega_riscv::FailureMode::Const1 => FaultValue::One,
            vega_riscv::FailureMode::Random => FaultValue::Random,
        };
        let failing = build_failing_netlist(
            &setup.unit.netlist,
            pair.path,
            value,
            FaultActivation::OnChange,
        );
        let mut sim = vega_sim::Simulator::with_seed(&failing, 0xEE);
        let outcomes = run_suite(&mut sim, setup.unit.module, suite);

        stats.total += 1;
        let first_detection = outcomes.iter().position(|o| *o != TestOutcome::Pass);
        let own_indices: Vec<usize> = suite
            .iter()
            .enumerate()
            .filter(|(_, t)| t.target == pair.label)
            .map(|(i, _)| i)
            .collect();
        let Some(found) = first_detection else {
            continue;
        };
        stats.detected += 1;
        if matches!(outcomes[found], TestOutcome::Stall { .. }) {
            stats.stalled += 1;
        }
        if let (Some(&first_own), Some(&last_own)) = (own_indices.first(), own_indices.last()) {
            if found < first_own {
                stats.before += 1;
            } else if found > last_own {
                stats.later += 1;
            }
        }
    }
    stats
}
