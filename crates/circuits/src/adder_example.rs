//! The Vega paper's worked example: a pipelined 2-bit adder.
//!
//! Reproduces Listing 1 / Figure 3: inputs `a` and `b` are sampled into
//! `dff1`–`dff4` in the first cycle; their sum appears on `o` (via `dff9`
//! and `dff10`) in the second. Cell names match the paper's `$1`–`$10`
//! numbering (`dff1` = `$1`, `xor5` = `$5`, …).

use vega_netlist::{CellKind, Netlist, NetlistBuilder};

/// Build the paper's 2-bit pipelined adder.
///
/// # Example
///
/// ```
/// use vega_circuits::adder_example::build_paper_adder;
/// use vega_sim::Simulator;
///
/// let netlist = build_paper_adder();
/// let mut sim = Simulator::new(&netlist);
/// sim.set_input("a", 2);
/// sim.set_input("b", 3);
/// sim.step();
/// sim.step();
/// assert_eq!(sim.output("o"), (2 + 3) % 4);
/// ```
pub fn build_paper_adder() -> Netlist {
    let mut b = NetlistBuilder::new("adder");
    let clk = b.clock("clk");
    let a = b.input("a", 2);
    let bb = b.input("b", 2);
    let aq0 = b.dff("dff1", a[0], clk);
    let aq1 = b.dff("dff2", a[1], clk);
    let bq0 = b.dff("dff3", bb[0], clk);
    let bq1 = b.dff("dff4", bb[1], clk);
    let s0 = b.cell(CellKind::Xor2, "xor5", &[aq0, bq0]);
    let c0 = b.cell(CellKind::And2, "and6", &[aq0, bq0]);
    let x7 = b.cell(CellKind::Xor2, "xor7", &[aq1, bq1]);
    let s1 = b.cell(CellKind::Xor2, "xor8", &[x7, c0]);
    let o0 = b.dff("dff9", s0, clk);
    let o1 = b.dff("dff10", s1, clk);
    b.output("o", &[o0, o1]);
    b.finish().expect("the paper adder is a valid netlist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_sim::Simulator;

    #[test]
    fn matches_paper_structure() {
        let n = build_paper_adder();
        assert_eq!(n.cell_count(), 10);
        assert_eq!(n.dffs().count(), 6);
        for name in [
            "dff1", "dff4", "xor5", "and6", "xor7", "xor8", "dff9", "dff10",
        ] {
            assert!(n.cell_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn adds_mod_4_exhaustively() {
        let n = build_paper_adder();
        for a in 0..4u64 {
            for b in 0..4u64 {
                let mut sim = Simulator::new(&n);
                sim.set_input("a", a);
                sim.set_input("b", b);
                sim.step();
                sim.step();
                assert_eq!(sim.output("o"), (a + b) % 4, "{a}+{b}");
            }
        }
    }
}
