//! Gate-level RV32I ALU generator.
//!
//! A two-stage pipelined ALU modeled on the integer ALU of a small
//! in-order RISC-V core (the paper's CV32E40P target): cycle 1 samples
//! `op`/`a`/`b` into input registers, cycle 2 presents the registered
//! result on `r`. The clock reaches the two register banks through a
//! small buffer tree, so clock-network cells exist for the aging analysis
//! to profile. The ALU is never clock-gated (it is used by almost every
//! instruction), which is why the paper finds no hold violations in it.
//!
//! Port map:
//!
//! | port | dir | width | meaning |
//! |------|-----|-------|---------|
//! | `clk`| in  | 1     | clock |
//! | `op` | in  | 4     | [`AluOp`] encoding (0–9) |
//! | `a`  | in  | 32    | operand A |
//! | `b`  | in  | 32    | operand B (shift amount in low 5 bits) |
//! | `r`  | out | 32    | result, valid 2 cycles after the operands |

use vega_netlist::{CellKind, NetId, Netlist, NetlistBuilder};

use crate::golden::AluOp;
use crate::words::Words;

/// The number of pipeline cycles from applying inputs to reading `r`.
pub const ALU_LATENCY: usize = 2;

/// Valid `op` port encodings, for `assume property`-style constraints.
pub fn alu_valid_ops() -> Vec<u64> {
    AluOp::ALL.iter().map(|op| op.encoding()).collect()
}

/// Build the ALU netlist.
pub fn build_alu() -> Netlist {
    let mut b = NetlistBuilder::new("rv32_alu");
    let clk = b.clock("clk");
    let op_in = b.input("op", 4);
    let a_in = b.input("a", 32);
    let b_in = b.input("b", 32);

    // Clock tree: root buffer feeding one leaf buffer per register bank.
    let ckroot = b.clock_buf("ckroot", clk);
    let ck_in = b.clock_buf("ckbuf_in", ckroot);
    let ck_out = b.clock_buf("ckbuf_out", ckroot);

    let mut w = Words::new(&mut b, "alu");

    // Stage 1: input registers.
    let op_q = w.register("op_q", &op_in, ck_in);
    let a_q = w.register("a_q", &a_in, ck_in);
    let b_q = w.register("b_q", &b_in, ck_in);

    // Decode to one-hot.
    let is_op: Vec<NetId> = AluOp::ALL
        .iter()
        .map(|op| {
            let pattern = w.const_word(op.encoding(), 4);
            w.equal(&op_q, &pattern)
        })
        .collect();
    let one_hot = |op: AluOp| is_op[op as usize];

    // Shared adder/subtractor: a + (b ^ sub) + sub.
    let sub_like = {
        let s1 = w.gate(
            CellKind::Or2,
            "subl1",
            &[one_hot(AluOp::Sub), one_hot(AluOp::Slt)],
        );
        w.gate(CellKind::Or2, "subl2", &[s1, one_hot(AluOp::Sltu)])
    };
    let b_eff = w.xor_bit(&b_q, sub_like);
    let (sum, carry_out) = w.adder(&a_q, &b_eff, sub_like);

    // Comparisons from the shared subtraction.
    let sa = a_q[31];
    let sb = b_q[31];
    let diff_sign = sum[31];
    let signs_differ = w.gate(CellKind::Xor2, "cmp_x", &[sa, sb]);
    let lt_signed = w.gate(CellKind::Mux2, "cmp_s", &[diff_sign, sa, signs_differ]);
    let lt_unsigned = w.gate(CellKind::Not, "cmp_u", &[carry_out]);
    let zero31 = w.const_word(0, 31);
    let mut slt_word = vec![lt_signed];
    slt_word.extend(&zero31);
    let mut sltu_word = vec![lt_unsigned];
    sltu_word.extend(&zero31);

    // Shifters: one right barrel shifter; SLL reverses in and out.
    let shamt: Vec<NetId> = b_q[..5].to_vec();
    let sra_fill = w.gate(CellKind::And2, "sra_f", &[one_hot(AluOp::Sra), a_q[31]]);
    let right = w.shift_right(&a_q, &shamt, sra_fill);
    let a_rev: Vec<NetId> = a_q.iter().rev().copied().collect();
    let zero_fill = w.zero();
    let left_rev = w.shift_right(&a_rev, &shamt, zero_fill);
    let left: Vec<NetId> = left_rev.iter().rev().copied().collect();

    // Bitwise ops.
    let and_w = w.and(&a_q, &b_q);
    let or_w = w.or(&a_q, &b_q);
    let xor_w = w.xor(&a_q, &b_q);

    // Result select: start from the adder output (ADD and SUB both read
    // it) and overlay the others.
    let mut result = sum;
    for (op, word) in [
        (AluOp::Sll, &left),
        (AluOp::Slt, &slt_word),
        (AluOp::Sltu, &sltu_word),
        (AluOp::Xor, &xor_w),
        (AluOp::Srl, &right),
        (AluOp::Sra, &right),
        (AluOp::Or, &or_w),
        (AluOp::And, &and_w),
    ] {
        result = w.mux(one_hot(op), &result, word);
    }

    // Stage 2: output registers.
    let r_q = w.register("r_q", &result, ck_out);
    b.output("r", &r_q);
    b.finish().expect("generated ALU must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::alu_golden;
    use vega_sim::Simulator;

    fn run_alu(sim: &mut Simulator<'_>, op: AluOp, a: u32, b: u32) -> u32 {
        sim.set_input("op", op.encoding());
        sim.set_input("a", a as u64);
        sim.set_input("b", b as u64);
        for _ in 0..ALU_LATENCY {
            sim.step();
        }
        sim.output("r") as u32
    }

    #[test]
    fn matches_golden_on_directed_and_random_inputs() {
        let n = build_alu();
        let mut sim = Simulator::new(&n);
        let directed: Vec<(u32, u32)> = vec![
            (0, 0),
            (1, 1),
            (u32::MAX, 1),
            (0x8000_0000, 31),
            (0x8000_0000, 1),
            (0x7FFF_FFFF, 0x8000_0000),
            (123, 456),
            (u32::MAX, u32::MAX),
            (1, 32),
            (0xDEAD_BEEF, 0x1234_5678),
        ];
        let mut state = 0x77aa55u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u32
        };
        let mut cases = directed;
        for _ in 0..60 {
            cases.push((rand(), rand()));
        }
        for op in AluOp::ALL {
            for &(a, b) in &cases {
                let hw = run_alu(&mut sim, op, a, b);
                let sw = alu_golden(op, a, b);
                assert_eq!(hw, sw, "{op:?}({a:#x}, {b:#x}): hw {hw:#x} sw {sw:#x}");
            }
        }
    }

    #[test]
    fn pipeline_latency_is_two_cycles() {
        let n = build_alu();
        let mut sim = Simulator::new(&n);
        sim.set_input("op", AluOp::Add.encoding());
        sim.set_input("a", 40);
        sim.set_input("b", 2);
        sim.step();
        // One cycle in: operands are registered, result not yet.
        assert_ne!(sim.output("r"), 42);
        sim.step();
        assert_eq!(sim.output("r"), 42);
    }

    #[test]
    fn has_a_clock_tree_and_realistic_size() {
        let n = build_alu();
        let clock_cells = n.cells().filter(|c| c.kind.is_clock_network()).count();
        assert!(clock_cells >= 3, "root + two leaves");
        // Sanity: a 32-bit ALU lands in the thousands of cells.
        assert!(n.cell_count() > 1000, "{} cells", n.cell_count());
        assert!(n.cell_count() < 20_000, "{} cells", n.cell_count());
        assert_eq!(n.dffs().count(), 4 + 32 + 32 + 32);
    }
}
