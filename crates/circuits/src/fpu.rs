//! Gate-level FP32 FPU generator.
//!
//! A two-stage pipelined single-precision floating-point unit in the
//! spirit of the CV32E40P's FPnew: add, subtract, multiply, min/max and
//! compares, with round-to-nearest-even, flush-to-zero subnormals, IEEE
//! special cases and `fflags`-style exception flags. Its semantics are
//! bit-identical to [`crate::golden`]'s software model (the equivalence
//! tests at the bottom of this file enforce that).
//!
//! Microarchitecturally the FPU carries the features the Vega evaluation
//! leans on:
//!
//! * a `valid` handshake — `out_valid` echoes `valid` two cycles later,
//!   and the data-path pipeline registers sit behind **integrated clock
//!   gates** enabled by the valid bits. When the FPU idles, its gated
//!   clock branches rest at logic 0 and age at the DC rate while the
//!   always-on control branch keeps toggling: the differential aging that
//!   produces hold violations (paper §3.2.2);
//! * a handful of direct register-to-register transfers that cross from
//!   the free-running control branch into the gated output branch (a
//!   result-routing tag and a busy bit) — the short, hold-critical paths
//!   where those violations land;
//! * a deep multiplier array and a 52-bit alignment/normalization
//!   datapath — the long setup-critical paths aging pushes over the edge.
//!
//! Port map:
//!
//! | port        | dir | width | meaning |
//! |-------------|-----|-------|---------|
//! | `clk`       | in  | 1     | clock |
//! | `op`        | in  | 3     | [`FpuOp`] encoding (0–7) |
//! | `valid`     | in  | 1     | operands are valid this cycle |
//! | `a`, `b`    | in  | 32    | FP32 operands |
//! | `r`         | out | 32    | result, 2 cycles later |
//! | `flags`     | out | 5     | `fflags` (NV DZ OF UF NX) |
//! | `out_valid` | out | 1     | result handshake |
//! | `tag_out`   | out | 2     | result-routing tag (echoes `tag`) |
//! | `tag`       | in  | 2     | issue tag |

use vega_netlist::{CellKind, NetId, Netlist, NetlistBuilder};

use crate::golden::FpuOp;
use crate::words::Words;

/// Cycles from applying inputs (with `valid` high) to reading `r`.
pub const FPU_LATENCY: usize = 2;

/// Valid `op` port encodings.
pub fn fpu_valid_ops() -> Vec<u64> {
    FpuOp::ALL.iter().map(|op| op.encoding()).collect()
}

struct Unpacked {
    sign: NetId,
    exp: Vec<NetId>,  // 8 bits
    frac: Vec<NetId>, // 23 bits
    mant: Vec<NetId>, // 24 bits with hidden bit
    zero: NetId,      // FTZ zero (exp == 0)
    inf: NetId,
    nan: NetId,
    snan: NetId,
    mag: Vec<NetId>, // 31-bit magnitude after FTZ
}

fn unpack(w: &mut Words<'_>, x: &[NetId]) -> Unpacked {
    let sign = x[31];
    let exp: Vec<NetId> = x[23..31].to_vec();
    let frac: Vec<NetId> = x[..23].to_vec();
    let exp_nz = w.reduce_or(&exp);
    let zero = w.gate(CellKind::Not, "u_z", &[exp_nz]);
    let exp_ones = w.reduce_and(&exp);
    let frac_nz = w.reduce_or(&frac);
    let nan = w.gate(CellKind::And2, "u_nan", &[exp_ones, frac_nz]);
    let frac_nz_not = w.gate(CellKind::Not, "u_fn", &[frac_nz]);
    let inf = w.gate(CellKind::And2, "u_inf", &[exp_ones, frac_nz_not]);
    let quiet_not = w.gate(CellKind::Not, "u_q", &[x[22]]);
    let snan = w.gate(CellKind::And2, "u_sn", &[nan, quiet_not]);
    // Hidden bit = 1 for normals (exp != 0).
    let mut mant = frac.clone();
    mant.push(exp_nz);
    // Magnitude after FTZ: exp==0 flushes the whole magnitude to 0.
    let raw_mag: Vec<NetId> = x[..31].to_vec();
    let mag = w.and_bit(&raw_mag, exp_nz);
    Unpacked {
        sign,
        exp,
        frac,
        mant,
        zero,
        inf,
        nan,
        snan,
        mag,
    }
}

/// Build the FPU netlist.
pub fn build_fpu() -> Netlist {
    let mut builder = NetlistBuilder::new("rv32_fpu");
    let clk = builder.clock("clk");
    let op_in = builder.input("op", 3);
    let valid_in = builder.input("valid", 1)[0];
    let tag_in = builder.input("tag", 2);
    let a_in = builder.input("a", 32);
    let b_in = builder.input("b", 32);

    // --- Clock tree -------------------------------------------------
    // Control branch (always toggling) and two gated data branches.
    // The control branch keeps toggling (AC stress only); the gated data
    // branches idle at 0 whenever the FPU is unused and age at the DC
    // rate. The gated branches are deeper (more insertion delay behind
    // the gate), so their differential aging shows up as a capture-side
    // phase shift of several picoseconds — more than the thin post-fix
    // hold margins on the control→gated register transfers.
    // Depths are balanced the way clock-tree synthesis would leave
    // them: the gated branches carry the ICG plus 8 buffers, the control
    // branch 9 buffers, so static skew is a few picoseconds and the
    // post-route hold fixes stay tiny. Differential *aging* (DC-stressed
    // gated buffers vs AC-stressed control buffers) is then what moves
    // the capture edges apart in the field.
    let ckroot = builder.clock_buf("ckroot", clk);
    let mut ck_ctl = ckroot;
    for i in 0..10 {
        ck_ctl = builder.clock_buf(format!("ckctl{i}"), ck_ctl);
    }
    let icg_in = builder.clock_gate("icg_in", ckroot, valid_in);
    let mut ck_gin = icg_in;
    for i in 0..8 {
        ck_gin = builder.clock_buf(format!("ckgin{i}"), ck_gin);
    }

    // valid pipeline on the control branch.
    let valid_q = builder.dff("valid_q", valid_in, ck_ctl);
    let icg_out = builder.clock_gate("icg_out", ckroot, valid_q);
    let mut ck_gout = icg_out;
    for i in 0..9 {
        ck_gout = builder.clock_buf(format!("ckgout{i}"), ck_gout);
    }

    let mut w = Words::new(&mut builder, "fpu");

    // --- Stage 1 registers (gated input branch) ----------------------
    let op_q = w.register("op_q", &op_in, ck_gin);
    let a_q = w.register("a_q", &a_in, ck_gin);
    let b_q = w.register("b_q", &b_in, ck_gin);

    // Control-branch registers: issue tag and out_valid pipeline.
    let tag_q = w.register("tag_q", &tag_in, ck_ctl);

    // Decode.
    let is_op: Vec<NetId> = FpuOp::ALL
        .iter()
        .map(|op| {
            let pattern = w.const_word(op.encoding(), 3);
            w.equal(&op_q, &pattern)
        })
        .collect();
    let one_hot = |op: FpuOp| is_op[op as usize];

    let ua = unpack(&mut w, &a_q);
    // Effective b sign: flipped for subtraction.
    let ub = unpack(&mut w, &b_q);
    let sb_eff = w.gate(CellKind::Xor2, "sbe", &[ub.sign, one_hot(FpuOp::Sub)]);

    // =============== ADD/SUB datapath =================================
    let (add_bits, add_of, add_uf, add_nx, add_nv) = {
        // Swap to (large, small) by raw magnitude (exp, frac) — both
        // normal here; special cases overlay later.
        let mag_a: Vec<NetId> = {
            let mut m = ua.frac.clone();
            m.extend(&ua.exp);
            m
        };
        let mag_b: Vec<NetId> = {
            let mut m = ub.frac.clone();
            m.extend(&ub.exp);
            m
        };
        let a_lt_b = w.less_unsigned(&mag_a, &mag_b);
        let sign_l = w.mux_bit(a_lt_b, ua.sign, sb_eff);
        let sign_s = w.mux_bit(a_lt_b, sb_eff, ua.sign);
        let exp_l = w.mux(a_lt_b, &ua.exp, &ub.exp);
        let exp_s = w.mux(a_lt_b, &ub.exp, &ua.exp);
        let mant_l = w.mux(a_lt_b, &ua.mant, &ub.mant);
        let mant_s = w.mux(a_lt_b, &ub.mant, &ua.mant);

        let eff_sub = w.gate(CellKind::Xor2, "effs", &[sign_l, sign_s]);

        // d = exp_l - exp_s (8 bits, exact).
        let (d, _) = w.subtractor(&exp_l, &exp_s);
        // d > 26?
        let c26 = w.const_word(26, 8);
        let d_gt_26 = w.less_unsigned(&c26, &d);
        // k = 26 - d (low 5 bits; only meaningful when d <= 26).
        let (k8, _) = w.subtractor(&c26, &d);
        let k: Vec<NetId> = k8[..5].to_vec();

        // aligned = (mant_s << k) & !d_gt_26, over 52 bits.
        let zero = w.zero();
        let mut small52: Vec<NetId> = mant_s.clone();
        small52.resize(52, zero);
        let aligned_raw = w.shift_left(&small52, &k);
        let not_far = w.gate(CellKind::Not, "nfar", &[d_gt_26]);
        let aligned = w.and_bit(&aligned_raw, not_far);
        let sticky_extra = d_gt_26;

        // l52 = mant_l << 26.
        let mut l52: Vec<NetId> = vec![zero; 26];
        l52.extend(&mant_l);
        l52.resize(52, zero);

        // Subtraction borrows one extra epsilon when sticky_extra.
        let sub_operand: Vec<NetId> = {
            let mut s = aligned.clone();
            s[0] = w.gate(CellKind::Or2, "sbo", &[aligned[0], sticky_extra]);
            s
        };
        let (sum52, _) = w.adder(&l52, &aligned, zero);
        let (diff52, _) = w.subtractor(&l52, &sub_operand);
        let v = w.mux(eff_sub, &sum52, &diff52);

        let v_zero = w.is_zero(&v);

        // Normalize: lzc over 52 bits (6-bit count), MSB to bit 51.
        let lzc = w.leading_zeros(&v); // 6 bits
        let w52 = w.shift_left(&v, &lzc);
        let mant24: Vec<NetId> = w52[28..52].to_vec();
        let guard = w52[27];
        let sticky_low = w.reduce_or(&w52[..27]);
        let sticky = w.gate(CellKind::Or2, "stk", &[sticky_low, sticky_extra]);

        // exp10 = exp_l + 2 - lzc (10-bit two's complement).
        let mut el10: Vec<NetId> = exp_l.clone();
        el10.resize(10, zero);
        let two = w.const_word(2, 10);
        let (el_plus2, _) = w.adder(&el10, &two, zero);
        let mut lzc10: Vec<NetId> = lzc.clone();
        lzc10.resize(10, zero);
        let (exp10, _) = w.subtractor(&el_plus2, &lzc10);

        let (bits, of, uf, nx) = round_pack(&mut w, sign_l, &exp10, &mant24, guard, sticky);

        // Exact cancellation -> +0 exactly (overrides the packed result).
        let plus_zero = w.const_word(0, 32);
        let v_zero_clean = {
            let nse = w.gate(CellKind::Not, "nse", &[sticky_extra]);
            w.gate(CellKind::And2, "vz", &[v_zero, nse])
        };
        let bits = w.mux(v_zero_clean, &bits, &plus_zero);
        let nzc = w.gate(CellKind::Not, "nzc", &[v_zero_clean]);
        let of = w.gate(CellKind::And2, "ofz", &[of, nzc]);
        let uf = w.gate(CellKind::And2, "ufz", &[uf, nzc]);
        let nx = w.gate(CellKind::And2, "nxz", &[nx, nzc]);

        // Special-case overlay for add/sub.
        // zero-operand handling: both zero -> sign = sa & sb_eff; one
        // zero -> the other (with b's effective sign).
        let b_eff32: Vec<NetId> = {
            let mut v: Vec<NetId> = b_q[..31].to_vec();
            v.push(sb_eff);
            v
        };
        let b_ftz = {
            let not_zb = w.gate(CellKind::Not, "nzb", &[ub.zero]);
            let mut v = w.and_bit(&b_eff32[..31], not_zb);
            v.push(sb_eff);
            v
        };
        let a_ftz = {
            let not_za = w.gate(CellKind::Not, "nza", &[ua.zero]);
            let mut v = w.and_bit(&a_q[..31], not_za);
            v.push(ua.sign);
            v
        };
        let both_zero = w.gate(CellKind::And2, "bz", &[ua.zero, ub.zero]);
        let zz_sign = w.gate(CellKind::And2, "zzs", &[ua.sign, sb_eff]);
        let mut zz_bits = w.const_word(0, 31);
        zz_bits.push(zz_sign);

        let bits = w.mux(ua.zero, &bits, &b_ftz);
        let bits = w.mux(ub.zero, &bits, &a_ftz);
        let bits = w.mux(both_zero, &bits, &zz_bits);

        // Infinity handling.
        let inf_signs_differ = w.gate(CellKind::Xor2, "isd", &[ua.sign, sb_eff]);
        let both_inf = w.gate(CellKind::And2, "bi", &[ua.inf, ub.inf]);
        let inf_nv = w.gate(CellKind::And2, "inv", &[both_inf, inf_signs_differ]);
        let inf_a32: Vec<NetId> = {
            let mut v = w.const_word(0x7F80_0000u64, 31);
            v.push(ua.sign);
            v
        };
        let inf_b32: Vec<NetId> = {
            let mut v = w.const_word(0x7F80_0000u64, 31);
            v.push(sb_eff);
            v
        };
        let bits = w.mux(ua.inf, &bits, &inf_a32);
        let bits = w.mux(ub.inf, &bits, &inf_b32);

        // Effect masking: any special case suppresses OF/UF/NX.
        let s1 = w.gate(CellKind::Or2, "sp1", &[ua.zero, ub.zero]);
        let s2 = w.gate(CellKind::Or2, "sp2", &[ua.inf, ub.inf]);
        let special = w.gate(CellKind::Or2, "sp3", &[s1, s2]);
        let not_special = w.gate(CellKind::Not, "sp4", &[special]);
        let of = w.gate(CellKind::And2, "of2", &[of, not_special]);
        let uf = w.gate(CellKind::And2, "uf2", &[uf, not_special]);
        let nx = w.gate(CellKind::And2, "nx2", &[nx, not_special]);

        (bits, of, uf, nx, inf_nv)
    };

    // =============== MUL datapath =====================================
    let (mul_bits, mul_of, mul_uf, mul_nx, mul_nv) = {
        let zero = w.zero();
        let sign = w.gate(CellKind::Xor2, "msx", &[ua.sign, ub.sign]);
        let p48 = w.multiply(&ua.mant, &ub.mant); // 48 bits
        let p47 = p48[47];
        // w48 = p47 ? p48 : p48 << 1.
        let shifted: Vec<NetId> = {
            let mut s = vec![zero];
            s.extend(&p48[..47]);
            s
        };
        let w48 = w.mux(p47, &shifted, &p48);
        let mant24: Vec<NetId> = w48[24..48].to_vec();
        let guard = w48[23];
        let sticky = w.reduce_or(&w48[..23]);

        // exp10 = ea + eb - 127 + p47.
        let mut ea10: Vec<NetId> = ua.exp.clone();
        ea10.resize(10, zero);
        let mut eb10: Vec<NetId> = ub.exp.clone();
        eb10.resize(10, zero);
        let (esum, _) = w.adder(&ea10, &eb10, p47);
        let c127 = w.const_word(127, 10);
        let (exp10, _) = w.subtractor(&esum, &c127);

        let (bits, of, uf, nx) = round_pack(&mut w, sign, &exp10, &mant24, guard, sticky);

        // Specials: inf*0 -> NV (handled by overlay); inf -> inf; zero -> 0.
        let inf_any = w.gate(CellKind::Or2, "mia", &[ua.inf, ub.inf]);
        let zero_any = w.gate(CellKind::Or2, "mza", &[ua.zero, ub.zero]);
        let inf_times_zero = w.gate(CellKind::And2, "miz", &[inf_any, zero_any]);

        let mut signed_zero = w.const_word(0, 31);
        signed_zero.push(sign);
        let mut signed_inf = w.const_word(0x7F80_0000u64, 31);
        signed_inf.push(sign);

        let bits = w.mux(zero_any, &bits, &signed_zero);
        let bits = w.mux(inf_any, &bits, &signed_inf);

        let special = w.gate(CellKind::Or2, "msp", &[inf_any, zero_any]);
        let not_special = w.gate(CellKind::Not, "mns", &[special]);
        let of = w.gate(CellKind::And2, "mof", &[of, not_special]);
        let uf = w.gate(CellKind::And2, "muf", &[uf, not_special]);
        let nx = w.gate(CellKind::And2, "mnx", &[nx, not_special]);

        (bits, of, uf, nx, inf_times_zero)
    };

    // =============== Compare / min / max ==============================
    let any_nan = w.gate(CellKind::Or2, "cnan", &[ua.nan, ub.nan]);
    let no_nan = w.gate(CellKind::Not, "cnn", &[any_nan]);
    let any_snan = w.gate(CellKind::Or2, "csn", &[ua.snan, ub.snan]);

    // Ordered less-than on FTZ magnitudes with sign logic.
    let lt_ab = ordered_lt(&mut w, ua.sign, &ua.mag, ub.sign, &ub.mag);
    let lt_ba = ordered_lt(&mut w, ub.sign, &ub.mag, ua.sign, &ua.mag);

    let (cmp_bits, cmp_nv) = {
        let not_lt_ab = w.gate(CellKind::Not, "c1", &[lt_ab]);
        let not_lt_ba = w.gate(CellKind::Not, "c2", &[lt_ba]);
        let eq_raw = w.gate(CellKind::And2, "c3", &[not_lt_ab, not_lt_ba]);
        let eq_bit = w.gate(CellKind::And2, "c4", &[eq_raw, no_nan]);
        let lt_bit = w.gate(CellKind::And2, "c5", &[lt_ab, no_nan]);
        let le_bit = w.gate(CellKind::And2, "c6", &[not_lt_ba, no_nan]);
        let bit = {
            let t = w.mux_bit(one_hot(FpuOp::Lt), eq_bit, lt_bit);
            w.mux_bit(one_hot(FpuOp::Le), t, le_bit)
        };
        let mut bits = vec![bit];
        let z31 = w.const_word(0, 31);
        bits.extend(z31);
        // NV: quiet Eq raises on sNaN only; Lt/Le raise on any NaN.
        let signaling = w.gate(
            CellKind::Or2,
            "c7",
            &[one_hot(FpuOp::Lt), one_hot(FpuOp::Le)],
        );
        let nv_sig = w.gate(CellKind::And2, "c8", &[signaling, any_nan]);
        let nv = w.gate(CellKind::Or2, "c9", &[any_snan, nv_sig]);
        (bits, nv)
    };

    let (minmax_bits, minmax_nv) = {
        // FTZ'd operand encodings.
        let not_za = w.gate(CellKind::Not, "m0", &[ua.zero]);
        let mut a_ftz = w.and_bit(&a_q[..31], not_za);
        a_ftz.push(ua.sign);
        let not_zb = w.gate(CellKind::Not, "m1", &[ub.zero]);
        let mut b_ftz = w.and_bit(&b_q[..31], not_zb);
        b_ftz.push(ub.sign);

        // Tie-break: equal values, a negative, b positive => a < b.
        let not_lt_ba2 = w.gate(CellKind::Not, "m2", &[lt_ba]);
        let sb_not = w.gate(CellKind::Not, "m3", &[ub.sign]);
        let neg_zero_tie = {
            let t = w.gate(CellKind::And2, "m4", &[ua.sign, sb_not]);
            w.gate(CellKind::And2, "m5", &[not_lt_ba2, t])
        };
        let a_lt = w.gate(CellKind::Or2, "m6", &[lt_ab, neg_zero_tie]);
        let is_min = one_hot(FpuOp::Min);
        let not_a_lt = w.gate(CellKind::Not, "m7", &[a_lt]);
        let pick_a = w.mux_bit(is_min, not_a_lt, a_lt);
        let ordered = w.mux(pick_a, &b_ftz, &a_ftz);

        // NaN handling: one NaN -> other operand; both -> canonical NaN.
        let qnan = w.const_word(crate::golden::QNAN as u64, 32);
        let picked = w.mux(ua.nan, &ordered, &b_ftz);
        let picked = w.mux(ub.nan, &picked, &a_ftz);
        let both_nan = w.gate(CellKind::And2, "m8", &[ua.nan, ub.nan]);
        let bits = w.mux(both_nan, &picked, &qnan);
        (bits, any_snan)
    };

    // =============== Result / flag selection =========================
    let is_addsub = w.gate(
        CellKind::Or2,
        "sadd",
        &[one_hot(FpuOp::Add), one_hot(FpuOp::Sub)],
    );
    let is_mul = one_hot(FpuOp::Mul);
    let is_minmax = w.gate(
        CellKind::Or2,
        "smm",
        &[one_hot(FpuOp::Min), one_hot(FpuOp::Max)],
    );

    let mut result = cmp_bits;
    result = w.mux(is_minmax, &result, &minmax_bits);
    result = w.mux(is_mul, &result, &mul_bits);
    result = w.mux(is_addsub, &result, &add_bits);

    // Invalid-operation overlay for add/sub/mul: NaN inputs, ∞ − ∞, and
    // ∞ × 0 all produce the canonical qNaN.
    let arith = w.gate(CellKind::Or2, "sar", &[is_addsub, is_mul]);
    let nan_arith = w.gate(CellKind::And2, "snA", &[arith, any_nan]);
    let invalid_core = w.mux_bit(is_mul, add_nv, mul_nv);
    let invalid_arith = w.gate(CellKind::And2, "snB", &[arith, invalid_core]);
    let nan_result = w.gate(CellKind::Or2, "snC", &[nan_arith, invalid_arith]);
    let qnan32 = w.const_word(crate::golden::QNAN as u64, 32);
    result = w.mux(nan_result, &result, &qnan32);

    // Flags.
    let zero_bit = w.zero();
    let arith_nv_core = {
        // ∞ − ∞ / ∞ × 0 raise NV only when no NaN is involved (a NaN
        // input takes priority and raises NV only if signaling).
        let t2 = w.gate(CellKind::And2, "fnv1", &[invalid_core, no_nan]);
        w.gate(CellKind::Or2, "fnv2", &[t2, any_snan])
    };
    let nv = {
        let t = w.mux_bit(is_minmax, cmp_nv, minmax_nv);
        w.mux_bit(arith, t, arith_nv_core)
    };
    // OF/UF/NX only from arithmetic, and only without NaN inputs.
    let of = {
        let t = w.mux_bit(is_mul, add_of, mul_of);
        let t = w.gate(CellKind::And2, "fof", &[t, arith]);
        w.gate(CellKind::And2, "fof2", &[t, no_nan])
    };
    let uf = {
        let t = w.mux_bit(is_mul, add_uf, mul_uf);
        let t = w.gate(CellKind::And2, "fuf", &[t, arith]);
        w.gate(CellKind::And2, "fuf2", &[t, no_nan])
    };
    let nx = {
        let t = w.mux_bit(is_mul, add_nx, mul_nx);
        let t = w.gate(CellKind::And2, "fnx", &[t, arith]);
        w.gate(CellKind::And2, "fnx2", &[t, no_nan])
    };
    let flags_word = vec![nx, uf, of, zero_bit, nv];

    // --- Stage 2 registers (gated output branch) ----------------------
    let r_q = w.register("r_q", &result, ck_gout);
    let flags_q = w.register("flags_q", &flags_word, ck_gout);
    // Cross-branch short paths: tag and busy hop from the control branch
    // into the gated output branch with no combinational logic between.
    let tag_q2 = w.register("tag_q2", &tag_q, ck_gout);
    let busy_q = {
        let name = w.builder().fresh_name("busy_q");
        w.builder().dff(name, valid_q, ck_gout)
    };

    let out_valid = builder.dff("out_valid_q", valid_q, ck_ctl);

    b_finish(builder, &r_q, &flags_q, out_valid, &tag_q2, busy_q)
}

fn b_finish(
    mut builder: NetlistBuilder,
    r: &[NetId],
    flags: &[NetId],
    out_valid: NetId,
    tag_out: &[NetId],
    busy: NetId,
) -> Netlist {
    builder.output("r", r);
    builder.output("flags", flags);
    builder.output("out_valid", &[out_valid]);
    builder.output("tag_out", tag_out);
    builder.output("busy", &[busy]);
    builder.finish().expect("generated FPU must validate")
}

/// Round-to-nearest-even pack: returns (bits32, of, uf, nx).
///
/// `exp10` is a 10-bit two's-complement pre-round exponent; `mant24` the
/// normalized mantissa (MSB = hidden bit); rounding may carry into the
/// exponent. Overflow produces ±inf, underflow (exp ≤ 0) flushes to ±0.
fn round_pack(
    w: &mut Words<'_>,
    sign: NetId,
    exp10: &[NetId],
    mant24: &[NetId],
    guard: NetId,
    sticky: NetId,
) -> (Vec<NetId>, NetId, NetId, NetId) {
    let lsb = mant24[0];
    let tie_or_up = {
        let t = w.gate(CellKind::Or2, "rp0", &[sticky, lsb]);
        w.gate(CellKind::And2, "rp1", &[guard, t])
    };
    // mant + round_up.
    let zero = w.zero();
    let zeros24 = vec![zero; 24];
    let (rounded, carry) = w.adder(mant24, &zeros24, tie_or_up);
    // Exponent after carry.
    let mut c10 = vec![carry];
    c10.resize(10, zero);
    let (exp_r, _) = w.adder(exp10, &c10, zero);
    let frac: Vec<NetId> = {
        let z23 = vec![zero; 23];
        w.mux(carry, &rounded[..23], &z23)
    };
    let nx = w.gate(CellKind::Or2, "rp2", &[guard, sticky]);

    // of: exp_r >= 255 (signed compare against constant).
    let c255 = w.const_word(255, 10);
    let ge255 = {
        let lt = w.less_signed(&exp_r, &c255);
        w.gate(CellKind::Not, "rp3", &[lt])
    };
    // uf: exp_r <= 0.
    let c1 = w.const_word(1, 10);
    let le0 = w.less_signed(&exp_r, &c1);

    // Normal pack.
    let mut bits: Vec<NetId> = frac;
    bits.extend(&exp_r[..8]);
    bits.push(sign);

    // Overflow -> ±inf.
    let mut inf_bits = w.const_word(0x7F80_0000u64, 31);
    inf_bits.push(sign);
    let bits = w.mux(ge255, &bits, &inf_bits);

    // Underflow -> ±0.
    let mut zero_bits = w.const_word(0, 31);
    zero_bits.push(sign);
    let bits = w.mux(le0, &bits, &zero_bits);

    // nx forced on overflow/underflow.
    let edge = w.gate(CellKind::Or2, "rp4", &[ge255, le0]);
    let nx = w.gate(CellKind::Or2, "rp5", &[nx, edge]);
    (bits, ge255, le0, nx)
}

/// Ordered (no NaN) less-than over FTZ'd sign+magnitude encodings.
fn ordered_lt(w: &mut Words<'_>, sa: NetId, mag_a: &[NetId], sb: NetId, mag_b: &[NetId]) -> NetId {
    let mag_lt = w.less_unsigned(mag_a, mag_b);
    let mag_gt = w.less_unsigned(mag_b, mag_a);
    let sa_not = w.gate(CellKind::Not, "ol0", &[sa]);
    let sb_not = w.gate(CellKind::Not, "ol1", &[sb]);
    // both positive: mag_a < mag_b
    let pp = {
        let t = w.gate(CellKind::And2, "ol2", &[sa_not, sb_not]);
        w.gate(CellKind::And2, "ol3", &[t, mag_lt])
    };
    // both negative: mag_a > mag_b
    let nn = {
        let t = w.gate(CellKind::And2, "ol4", &[sa, sb]);
        w.gate(CellKind::And2, "ol5", &[t, mag_gt])
    };
    // a negative, b positive: a < b unless both are zero.
    let np = {
        let t = w.gate(CellKind::And2, "ol6", &[sa, sb_not]);
        let a_nz = w.reduce_or(mag_a);
        let b_nz = w.reduce_or(mag_b);
        let any_nz = w.gate(CellKind::Or2, "ol7", &[a_nz, b_nz]);
        w.gate(CellKind::And2, "ol8", &[t, any_nz])
    };
    let t = w.gate(CellKind::Or2, "ol9", &[pp, nn]);
    w.gate(CellKind::Or2, "ol10", &[t, np])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{fpu_golden, FpuOp, QNAN};
    use vega_sim::Simulator;

    fn run_fpu(sim: &mut Simulator<'_>, op: FpuOp, a: u32, b: u32) -> (u32, u32) {
        sim.set_input("op", op.encoding());
        sim.set_input("a", a as u64);
        sim.set_input("b", b as u64);
        sim.set_input("valid", 1);
        for _ in 0..FPU_LATENCY {
            sim.step();
        }
        (sim.output("r") as u32, sim.output("flags") as u32)
    }

    fn interesting_values() -> Vec<u32> {
        vec![
            0x0000_0000, // +0
            0x8000_0000, // -0
            0x3F80_0000, // 1.0
            0xBF80_0000, // -1.0
            0x4000_0000, // 2.0
            0x4040_0000, // 3.0
            0x3F00_0000, // 0.5
            0x7F7F_FFFF, // max normal
            0xFF7F_FFFF, // -max normal
            0x0080_0000, // min normal
            0x8080_0000, // -min normal
            0x7F80_0000, // +inf
            0xFF80_0000, // -inf
            QNAN,        // qNaN
            0x7F80_0001, // sNaN
            0x0000_0001, // subnormal (flushes)
            0x8000_0001, // -subnormal
            0x3F80_0001, // 1.0 + ulp
            0x4B00_0000, // 2^23 (rounding boundary)
            0x4B80_0000, // 2^24
            0x3FFF_FFFF, // ~2.0 - ulp
            0x5000_0000,
            0xD000_0000,
        ]
    }

    #[test]
    fn matches_golden_on_directed_values() {
        let n = build_fpu();
        let mut sim = Simulator::new(&n);
        let values = interesting_values();
        for op in FpuOp::ALL {
            for &a in &values {
                for &b in &values {
                    let (hw_r, hw_f) = run_fpu(&mut sim, op, a, b);
                    let sw = fpu_golden(op, a, b);
                    assert_eq!(
                        hw_r, sw.bits,
                        "{op:?}({a:#010x}, {b:#010x}): hw {hw_r:#010x} sw {:#010x}",
                        sw.bits
                    );
                    assert_eq!(
                        hw_f,
                        sw.flags.to_bits(),
                        "{op:?}({a:#010x}, {b:#010x}) flags: hw {hw_f:#07b} sw {:#07b}",
                        sw.flags.to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn matches_golden_on_random_values() {
        let n = build_fpu();
        let mut sim = Simulator::new(&n);
        let mut state = 0x2468_ACE0u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u32
        };
        for round in 0..400 {
            let op = FpuOp::ALL[(rand() % 8) as usize];
            let a = rand();
            let b = rand();
            let (hw_r, hw_f) = run_fpu(&mut sim, op, a, b);
            let sw = fpu_golden(op, a, b);
            assert_eq!(
                hw_r, sw.bits,
                "round {round}: {op:?}({a:#010x}, {b:#010x}): hw {hw_r:#010x} sw {:#010x}",
                sw.bits
            );
            assert_eq!(
                hw_f,
                sw.flags.to_bits(),
                "round {round} flags: {op:?}({a:#010x}, {b:#010x})"
            );
        }
    }

    #[test]
    fn valid_handshake_and_gated_pipeline() {
        let n = build_fpu();
        let mut sim = Simulator::new(&n);
        // Issue one add with tag 2.
        sim.set_input("op", FpuOp::Add.encoding());
        sim.set_input("a", 0x3F80_0000);
        sim.set_input("b", 0x3F80_0000);
        sim.set_input("valid", 1);
        sim.set_input("tag", 2);
        sim.step();
        sim.set_input("valid", 0);
        sim.set_input("tag", 0);
        sim.step();
        assert_eq!(sim.output("out_valid"), 1, "result handshake");
        assert_eq!(sim.output("r"), 0x4000_0000, "1.0 + 1.0 = 2.0");
        assert_eq!(sim.output("tag_out"), 2, "tag travels with the result");
        // Idle cycles: output registers are gated and must hold.
        sim.set_input("a", 0xDEAD_BEEF);
        sim.set_input("b", 0x1234_5678);
        for _ in 0..5 {
            sim.step();
            assert_eq!(sim.output("out_valid"), 0);
            assert_eq!(sim.output("r"), 0x4000_0000, "gated registers hold");
        }
    }

    #[test]
    fn structure_has_gated_clock_branches() {
        let n = build_fpu();
        let gates: Vec<_> = n.cells_of_kind(vega_netlist::CellKind::ClockGate).collect();
        assert_eq!(gates.len(), 2, "input and output clock gates");
        let clock_cells = n.cells().filter(|c| c.kind.is_clock_network()).count();
        assert!(clock_cells >= 10, "deep branches: {clock_cells}");
        // The FPU dwarfs the ALU, as in the paper.
        assert!(n.cell_count() > 8_000, "{} cells", n.cell_count());
    }
}
