//! Bit-exact software reference models for the generated hardware.
//!
//! The ALU model is ordinary two's-complement arithmetic. The FP32 model
//! implements exactly the semantics the gate-level FPU realizes:
//!
//! * round-to-nearest-even (the only rounding mode, as in many embedded
//!   FPU configurations),
//! * **flush-to-zero**: subnormal inputs are treated as (signed) zeros and
//!   subnormal results flush to signed zero with `UF`+`NX` raised,
//! * canonical quiet NaN `0x7FC0_0000` on any NaN-producing operation,
//! * `NV` on signaling NaN inputs, invalid magnitude cancellation
//!   (`∞ − ∞`), invalid multiplication (`∞ × 0`), and signaling compares.
//!
//! Internally both the adder and the multiplier use a single wide exact
//! datapath (no guard/round case analysis): operands are aligned into a
//! 52-bit window, added or subtracted exactly, renormalized by a leading-
//! zero count, and rounded once. The gate-level generators in
//! [`crate::fpu`] implement the *same* steps so the two stay bit-equal.

use serde::{Deserialize, Serialize};

/// The canonical quiet NaN produced by every NaN-generating operation.
pub const QNAN: u32 = 0x7FC0_0000;

/// RV32I ALU operations (the encoding used by [`crate::alu::build_alu`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum AluOp {
    /// Addition.
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Shift left logical (amount = low 5 bits of `b`).
    Sll = 2,
    /// Set if less than, signed.
    Slt = 3,
    /// Set if less than, unsigned.
    Sltu = 4,
    /// Bitwise XOR.
    Xor = 5,
    /// Shift right logical.
    Srl = 6,
    /// Shift right arithmetic.
    Sra = 7,
    /// Bitwise OR.
    Or = 8,
    /// Bitwise AND.
    And = 9,
}

impl AluOp {
    /// Every ALU operation.
    pub const ALL: [AluOp; 10] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
    ];

    /// The operation's port encoding.
    pub fn encoding(self) -> u64 {
        self as u64
    }

    /// Decode a port encoding.
    pub fn from_encoding(value: u64) -> Option<AluOp> {
        AluOp::ALL.into_iter().find(|op| op.encoding() == value)
    }
}

/// Reference semantics of the ALU.
pub fn alu_golden(op: AluOp, a: u32, b: u32) -> u32 {
    let shamt = b & 31;
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a << shamt,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a >> shamt,
        AluOp::Sra => ((a as i32) >> shamt) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

/// FPU operations (the encoding used by [`crate::fpu::build_fpu`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum FpuOp {
    /// Addition.
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Multiplication.
    Mul = 2,
    /// Minimum (RISC-V `fmin.s` NaN semantics).
    Min = 3,
    /// Maximum.
    Max = 4,
    /// Quiet equality; result is 0 or 1.
    Eq = 5,
    /// Signaling less-than; result is 0 or 1.
    Lt = 6,
    /// Signaling less-or-equal; result is 0 or 1.
    Le = 7,
}

impl FpuOp {
    /// Every FPU operation.
    pub const ALL: [FpuOp; 8] = [
        FpuOp::Add,
        FpuOp::Sub,
        FpuOp::Mul,
        FpuOp::Min,
        FpuOp::Max,
        FpuOp::Eq,
        FpuOp::Lt,
        FpuOp::Le,
    ];

    /// The operation's port encoding.
    pub fn encoding(self) -> u64 {
        self as u64
    }

    /// Decode a port encoding.
    pub fn from_encoding(value: u64) -> Option<FpuOp> {
        FpuOp::ALL.into_iter().find(|op| op.encoding() == value)
    }
}

/// IEEE exception flags, RISC-V `fflags` bit order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpFlags {
    /// Invalid operation (bit 4).
    pub nv: bool,
    /// Divide by zero (bit 3; never raised — no divider).
    pub dz: bool,
    /// Overflow (bit 2).
    pub of: bool,
    /// Underflow (bit 1).
    pub uf: bool,
    /// Inexact (bit 0).
    pub nx: bool,
}

impl FpFlags {
    /// Pack into the 5-bit `fflags` layout (NV DZ OF UF NX, MSB first).
    pub fn to_bits(self) -> u32 {
        (u32::from(self.nv) << 4)
            | (u32::from(self.dz) << 3)
            | (u32::from(self.of) << 2)
            | (u32::from(self.uf) << 1)
            | u32::from(self.nx)
    }
}

/// An FPU result: value bits plus exception flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpResult {
    /// The result encoding (an FP32 value, or 0/1 for compares).
    pub bits: u32,
    /// Exception flags raised.
    pub flags: FpFlags,
}

#[inline]
fn sign_of(x: u32) -> u32 {
    x >> 31
}

#[inline]
fn exp_of(x: u32) -> u32 {
    (x >> 23) & 0xFF
}

#[inline]
fn frac_of(x: u32) -> u32 {
    x & 0x7F_FFFF
}

#[inline]
fn is_nan(x: u32) -> bool {
    exp_of(x) == 255 && frac_of(x) != 0
}

#[inline]
fn is_snan(x: u32) -> bool {
    is_nan(x) && (x >> 22) & 1 == 0
}

#[inline]
fn is_inf(x: u32) -> bool {
    exp_of(x) == 255 && frac_of(x) == 0
}

/// Flush subnormal inputs to signed zero (FTZ input handling).
#[inline]
fn ftz(x: u32) -> u32 {
    if exp_of(x) == 0 {
        x & 0x8000_0000
    } else {
        x
    }
}

#[inline]
fn is_zero_ftz(x: u32) -> bool {
    exp_of(x) == 0
}

fn pack(sign: u32, exp: u32, frac: u32) -> u32 {
    (sign << 31) | (exp << 23) | frac
}

/// Round-to-nearest-even from a 24-bit mantissa plus guard and sticky,
/// with exponent adjustment; returns packed result with OF handling.
fn round_pack(sign: u32, exp: i32, mant24: u32, guard: bool, sticky: bool) -> FpResult {
    let mut flags = FpFlags::default();
    let round_up = guard && (sticky || mant24 & 1 == 1);
    let mut mant = mant24 + u32::from(round_up);
    let mut exp = exp;
    if mant == 1 << 24 {
        mant >>= 1;
        exp += 1;
    }
    flags.nx = guard || sticky;
    if exp >= 255 {
        flags.of = true;
        flags.nx = true;
        return FpResult {
            bits: pack(sign, 255, 0),
            flags,
        };
    }
    if exp <= 0 {
        // FTZ output: flush to signed zero.
        flags.uf = true;
        flags.nx = true;
        return FpResult {
            bits: pack(sign, 0, 0),
            flags,
        };
    }
    FpResult {
        bits: pack(sign, exp as u32, mant & 0x7F_FFFF),
        flags,
    }
}

/// FP32 addition/subtraction with FTZ and RNE (`sub` flips `b`'s sign).
pub fn fp_add_golden(a: u32, b: u32, sub: bool) -> FpResult {
    let mut flags = FpFlags::default();
    let a = ftz(a);
    let b_raw = ftz(b);
    let b = if sub { b_raw ^ 0x8000_0000 } else { b_raw };

    // NaN handling (on original operands; sign flip does not matter).
    if is_nan(a) || is_nan(b) {
        flags.nv = is_snan(a) || is_snan(b);
        return FpResult { bits: QNAN, flags };
    }
    match (is_inf(a), is_inf(b)) {
        (true, true) => {
            if sign_of(a) == sign_of(b) {
                return FpResult { bits: a, flags };
            }
            flags.nv = true;
            return FpResult { bits: QNAN, flags };
        }
        (true, false) => return FpResult { bits: a, flags },
        (false, true) => return FpResult { bits: b, flags },
        (false, false) => {}
    }
    match (is_zero_ftz(a), is_zero_ftz(b)) {
        (true, true) => {
            // +0 unless both are -0 (RNE sum-of-zeros rule).
            let sign = sign_of(a) & sign_of(b);
            return FpResult {
                bits: pack(sign, 0, 0),
                flags,
            };
        }
        (true, false) => return FpResult { bits: b, flags },
        (false, true) => return FpResult { bits: a, flags },
        (false, false) => {}
    }

    // Both normal. Order by magnitude (exp, frac).
    let (large, small) = if (a & 0x7FFF_FFFF) >= (b & 0x7FFF_FFFF) {
        (a, b)
    } else {
        (b, a)
    };
    let el = exp_of(large) as i32;
    let es = exp_of(small) as i32;
    let fl = (frac_of(large) | 1 << 23) as u64;
    let fs = (frac_of(small) | 1 << 23) as u64;
    let eff_sub = sign_of(large) != sign_of(small);
    let d = (el - es) as u32;

    // Wide exact datapath: L at bit offset 26, small aligned below it.
    let l_wide = fl << 26;
    let (aligned, sticky_extra) = if d <= 26 {
        (fs << (26 - d), false)
    } else {
        (0u64, true) // contributes only a sticky epsilon
    };

    let (v, sticky_extra) = if eff_sub {
        // Subtracting an epsilon borrows 1 from the exact difference;
        // the remaining fraction is re-announced via sticky.
        (l_wide - aligned - u64::from(sticky_extra), sticky_extra)
    } else {
        (l_wide + aligned, sticky_extra)
    };

    if v == 0 && !sticky_extra {
        // Exact cancellation: RNE yields +0.
        return FpResult {
            bits: pack(0, 0, 0),
            flags,
        };
    }

    // Normalize: MSB of `v` to position 51-ish window. fl's MSB sits at
    // bit 49 when unchanged; exponent moves with the MSB position.
    let msb = 63 - v.leading_zeros() as i32; // v != 0 here (or sticky)
    let exp = el + (msb - 49);
    let w = v << (63 - msb); // MSB now at bit 63
    let mant24 = (w >> 40) as u32;
    let guard = (w >> 39) & 1 == 1;
    let sticky = (w & ((1 << 39) - 1)) != 0 || sticky_extra;
    let sign = sign_of(large);
    let mut result = round_pack(sign, exp, mant24, guard, sticky);
    result.flags.nv |= flags.nv;
    result
}

/// FP32 multiplication with FTZ and RNE.
pub fn fp_mul_golden(a: u32, b: u32) -> FpResult {
    let mut flags = FpFlags::default();
    let a = ftz(a);
    let b = ftz(b);
    let sign = sign_of(a) ^ sign_of(b);

    if is_nan(a) || is_nan(b) {
        flags.nv = is_snan(a) || is_snan(b);
        return FpResult { bits: QNAN, flags };
    }
    if (is_inf(a) && is_zero_ftz(b)) || (is_zero_ftz(a) && is_inf(b)) {
        flags.nv = true;
        return FpResult { bits: QNAN, flags };
    }
    if is_inf(a) || is_inf(b) {
        return FpResult {
            bits: pack(sign, 255, 0),
            flags,
        };
    }
    if is_zero_ftz(a) || is_zero_ftz(b) {
        return FpResult {
            bits: pack(sign, 0, 0),
            flags,
        };
    }

    let fa = (frac_of(a) | 1 << 23) as u64;
    let fb = (frac_of(b) | 1 << 23) as u64;
    let p = fa * fb; // 48-bit product, MSB at 47 or 46
    let msb = 63 - p.leading_zeros() as i32;
    let exp = exp_of(a) as i32 + exp_of(b) as i32 - 127 + (msb - 46);
    let w = p << (63 - msb);
    let mant24 = (w >> 40) as u32;
    let guard = (w >> 39) & 1 == 1;
    let sticky = (w & ((1 << 39) - 1)) != 0;
    round_pack(sign, exp, mant24, guard, sticky)
}

/// Ordered comparison on non-NaN FTZ'd values: `a < b`.
fn lt_bits(a: u32, b: u32) -> bool {
    let (sa, sb) = (sign_of(a), sign_of(b));
    let (ma, mb) = (a & 0x7FFF_FFFF, b & 0x7FFF_FFFF);
    if ma == 0 && mb == 0 {
        return false; // ±0 == ±0
    }
    match (sa, sb) {
        (0, 0) => ma < mb,
        (1, 1) => ma > mb,
        (1, 0) => true,
        _ => false,
    }
}

/// FP32 compares: `Eq` (quiet), `Lt`/`Le` (signaling). Result is 0 or 1.
pub fn fp_cmp_golden(op: FpuOp, a: u32, b: u32) -> FpResult {
    let mut flags = FpFlags::default();
    let any_nan = is_nan(a) || is_nan(b);
    let a_f = ftz(a);
    let b_f = ftz(b);
    let bits = match op {
        FpuOp::Eq => {
            flags.nv = is_snan(a) || is_snan(b);
            u32::from(!any_nan && !lt_bits(a_f, b_f) && !lt_bits(b_f, a_f))
        }
        FpuOp::Lt => {
            flags.nv = any_nan;
            u32::from(!any_nan && lt_bits(a_f, b_f))
        }
        FpuOp::Le => {
            flags.nv = any_nan;
            u32::from(!any_nan && !lt_bits(b_f, a_f))
        }
        other => panic!("{other:?} is not a compare"),
    };
    FpResult { bits, flags }
}

/// FP32 min/max with RISC-V NaN semantics: a single NaN input yields the
/// other operand; two NaNs yield the canonical NaN. `-0 < +0`.
pub fn fp_minmax_golden(op: FpuOp, a: u32, b: u32) -> FpResult {
    let flags = FpFlags {
        nv: is_snan(a) || is_snan(b),
        ..FpFlags::default()
    };
    let bits = match (is_nan(a), is_nan(b)) {
        (true, true) => QNAN,
        (true, false) => ftz(b),
        (false, true) => ftz(a),
        (false, false) => {
            let a_f = ftz(a);
            let b_f = ftz(b);
            // -0 orders below +0: compare with sign-aware tie-break.
            let a_lt =
                lt_bits(a_f, b_f) || (!lt_bits(b_f, a_f) && sign_of(a_f) == 1 && sign_of(b_f) == 0);
            let pick_a = match op {
                FpuOp::Min => a_lt,
                FpuOp::Max => !a_lt,
                other => panic!("{other:?} is not min/max"),
            };
            if pick_a {
                a_f
            } else {
                b_f
            }
        }
    };
    FpResult { bits, flags }
}

/// Dispatch any FPU operation to its reference model.
pub fn fpu_golden(op: FpuOp, a: u32, b: u32) -> FpResult {
    match op {
        FpuOp::Add => fp_add_golden(a, b, false),
        FpuOp::Sub => fp_add_golden(a, b, true),
        FpuOp::Mul => fp_mul_golden(a, b),
        FpuOp::Min | FpuOp::Max => fp_minmax_golden(op, a, b),
        FpuOp::Eq | FpuOp::Lt | FpuOp::Le => fp_cmp_golden(op, a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(bits: u32) -> f32 {
        f32::from_bits(bits)
    }

    /// Native f32 arithmetic matches the golden model whenever no
    /// subnormals are involved (FTZ only differs on subnormals).
    #[test]
    fn add_matches_native_on_normal_values() {
        let mut state = 0xABCDEF12u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u32
        };
        let mut checked = 0;
        for _ in 0..200_000 {
            let a = rand();
            let b = rand();
            if exp_of(a) == 0 || exp_of(b) == 0 || is_nan(a) || is_nan(b) {
                continue;
            }
            let native = f(a) + f(b);
            if native.is_nan() || (native != 0.0 && native.abs() < f32::MIN_POSITIVE) {
                continue; // NaN payloads / subnormal results differ by design
            }
            let golden = fp_add_golden(a, b, false);
            assert_eq!(
                golden.bits,
                native.to_bits(),
                "{a:#010x} + {b:#010x}: golden {:#010x} native {:#010x}",
                golden.bits,
                native.to_bits()
            );
            checked += 1;
        }
        assert!(checked > 100_000, "checked only {checked}");
    }

    #[test]
    fn mul_matches_native_on_normal_values() {
        let mut state = 0x13572468u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u32
        };
        let mut checked = 0;
        for _ in 0..200_000 {
            let a = rand();
            let b = rand();
            if exp_of(a) == 0 || exp_of(b) == 0 || is_nan(a) || is_nan(b) {
                continue;
            }
            let native = f(a) * f(b);
            if native.is_nan() || (native != 0.0 && native.abs() < f32::MIN_POSITIVE) {
                continue;
            }
            let golden = fp_mul_golden(a, b);
            assert_eq!(golden.bits, native.to_bits(), "{a:#010x} * {b:#010x}");
            checked += 1;
        }
        assert!(checked > 100_000, "checked only {checked}");
    }

    #[test]
    fn directed_add_cases() {
        // 1.0 + 1.0 = 2.0
        assert_eq!(
            fp_add_golden(0x3F80_0000, 0x3F80_0000, false).bits,
            0x4000_0000
        );
        // 1.0 - 1.0 = +0
        let r = fp_add_golden(0x3F80_0000, 0x3F80_0000, true);
        assert_eq!(r.bits, 0);
        assert!(!r.flags.nx);
        // inf - inf = qNaN + NV
        let r = fp_add_golden(0x7F80_0000, 0x7F80_0000, true);
        assert_eq!(r.bits, QNAN);
        assert!(r.flags.nv);
        // inf + 1 = inf
        assert_eq!(
            fp_add_golden(0x7F80_0000, 0x3F80_0000, false).bits,
            0x7F80_0000
        );
        // -0 + +0 = +0; -0 + -0 = -0
        assert_eq!(fp_add_golden(0x8000_0000, 0x0000_0000, false).bits, 0);
        assert_eq!(
            fp_add_golden(0x8000_0000, 0x8000_0000, false).bits,
            0x8000_0000
        );
        // Subnormal input flushes: min_subnormal + 1.0 = 1.0 exactly.
        let r = fp_add_golden(0x0000_0001, 0x3F80_0000, false);
        assert_eq!(r.bits, 0x3F80_0000);
        assert!(!r.flags.nx, "flushed input adds exactly");
        // Overflow: max * ~2 via add of two maxes.
        let r = fp_add_golden(0x7F7F_FFFF, 0x7F7F_FFFF, false);
        assert_eq!(r.bits, 0x7F80_0000);
        assert!(r.flags.of && r.flags.nx);
    }

    #[test]
    fn directed_mul_cases() {
        // 2.0 * 3.0 = 6.0
        assert_eq!(fp_mul_golden(0x4000_0000, 0x4040_0000).bits, 0x40C0_0000);
        // inf * 0 = qNaN + NV
        let r = fp_mul_golden(0x7F80_0000, 0);
        assert_eq!(r.bits, QNAN);
        assert!(r.flags.nv);
        // Underflow: tiny * tiny flushes to zero with UF.
        let r = fp_mul_golden(0x0080_0000, 0x0080_0000);
        assert_eq!(r.bits, 0);
        assert!(r.flags.uf && r.flags.nx);
        // Sign: -2 * 3 = -6.
        assert_eq!(fp_mul_golden(0xC000_0000, 0x4040_0000).bits, 0xC0C0_0000);
    }

    #[test]
    fn compares_and_minmax() {
        let one = 0x3F80_0000;
        let two = 0x4000_0000;
        assert_eq!(fp_cmp_golden(FpuOp::Lt, one, two).bits, 1);
        assert_eq!(fp_cmp_golden(FpuOp::Lt, two, one).bits, 0);
        assert_eq!(fp_cmp_golden(FpuOp::Le, one, one).bits, 1);
        assert_eq!(fp_cmp_golden(FpuOp::Eq, one, one).bits, 1);
        // ±0 compare equal.
        assert_eq!(fp_cmp_golden(FpuOp::Eq, 0x8000_0000, 0).bits, 1);
        // NaN: quiet Eq is false without NV (qNaN), Lt raises NV.
        let qnan = QNAN;
        let r = fp_cmp_golden(FpuOp::Eq, qnan, one);
        assert_eq!(r.bits, 0);
        assert!(!r.flags.nv);
        let r = fp_cmp_golden(FpuOp::Lt, qnan, one);
        assert_eq!(r.bits, 0);
        assert!(r.flags.nv);
        // min/max NaN: single NaN yields the other operand.
        assert_eq!(fp_minmax_golden(FpuOp::Min, qnan, one).bits, one);
        assert_eq!(fp_minmax_golden(FpuOp::Max, one, qnan).bits, one);
        assert_eq!(fp_minmax_golden(FpuOp::Min, qnan, qnan).bits, QNAN);
        // -0 < +0 for fmin.
        assert_eq!(
            fp_minmax_golden(FpuOp::Min, 0x8000_0000, 0).bits,
            0x8000_0000
        );
        assert_eq!(fp_minmax_golden(FpuOp::Max, 0x8000_0000, 0).bits, 0);
        // min/max match native on normal values.
        let vals = [one, two, 0xC000_0000u32, 0x4110_0000];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    f32::from_bits(fp_minmax_golden(FpuOp::Min, a, b).bits),
                    f32::from_bits(a).min(f32::from_bits(b))
                );
            }
        }
    }

    #[test]
    fn alu_golden_spot_checks() {
        assert_eq!(alu_golden(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu_golden(AluOp::Sub, 0, 1), u32::MAX);
        assert_eq!(
            alu_golden(AluOp::Sll, 1, 33),
            2,
            "shift amount masked to 5 bits"
        );
        assert_eq!(alu_golden(AluOp::Sra, 0x8000_0000, 31), u32::MAX);
        assert_eq!(alu_golden(AluOp::Slt, u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(alu_golden(AluOp::Sltu, u32::MAX, 0), 0);
    }
}
