//! Structural gate-level circuit generators for the Vega evaluation.
//!
//! The paper evaluates Vega on the ALU and FPU of the CV32E40P RISC-V
//! core, synthesized into a 28 nm standard-cell library. Those P&R
//! databases are proprietary, so this crate *builds* equivalent functional
//! units from scratch as [`vega_netlist::Netlist`]s:
//!
//! * [`alu::build_alu`] — a 32-bit RV32I ALU (add, sub, shifts, set-less-
//!   than, bitwise ops) with registered inputs and outputs and a buffered
//!   clock tree.
//! * [`fpu::build_fpu`] — an FP32 floating-point unit (add, sub, mul,
//!   min/max, compares) with round-to-nearest-even, flush-to-zero
//!   subnormal handling, IEEE special-case logic, exception flags, a
//!   valid-bit handshake, and clock-gated pipeline registers — the gating
//!   that makes its clock branches age at different rates.
//! * [`adder_example::build_paper_adder`] — the 2-bit pipelined adder of
//!   the paper's worked example (Listing 1 / Figure 3).
//! * [`golden`] — bit-exact software models of both units, used by the
//!   equivalence tests here and as the reference semantics for
//!   co-simulation in `vega-riscv`.
//!
//! All generators produce validated netlists using only the standard
//! cells in [`vega_netlist::CellKind`], so every downstream phase
//! (simulation, STA, formal, instrumentation) works on them unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder_example;
pub mod alu;
pub mod fpu;
pub mod golden;
mod words;

pub use words::Words;
