//! Word-level structural construction helpers.
//!
//! [`Words`] wraps a [`NetlistBuilder`] with multi-bit operations — ripple
//! adders, barrel shifters, comparators, carry-save multiplier arrays —
//! from which the ALU and FPU generators compose their datapaths. Every
//! generated cell gets a unique `prefix_tag_N` instance name, so the same
//! helper can be used many times within one module.

use vega_netlist::{CellKind, NetId, NetlistBuilder};

/// A word-level gate generator over a [`NetlistBuilder`].
#[derive(Debug)]
pub struct Words<'a> {
    builder: &'a mut NetlistBuilder,
    prefix: String,
    counter: u64,
}

impl<'a> Words<'a> {
    /// Wrap `builder`; generated cell names start with `prefix`.
    pub fn new(builder: &'a mut NetlistBuilder, prefix: impl Into<String>) -> Self {
        Words {
            builder,
            prefix: prefix.into(),
            counter: 0,
        }
    }

    /// Access the underlying builder.
    pub fn builder(&mut self) -> &mut NetlistBuilder {
        self.builder
    }

    fn name(&mut self, tag: &str) -> String {
        let name = format!("{}_{}_{}", self.prefix, tag, self.counter);
        self.counter += 1;
        name
    }

    /// Instantiate one gate.
    pub fn gate(&mut self, kind: CellKind, tag: &str, inputs: &[NetId]) -> NetId {
        let name = self.name(tag);
        self.builder.cell(kind, name, inputs)
    }

    /// Constant 0 bit.
    pub fn zero(&mut self) -> NetId {
        self.gate(CellKind::Const0, "tielo", &[])
    }

    /// Constant 1 bit.
    pub fn one(&mut self) -> NetId {
        self.gate(CellKind::Const1, "tiehi", &[])
    }

    /// A constant word of the given width (LSB first).
    pub fn const_word(&mut self, value: u64, width: usize) -> Vec<NetId> {
        // Share the two tie cells across the word.
        let zero = self.zero();
        let one = self.one();
        (0..width)
            .map(|i| if (value >> i) & 1 == 1 { one } else { zero })
            .collect()
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: &[NetId]) -> Vec<NetId> {
        a.iter()
            .map(|&bit| self.gate(CellKind::Not, "not", &[bit]))
            .collect()
    }

    /// Bitwise binary op over equal-width words.
    fn bitwise(&mut self, kind: CellKind, tag: &str, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.gate(kind, tag, &[x, y]))
            .collect()
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        self.bitwise(CellKind::And2, "and", a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        self.bitwise(CellKind::Or2, "or", a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        self.bitwise(CellKind::Xor2, "xor", a, b)
    }

    /// AND every bit of `a` with the single bit `bit`.
    pub fn and_bit(&mut self, a: &[NetId], bit: NetId) -> Vec<NetId> {
        a.iter()
            .map(|&x| self.gate(CellKind::And2, "andb", &[x, bit]))
            .collect()
    }

    /// XOR every bit of `a` with the single bit `bit`.
    pub fn xor_bit(&mut self, a: &[NetId], bit: NetId) -> Vec<NetId> {
        a.iter()
            .map(|&x| self.gate(CellKind::Xor2, "xorb", &[x, bit]))
            .collect()
    }

    /// Per-bit select: `sel ? when1 : when0`.
    pub fn mux(&mut self, sel: NetId, when0: &[NetId], when1: &[NetId]) -> Vec<NetId> {
        assert_eq!(when0.len(), when1.len());
        when0
            .iter()
            .zip(when1)
            .map(|(&a, &b)| self.gate(CellKind::Mux2, "mux", &[a, b, sel]))
            .collect()
    }

    /// Single-bit select: `sel ? when1 : when0`.
    pub fn mux_bit(&mut self, sel: NetId, when0: NetId, when1: NetId) -> NetId {
        self.gate(CellKind::Mux2, "muxb", &[when0, when1, sel])
    }

    /// OR-reduce a word to one bit (balanced tree).
    pub fn reduce_or(&mut self, a: &[NetId]) -> NetId {
        self.reduce(CellKind::Or2, "ror", a)
    }

    /// AND-reduce a word to one bit (balanced tree).
    pub fn reduce_and(&mut self, a: &[NetId]) -> NetId {
        self.reduce(CellKind::And2, "rand", a)
    }

    fn reduce(&mut self, kind: CellKind, tag: &str, a: &[NetId]) -> NetId {
        assert!(!a.is_empty());
        let mut level: Vec<NetId> = a.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.gate(kind, tag, &[pair[0], pair[1]])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        level[0]
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        let axb = self.gate(CellKind::Xor2, "fa_x", &[a, b]);
        let sum = self.gate(CellKind::Xor2, "fa_s", &[axb, cin]);
        let carry = self.gate(CellKind::Maj3, "fa_c", &[a, b, cin]);
        (sum, carry)
    }

    /// Ripple-carry addition: `a + b + cin`, returning `(sum, carry_out)`.
    pub fn adder(&mut self, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len());
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.full_adder(x, y, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Subtraction `a - b`, returning `(difference, no_borrow)`.
    ///
    /// `no_borrow` (the adder's carry-out) is 1 iff `a >= b` unsigned.
    pub fn subtractor(&mut self, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
        let nb = self.not(b);
        let one = self.one();
        self.adder(a, &nb, one)
    }

    /// Increment by one: `(a + 1, carry_out)`.
    pub fn increment(&mut self, a: &[NetId]) -> (Vec<NetId>, NetId) {
        // Half-adder chain.
        let mut carry = self.one();
        let mut sum = Vec::with_capacity(a.len());
        for &x in a {
            let s = self.gate(CellKind::Xor2, "inc_s", &[x, carry]);
            let c = self.gate(CellKind::And2, "inc_c", &[x, carry]);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Equality of two words.
    pub fn equal(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let x = self.xor(a, b);
        let any = self.reduce_or(&x);
        self.gate(CellKind::Not, "eq", &[any])
    }

    /// Whether the word is zero.
    pub fn is_zero(&mut self, a: &[NetId]) -> NetId {
        let any = self.reduce_or(a);
        self.gate(CellKind::Not, "isz", &[any])
    }

    /// Unsigned `a < b`.
    pub fn less_unsigned(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let (_, no_borrow) = self.subtractor(a, b);
        self.gate(CellKind::Not, "ltu", &[no_borrow])
    }

    /// Signed `a < b` (two's complement).
    pub fn less_signed(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let (diff, _) = self.subtractor(a, b);
        let sa = *a.last().unwrap();
        let sb = *b.last().unwrap();
        let ds = *diff.last().unwrap();
        // signs differ ? a_sign : diff_sign
        let signs_differ = self.gate(CellKind::Xor2, "lts_x", &[sa, sb]);
        self.gate(CellKind::Mux2, "lts", &[ds, sa, signs_differ])
    }

    /// Logical/arithmetic barrel shifter right by `amount` (LSB-first
    /// amount bits). `fill` supplies the shifted-in bit (tie 0 for
    /// logical, the sign bit for arithmetic).
    pub fn shift_right(&mut self, a: &[NetId], amount: &[NetId], fill: NetId) -> Vec<NetId> {
        let mut current = a.to_vec();
        for (stage, &amt_bit) in amount.iter().enumerate() {
            let dist = 1usize << stage;
            if dist >= current.len() {
                // Shifting by >= width when this bit is set: all fill.
                let all_fill = vec![fill; current.len()];
                current = self.mux(amt_bit, &current, &all_fill);
                continue;
            }
            let shifted: Vec<NetId> = (0..current.len())
                .map(|i| {
                    if i + dist < current.len() {
                        current[i + dist]
                    } else {
                        fill
                    }
                })
                .collect();
            current = self.mux(amt_bit, &current, &shifted);
        }
        current
    }

    /// Barrel shifter right that also accumulates a sticky bit: returns
    /// `(shifted, sticky)` where `sticky` ORs every bit shifted out.
    /// Used by floating-point alignment.
    pub fn shift_right_sticky(&mut self, a: &[NetId], amount: &[NetId]) -> (Vec<NetId>, NetId) {
        let fill = self.zero();
        let mut sticky = self.zero();
        let mut current = a.to_vec();
        for (stage, &amt_bit) in amount.iter().enumerate() {
            let dist = 1usize << stage;
            let dropped: Vec<NetId> = current
                .iter()
                .copied()
                .take(dist.min(current.len()))
                .collect();
            let dropped_any = self.reduce_or(&dropped);
            let stage_sticky = self.gate(CellKind::And2, "stk_a", &[dropped_any, amt_bit]);
            sticky = self.gate(CellKind::Or2, "stk_o", &[sticky, stage_sticky]);
            if dist >= current.len() {
                let all_fill = vec![fill; current.len()];
                current = self.mux(amt_bit, &current, &all_fill);
                continue;
            }
            let shifted: Vec<NetId> = (0..current.len())
                .map(|i| {
                    if i + dist < current.len() {
                        current[i + dist]
                    } else {
                        fill
                    }
                })
                .collect();
            current = self.mux(amt_bit, &current, &shifted);
        }
        (current, sticky)
    }

    /// Barrel shifter left by `amount`, filling with zeros.
    pub fn shift_left(&mut self, a: &[NetId], amount: &[NetId]) -> Vec<NetId> {
        let fill = self.zero();
        let mut current = a.to_vec();
        for (stage, &amt_bit) in amount.iter().enumerate() {
            let dist = 1usize << stage;
            if dist >= current.len() {
                let all_fill = vec![fill; current.len()];
                current = self.mux(amt_bit, &current, &all_fill);
                continue;
            }
            let shifted: Vec<NetId> = (0..current.len())
                .map(|i| if i >= dist { current[i - dist] } else { fill })
                .collect();
            current = self.mux(amt_bit, &current, &shifted);
        }
        current
    }

    /// Leading-zero count of `a` (counting from the MSB), as a word wide
    /// enough to hold `a.len()`.
    pub fn leading_zeros(&mut self, a: &[NetId]) -> Vec<NetId> {
        // Priority scan from the MSB: lzc = index of first 1 from the top.
        // Straightforward mux cascade: walk from LSB to MSB, replacing the
        // count whenever a set bit is seen closer to the MSB.
        let width = usize::BITS as usize - (a.len()).leading_zeros() as usize;
        let mut count = self.const_word(a.len() as u64, width); // all zero
        for (i, &bit) in a.iter().enumerate() {
            // If bit i (0 = LSB) is set, lzc so far = len-1-i; scanning
            // from LSB upward means later (more significant) bits override.
            let candidate = self.const_word((a.len() - 1 - i) as u64, width);
            count = self.mux(bit, &count, &candidate);
        }
        count
    }

    /// Carry-save multiplier array: unsigned `a * b`, full width
    /// (`a.len() + b.len()` bits).
    pub fn multiply(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        let n = a.len();
        let m = b.len();
        let width = n + m;
        let zero = self.zero();
        // Partial products in carry-save form.
        let mut sum: Vec<NetId> = vec![zero; width];
        let mut carry: Vec<NetId> = vec![zero; width];
        for (j, &bj) in b.iter().enumerate() {
            // pp = (a & bj) << j
            let pp_bits = self.and_bit(a, bj);
            let mut pp: Vec<NetId> = vec![zero; width];
            pp[j..j + n].copy_from_slice(&pp_bits);
            // 3:2 compress (sum, carry, pp) -> (sum', carry').
            let mut new_sum = Vec::with_capacity(width);
            let mut new_carry = vec![zero; width];
            for i in 0..width {
                let (s, c) = self.full_adder(sum[i], carry[i], pp[i]);
                new_sum.push(s);
                if i + 1 < width {
                    new_carry[i + 1] = c;
                }
            }
            sum = new_sum;
            carry = new_carry;
        }
        // Final carry-propagate addition.
        let (result, _) = self.adder(&sum, &carry, zero);
        result
    }

    /// Register a word behind flip-flops clocked by `clock`; returns the
    /// Q-side word. Names use the given tag.
    pub fn register(&mut self, tag: &str, word: &[NetId], clock: NetId) -> Vec<NetId> {
        word.iter()
            .map(|&bit| {
                let name = self.name(tag);
                self.builder.dff(name, bit, clock)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_netlist::Netlist;
    use vega_sim::Simulator;

    /// Build a combinational test harness: f(a, b) wired to output `y`.
    fn harness(
        a_width: usize,
        b_width: usize,
        f: impl FnOnce(&mut Words<'_>, &[NetId], &[NetId]) -> Vec<NetId>,
    ) -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let a_in = b.input("a", a_width);
        let b_in = b.input("b", b_width);
        let mut w = Words::new(&mut b, "u");
        let y = f(&mut w, &a_in, &b_in);
        b.output("y", &y);
        b.finish().unwrap()
    }

    fn eval(n: &Netlist, a: u64, b: u64) -> u64 {
        let mut sim = Simulator::new(n);
        sim.set_input("a", a);
        sim.set_input("b", b);
        sim.settle_inputs();
        sim.output("y")
    }

    #[test]
    fn adder_matches_arithmetic() {
        let n = harness(8, 8, |w, a, b| {
            let zero = w.zero();
            let (sum, carry) = w.adder(a, b, zero);
            let mut out = sum;
            out.push(carry);
            out
        });
        for (a, b) in [
            (0u64, 0u64),
            (1, 1),
            (255, 255),
            (170, 85),
            (200, 100),
            (7, 250),
        ] {
            assert_eq!(eval(&n, a, b), a + b, "{a}+{b}");
        }
    }

    #[test]
    fn subtractor_and_comparisons() {
        let n = harness(8, 8, |w, a, b| {
            let (diff, no_borrow) = w.subtractor(a, b);
            let ltu = w.less_unsigned(a, b);
            let lts = w.less_signed(a, b);
            let eq = w.equal(a, b);
            let mut out = diff;
            out.extend([no_borrow, ltu, lts, eq]);
            out
        });
        for (a, b) in [
            (5u64, 3u64),
            (3, 5),
            (0, 0),
            (255, 1),
            (128, 127),
            (127, 128),
        ] {
            let out = eval(&n, a, b);
            let diff = out & 0xFF;
            let no_borrow = (out >> 8) & 1;
            let ltu = (out >> 9) & 1;
            let lts = (out >> 10) & 1;
            let eq = (out >> 11) & 1;
            assert_eq!(diff, (a.wrapping_sub(b)) & 0xFF, "{a}-{b}");
            assert_eq!(no_borrow, u64::from(a >= b));
            assert_eq!(ltu, u64::from(a < b));
            let sa = a as u8 as i8;
            let sb = b as u8 as i8;
            assert_eq!(lts, u64::from(sa < sb), "signed {sa} < {sb}");
            assert_eq!(eq, u64::from(a == b));
        }
    }

    #[test]
    fn shifters() {
        let logical = harness(16, 4, |w, a, amt| {
            let zero = w.zero();
            w.shift_right(a, amt, zero)
        });
        let left = harness(16, 4, |w, a, amt| w.shift_left(a, amt));
        for a in [0xFFFFu64, 0x8001, 0x1234] {
            for amt in 0..16u64 {
                assert_eq!(eval(&logical, a, amt), a >> amt, "{a:#x} >> {amt}");
                assert_eq!(eval(&left, a, amt), (a << amt) & 0xFFFF, "{a:#x} << {amt}");
            }
        }
        let arith = harness(8, 3, |w, a, amt| {
            let sign = *a.last().unwrap();
            w.shift_right(a, amt, sign)
        });
        for a in [0x80u64, 0xFF, 0x7F, 0x40] {
            for amt in 0..8u64 {
                let expected = ((a as u8 as i8) >> amt) as u8 as u64;
                assert_eq!(eval(&arith, a, amt), expected, "{a:#x} >>a {amt}");
            }
        }
    }

    #[test]
    fn sticky_shifter_collects_dropped_bits() {
        let n = harness(8, 3, |w, a, amt| {
            let (shifted, sticky) = w.shift_right_sticky(a, amt);
            let mut out = shifted;
            out.push(sticky);
            out
        });
        for a in [0b1011_0101u64, 0x80, 0x01, 0x00] {
            for amt in 0..8u64 {
                let out = eval(&n, a, amt);
                let shifted = out & 0xFF;
                let sticky = (out >> 8) & 1;
                assert_eq!(shifted, a >> amt);
                let dropped = a & ((1 << amt) - 1);
                assert_eq!(sticky, u64::from(dropped != 0), "{a:#x} amt={amt}");
            }
        }
    }

    #[test]
    fn multiplier_exhaustive_6x6() {
        let n = harness(6, 6, |w, a, b| w.multiply(a, b));
        for a in 0..64u64 {
            for b in 0..64u64 {
                assert_eq!(eval(&n, a, b), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn leading_zeros_count() {
        let n = harness(8, 1, |w, a, _| w.leading_zeros(a));
        for a in 0..256u64 {
            let expected = (a as u8).leading_zeros() as u64;
            assert_eq!(eval(&n, a, 0), expected, "lzc({a:#010b})");
        }
    }

    #[test]
    fn increment_wraps() {
        let n = harness(4, 1, |w, a, _| {
            let (inc, carry) = w.increment(a);
            let mut out = inc;
            out.push(carry);
            out
        });
        for a in 0..16u64 {
            let out = eval(&n, a, 0);
            assert_eq!(out & 0xF, (a + 1) & 0xF);
            assert_eq!(out >> 4, u64::from(a == 15));
        }
    }

    #[test]
    fn reductions_and_mux() {
        let n = harness(5, 1, |w, a, s| {
            let ror = w.reduce_or(a);
            let rand = w.reduce_and(a);
            let zeros = w.const_word(0, 5);
            let picked = w.mux(s[0], a, &zeros);
            let mut out = vec![ror, rand];
            out.extend(picked);
            out
        });
        for a in [0u64, 31, 7, 16] {
            for s in 0..2u64 {
                let out = eval(&n, a, s);
                assert_eq!(out & 1, u64::from(a != 0));
                assert_eq!((out >> 1) & 1, u64::from(a == 31));
                let picked = out >> 2;
                assert_eq!(picked, if s == 1 { 0 } else { a });
            }
        }
    }

    use vega_netlist::NetlistBuilder;
}
