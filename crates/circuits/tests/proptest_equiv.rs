//! Property tests: the gate-level ALU and FPU are bit-equal to their
//! golden software models on arbitrary operands, including "adversarial"
//! FP encodings biased toward special values.

use std::sync::OnceLock;

use proptest::prelude::*;

use vega_circuits::alu::{build_alu, ALU_LATENCY};
use vega_circuits::fpu::{build_fpu, FPU_LATENCY};
use vega_circuits::golden::{alu_golden, fpu_golden, AluOp, FpuOp};
use vega_netlist::Netlist;
use vega_sim::Simulator;

fn alu_netlist() -> &'static Netlist {
    static N: OnceLock<Netlist> = OnceLock::new();
    N.get_or_init(build_alu)
}

fn fpu_netlist() -> &'static Netlist {
    static N: OnceLock<Netlist> = OnceLock::new();
    N.get_or_init(build_fpu)
}

/// FP32 operand strategy biased toward interesting encodings.
fn fp_operand() -> impl Strategy<Value = u32> {
    prop_oneof![
        3 => any::<u32>(),
        1 => Just(0x0000_0000u32),          // +0
        1 => Just(0x8000_0000),             // -0
        1 => Just(0x7F80_0000),             // +inf
        1 => Just(0xFF80_0000),             // -inf
        1 => Just(0x7FC0_0000),             // qNaN
        1 => Just(0x7F80_0001),             // sNaN
        1 => 0u32..0x0080_0000,           // subnormals
        1 => 0x7F00_0000u32..0x7F80_0000, // huge normals
        1 => Just(0x3F80_0000),             // 1.0
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn alu_matches_golden(op_index in 0usize..10, a in any::<u32>(), b in any::<u32>()) {
        let op = AluOp::ALL[op_index];
        let netlist = alu_netlist();
        let mut sim = Simulator::new(netlist);
        sim.set_input("op", op.encoding());
        sim.set_input("a", u64::from(a));
        sim.set_input("b", u64::from(b));
        for _ in 0..ALU_LATENCY {
            sim.step();
        }
        prop_assert_eq!(sim.output("r") as u32, alu_golden(op, a, b),
            "{:?}({:#x}, {:#x})", op, a, b);
    }

    #[test]
    fn fpu_matches_golden(op_index in 0usize..8, a in fp_operand(), b in fp_operand()) {
        let op = FpuOp::ALL[op_index];
        let netlist = fpu_netlist();
        let mut sim = Simulator::new(netlist);
        sim.set_input("op", op.encoding());
        sim.set_input("a", u64::from(a));
        sim.set_input("b", u64::from(b));
        sim.set_input("valid", 1);
        for _ in 0..FPU_LATENCY {
            sim.step();
        }
        let golden = fpu_golden(op, a, b);
        prop_assert_eq!(sim.output("r") as u32, golden.bits,
            "{:?}({:#010x}, {:#010x})", op, a, b);
        prop_assert_eq!(sim.output("flags") as u32, golden.flags.to_bits(),
            "{:?}({:#010x}, {:#010x}) flags", op, a, b);
    }

    /// Back-to-back pipelined operations do not interfere: issuing a
    /// second operation right behind the first leaves both correct.
    #[test]
    fn alu_pipelining_is_hazard_free(
        ops in prop::collection::vec((0usize..10, any::<u32>(), any::<u32>()), 2..6)
    ) {
        let netlist = alu_netlist();
        let mut sim = Simulator::new(netlist);
        let expected: Vec<u32> = ops
            .iter()
            .map(|&(op_index, a, b)| alu_golden(AluOp::ALL[op_index], a, b))
            .collect();
        // Issue one op per cycle; the result of op i is registered after
        // i + LATENCY steps, i.e. readable at loop iteration i + LATENCY
        // before that iteration's step.
        for t in 0..ops.len() + ALU_LATENCY {
            if let Some(&(op_index, a, b)) = ops.get(t) {
                sim.set_input("op", AluOp::ALL[op_index].encoding());
                sim.set_input("a", u64::from(a));
                sim.set_input("b", u64::from(b));
            }
            if t >= ALU_LATENCY {
                prop_assert_eq!(
                    sim.output("r") as u32,
                    expected[t - ALU_LATENCY],
                    "pipelined result {} corrupted", t - ALU_LATENCY
                );
            }
            sim.step();
        }
    }
}

/// Structured (non-random) grid over the FP adder's alignment and
/// rounding space: exponent deltas from 0 to far-out-of-range, extreme
/// mantissas, both signs, add and sub. These are the corners where
/// guard/round/sticky bugs live.
#[test]
fn fpu_add_grid_matches_golden() {
    let netlist = fpu_netlist();
    let mut sim = Simulator::new(netlist);
    let exponents = [1u32, 2, 126, 127, 150, 254];
    let mantissas = [0u32, 1, 0x40_0001, 0x7F_FFFF];
    let mut cases = 0;
    for &ea in &exponents {
        for &eb in &exponents {
            for &ma in &mantissas {
                for &mb in &mantissas {
                    for (sa, sb) in [(0u32, 0u32), (0, 1)] {
                        for op in [FpuOp::Add, FpuOp::Sub] {
                            let a = sa << 31 | ea << 23 | ma;
                            let b = sb << 31 | eb << 23 | mb;
                            sim.set_input("op", op.encoding());
                            sim.set_input("a", u64::from(a));
                            sim.set_input("b", u64::from(b));
                            sim.set_input("valid", 1);
                            for _ in 0..FPU_LATENCY {
                                sim.step();
                            }
                            let golden = fpu_golden(op, a, b);
                            assert_eq!(
                                sim.output("r") as u32,
                                golden.bits,
                                "{op:?}({a:#010x}, {b:#010x})"
                            );
                            assert_eq!(
                                sim.output("flags") as u32,
                                golden.flags.to_bits(),
                                "{op:?}({a:#010x}, {b:#010x}) flags"
                            );
                            cases += 1;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(cases, 6 * 6 * 4 * 4 * 2 * 2);
}

/// The multiplier grid: exponent sums around underflow/overflow and
/// mantissas that produce carries out of bit 47.
#[test]
fn fpu_mul_grid_matches_golden() {
    let netlist = fpu_netlist();
    let mut sim = Simulator::new(netlist);
    let exponents = [1u32, 63, 127, 128, 192, 254];
    let mantissas = [0u32, 1, 0x5A_5A5A, 0x7F_FFFF];
    for &ea in &exponents {
        for &eb in &exponents {
            for &ma in &mantissas {
                for &mb in &mantissas {
                    let a = ea << 23 | ma;
                    let b = 1 << 31 | eb << 23 | mb;
                    sim.set_input("op", FpuOp::Mul.encoding());
                    sim.set_input("a", u64::from(a));
                    sim.set_input("b", u64::from(b));
                    sim.set_input("valid", 1);
                    for _ in 0..FPU_LATENCY {
                        sim.step();
                    }
                    let golden = fpu_golden(FpuOp::Mul, a, b);
                    assert_eq!(
                        sim.output("r") as u32,
                        golden.bits,
                        "mul({a:#010x}, {b:#010x})"
                    );
                }
            }
        }
    }
}
