//! The `vega` command-line driver: run the workflow phases and export
//! artifacts without writing Rust.
//!
//! ```console
//! $ vega analyze --unit alu                 # phase 1: SP profile + aging STA
//! $ vega profile --unit alu                 # phase 1: SP profile only
//! $ vega lift --unit fpu --pairs 4          # phase 2: test-case construction
//! $ vega suite --unit alu --emit-c out.c    # phase 3: C aging library
//! $ vega artifacts --unit alu --dir out/    # failing netlists as Verilog
//! $ vega report --unit fpu                  # synthesis-style netlist report
//! $ vega fleet --machines 64 --epochs 32 \
//!        --policy adaptive --seed 1         # fleet-scale detection simulation
//! $ vega lift --obs-journal run.jsonl       # record a structured run journal
//! $ vega report run.jsonl                   # render phase timings + metrics
//! $ vega serve --state-dir state/           # crash-recoverable daemon mode
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency is in the offline
//! allowlist); every subcommand prints its own usage on `--help`.

use std::collections::BTreeMap;
use std::process::ExitCode;

use vega::*;
use vega_circuits::{adder_example::build_paper_adder, alu::build_alu, fpu::build_fpu};

fn usage() -> &'static str {
    "vega — proactive runtime detection of aging-related SDCs

USAGE:
    vega <COMMAND> [OPTIONS]

COMMANDS:
    analyze     phase 1: profile + aging-aware STA (Table 3-style row)
    profile     phase 1 (first half): SP profiling only
    lift        phase 2: construct test cases for the worst pairs
    suite       phases 1-3: build the suite; optionally emit the C library
    artifacts   export failing netlists as structural Verilog
    report      synthesis-style netlist statistics, or — given a journal
                path — phase timings, solver effort, and fleet latency
                from a recorded run (`vega report run.jsonl [--prom]`)
    fleet       simulate fleet-scale detection: scheduling, quarantine,
                telemetry (phases 1-2 feed the machine population);
                --sp-mode picks how Phase-1 SP assessment is obtained
    predict     train/eval/inspect the SP predictor that replaces exact
                Phase-1 profiling (`vega predict train|eval|inspect`)
    serve       crash-recoverable service mode: run phases 2-3 under a
                write-ahead log; a killed run resumes exactly where it
                stopped (same --state-dir, same arguments);
                --status prints the WAL state read-only instead
    top         poll a live process's telemetry endpoints and render a
                terminal dashboard (`vega top http://127.0.0.1:PORT`):
                phase progress, solver-effort rates, fleet health, and
                detection-latency percentiles

COMMON OPTIONS:
    --unit <alu|fpu|adder>    unit under analysis     [default: alu]
    --years <f64>             mission lifetime        [default: 10]
    --pairs <n>               unique pairs to lift    [default: 4]
    --mitigation              enable the \u{a7}3.3.4 edge-gated mitigation
    --profile-cycles <n>      random profiling cycles [default: 2000]
    --threads <n>             worker threads for lifting and fleet
                              epochs (never changes results) [default: 1]
    --retries <n>             formal tries per attempt, doubling the
                              conflict budget each time [default: 1]
    --lift-budget <c>         (lift|suite|serve) override the per-attempt
                              formal conflict budget
                              [default: module-specific]
    --portfolio <n>           (lift|suite|serve) race n solver backends
                              when a formal attempt exhausts its budget;
                              first definitive answer wins, losers are
                              cancelled (0 or 1 = off)   [default: 0]
    --portfolio-threshold <c> conflicts an exhausted round must have
                              spent before the attempt escalates to
                              racing                     [default: 0]
    --fuzz-fallback           degrade budget-exhausted pairs to fuzzing
    --checkpoint <path>       (lift|suite) record per-pair progress
    --resume                  (lift|suite) continue from the checkpoint
    --stop-after <n>          (lift|suite) suspend after n new pairs
    --emit-c <path>           (suite) write the C aging library
    --dir <path>              (artifacts) output directory [default: .]
    --obs-journal <path>      record a schema-versioned JSONL run journal
    --obs-level <level>       off|summary|detail         [default: summary]
    --listen <addr>           (serve|fleet|suite) serve live telemetry over
                              HTTP while the run executes: GET /metrics
                              (Prometheus), /status (JSON), /healthz
                              (200/503); e.g. --listen 127.0.0.1:9090
                              (port 0 picks an ephemeral port, printed on
                              stderr and — under serve — written to
                              <state-dir>/http.addr)
    --prom                    (report <journal>) print the metrics as
                              Prometheus exposition text instead

FLEET OPTIONS:
    --machines <n>            fleet size                     [default: 16]
    --epochs <n>              epochs to simulate             [default: 8]
    --budget <cycles>         per-epoch test-cycle budget
                              [default: scans ~1/4 of the fleet]
    --policy <name>           round-robin|random|adaptive    [default: adaptive]
    --seed <u64>              master seed (fixes everything) [default: 1]
    --fault-fraction <f64>    expected faulty fraction       [default: 0.25]
    --regions <n>             shard the fleet into n contiguous regions
                              [default: one region per ~1k machines]
    --scheduler <name>        central|hierarchical: how the epoch budget
                              is split across regions [default: central]
    --out <path>              also write the telemetry JSON to a file
                              (it always streams to stdout)
    --sp-mode <mode>          exact|predicted|predicted-fallback: how each
                              machine's Phase-1 SP assessment is obtained
                              [default: no assessment]
    --guard-band <ns>         (predicted-fallback) escalate a machine to
                              exact profiling when its predicted worst
                              margin is within this band of zero slack
                              [default: 0.005]

PREDICT OPTIONS (also apply to fleet --sp-mode):
    --trainer <name>          ridge|boosted                  [default: ridge]
    --holdout <f64>           holdout fraction for eval      [default: 0.25]
    --probe-cycles <n>        probe-profile cycles feeding the stimulus
                              summary features               [default: 256]
    --model <path>            (eval|inspect) saved model JSON to load

SERVE OPTIONS:
    --state-dir <dir>         (serve, required) directory holding the WAL
                              (wal.jsonl), the lifting checkpoint, and the
                              final telemetry artifact
    --status                  print the WAL's recovery state (last sequence,
                              completed/in-doubt ops, clean-shutdown flag)
                              without running or mutating anything
    --chaos-kill-seq <n>      (serve, tests) abort the process while
                              appending WAL sequence number n
    --chaos-torn              (serve, tests) make that abort tear the WAL
                              line mid-write

TOP OPTIONS:
    --interval-ms <n>         poll interval                  [default: 500]
    --samples <n>             stop after n polls   [default: run until done]
    --plain                   append one block per sample instead of
                              redrawing the screen (for logs and tests)
"
}

#[derive(Debug)]
struct Options {
    unit: String,
    years: f64,
    pairs: usize,
    mitigation: bool,
    profile_cycles: usize,
    threads: usize,
    retries: usize,
    lift_budget: Option<u64>,
    portfolio: usize,
    portfolio_threshold: u64,
    fuzz_fallback: bool,
    checkpoint: Option<String>,
    resume: bool,
    stop_after: Option<usize>,
    emit_c: Option<String>,
    dir: String,
    machines: usize,
    epochs: u64,
    budget: Option<u64>,
    policy: Policy,
    seed: u64,
    fault_fraction: f64,
    regions: Option<usize>,
    scheduler: Scheduler,
    out: Option<String>,
    obs_journal: Option<String>,
    obs_level: obs::Level,
    listen: Option<String>,
    interval_ms: u64,
    samples: Option<usize>,
    plain: bool,
    prom: bool,
    state_dir: Option<String>,
    chaos_kill_seq: Option<u64>,
    chaos_torn: bool,
    sp_mode: Option<SpMode>,
    guard_band: f64,
    trainer: TrainerKind,
    holdout: f64,
    probe_cycles: usize,
    model: Option<String>,
    status: bool,
    /// First bare (non-flag) argument: the journal path for
    /// `vega report <journal.jsonl>`, or the action for
    /// `vega predict <train|eval|inspect>`.
    journal: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        unit: "alu".into(),
        years: 10.0,
        pairs: 4,
        mitigation: false,
        profile_cycles: 2000,
        threads: 1,
        retries: 1,
        lift_budget: None,
        portfolio: 0,
        portfolio_threshold: 0,
        fuzz_fallback: false,
        checkpoint: None,
        resume: false,
        stop_after: None,
        emit_c: None,
        dir: ".".into(),
        machines: 16,
        epochs: 8,
        budget: None,
        policy: Policy::Adaptive,
        seed: 1,
        fault_fraction: 0.25,
        regions: None,
        scheduler: Scheduler::Central,
        out: None,
        obs_journal: None,
        obs_level: obs::Level::Summary,
        listen: None,
        interval_ms: 500,
        samples: None,
        plain: false,
        prom: false,
        state_dir: None,
        chaos_kill_seq: None,
        chaos_torn: false,
        sp_mode: None,
        guard_band: 0.005,
        trainer: TrainerKind::Ridge,
        holdout: 0.25,
        probe_cycles: 256,
        model: None,
        status: false,
        journal: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--unit" => options.unit = value("--unit")?,
            "--years" => {
                options.years = value("--years")?
                    .parse()
                    .map_err(|e| format!("--years: {e}"))?
            }
            "--pairs" => {
                options.pairs = value("--pairs")?
                    .parse()
                    .map_err(|e| format!("--pairs: {e}"))?
            }
            "--profile-cycles" => {
                options.profile_cycles = value("--profile-cycles")?
                    .parse()
                    .map_err(|e| format!("--profile-cycles: {e}"))?
            }
            "--mitigation" => options.mitigation = true,
            "--threads" => {
                options.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--retries" => {
                options.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--lift-budget" => {
                options.lift_budget = Some(
                    value("--lift-budget")?
                        .parse()
                        .map_err(|e| format!("--lift-budget: {e}"))?,
                )
            }
            "--portfolio" => {
                options.portfolio = value("--portfolio")?
                    .parse()
                    .map_err(|e| format!("--portfolio: {e}"))?
            }
            "--portfolio-threshold" => {
                options.portfolio_threshold = value("--portfolio-threshold")?
                    .parse()
                    .map_err(|e| format!("--portfolio-threshold: {e}"))?
            }
            "--fuzz-fallback" => options.fuzz_fallback = true,
            "--checkpoint" => options.checkpoint = Some(value("--checkpoint")?),
            "--resume" => options.resume = true,
            "--stop-after" => {
                options.stop_after = Some(
                    value("--stop-after")?
                        .parse()
                        .map_err(|e| format!("--stop-after: {e}"))?,
                )
            }
            "--emit-c" => options.emit_c = Some(value("--emit-c")?),
            "--dir" => options.dir = value("--dir")?,
            "--machines" => {
                options.machines = value("--machines")?
                    .parse()
                    .map_err(|e| format!("--machines: {e}"))?
            }
            "--epochs" => {
                options.epochs = value("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?
            }
            "--budget" => {
                options.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                )
            }
            "--policy" => options.policy = value("--policy")?.parse()?,
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--fault-fraction" => {
                options.fault_fraction = value("--fault-fraction")?
                    .parse()
                    .map_err(|e| format!("--fault-fraction: {e}"))?
            }
            "--regions" => {
                options.regions = Some(
                    value("--regions")?
                        .parse()
                        .map_err(|e| format!("--regions: {e}"))?,
                )
            }
            "--scheduler" => options.scheduler = value("--scheduler")?.parse()?,
            "--out" => options.out = Some(value("--out")?),
            "--obs-journal" => options.obs_journal = Some(value("--obs-journal")?),
            "--obs-level" => {
                options.obs_level = value("--obs-level")?
                    .parse()
                    .map_err(|e| format!("--obs-level: {e}"))?
            }
            "--listen" => options.listen = Some(value("--listen")?),
            "--interval-ms" => {
                options.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--samples" => {
                options.samples = Some(
                    value("--samples")?
                        .parse()
                        .map_err(|e| format!("--samples: {e}"))?,
                )
            }
            "--plain" => options.plain = true,
            "--prom" => options.prom = true,
            "--state-dir" => options.state_dir = Some(value("--state-dir")?),
            "--chaos-kill-seq" => {
                options.chaos_kill_seq = Some(
                    value("--chaos-kill-seq")?
                        .parse()
                        .map_err(|e| format!("--chaos-kill-seq: {e}"))?,
                )
            }
            "--chaos-torn" => options.chaos_torn = true,
            "--sp-mode" => options.sp_mode = Some(value("--sp-mode")?.parse()?),
            "--guard-band" => {
                options.guard_band = value("--guard-band")?
                    .parse()
                    .map_err(|e| format!("--guard-band: {e}"))?
            }
            "--trainer" => options.trainer = value("--trainer")?.parse()?,
            "--holdout" => {
                options.holdout = value("--holdout")?
                    .parse()
                    .map_err(|e| format!("--holdout: {e}"))?
            }
            "--probe-cycles" => {
                options.probe_cycles = value("--probe-cycles")?
                    .parse()
                    .map_err(|e| format!("--probe-cycles: {e}"))?
            }
            "--model" => options.model = Some(value("--model")?),
            "--status" => options.status = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if !other.starts_with('-') && options.journal.is_none() => {
                options.journal = Some(other.to_string())
            }
            other => return Err(format!("unknown option `{other}`\n\n{}", usage())),
        }
    }
    if options.checkpoint.is_none() {
        if options.stop_after.is_some() {
            return Err(
                "--stop-after without --checkpoint would discard the suspended run's \
                 progress; add --checkpoint <path>"
                    .to_string(),
            );
        }
        if options.resume {
            return Err("--resume needs --checkpoint <path> to resume from".to_string());
        }
    }
    Ok(options)
}

/// The observability sink the command-line flags imply, plus the live
/// read handle when `--listen` asked for in-process folding: a JSONL
/// journal recorder for `--obs-journal`, a live-folding recorder for
/// `--listen`, a tee of both when both are given (sequence numbers are
/// assigned before the tee, so the journal stays byte-identical), the
/// null sink otherwise.
fn build_obs(options: &Options) -> Result<(Obs, Option<obs::LiveMetrics>), String> {
    let live = if options.listen.is_some() {
        if matches!(options.obs_level, obs::Level::Off) {
            return Err("--listen has nothing to export with --obs-level off; \
                 use --obs-level summary|detail"
                .to_string());
        }
        Some(obs::LiveMetrics::new())
    } else {
        None
    };
    let journal = |path: &String| {
        obs::JsonlRecorder::create(std::path::Path::new(path))
            .map_err(|e| format!("creating journal {path}: {e}"))
    };
    let obs = match (&options.obs_journal, &live) {
        (None, None) => Obs::null(),
        (Some(path), None) => Obs::new(options.obs_level, journal(path)?),
        (None, Some(live)) => Obs::new(
            options.obs_level,
            obs::LiveRecorder::with_metrics(live.clone()),
        ),
        (Some(path), Some(live)) => Obs::new(
            options.obs_level,
            obs::TeeRecorder::new(
                journal(path)?,
                obs::LiveRecorder::with_metrics(live.clone()),
            ),
        ),
    };
    Ok((obs, live))
}

/// The workflow configuration the command-line flags imply, plus the
/// live-metrics handle when `--listen` was given.
fn build_config(options: &Options) -> Result<(WorkflowConfig, Option<obs::LiveMetrics>), String> {
    let mut config = match options.unit.as_str() {
        "adder" => WorkflowConfig::paper_demo(),
        _ => WorkflowConfig::cmos28_10y(),
    };
    config.years = options.years;
    config.mitigation = options.mitigation;
    config.threads = options.threads.max(1);
    config.retry = RetryPolicy::doubling(options.retries.max(1));
    config.portfolio.racers = options.portfolio;
    config.portfolio.threshold = options.portfolio_threshold;
    config.lift_budget = options.lift_budget;
    let (obs, live) = build_obs(options)?;
    config.obs = obs;
    if options.fuzz_fallback {
        config.fuzz_fallback = Some(FuzzConfig::default());
    }
    Ok((config, live))
}

type UnitConfig = (PreparedUnit, WorkflowConfig, Option<obs::LiveMetrics>);

fn build_unit(options: &Options) -> Result<UnitConfig, String> {
    let (config, live) = build_config(options)?;
    let (netlist, module) = match options.unit.as_str() {
        "alu" => (build_alu(), ModuleKind::Alu),
        "fpu" => (build_fpu(), ModuleKind::Fpu),
        "adder" => (build_paper_adder(), ModuleKind::PaperAdder),
        other => return Err(format!("unknown unit `{other}` (alu|fpu|adder)")),
    };
    Ok((prepare_unit(netlist, module, &config), config, live))
}

type Phase1 = (
    PreparedUnit,
    WorkflowConfig,
    AgingAnalysis,
    Option<obs::LiveMetrics>,
);

fn phase1(options: &Options) -> Result<Phase1, String> {
    let (unit, config, live) = build_unit(options)?;
    eprintln!(
        "prepared {}: {} cells, {:.1} MHz, {} hold buffers",
        unit.netlist.name(),
        unit.netlist.cell_count(),
        unit.frequency_mhz(),
        unit.hold_buffers
    );
    let profile = profile_standalone_obs(
        &unit.netlist,
        options.profile_cycles,
        42,
        config.threads,
        &config.obs,
    )
    .map_err(|e| e.to_string())?;
    let analysis = analyze_aging(&unit, &profile, &config);
    Ok((unit, config, analysis, live))
}

/// Start the embedded HTTP exporter when `--listen` was given: the
/// returned guard keeps the background server alive and carries the
/// [`serve::Health`] handle the run should drive. `wal_path` (serve
/// only) makes `/status` include the WAL recovery scan; runs without a
/// WAL report `run_label` instead.
fn start_exporter(
    options: &Options,
    live: &Option<obs::LiveMetrics>,
    wal_path: Option<std::path::PathBuf>,
    run_label: &str,
) -> Result<Option<(serve::HttpExporter, serve::Health)>, String> {
    use std::sync::Arc;
    let Some(listen) = &options.listen else {
        return Ok(None);
    };
    let live = live.clone().expect("--listen implies a live registry");
    let health = serve::Health::new();
    let started = std::time::Instant::now();
    let endpoints = serve::Endpoints {
        metrics: {
            let live = live.clone();
            Arc::new(move || live.to_prometheus())
        },
        status: {
            let health = health.clone();
            let live = live.clone();
            let label = run_label.to_string();
            Arc::new(move || {
                let mut report = match &wal_path {
                    Some(wal) => {
                        serve::status_report(wal).unwrap_or_else(|_| serve::StatusReport {
                            wal_path: wal.display().to_string(),
                            ..serve::StatusReport::default()
                        })
                    }
                    None => serve::StatusReport::default(),
                };
                if report.run_label.is_none() {
                    report.run_label = Some(label.clone());
                }
                report
                    .with_live(&health, started.elapsed().as_secs(), &live.snapshot())
                    .to_json()
            })
        },
        health: health.clone(),
    };
    let exporter = serve::HttpExporter::start(listen, endpoints)
        .map_err(|e| format!("binding --listen {listen}: {e}"))?;
    eprintln!(
        "telemetry: http://{0}/metrics  http://{0}/status  http://{0}/healthz",
        exporter.addr()
    );
    Ok(Some((exporter, health)))
}

/// Lift through the resumable runner when checkpointing is requested;
/// `Ok(None)` means the run was suspended by `--stop-after`.
fn lift_resilient(
    unit: &PreparedUnit,
    pairs: &[AgingPath],
    config: &WorkflowConfig,
    options: &Options,
) -> Result<Option<LiftReport>, String> {
    if options.checkpoint.is_none() && options.stop_after.is_none() {
        return Ok(Some(lift_errors(unit, pairs, config)));
    }
    let runner_options = runner::RunnerOptions {
        checkpoint: options.checkpoint.as_ref().map(std::path::PathBuf::from),
        resume: options.resume,
        stop_after: options.stop_after,
        chaos: ChaosHook::default(),
        // SIGINT/SIGTERM suspend the run between pairs; the checkpoint
        // stays valid and `--resume` continues it (handlers are only
        // installed when a checkpoint is in play — see `main`).
        interrupt: Some(serve::shutdown::flag()),
    };
    match runner::lift_errors_resumable(unit, pairs, config, &runner_options)
        .map_err(|e| e.to_string())?
    {
        runner::RunnerOutcome::Complete {
            report,
            resumed_pairs,
        } => {
            if resumed_pairs > 0 {
                eprintln!("resumed {resumed_pairs} pairs from checkpoint");
            }
            Ok(Some(report))
        }
        runner::RunnerOutcome::Suspended {
            completed_pairs,
            total_done,
        } => {
            eprintln!(
                "suspended after {completed_pairs} new pairs ({total_done}/{} done); \
                 re-run with --resume to continue",
                pairs.len()
            );
            Ok(None)
        }
    }
}

fn cmd_profile(options: &Options) -> Result<(), String> {
    let (unit, config, _live) = build_unit(options)?;
    let profile = profile_standalone_obs(
        &unit.netlist,
        options.profile_cycles,
        42,
        config.threads,
        &config.obs,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "profiled {}: {} lane-cycles over {} cells ({} threads)",
        profile.module,
        profile.cycles,
        profile.cells.len(),
        config.threads
    );
    config.obs.flush();
    Ok(())
}

fn cmd_analyze(options: &Options) -> Result<(), String> {
    let (unit, config, analysis, _live) = phase1(options)?;
    println!("{}", analysis.report.table3_row());
    println!(
        "unique pairs: {} | aged clock skew: {:.1} ps | lifetime: {} y",
        analysis.unique_pairs.len(),
        analysis.report.max_clock_skew_ns() * 1000.0,
        config.years
    );
    for path in analysis.report.setup_violations.iter().take(5) {
        println!("  {}", path.describe(&unit.netlist));
    }
    for path in analysis.report.hold_violations.iter().take(5) {
        println!("  {}", path.describe(&unit.netlist));
    }
    Ok(())
}

fn cmd_lift(options: &Options) -> Result<(), String> {
    let (unit, config, analysis, _live) = phase1(options)?;
    let pairs: Vec<AgingPath> = analysis
        .unique_pairs
        .iter()
        .copied()
        .take(options.pairs)
        .collect();
    let Some(report) = lift_resilient(&unit, &pairs, &config, options)? else {
        return Ok(()); // suspended; progress is in the checkpoint
    };
    let (s, ur, ff, fc) = report.table4_row();
    println!("construction: S {s:.1}%  UR {ur:.1}%  FF {ff:.1}%  FC {fc:.1}%");
    println!(
        "formal effort: {} conflicts total | fuzz-fallback tests: {} | crashed pairs: {}",
        report.total_conflicts(),
        report.fallback_test_count(),
        report.crashed_pair_count()
    );
    for pair in &report.pairs {
        println!(
            "  {}: {:?} ({} conflicts)",
            pair.label,
            pair.class(),
            pair.conflicts_spent()
        );
        for attempt in &pair.attempts {
            if attempt.rounds.len() > 1 {
                let rounds: Vec<String> = attempt
                    .rounds
                    .iter()
                    .map(|r| format!("{}/{}", r.spent, r.budget))
                    .collect();
                println!(
                    "    escalation {:?}/{:?}: {}",
                    attempt.value,
                    attempt.activation,
                    rounds.join(" -> ")
                );
            }
        }
        for test in pair.test_cases() {
            println!(
                "    {} ({} instructions, {} cycles)",
                test.name,
                test.instructions.len(),
                test.cpu_cycles
            );
        }
    }
    config.obs.flush();
    Ok(())
}

fn cmd_suite(options: &Options) -> Result<(), String> {
    let (unit, config, analysis, live) = phase1(options)?;
    let exporter = start_exporter(options, &live, None, &format!("suite/{}", options.unit))?;
    if let Some((_, health)) = &exporter {
        health.set(serve::HealthState::Serving);
    }
    let pairs: Vec<AgingPath> = analysis
        .unique_pairs
        .iter()
        .copied()
        .take(options.pairs)
        .collect();
    let Some(report) = lift_resilient(&unit, &pairs, &config, options)? else {
        return Ok(()); // suspended; progress is in the checkpoint
    };
    let suite = report.suite();
    println!(
        "suite: {} test cases, {} CPU cycles per full run",
        suite.len(),
        report.suite_cpu_cycles()
    );
    let mut library = AgingLibrary::new(unit.module, suite.clone(), Schedule::Sequential);
    let mut sim = vega_sim::Simulator::new(&unit.netlist);
    match library.run_checked(&mut sim) {
        Ok(()) => println!("healthy-hardware self-check: pass"),
        Err(fault) => println!("healthy-hardware self-check FAILED: {fault}"),
    }
    if let Some(path) = &options.emit_c {
        let source = emit_c_library(unit.netlist.name(), &suite);
        std::fs::write(path, source).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote C aging library to {path}");
    }
    if let Some((_, health)) = &exporter {
        health.set(serve::HealthState::Draining);
    }
    config.obs.flush();
    Ok(())
}

fn cmd_artifacts(options: &Options) -> Result<(), String> {
    let (unit, config, analysis, _live) = phase1(options)?;
    let pairs: Vec<AgingPath> = analysis
        .unique_pairs
        .iter()
        .copied()
        .take(options.pairs)
        .collect();
    let _ = config;
    std::fs::create_dir_all(&options.dir).map_err(|e| format!("mkdir {}: {e}", options.dir))?;
    let mut written = BTreeMap::new();
    for (index, &path) in pairs.iter().enumerate() {
        for value in FaultValue::ALL {
            let failing =
                build_failing_netlist(&unit.netlist, path, value, FaultActivation::OnChange);
            let file = format!(
                "{}/{}_pair{}_{}.v",
                options.dir,
                unit.netlist.name(),
                index,
                value.suffix()
            );
            std::fs::write(&file, vega_netlist::verilog::write_verilog(&failing))
                .map_err(|e| format!("writing {file}: {e}"))?;
            written.insert(file, path.label(&unit.netlist));
        }
    }
    for (file, target) in written {
        println!("{file}  # {target}");
    }
    Ok(())
}

fn cmd_fleet(options: &Options) -> Result<(), String> {
    let (unit, config, analysis, live) = phase1(options)?;
    let exporter = start_exporter(options, &live, None, &format!("fleet/{}", options.unit))?;
    if let Some((_, health)) = &exporter {
        health.set(serve::HealthState::Serving);
    }
    let pairs: Vec<AgingPath> = analysis
        .unique_pairs
        .iter()
        .copied()
        .take(options.pairs)
        .collect();
    let report = lift_errors(&unit, &pairs, &config);
    let mut pool = build_unit_pool(&options.unit, &unit, &analysis, &report);
    if pool.suite.is_empty() {
        return Err(format!(
            "unit `{}` lifted no test cases; a fleet without tests cannot detect anything \
             (try more --pairs or --fuzz-fallback)",
            options.unit
        ));
    }
    eprintln!(
        "pool `{}`: {} tests, {} fault candidates, {} risk paths",
        pool.name,
        pool.suite.len(),
        pool.candidates.len(),
        pool.risk.len()
    );
    let mut fleet_config = FleetConfig::new(
        options.machines,
        options.epochs,
        options.policy,
        options.seed,
    );
    fleet_config.budget_cycles = options.budget;
    fleet_config.fault_fraction = options.fault_fraction;
    fleet_config.threads = options.threads.max(1);
    fleet_config.regions = options.regions;
    fleet_config.scheduler = options.scheduler;
    if let Some(mode) = options.sp_mode {
        let train_options = TrainOptions {
            trainer: options.trainer,
            seed: options.seed,
            holdout_fraction: options.holdout,
            ..TrainOptions::default()
        };
        let eval = attach_sp_predictor(
            &mut pool,
            &unit,
            &analysis,
            &config,
            options.probe_cycles,
            &train_options,
        )
        .map_err(|e| e.to_string())?;
        eprintln!(
            "sp predictor ({}): holdout MAE {:.4}, spearman {:.2} over {} nets",
            options.trainer.label(),
            eval.mae_holdout,
            eval.spearman_holdout,
            eval.n_train + eval.n_holdout
        );
        fleet_config.sp_mode = Some(mode);
        fleet_config.sp_guard_band_ns = options.guard_band;
        fleet_config.sp_profile_cycles = options.profile_cycles;
    }
    let mut fleet = Fleet::build(vec![pool], fleet_config);
    fleet.set_obs(config.obs.clone());
    eprintln!(
        "fleet: {} machines, {} epochs, {} cycles/epoch, policy {}, \
         scheduler {}, {} regions, {} threads",
        options.machines,
        options.epochs,
        fleet.budget_cycles(),
        options.policy,
        options.scheduler,
        fleet.region_count(),
        options.threads.max(1)
    );
    let telemetry = fleet.run();
    let s = &telemetry.summary;
    eprintln!(
        "faulty {}/{} | detected {} | quarantined {} (false: {}) | \
         mean detection latency {:.2} epochs | coverage {:.0}% | {} tests, {} cycles",
        s.faulty,
        s.machines,
        s.detected_faulty,
        s.quarantined_faulty,
        s.false_quarantines,
        s.mean_detection_latency_epochs,
        s.detection_coverage * 100.0,
        s.total_tests,
        s.total_cycles
    );
    if s.sp_mode != "none" {
        eprintln!(
            "phase1 sp: mode {} | {} exact profiles, {} predicted, {} escalations | \
             {} simulation cycles",
            s.sp_mode,
            s.phase1_exact_profiles,
            s.phase1_predicted,
            s.phase1_escalations,
            s.phase1_cycles
        );
    }
    let json = telemetry.to_json_string();
    if let Some(path) = &options.out {
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote fleet telemetry to {path}");
    }
    print!("{json}");
    if let Some((_, health)) = &exporter {
        health.set(serve::HealthState::Draining);
    }
    config.obs.flush();
    Ok(())
}

/// The feature matrix, ground-truth SP targets, and training options the
/// `predict` subcommands share: Phase-1 profiles the unit's workload for
/// the targets, a short decorrelated uniform-random probe supplies the
/// stimulus-distribution summary features.
fn predict_dataset(
    options: &Options,
) -> Result<(WorkflowConfig, FeatureMatrix, Vec<f64>, TrainOptions), String> {
    let (unit, config, analysis, _live) = phase1(options)?;
    let probe =
        vega_sim::profile_sharded(&unit.netlist, options.probe_cycles, 0xA11CE, config.threads);
    let features = extract_features(&unit.netlist, Some(&probe), config.threads, &config.obs)
        .map_err(|e| e.to_string())?;
    let targets = features.targets_from(&analysis.profile);
    let train_options = TrainOptions {
        trainer: options.trainer,
        seed: options.seed,
        holdout_fraction: options.holdout,
        ..TrainOptions::default()
    };
    Ok((config, features, targets, train_options))
}

fn load_model(options: &Options) -> Result<SpModel, String> {
    let Some(path) = &options.model else {
        return Err("this predict action needs --model <path> (a saved model JSON)".to_string());
    };
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    SpModel::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

fn print_eval(eval: &predict::EvalReport) {
    eprintln!(
        "train {} nets | holdout {} nets | MAE train {:.4} holdout {:.4} | \
         RMSE {:.4} | max |err| {:.4} | spearman {:.3}",
        eval.n_train,
        eval.n_holdout,
        eval.mae_train,
        eval.mae_holdout,
        eval.rmse_holdout,
        eval.max_abs_err_holdout,
        eval.spearman_holdout
    );
    for (net, err) in &eval.worst_nets {
        eprintln!("  worst: {net}  |err| {err:.4}");
    }
}

fn cmd_predict(options: &Options) -> Result<(), String> {
    let action = options.journal.as_deref().unwrap_or("train");
    match action {
        "train" => {
            let (config, features, targets, train_options) = predict_dataset(options)?;
            let trained = predict::train(&features, &targets, &train_options, &config.obs)
                .map_err(|e| e.to_string())?;
            print_eval(&trained.eval);
            let json = trained.model.to_canonical_json();
            if let Some(path) = &options.out {
                std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote model to {path}");
            } else {
                print!("{json}");
            }
            config.obs.flush();
            Ok(())
        }
        "eval" => {
            // Evaluate a saved model against freshly extracted features
            // and ground truth (the whole dataset counts as holdout).
            let model = load_model(options)?;
            let (config, features, targets, _) = predict_dataset(options)?;
            // Surface schema/column mismatches as a CLI error instead of
            // the neutral-prediction fallback inside `evaluate`.
            model.predict(&features).map_err(|e| e.to_string())?;
            let eval = predict::evaluate(&model, &features, &targets);
            print_eval(&eval);
            config.obs.flush();
            Ok(())
        }
        "inspect" => {
            let model = load_model(options)?;
            println!(
                "model: {} | module {} | schema v{} (features v{}) | {} columns",
                model.trainer,
                model.module,
                model.schema_version,
                model.feature_schema,
                model.columns.len()
            );
            if let Some(ridge) = &model.ridge {
                println!(
                    "ridge: lambda {} | intercept {:.4}",
                    ridge.lambda, ridge.intercept
                );
                let mut ranked: Vec<(usize, f64)> =
                    ridge.weights.iter().copied().enumerate().collect();
                ranked.sort_by(|a, b| {
                    b.1.abs()
                        .partial_cmp(&a.1.abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                for (index, weight) in ranked.into_iter().take(8) {
                    println!("  {:>28}  {weight:+.5}", model.columns[index]);
                }
            }
            if let Some(boosted) = &model.boosted {
                println!(
                    "boosted: base {:.4} | {} stumps | learning rate {}",
                    boosted.base,
                    boosted.stumps.len(),
                    boosted.learning_rate
                );
                let mut used: BTreeMap<&str, usize> = BTreeMap::new();
                for stump in &boosted.stumps {
                    *used
                        .entry(model.columns[stump.feature].as_str())
                        .or_default() += 1;
                }
                let mut ranked: Vec<(&str, usize)> = used.into_iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                for (column, count) in ranked.into_iter().take(8) {
                    println!("  {column:>28}  split on {count}x");
                }
            }
            Ok(())
        }
        other => Err(format!(
            "unknown predict action `{other}` (train|eval|inspect)"
        )),
    }
}

/// `vega serve --status`: read-only WAL inspection — what the recovery
/// scan would conclude, without constructing the service or mutating the
/// state directory. Renders the same [`serve::StatusReport`] the HTTP
/// `/status` endpoint serves, so the two views cannot drift apart.
fn cmd_serve_status(state_dir: &std::path::Path) -> Result<(), String> {
    let wal_path = state_dir.join("wal.jsonl");
    let report = serve::status_report(&wal_path).map_err(|e| e.to_string())?;
    print!("{}", report.render_text());
    Ok(())
}

fn cmd_serve(options: &Options) -> Result<(), String> {
    let Some(state_dir) = &options.state_dir else {
        return Err("serve needs --state-dir <dir> to keep its WAL and artifacts".to_string());
    };
    if options.status {
        return cmd_serve_status(std::path::Path::new(state_dir));
    }
    if !matches!(options.unit.as_str(), "alu" | "fpu" | "adder") {
        return Err(format!("unknown unit `{}` (alu|fpu|adder)", options.unit));
    }
    let state_dir = std::path::PathBuf::from(state_dir);
    let (config, live) = build_config(options)?;
    // The exporter comes up before the service so /healthz answers
    // (`starting`, then `recovering`) while the WAL replay runs.
    let exporter = start_exporter(
        options,
        &live,
        Some(state_dir.join("wal.jsonl")),
        &format!("serve/{}", options.unit),
    )?;
    if let Some((exp, _)) = &exporter {
        std::fs::create_dir_all(&state_dir)
            .map_err(|e| format!("mkdir {}: {e}", state_dir.display()))?;
        let addr_file = state_dir.join("http.addr");
        std::fs::write(&addr_file, format!("http://{}\n", exp.addr()))
            .map_err(|e| format!("writing {}: {e}", addr_file.display()))?;
    }
    let params = ServeParams {
        unit: options.unit.clone(),
        years: options.years,
        pairs: options.pairs,
        profile_cycles: options.profile_cycles,
        mitigation: options.mitigation,
        machines: options.machines,
        epochs: options.epochs,
        budget: options.budget,
        policy: options.policy,
        seed: options.seed,
        fault_fraction: options.fault_fraction,
        lift_budget: options.lift_budget,
        portfolio_racers: options.portfolio,
        portfolio_threshold: options.portfolio_threshold,
        regions: options.regions,
        scheduler: options.scheduler,
        threads: options.threads.max(1),
    };
    let mut service =
        VegaService::new(params, &state_dir, config.clone()).map_err(|e| e.to_string())?;
    let mut server = serve::Server::new(&service.wal_path())
        .with_shutdown_flag(serve::shutdown::flag())
        .with_obs(config.obs.clone());
    if let Some((_, health)) = &exporter {
        server = server.with_health(health.clone());
    }
    if let Some(seq) = options.chaos_kill_seq {
        server = server.with_writer_chaos(serve::WriterChaos {
            abort_at_seq: Some(seq),
            torn: options.chaos_torn,
        });
    }
    let outcome = server.run(&mut service).map_err(|e| e.to_string())?;
    let report = outcome.report();
    if report.resumed_pairs + report.resumed_epochs + report.reexecuted > 0 || report.torn_bytes > 0
    {
        eprintln!(
            "recovered: {} pairs + {} epochs restored, {} ops re-executed, {} torn bytes \
             truncated",
            report.resumed_pairs, report.resumed_epochs, report.reexecuted, report.torn_bytes
        );
    }
    match outcome {
        serve::ServeOutcome::Completed(_) => {
            eprintln!(
                "serve complete; telemetry at {}",
                service.telemetry_path().display()
            );
        }
        serve::ServeOutcome::Interrupted(_) => {
            eprintln!(
                "serve interrupted cleanly; re-run with the same arguments and \
                 --state-dir {} to resume",
                state_dir.display()
            );
        }
    }
    config.obs.flush();
    Ok(())
}

fn cmd_report(options: &Options) -> Result<(), String> {
    // `vega report <journal.jsonl>` renders a recorded run journal;
    // without a journal path the legacy netlist-statistics mode runs.
    if let Some(path) = &options.journal {
        // Tolerate a torn final line (a kill mid-append can cut the last
        // record anywhere, including inside a UTF-8 sequence): report on
        // the valid prefix and note the truncation on stderr.
        let (journal, torn) = obs::Journal::load_tolerant(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
        if let Some(tail) = &torn {
            eprintln!(
                "note: journal tail is torn at line {} (valid prefix {} bytes); \
                 reporting on the {} complete events",
                tail.line,
                tail.valid_bytes,
                journal.events.len()
            );
        }
        if options.prom {
            let registry = obs::MetricsRegistry::from_journal(&journal);
            print!("{}", registry.to_prometheus());
        } else {
            print!("{}", obs::render_report(&journal));
        }
        return Ok(());
    }
    let (unit, _, _) = build_unit(options)?;
    print!("{}", vega_netlist::stats::NetlistStats::of(&unit.netlist));
    Ok(())
}

/// Reduce `http://HOST:PORT[/...]` to the `HOST:PORT` a TCP connect
/// needs.
fn parse_exporter_url(url: &str) -> Result<String, String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let host = rest.split('/').next().unwrap_or("");
    if host.is_empty() || !host.contains(':') {
        return Err(format!(
            "cannot parse exporter URL `{url}` (expected http://HOST:PORT)"
        ));
    }
    Ok(host.to_string())
}

/// One blocking HTTP/1.0 GET against the exporter; returns the body of
/// a 200 response.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let timeout = std::time::Duration::from_secs(5);
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    write!(
        stream,
        "GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("requesting {addr}{path}: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("reading {addr}{path}: {e}"))?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(format!("{addr}{path}: malformed HTTP response"));
    };
    let status_line = head.lines().next().unwrap_or_default();
    if !status_line.contains(" 200") {
        return Err(format!("{addr}{path}: {status_line}"));
    }
    Ok(body.to_string())
}

/// Parse Prometheus text exposition into `name → value`, skipping
/// comment lines and labelled series (histogram buckets carry
/// `{le="..."}`; the paired `_count`/`_sum` series remain).
fn parse_prometheus(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.contains('{') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(name), Some(value)) = (parts.next(), parts.next()) {
            if let Ok(value) = value.parse::<f64>() {
                out.insert(name.to_string(), value);
            }
        }
    }
    out
}

/// Render one `vega top` frame from a `/status` JSON document, the
/// current `/metrics` sample, and (after the first poll) the previous
/// sample for per-second rates.
fn render_top(
    status: &obs::json::Json,
    metrics: &BTreeMap<String, f64>,
    previous: Option<(f64, &BTreeMap<String, f64>)>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let str_of = |key: &str| status.get(key).and_then(|v| v.as_str()).unwrap_or("-");
    let _ = writeln!(
        out,
        "vega top — {} | health {} | up {}s",
        str_of("run_label"),
        str_of("health"),
        status
            .get("uptime_secs")
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    );
    if status.get("wal_exists").and_then(|v| v.as_bool()) == Some(true) {
        let u64_of = |key: &str| status.get(key).and_then(|v| v.as_u64()).unwrap_or(0);
        let _ = writeln!(
            out,
            "wal: {} records, {} completed ops, {} in doubt, {} recoveries",
            u64_of("records"),
            u64_of("completed_ops"),
            status
                .get("in_doubt")
                .and_then(|v| v.items().map(|items| items.len()))
                .unwrap_or(0),
            u64_of("recoveries"),
        );
    }
    if let Some(progress) = status.get("progress").and_then(|v| v.entries()) {
        for (name, value) in progress {
            if let Some(value) = value.as_f64() {
                let _ = writeln!(out, "  {name:<28} {value}");
            }
        }
    }
    if let Some(portfolio) = status.get("portfolio").and_then(|v| v.entries()) {
        for (name, value) in portfolio {
            if let Some(value) = value.as_u64() {
                let _ = writeln!(out, "  {name:<28} {value}");
            }
        }
    }
    if let Some(latency) = status.get("latency").and_then(|v| v.entries()) {
        let rendered: Vec<String> = latency
            .iter()
            .filter_map(|(label, v)| v.as_f64().map(|v| format!("{label} {v:.1}")))
            .collect();
        if !rendered.is_empty() {
            let _ = writeln!(out, "  detection latency (epochs): {}", rendered.join("  "));
        }
    }
    if let Some((dt, prev)) = previous {
        if dt > 0.0 {
            let mut rates: Vec<(&str, f64)> = metrics
                .iter()
                .filter_map(|(name, value)| {
                    let delta = value - prev.get(name).copied().unwrap_or(0.0);
                    (delta > 0.0).then_some((name.as_str(), delta / dt))
                })
                .collect();
            rates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            if !rates.is_empty() {
                let _ = writeln!(out, "rates:");
                for (name, rate) in rates.into_iter().take(8) {
                    let _ = writeln!(out, "  {name:<40} {rate:>10.1}/s");
                }
            }
        }
    }
    out
}

/// `vega top <url>`: poll a live process's `/status` and `/metrics`
/// endpoints and render a terminal dashboard until the run drains (or
/// `--samples` polls have been taken).
fn cmd_top(options: &Options) -> Result<(), String> {
    let Some(url) = &options.journal else {
        return Err("top needs the exporter URL: vega top http://127.0.0.1:PORT".to_string());
    };
    let addr = parse_exporter_url(url)?;
    let interval = std::time::Duration::from_millis(options.interval_ms.max(1));
    let mut previous: Option<(std::time::Instant, BTreeMap<String, f64>)> = None;
    let mut sample = 0usize;
    loop {
        sample += 1;
        let status_body = http_get(&addr, "/status")?;
        let metrics_body = http_get(&addr, "/metrics").unwrap_or_default();
        let status = obs::json::parse_json(status_body.trim())
            .map_err(|e| format!("/status is not valid JSON: {e}"))?;
        let metrics = parse_prometheus(&metrics_body);
        let now = std::time::Instant::now();
        let frame = render_top(
            &status,
            &metrics,
            previous
                .as_ref()
                .map(|(t, m)| (now.duration_since(*t).as_secs_f64(), m)),
        );
        if options.plain {
            print!("{frame}");
        } else {
            // Redraw in place: clear screen, home the cursor.
            print!("\x1b[2J\x1b[H{frame}");
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        let drained = status.get("run_complete").and_then(|v| v.as_bool()) == Some(true)
            || status.get("health").and_then(|v| v.as_str()) == Some("draining");
        if drained || options.samples.is_some_and(|n| sample >= n) {
            return Ok(());
        }
        previous = Some((now, metrics));
        std::thread::sleep(interval);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let options = match parse_options(rest) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if options.listen.is_some() && !matches!(command.as_str(), "serve" | "fleet" | "suite") {
        eprintln!("--listen is supported on serve|fleet|suite (long-running commands)");
        return ExitCode::FAILURE;
    }
    // Graceful shutdown applies where there is durable state to keep
    // consistent: `serve` always, `lift`/`suite` when checkpointing.
    // (Without a checkpoint, Ctrl-C keeps its default kill behavior.)
    if command == "serve"
        || (matches!(command.as_str(), "lift" | "suite") && options.checkpoint.is_some())
    {
        serve::shutdown::install();
    }
    let result = match command.as_str() {
        "analyze" => cmd_analyze(&options),
        "profile" => cmd_profile(&options),
        "lift" => cmd_lift(&options),
        "suite" => cmd_suite(&options),
        "artifacts" => cmd_artifacts(&options),
        "report" => cmd_report(&options),
        "fleet" => cmd_fleet(&options),
        "predict" => cmd_predict(&options),
        "serve" => cmd_serve(&options),
        "top" => cmd_top(&options),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
