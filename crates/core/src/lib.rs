//! # Vega — proactive runtime detection of aging-related silent data corruptions
//!
//! A from-scratch Rust reproduction of the ASPLOS 2024 paper
//! *"Proactive Runtime Detection of Aging-Related Silent Data
//! Corruptions: A Bottom-Up Approach"*.
//!
//! Vega is a three-phase workflow that turns gate-level knowledge of
//! transistor aging into tiny test cases an application can run every
//! second:
//!
//! 1. **Aging Analysis** ([`profile_units`], [`analyze_aging`]) —
//!    simulate representative workloads on the synthesized netlist to
//!    collect a signal-probability profile, then run aging-aware static
//!    timing analysis to find the register-to-register paths that will
//!    violate setup or hold constraints after years of BTI stress.
//! 2. **Error Lifting** ([`lift_errors`]) — instrument each aging-prone
//!    path with a logical failure model and a shadow replica, use bounded
//!    model checking to find a module-level input trace that makes the
//!    fault observable (or prove none exists), and translate the trace
//!    into RISC-V instructions.
//! 3. **Test Integration** (re-exported from [`vega_integrate`]) —
//!    package the suite as a software aging library, or embed it into an
//!    application with profile-guided integration at sub-1% overhead.
//!
//! The substrates (netlist IR, gate-level simulator, BTI model, STA, SAT
//! solver, model checker, ALU/FPU generators, RISC-V co-simulation) live
//! in their own crates; this facade wires them into the end-to-end
//! pipeline and re-exports the public vocabulary types.
//!
//! ## Quickstart
//!
//! ```
//! use vega::*;
//!
//! # fn main() -> Result<(), VegaError> {
//! // The paper's worked example: a pipelined 2-bit adder.
//! let netlist = vega_circuits::adder_example::build_paper_adder();
//! let config = WorkflowConfig::paper_demo();
//! let unit = prepare_unit(netlist, ModuleKind::PaperAdder, &config);
//!
//! // Phase 1: profile + aging-aware STA.
//! let profile = profile_standalone(&unit.netlist, 2_000, 42)?;
//! let analysis = analyze_aging(&unit, &profile, &config);
//!
//! // Phase 2: lift each aging-prone pair into test cases.
//! let report = lift_errors(&unit, &analysis.unique_pairs, &config);
//! let suite = report.suite();
//!
//! // Phase 3: package as an aging library.
//! let mut library = AgingLibrary::new(unit.module, suite, Schedule::Sequential);
//! let mut sim = vega_sim::Simulator::new(&unit.netlist);
//! assert!(library.run_checked(&mut sim).is_ok(), "healthy hardware passes");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persist;
pub mod runner;
pub mod service;

pub use service::{ServeParams, VegaService};
pub use vega_aging::{AgingAwareTimingLibrary, AgingModel};
pub use vega_fleet::{
    adaptive_score, failure_mode_of, EpochTelemetry, FaultCandidate, Fleet, FleetConfig,
    FleetSummary, FleetTelemetry, HealthState, InjectedFault, Machine, MachineId, MachineTelemetry,
    MachineView, OutcomeTally, Policy, PoolTelemetry, Scheduler, SpMode, UnitPool,
};
pub use vega_integrate::{
    emit_c_library, integrate, AgingFault, AgingLibrary, DetectionReport, IntegratedProgram,
    PgiConfig, Schedule,
};
pub use vega_lift::{
    build_failing_netlist, generate_suite, generate_suite_parallel, lift_pair, run_suite,
    run_test_case, validate_test_case, AgingPath, Attempt, BudgetRound, ChaosHook, Check,
    ConstructionOutcome, FaultActivation, FaultValue, FuzzConfig, Interrupt, LiftConfig,
    LiftReport, ModuleKind, PairClass, PairResult, PortfolioSettings, Provenance, RetryPolicy,
    SolverConfig, TestCase, TestOutcome,
};
pub use vega_netlist::{Netlist, StdCellLibrary};
pub use vega_obs as obs;
pub use vega_obs::Obs;
pub use vega_predict as predict;
pub use vega_predict::{
    extract_features, FeatureMatrix, RiskPath, RiskScorer, SpModel, SpPoolPredictor, TrainOptions,
    TrainerKind,
};
pub use vega_serve as serve;
pub use vega_sim::SpProfile;
pub use vega_sta::{
    analyze, calibrate_period, fix_hold_violations, Derates, StaConfig, TimingReport, ViolationKind,
};

/// The facade's unified error type: every fallible entry point of the
/// `vega` crate returns this instead of panicking, so embedding
/// applications (and the CLI) can report and recover.
#[derive(Debug)]
pub enum VegaError {
    /// An internal wiring error: a profile was requested from a simulator
    /// that never had profiling enabled.
    ProfilingUnavailable {
        /// Which profiling run was affected.
        unit: String,
    },
    /// Persisting or loading a workflow artifact failed.
    Persist(persist::PersistError),
    /// A checkpoint file exists but belongs to a different run (other
    /// module, pair count, or mitigation setting) — resuming from it
    /// would silently mix incompatible results.
    CheckpointMismatch {
        /// What differed.
        reason: String,
    },
    /// Training or applying the SP predictor failed.
    Predict(String),
}

impl std::fmt::Display for VegaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VegaError::ProfilingUnavailable { unit } => {
                write!(f, "profiling was never enabled for {unit}")
            }
            VegaError::Persist(e) => write!(f, "persistence: {e}"),
            VegaError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint belongs to a different run: {reason}")
            }
            VegaError::Predict(e) => write!(f, "sp prediction: {e}"),
        }
    }
}

impl std::error::Error for VegaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VegaError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<persist::PersistError> for VegaError {
    fn from(e: persist::PersistError) -> Self {
        VegaError::Persist(e)
    }
}

/// End-to-end workflow configuration.
#[derive(Debug, Clone)]
pub struct WorkflowConfig {
    /// The standard-cell library the unit was "fabricated" in.
    pub cell_library: StdCellLibrary,
    /// The transistor-aging model (temperature corner, ΔVth budget, …).
    pub model: AgingModel,
    /// Mission lifetime analyzed, in years (the paper uses 10).
    pub years: f64,
    /// Setup guard band left at signoff: the clock period is the minimum
    /// unaged-clean period times `1 + guard_fraction`.
    pub guard_fraction: f64,
    /// Hold margin demanded (and left) by signoff hold fixing, in ns.
    pub hold_margin_ns: f64,
    /// STA derates (pessimistic corners).
    pub derates: Derates,
    /// Enable the §3.3.4 mitigation during Error Lifting.
    pub mitigation: bool,
    /// Cap on the number of violating paths the STA enumerates.
    pub max_paths: usize,
    /// Worker threads for Error Lifting (1 = sequential).
    pub threads: usize,
    /// Budget escalation on formal failures during Error Lifting.
    pub retry: RetryPolicy,
    /// Portfolio racing for budget-exhausted formal attempts (default:
    /// disabled; see [`PortfolioSettings`]).
    pub portfolio: PortfolioSettings,
    /// Override of the per-attempt formal conflict budget (None = the
    /// module's default `BmcConfig` budget) — what `--lift-budget` sets.
    pub lift_budget: Option<u64>,
    /// Fall back to simulation-based fuzzing for pairs whose formal
    /// search (including retries) exhausts its budget.
    pub fuzz_fallback: Option<FuzzConfig>,
    /// Observability sink: every phase's spans, counters, and events are
    /// routed here (default: null, i.e. recording disabled at zero cost).
    pub obs: Obs,
}

impl WorkflowConfig {
    /// A 28 nm, 10-year, worst-case-corner configuration — the paper's
    /// evaluation setup.
    pub fn cmos28_10y() -> Self {
        WorkflowConfig {
            cell_library: StdCellLibrary::cmos28(),
            model: AgingModel::cmos28_worst_case(),
            years: 10.0,
            guard_fraction: 0.02,
            hold_margin_ns: 0.002,
            derates: Derates::default(),
            mitigation: false,
            max_paths: 100_000,
            threads: 1,
            retry: RetryPolicy::default(),
            portfolio: PortfolioSettings::default(),
            lift_budget: None,
            fuzz_fallback: None,
            obs: Obs::null(),
        }
    }

    /// The worked-example configuration: the paper's demonstration cell
    /// library (0.3 ns gates, 1 GHz-class periods) with nominal derates.
    pub fn paper_demo() -> Self {
        WorkflowConfig {
            cell_library: StdCellLibrary::paper_demo(),
            model: AgingModel::cmos28_worst_case(),
            years: 10.0,
            guard_fraction: 0.02,
            hold_margin_ns: 0.004,
            derates: Derates::nominal(),
            mitigation: false,
            max_paths: 100_000,
            threads: 1,
            retry: RetryPolicy::default(),
            portfolio: PortfolioSettings::default(),
            lift_budget: None,
            fuzz_fallback: None,
            obs: Obs::null(),
        }
    }

    fn sta_config(&self, period: f64) -> StaConfig {
        let mut c = StaConfig::with_period(period);
        c.derates = self.derates;
        c.max_paths = self.max_paths;
        c.hold_margin_ns = 0.0;
        c
    }
}

/// A signed-off unit: netlist (hold-fixed), rated clock period, module
/// protocol.
#[derive(Debug, Clone)]
pub struct PreparedUnit {
    /// The final netlist (including any hold-fix buffers).
    pub netlist: Netlist,
    /// The module's port protocol.
    pub module: ModuleKind,
    /// Rated clock period, in ns.
    pub clock_period_ns: f64,
    /// Hold-fix buffers inserted at signoff.
    pub hold_buffers: usize,
}

impl PreparedUnit {
    /// The rated frequency in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        1000.0 / self.clock_period_ns
    }
}

/// "Signoff": choose the rated clock period with a small guard band and
/// repair hold violations down to a thin margin — producing the kind of
/// design that initially meets timing but has no headroom for aging
/// (paper §5.2.1).
pub fn prepare_unit(netlist: Netlist, module: ModuleKind, config: &WorkflowConfig) -> PreparedUnit {
    let unaged = AgingAwareTimingLibrary::build(config.cell_library.clone(), config.model, 0.0);
    let mut netlist = netlist;
    let sta = config.sta_config(1.0);
    let period = calibrate_period(&netlist, &unaged, None, &sta, config.guard_fraction);
    let mut hold_config = config.sta_config(period);
    hold_config.hold_margin_ns = config.hold_margin_ns;
    let hold_buffers = fix_hold_violations(&mut netlist, &unaged, None, &hold_config);
    PreparedUnit {
        netlist,
        module,
        clock_period_ns: period,
        hold_buffers,
    }
}

/// Phase 1 output: the SP profile used, the aged timing report, and the
/// unique launch/capture pairs handed to Error Lifting.
#[derive(Debug, Clone)]
pub struct AgingAnalysis {
    /// The aging-aware STA report at end of life.
    pub report: TimingReport,
    /// Violating paths collapsed to unique `(launch, capture)` pairs, in
    /// worst-slack order (setup first, then hold).
    pub unique_pairs: Vec<AgingPath>,
    /// The SP profile the STA derated with — Phase 1's ground truth,
    /// kept so downstream consumers (SP-predictor training, risk
    /// scoring) don't have to re-profile.
    pub profile: SpProfile,
    /// The worst aging-prone paths distilled into the name-keyed form
    /// `vega_predict`'s per-machine risk scorer consumes (one entry per
    /// unique setup endpoint pair, worst slack first).
    pub risk: Vec<RiskPath>,
}

/// Phase 1: aging-aware static timing analysis under the workload's SP
/// profile, with violating paths collapsed to unique endpoint pairs
/// (paths sharing endpoints exhibit identical failure-model behaviour,
/// §5.2.1).
pub fn analyze_aging(
    unit: &PreparedUnit,
    profile: &SpProfile,
    config: &WorkflowConfig,
) -> AgingAnalysis {
    let _span = obs::span!(
        config.obs,
        "phase1.sta",
        module = unit.netlist.name(),
        years = config.years,
    );
    let aged =
        AgingAwareTimingLibrary::build(config.cell_library.clone(), config.model, config.years);
    let sta = config.sta_config(unit.clock_period_ns);
    let report = analyze(&unit.netlist, &aged, Some(profile), &sta);
    report.record_obs(&config.obs);
    let mut unique_pairs = Vec::new();
    for path in report
        .setup_violations
        .iter()
        .chain(&report.hold_violations)
    {
        if let Some(aging_path) = AgingPath::from_timing_path(path) {
            if !unique_pairs.contains(&aging_path) {
                unique_pairs.push(aging_path);
            }
        }
    }
    config
        .obs
        .counter("phase1.sta.unique_pairs", unique_pairs.len() as u64);
    let risk = distill_risk_paths(&unit.netlist, &report, profile, config);
    config
        .obs
        .counter("phase1.predict.risk_paths", risk.len() as u64);
    AgingAnalysis {
        report,
        unique_pairs,
        profile: profile.clone(),
        risk,
    }
}

/// How many aged paths [`analyze_aging`] distills into risk paths for
/// the per-machine scorer (one per unique setup endpoint pair).
const MAX_RISK_PATHS: usize = 32;

/// Distill the aged report's worst setup paths into the name-keyed
/// [`RiskPath`] form `vega_predict`'s scorer consumes. Setup paths
/// only: BTI-induced slowdown erodes setup margins, while hold margins
/// only grow with it (§ aging model).
fn distill_risk_paths(
    netlist: &Netlist,
    report: &TimingReport,
    profile: &SpProfile,
    config: &WorkflowConfig,
) -> Vec<RiskPath> {
    let mut seen: std::collections::HashSet<AgingPath> = std::collections::HashSet::new();
    let mut risk = Vec::new();
    for path in &report.setup_violations {
        let Some(pair) = AgingPath::from_timing_path(path) else {
            continue;
        };
        if !seen.insert(pair) {
            continue;
        }
        let cells: Vec<String> = path
            .cells
            .iter()
            .map(|&id| netlist.cell(id).name.clone())
            .collect();
        if cells.is_empty() {
            continue;
        }
        let ref_degradation = cells
            .iter()
            .map(|name| {
                config
                    .model
                    .delay_degradation(profile.sp(name).unwrap_or(0.5), config.years)
            })
            .sum::<f64>()
            / cells.len() as f64;
        risk.push(RiskPath {
            label: pair.label(netlist),
            cells,
            arrival_ns: path.arrival_ns,
            required_ns: path.required_ns,
            slack_ns: path.slack_ns,
            ref_degradation,
        });
        if risk.len() >= MAX_RISK_PATHS {
            break;
        }
    }
    risk
}

/// The Error Lifting configuration a [`WorkflowConfig`] implies.
pub fn lift_config(config: &WorkflowConfig) -> LiftConfig {
    LiftConfig {
        mitigation: config.mitigation,
        bmc: None,
        conflict_budget: config.lift_budget,
        retry: config.retry,
        portfolio: config.portfolio.clone(),
        interrupt: None,
        fuzz_fallback: config.fuzz_fallback,
        chaos: ChaosHook::default(),
        obs: config.obs.clone(),
    }
}

/// Phase 2: lift each unique pair into test cases (or proofs), on
/// `config.threads` worker threads.
pub fn lift_errors(
    unit: &PreparedUnit,
    pairs: &[AgingPath],
    config: &WorkflowConfig,
) -> LiftReport {
    generate_suite_parallel(
        &unit.netlist,
        unit.module,
        pairs,
        &lift_config(config),
        config.threads,
    )
}

/// Bridge phases 1–2 into the fleet simulation: package a prepared
/// unit, its aging analysis, and its lifted suite as a
/// [`vega_fleet::UnitPool`].
///
/// Per-test severities are the `|slack|` (ns) of each test's targeted
/// pair in the aged timing report — the signal the adaptive policy's
/// severity-ranked test ordering reuses. Fault candidates are the
/// successfully lifted pairs, kept in the analysis' worst-slack order,
/// so a fleet built from this pool only injects faults the suite can in
/// principle detect.
pub fn build_unit_pool(
    name: &str,
    unit: &PreparedUnit,
    analysis: &AgingAnalysis,
    report: &LiftReport,
) -> UnitPool {
    let mut severity_of: std::collections::HashMap<AgingPath, f64> =
        std::collections::HashMap::new();
    for path in analysis
        .report
        .setup_violations
        .iter()
        .chain(&analysis.report.hold_violations)
    {
        if let Some(aging_path) = AgingPath::from_timing_path(path) {
            let severity = path.slack_ns.abs();
            let entry = severity_of.entry(aging_path).or_insert(severity);
            if severity > *entry {
                *entry = severity;
            }
        }
    }
    let mut suite = Vec::new();
    let mut severity_ns = Vec::new();
    let mut candidates = Vec::new();
    for pair in &report.pairs {
        let severity = severity_of.get(&pair.path).copied().unwrap_or(0.0);
        for test in pair.test_cases() {
            suite.push(test.clone());
            severity_ns.push(severity);
        }
        if pair.class() == PairClass::Success {
            candidates.push(FaultCandidate {
                path: pair.path,
                severity_ns: severity,
            });
        }
    }
    UnitPool {
        name: name.into(),
        module: unit.module,
        healthy: unit.netlist.clone(),
        suite,
        severity_ns,
        candidates,
        risk: analysis.risk.clone(),
        sp: None,
    }
}

/// Train a pool's SP predictor from Phase-1 artifacts and attach it:
/// a short uniform-random probe supplies the stimulus-distribution
/// summary features, `analysis.profile` supplies the exact ground
/// truth, and the unit's risk paths plus the workflow's aging model
/// form the per-machine scorer. Returns the holdout evaluation.
///
/// Deterministic for a given `(unit, analysis, options, probe_cycles)`
/// at any thread count.
pub fn attach_sp_predictor(
    pool: &mut UnitPool,
    unit: &PreparedUnit,
    analysis: &AgingAnalysis,
    config: &WorkflowConfig,
    probe_cycles: usize,
    options: &TrainOptions,
) -> Result<vega_predict::EvalReport, VegaError> {
    // A fixed probe seed decorrelated from the profiling seeds: the
    // probe must stay the same stimulus across train and fleet time.
    let probe = vega_sim::profile_sharded(&unit.netlist, probe_cycles, 0xA11CE, config.threads);
    let features = extract_features(&unit.netlist, Some(&probe), config.threads, &config.obs)
        .map_err(|e| VegaError::Predict(e.to_string()))?;
    let targets = features.targets_from(&analysis.profile);
    let trained = vega_predict::train(&features, &targets, options, &config.obs)
        .map_err(|e| VegaError::Predict(e.to_string()))?;
    pool.sp = Some(SpPoolPredictor {
        model: trained.model,
        probe,
        scorer: RiskScorer {
            aging: config.model,
            paths: analysis.risk.clone(),
        },
    });
    Ok(trained.eval)
}

/// Gather an SP profile for a standalone unit by driving it with seeded
/// random stimulus (for the worked example; the real units are profiled
/// by running workloads through [`profile_units`]).
///
/// Single-threaded convenience wrapper around
/// [`profile_standalone_sharded`]; both run on the bit-parallel 64-lane
/// simulation backend.
pub fn profile_standalone(
    netlist: &Netlist,
    cycles: usize,
    seed: u64,
) -> Result<SpProfile, VegaError> {
    profile_standalone_sharded(netlist, cycles, seed, 1)
}

/// Gather an SP profile for a standalone unit on the bit-parallel
/// 64-lane backend, sharded across `threads` worker threads
/// (`WorkflowConfig::threads`).
///
/// At least `cycles` lane-cycles of seeded random stimulus are
/// simulated (rounded up to a multiple of 64). The result is
/// byte-identical for a given `(netlist, cycles, seed)` regardless of
/// `threads` — see `vega_sim::profile_sharded` for the determinism
/// contract.
pub fn profile_standalone_sharded(
    netlist: &Netlist,
    cycles: usize,
    seed: u64,
    threads: usize,
) -> Result<SpProfile, VegaError> {
    Ok(vega_sim::profile_sharded(netlist, cycles, seed, threads))
}

/// [`profile_standalone_sharded`] with the run recorded to `obs`: a
/// `phase1.profile` span plus lane-cycle/shard/cell metrics.
pub fn profile_standalone_obs(
    netlist: &Netlist,
    cycles: usize,
    seed: u64,
    threads: usize,
    obs: &Obs,
) -> Result<SpProfile, VegaError> {
    Ok(vega_sim::profile_sharded_obs(
        netlist, cycles, seed, threads, obs,
    ))
}

/// Gather SP profiles for the ALU and FPU by executing the given mini-IR
/// workloads with gate-level module drivers attached — every interpreted
/// operation becomes real stimulus on the netlists (paper §3.2.1 with
/// embench as the representative workloads).
pub fn profile_units(
    alu: &Netlist,
    fpu: &Netlist,
    programs: &[vega_integrate::mini_ir::Program],
    seed: u64,
) -> Result<(SpProfile, SpProfile), VegaError> {
    use vega_integrate::mini_ir::{Interpreter, ModuleDrivers};
    let mut alu_sim = vega_sim::Simulator::with_seed(alu, seed);
    let mut fpu_sim = vega_sim::Simulator::with_seed(fpu, seed ^ 1);
    alu_sim.enable_profiling();
    fpu_sim.enable_profiling();
    for program in programs {
        let mut interp = Interpreter::new(program);
        let mut drivers = ModuleDrivers {
            alu: &mut alu_sim,
            fpu: &mut fpu_sim,
        };
        interp.run(program, Some(&mut drivers));
    }
    let alu_profile = alu_sim
        .profile()
        .ok_or_else(|| VegaError::ProfilingUnavailable {
            unit: alu.name().to_string(),
        })?;
    let fpu_profile = fpu_sim
        .profile()
        .ok_or_else(|| VegaError::ProfilingUnavailable {
            unit: fpu.name().to_string(),
        })?;
    Ok((alu_profile, fpu_profile))
}
