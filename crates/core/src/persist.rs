//! Workflow artifact persistence.
//!
//! The paper's pipeline passes artifacts between separate tools: SP
//! profiles from the HDL simulator into STA, timing reports into Error
//! Lifting, and the finished suite into applications. This module gives
//! each hand-off a JSON on-disk form so phases can run on different
//! machines (or different days), mirroring that tool boundary.

use std::path::Path;

use serde::{Deserialize, Serialize};

use vega_lift::{ModuleKind, TestCase};
use vega_sim::SpProfile;
use vega_sta::TimingReport;

/// A persisted test suite plus the context needed to run it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteFile {
    /// The target module's name (e.g. `rv32_alu`).
    pub module_name: String,
    /// The module protocol.
    pub module: PersistedModuleKind,
    /// Analysis lifetime, in years.
    pub years: f64,
    /// The test cases (instruction listings are regenerable and not
    /// stored; stimulus and checks — the runnable core — are).
    pub suite: Vec<TestCase>,
}

/// Serializable mirror of [`ModuleKind`] (kept separate so the on-disk
/// format does not depend on the enum's in-memory details).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PersistedModuleKind {
    /// The RV32 ALU.
    Alu,
    /// The FP32 FPU.
    Fpu,
    /// The worked-example adder.
    PaperAdder,
}

impl From<ModuleKind> for PersistedModuleKind {
    fn from(value: ModuleKind) -> Self {
        match value {
            ModuleKind::Alu => PersistedModuleKind::Alu,
            ModuleKind::Fpu => PersistedModuleKind::Fpu,
            ModuleKind::PaperAdder => PersistedModuleKind::PaperAdder,
        }
    }
}

impl From<PersistedModuleKind> for ModuleKind {
    fn from(value: PersistedModuleKind) -> Self {
        match value {
            PersistedModuleKind::Alu => ModuleKind::Alu,
            PersistedModuleKind::Fpu => ModuleKind::Fpu,
            PersistedModuleKind::PaperAdder => ModuleKind::PaperAdder,
        }
    }
}

/// An I/O-or-format error while persisting or loading.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON failure.
    Json(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Json(e) => write!(f, "json: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

/// Write any serializable artifact as pretty JSON.
pub fn save_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(value)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Read a JSON artifact back.
pub fn load_json<T: for<'de> Deserialize<'de>>(
    path: impl AsRef<Path>,
) -> Result<T, PersistError> {
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

/// Save an SP profile (the Phase 1 → Phase 1.5 hand-off).
pub fn save_profile(path: impl AsRef<Path>, profile: &SpProfile) -> Result<(), PersistError> {
    save_json(path, profile)
}

/// Load an SP profile.
pub fn load_profile(path: impl AsRef<Path>) -> Result<SpProfile, PersistError> {
    load_json(path)
}

/// Save a timing report (the Phase 1 → Phase 2 hand-off).
pub fn save_timing_report(
    path: impl AsRef<Path>,
    report: &TimingReport,
) -> Result<(), PersistError> {
    save_json(path, report)
}

/// Load a timing report.
pub fn load_timing_report(path: impl AsRef<Path>) -> Result<TimingReport, PersistError> {
    load_json(path)
}

/// Save a suite file (the Phase 2 → Phase 3 hand-off).
pub fn save_suite(path: impl AsRef<Path>, suite: &SuiteFile) -> Result<(), PersistError> {
    save_json(path, suite)
}

/// Load a suite file.
pub fn load_suite(path: impl AsRef<Path>) -> Result<SuiteFile, PersistError> {
    load_json(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        analyze_aging, lift_errors, prepare_unit, profile_standalone, AgingLibrary, Schedule,
        WorkflowConfig,
    };
    use vega_circuits::adder_example::build_paper_adder;

    #[test]
    fn suite_round_trips_through_disk_and_still_detects() {
        let config = WorkflowConfig::paper_demo();
        let unit = prepare_unit(build_paper_adder(), ModuleKind::PaperAdder, &config);
        let profile = profile_standalone(&unit.netlist, 1_000, 5);
        let analysis = analyze_aging(&unit, &profile, &config);
        let report = lift_errors(&unit, &analysis.unique_pairs, &config);
        let suite = report.suite();
        assert!(!suite.is_empty());

        let dir = std::env::temp_dir().join("vega_persist_test");
        std::fs::create_dir_all(&dir).unwrap();

        // Profile artifact.
        let profile_path = dir.join("profile.json");
        save_profile(&profile_path, &profile).unwrap();
        let profile_back = load_profile(&profile_path).unwrap();
        assert_eq!(profile_back.cycles, profile.cycles);
        assert_eq!(profile_back.sp("xor8"), profile.sp("xor8"));

        // Timing-report artifact.
        let report_path = dir.join("timing.json");
        save_timing_report(&report_path, &analysis.report).unwrap();
        let timing_back = load_timing_report(&report_path).unwrap();
        assert_eq!(timing_back.setup_path_count, analysis.report.setup_path_count);
        assert_eq!(timing_back.wns_setup_ns, analysis.report.wns_setup_ns);

        // Suite artifact: loadable and still functional.
        let suite_path = dir.join("suite.json");
        let file = SuiteFile {
            module_name: unit.netlist.name().to_string(),
            module: unit.module.into(),
            years: config.years,
            suite: suite.clone(),
        };
        save_suite(&suite_path, &file).unwrap();
        let loaded = load_suite(&suite_path).unwrap();
        assert_eq!(loaded.suite.len(), suite.len());

        let mut library = AgingLibrary::new(
            loaded.module.into(),
            loaded.suite,
            Schedule::Sequential,
        );
        let mut sim = vega_sim::Simulator::new(&unit.netlist);
        assert!(library.run_checked(&mut sim).is_ok(), "reloaded suite still runs");

        let failing = crate::build_failing_netlist(
            &unit.netlist,
            analysis.unique_pairs[0],
            crate::FaultValue::One,
            crate::FaultActivation::OnChange,
        );
        let mut aged = vega_sim::Simulator::new(&failing);
        assert!(library.run_checked(&mut aged).is_err(), "reloaded suite still detects");

        std::fs::remove_dir_all(&dir).ok();
    }
}
