//! Workflow artifact persistence.
//!
//! The paper's pipeline passes artifacts between separate tools: SP
//! profiles from the HDL simulator into STA, timing reports into Error
//! Lifting, and the finished suite into applications. This module gives
//! each hand-off a JSON on-disk form so phases can run on different
//! machines (or different days), mirroring that tool boundary.

use std::path::Path;

use serde::{Deserialize, Serialize};

use vega_lift::{ModuleKind, PairResult, TestCase};
use vega_sim::SpProfile;
use vega_sta::TimingReport;

/// Current [`SuiteFile`] on-disk format version. Version 1 is the
/// pre-versioned format (no `version` field, no provenance); loaders
/// accept 1 through this value and reject anything newer with
/// [`PersistError::UnsupportedVersion`].
pub const SUITE_FORMAT_VERSION: u32 = 2;

/// Current [`CheckpointFile`] on-disk format version.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

fn legacy_suite_version() -> u32 {
    1
}

/// A persisted test suite plus the context needed to run it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteFile {
    /// On-disk format version (see [`SUITE_FORMAT_VERSION`]). Absent in
    /// pre-versioned artifacts, which load as version 1.
    #[serde(default = "legacy_suite_version")]
    pub version: u32,
    /// The target module's name (e.g. `rv32_alu`).
    pub module_name: String,
    /// The module protocol.
    pub module: PersistedModuleKind,
    /// Analysis lifetime, in years.
    pub years: f64,
    /// The test cases (instruction listings are regenerable and not
    /// stored; stimulus and checks — the runnable core — are).
    pub suite: Vec<TestCase>,
}

/// Serializable mirror of [`ModuleKind`] (kept separate so the on-disk
/// format does not depend on the enum's in-memory details).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PersistedModuleKind {
    /// The RV32 ALU.
    Alu,
    /// The FP32 FPU.
    Fpu,
    /// The worked-example adder.
    PaperAdder,
}

impl From<ModuleKind> for PersistedModuleKind {
    fn from(value: ModuleKind) -> Self {
        match value {
            ModuleKind::Alu => PersistedModuleKind::Alu,
            ModuleKind::Fpu => PersistedModuleKind::Fpu,
            ModuleKind::PaperAdder => PersistedModuleKind::PaperAdder,
        }
    }
}

impl From<PersistedModuleKind> for ModuleKind {
    fn from(value: PersistedModuleKind) -> Self {
        match value {
            PersistedModuleKind::Alu => ModuleKind::Alu,
            PersistedModuleKind::Fpu => ModuleKind::Fpu,
            PersistedModuleKind::PaperAdder => ModuleKind::PaperAdder,
        }
    }
}

/// An I/O-or-format error while persisting or loading. Every way an
/// artifact can be unreadable — missing file, truncated or corrupted
/// JSON, a format from a future version — maps to a typed variant, so
/// callers can decide to abort, regenerate, or start fresh.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// JSON failure: the file exists but is not valid JSON of the
    /// expected shape (covers truncation and corruption).
    Json(serde_json::Error),
    /// The artifact is valid JSON but declares a format version newer
    /// than this build understands.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
        /// The newest version this build can load.
        supported: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Json(e) => write!(f, "json: {e}"),
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "format version {found} is newer than supported {supported}"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

/// Write any serializable artifact as pretty JSON.
pub fn save_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(value)?;
    std::fs::write(path, json)?;
    Ok(())
}

/// Write any serializable artifact as pretty JSON, atomically and
/// durably: the JSON goes to a sibling temp file first, is fsynced, and
/// is renamed into place, so a crash (or power cut) mid-write leaves
/// either the previous artifact or the new one — never a truncated
/// hybrid. After the rename the parent directory is fsynced too;
/// without that, a power cut can lose the rename itself and resurrect
/// the old file (or none) even though the rename "succeeded". This is
/// how checkpoints are written, since a half-written checkpoint would
/// defeat its purpose.
pub fn save_json_atomic<T: Serialize>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), PersistError> {
    use std::io::Write;

    let path = path.as_ref();
    let json = serde_json::to_string_pretty(value)?;
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Write pre-rendered text with the same atomic + durable discipline as
/// [`save_json_atomic`]. Used for artifacts whose byte-exact rendering
/// is produced elsewhere (e.g. canonical fleet-telemetry JSON), where a
/// re-serialization round-trip could change the bytes.
pub fn save_text_atomic(path: impl AsRef<Path>, text: &str) -> Result<(), PersistError> {
    use std::io::Write;

    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)?;
    Ok(())
}

/// Fsync the directory containing `path`, making a just-completed
/// rename durable. Directory fds are a Unix notion; elsewhere this is a
/// no-op (the rename is still atomic, just not power-cut durable).
#[cfg(unix)]
fn sync_parent_dir(path: &Path) -> Result<(), PersistError> {
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

#[cfg(not(unix))]
fn sync_parent_dir(_path: &Path) -> Result<(), PersistError> {
    Ok(())
}

/// Read a JSON artifact back.
pub fn load_json<T: for<'de> Deserialize<'de>>(path: impl AsRef<Path>) -> Result<T, PersistError> {
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

/// Save an SP profile (the Phase 1 → Phase 1.5 hand-off).
pub fn save_profile(path: impl AsRef<Path>, profile: &SpProfile) -> Result<(), PersistError> {
    save_json(path, profile)
}

/// Load an SP profile.
pub fn load_profile(path: impl AsRef<Path>) -> Result<SpProfile, PersistError> {
    load_json(path)
}

/// Save a timing report (the Phase 1 → Phase 2 hand-off).
pub fn save_timing_report(
    path: impl AsRef<Path>,
    report: &TimingReport,
) -> Result<(), PersistError> {
    save_json(path, report)
}

/// Load a timing report.
pub fn load_timing_report(path: impl AsRef<Path>) -> Result<TimingReport, PersistError> {
    load_json(path)
}

/// Save a suite file (the Phase 2 → Phase 3 hand-off).
pub fn save_suite(path: impl AsRef<Path>, suite: &SuiteFile) -> Result<(), PersistError> {
    save_json(path, suite)
}

/// Load a suite file, rejecting formats newer than this build.
pub fn load_suite(path: impl AsRef<Path>) -> Result<SuiteFile, PersistError> {
    let file: SuiteFile = load_json(path)?;
    if file.version > SUITE_FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: file.version,
            supported: SUITE_FORMAT_VERSION,
        });
    }
    Ok(file)
}

/// One finished pair recorded in a [`CheckpointFile`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// The pair's index in the run's input order.
    pub pair_index: usize,
    /// Its complete result (attempts, outcomes, budget rounds).
    pub result: PairResult,
}

/// Durable progress of one Error Lifting run: every finished
/// [`PairResult`] so far, plus enough run identity to refuse resuming a
/// different run. Rewritten atomically after each pair, so the file on
/// disk is always a consistent prefix of the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointFile {
    /// On-disk format version (see [`CHECKPOINT_FORMAT_VERSION`]).
    pub version: u32,
    /// The target module's netlist name.
    pub module_name: String,
    /// The module protocol.
    pub module: PersistedModuleKind,
    /// Whether the §3.3.4 mitigation was enabled (it changes the attempt
    /// space, so results are not interchangeable across this flag).
    pub mitigation: bool,
    /// Total pairs the run will lift.
    pub pair_count: usize,
    /// Finished pairs, in completion order.
    pub entries: Vec<CheckpointEntry>,
}

impl CheckpointFile {
    /// An empty checkpoint for a new run.
    pub fn new(
        module_name: String,
        module: ModuleKind,
        mitigation: bool,
        pair_count: usize,
    ) -> Self {
        CheckpointFile {
            version: CHECKPOINT_FORMAT_VERSION,
            module_name,
            module: module.into(),
            mitigation,
            pair_count,
            entries: Vec::new(),
        }
    }
}

/// Save a checkpoint atomically (temp file + rename).
pub fn save_checkpoint(
    path: impl AsRef<Path>,
    checkpoint: &CheckpointFile,
) -> Result<(), PersistError> {
    save_json_atomic(path, checkpoint)
}

/// Load a checkpoint, rejecting formats newer than this build. A
/// truncated or corrupted file surfaces as [`PersistError::Json`]; the
/// resumable runner treats any load failure as "no usable checkpoint"
/// and starts fresh rather than aborting.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<CheckpointFile, PersistError> {
    let file: CheckpointFile = load_json(path)?;
    if file.version > CHECKPOINT_FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: file.version,
            supported: CHECKPOINT_FORMAT_VERSION,
        });
    }
    Ok(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        analyze_aging, lift_errors, prepare_unit, profile_standalone, AgingLibrary, Schedule,
        VegaError, WorkflowConfig,
    };
    use vega_circuits::adder_example::build_paper_adder;

    fn temp_dir(name: &str) -> Result<std::path::PathBuf, PersistError> {
        let dir = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&dir)?;
        Ok(dir)
    }

    #[test]
    fn suite_round_trips_through_disk_and_still_detects() -> Result<(), VegaError> {
        let config = WorkflowConfig::paper_demo();
        let unit = prepare_unit(build_paper_adder(), ModuleKind::PaperAdder, &config);
        let profile = profile_standalone(&unit.netlist, 1_000, 5)?;
        let analysis = analyze_aging(&unit, &profile, &config);
        let report = lift_errors(&unit, &analysis.unique_pairs, &config);
        let suite = report.suite();
        assert!(!suite.is_empty());

        let dir = temp_dir("vega_persist_test")?;

        // Profile artifact.
        let profile_path = dir.join("profile.json");
        save_profile(&profile_path, &profile)?;
        let profile_back = load_profile(&profile_path)?;
        assert_eq!(profile_back.cycles, profile.cycles);
        assert_eq!(profile_back.sp("xor8"), profile.sp("xor8"));

        // Timing-report artifact.
        let report_path = dir.join("timing.json");
        save_timing_report(&report_path, &analysis.report)?;
        let timing_back = load_timing_report(&report_path)?;
        assert_eq!(
            timing_back.setup_path_count,
            analysis.report.setup_path_count
        );
        assert_eq!(timing_back.wns_setup_ns, analysis.report.wns_setup_ns);

        // Suite artifact: loadable and still functional.
        let suite_path = dir.join("suite.json");
        let file = SuiteFile {
            version: SUITE_FORMAT_VERSION,
            module_name: unit.netlist.name().to_string(),
            module: unit.module.into(),
            years: config.years,
            suite: suite.clone(),
        };
        save_suite(&suite_path, &file)?;
        let loaded = load_suite(&suite_path)?;
        assert_eq!(loaded.suite.len(), suite.len());
        assert_eq!(loaded.version, SUITE_FORMAT_VERSION);

        let mut library =
            AgingLibrary::new(loaded.module.into(), loaded.suite, Schedule::Sequential);
        let mut sim = vega_sim::Simulator::new(&unit.netlist);
        assert!(
            library.run_checked(&mut sim).is_ok(),
            "reloaded suite still runs"
        );

        let failing = crate::build_failing_netlist(
            &unit.netlist,
            analysis.unique_pairs[0],
            crate::FaultValue::One,
            crate::FaultActivation::OnChange,
        );
        let mut aged = vega_sim::Simulator::new(&failing);
        assert!(
            library.run_checked(&mut aged).is_err(),
            "reloaded suite still detects"
        );

        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn corrupted_and_truncated_artifacts_load_as_typed_errors() -> Result<(), PersistError> {
        let dir = temp_dir("vega_persist_corrupt_test")?;

        // Not JSON at all.
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, b"@@ not json at all @@")?;
        assert!(matches!(load_suite(&garbage), Err(PersistError::Json(_))));

        // Truncated mid-document (a crash while writing non-atomically).
        let file = SuiteFile {
            version: SUITE_FORMAT_VERSION,
            module_name: "adder".into(),
            module: PersistedModuleKind::PaperAdder,
            years: 10.0,
            suite: Vec::new(),
        };
        let full = serde_json::to_string_pretty(&file)?;
        let truncated = dir.join("truncated.json");
        std::fs::write(&truncated, &full[..full.len() / 2])?;
        assert!(matches!(load_suite(&truncated), Err(PersistError::Json(_))));

        // Missing file is an I/O error, not a panic.
        assert!(matches!(
            load_suite(dir.join("missing.json")),
            Err(PersistError::Io(_))
        ));

        // A format from the future is refused with both versions named.
        let futuristic = SuiteFile {
            version: SUITE_FORMAT_VERSION + 7,
            ..file.clone()
        };
        let future_path = dir.join("future.json");
        save_suite(&future_path, &futuristic)?;
        match load_suite(&future_path) {
            Err(PersistError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, SUITE_FORMAT_VERSION + 7);
                assert_eq!(supported, SUITE_FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }

        // A pre-versioned artifact (no `version` field) loads as v1.
        let mut legacy: serde_json::Value = serde_json::from_str(&full)?;
        if let Some(map) = legacy.as_object_mut() {
            map.remove("version");
        }
        let legacy_path = dir.join("legacy.json");
        std::fs::write(&legacy_path, serde_json::to_string(&legacy)?)?;
        assert_eq!(load_suite(&legacy_path)?.version, 1);

        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn atomic_save_leaves_no_temp_file_behind() -> Result<(), PersistError> {
        let dir = temp_dir("vega_persist_atomic_test")?;
        let path = dir.join("checkpoint.json");
        let checkpoint = CheckpointFile::new("adder".into(), ModuleKind::PaperAdder, false, 3);
        save_checkpoint(&path, &checkpoint)?;
        let reloaded = load_checkpoint(&path)?;
        assert_eq!(reloaded.pair_count, 3);
        assert_eq!(reloaded.module, PersistedModuleKind::PaperAdder);
        assert!(reloaded.entries.is_empty());
        let leftover: Vec<_> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "tmp"))
            .collect();
        assert!(leftover.is_empty(), "temp file was renamed away");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}
