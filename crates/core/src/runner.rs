//! The resilient lifting runner: checkpoint/resume around Error Lifting.
//!
//! Error Lifting is the pipeline's long-haul phase — hours of SAT
//! solving on real units — so losing a run to a crash, an OOM kill, or a
//! pre-empted batch slot must not mean starting over. This runner
//! records every finished [`PairResult`] in a [`CheckpointFile`]
//! (rewritten atomically after each pair), and on resume skips exactly
//! the pairs the checkpoint already holds. Because each pair is lifted
//! independently and deterministically, a resumed run produces a report
//! identical to an uninterrupted one.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use vega_lift::{lift_pair, AgingPath, LiftConfig, LiftReport, PairResult};

use crate::persist::{load_checkpoint, save_checkpoint, CheckpointEntry, CheckpointFile};
use crate::{lift_config, PreparedUnit, VegaError, WorkflowConfig};

/// How a resumable lifting run should execute.
#[derive(Debug, Clone, Default)]
pub struct RunnerOptions {
    /// Where to record progress (None = no checkpointing: the run is
    /// equivalent to [`crate::lift_errors`]).
    pub checkpoint: Option<PathBuf>,
    /// Load the checkpoint (if any) and skip the pairs it already holds.
    /// An unreadable checkpoint — corrupted, truncated, or written by a
    /// newer format — is ignored and the run starts fresh; a checkpoint
    /// from a *different run* (other module, pair count, or mitigation)
    /// is an error, since mixing its results in would be silent
    /// corruption of the very kind this project hunts.
    pub resume: bool,
    /// Stop cleanly after this many newly lifted pairs (the checkpoint
    /// stays valid). This gives tests — and batch schedulers with time
    /// budgets — a deterministic stand-in for a mid-run kill.
    pub stop_after: Option<usize>,
    /// Deterministic fault injection, forwarded to the lifting driver
    /// (tests only). Pair indices are run-global, so an injection site
    /// keeps its meaning across suspend/resume.
    pub chaos: vega_lift::ChaosHook,
    /// A cooperative interrupt flag (typically wired to SIGINT/SIGTERM
    /// by `vega serve`). When it reads `true`, workers stop taking new
    /// pairs and the run suspends with the checkpoint intact — the same
    /// clean exit `stop_after` produces, but demand-driven.
    pub interrupt: Option<&'static AtomicBool>,
}

/// The result of one resumable run.
#[derive(Debug, Clone)]
pub enum RunnerOutcome {
    /// Every pair is lifted; the full report, in input order.
    Complete {
        /// The assembled lift report.
        report: LiftReport,
        /// How many pairs were restored from the checkpoint rather than
        /// lifted in this invocation.
        resumed_pairs: usize,
    },
    /// The run stopped early (`stop_after`); progress is in the
    /// checkpoint and a later `resume` invocation will finish the job.
    Suspended {
        /// Pairs lifted by this invocation.
        completed_pairs: usize,
        /// Total pairs finished so far, including resumed ones.
        total_done: usize,
    },
}

/// Load a checkpoint for `resume`, distinguishing "unusable, start
/// fresh" (Ok(None)) from "belongs to a different run" (Err).
fn load_resumable_checkpoint(
    path: &PathBuf,
    expected: &CheckpointFile,
) -> Result<Option<CheckpointFile>, VegaError> {
    if !path.exists() {
        return Ok(None);
    }
    let Ok(found) = load_checkpoint(path) else {
        // Corrupted, truncated, or future-versioned: worthless but
        // harmless — the run simply starts from scratch.
        return Ok(None);
    };
    if found.module_name != expected.module_name
        || found.module != expected.module
        || found.mitigation != expected.mitigation
        || found.pair_count != expected.pair_count
    {
        return Err(VegaError::CheckpointMismatch {
            reason: format!(
                "found {}/{:?} (mitigation {}, {} pairs), expected {}/{:?} (mitigation {}, {} pairs)",
                found.module_name,
                found.module,
                found.mitigation,
                found.pair_count,
                expected.module_name,
                expected.module,
                expected.mitigation,
                expected.pair_count
            ),
        });
    }
    Ok(Some(found))
}

/// Phase 2 with crash resilience: lift `pairs` like
/// [`crate::lift_errors`], but record every finished pair in a
/// checkpoint and, when resuming, skip the ones already done. Runs on
/// `config.threads` workers; results are deterministic and identical to
/// an uninterrupted sequential run.
pub fn lift_errors_resumable(
    unit: &PreparedUnit,
    pairs: &[AgingPath],
    config: &WorkflowConfig,
    options: &RunnerOptions,
) -> Result<RunnerOutcome, VegaError> {
    let mut lift_config: LiftConfig = lift_config(config);
    lift_config.chaos = options.chaos;
    let _span = crate::obs::span!(
        config.obs,
        "phase2.lift",
        module = unit.netlist.name(),
        pairs = pairs.len(),
        threads = config.threads.max(1),
    );
    config.obs.counter("phase2.pairs", pairs.len() as u64);
    let mut checkpoint = CheckpointFile::new(
        unit.netlist.name().to_string(),
        unit.module,
        config.mitigation,
        pairs.len(),
    );

    // Seed the slots with checkpointed results.
    let mut slots: Vec<Option<PairResult>> = Vec::new();
    slots.resize_with(pairs.len(), || None);
    let mut resumed_pairs = 0;
    if options.resume {
        if let Some(path) = &options.checkpoint {
            if let Some(found) = load_resumable_checkpoint(path, &checkpoint)? {
                for entry in found.entries {
                    if entry.pair_index < slots.len() && slots[entry.pair_index].is_none() {
                        slots[entry.pair_index] = Some(entry.result.clone());
                        checkpoint.entries.push(entry);
                        resumed_pairs += 1;
                    }
                }
            }
        }
    }

    if resumed_pairs > 0 {
        config
            .obs
            .counter("phase2.resumed_pairs", resumed_pairs as u64);
    }
    config.obs.gauge("phase2.pairs_total", pairs.len() as f64);
    config.obs.gauge("phase2.pairs_done", resumed_pairs as f64);
    let todo: Vec<usize> = (0..pairs.len())
        .filter(|&index| slots[index].is_none())
        .collect();
    let budget = options.stop_after.unwrap_or(todo.len());

    // Work-stealing over the missing indices. Each worker takes a ticket
    // against the `stop_after` budget *before* taking work, so the run
    // stops after exactly `budget` new pairs; finished pairs go through
    // one mutex that also rewrites the checkpoint atomically.
    let next = AtomicUsize::new(0);
    let tickets = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let state = Mutex::new((slots, checkpoint, None::<VegaError>));
    let threads = config.threads.max(1).min(todo.len().max(1));

    let worker = || loop {
        if failed.load(Ordering::Relaxed)
            || options
                .interrupt
                .is_some_and(|flag| flag.load(Ordering::Relaxed))
            || tickets.fetch_add(1, Ordering::Relaxed) >= budget
        {
            break;
        }
        let position = next.fetch_add(1, Ordering::Relaxed);
        let Some(&index) = todo.get(position) else {
            break;
        };
        let result = lift_pair(
            &unit.netlist,
            unit.module,
            pairs[index],
            index,
            &lift_config,
        );
        let mut state = state.lock().unwrap_or_else(|poison| poison.into_inner());
        let (slots, checkpoint, error) = &mut *state;
        slots[index] = Some(result.clone());
        checkpoint.entries.push(CheckpointEntry {
            pair_index: index,
            result,
        });
        // Progress gauge under the completion mutex: monotonic, and at
        // threads=1 a pure function of the inputs (journal determinism).
        config
            .obs
            .gauge("phase2.pairs_done", checkpoint.entries.len() as f64);
        if let Some(path) = &options.checkpoint {
            match save_checkpoint(path, checkpoint) {
                Ok(()) => config.obs.counter("phase2.checkpoint.saves", 1),
                Err(e) => {
                    *error = Some(e.into());
                    failed.store(true, Ordering::Relaxed);
                }
            }
        }
    };
    if threads == 1 {
        // Run on the calling thread: keeps the thread-local span stack
        // intact (per-pair spans nest under `phase2.lift`) and makes the
        // journal's event order a pure function of the inputs.
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }

    let (slots, checkpoint, error) = state
        .into_inner()
        .unwrap_or_else(|poison| poison.into_inner());
    if let Some(error) = error {
        return Err(error);
    }
    let total_done = checkpoint.entries.len();
    let completed_pairs = total_done - resumed_pairs;
    if slots.iter().any(Option::is_none) {
        return Ok(RunnerOutcome::Suspended {
            completed_pairs,
            total_done,
        });
    }
    let report = LiftReport {
        module: unit.module,
        mitigation: config.mitigation,
        pairs: slots.into_iter().flatten().collect(),
    };
    Ok(RunnerOutcome::Complete {
        report,
        resumed_pairs,
    })
}
