//! The crash-recoverable service: the real pipeline behind `vega serve`.
//!
//! [`VegaService`] implements [`vega_serve::ServiceState`] over the
//! actual workflow — Phase 2 Error Lifting as the pair operations,
//! Phase 3 fleet epochs as the epoch operations — so the generic WAL
//! server in `vega-serve` can drive it with crash recovery:
//!
//! * each lifted pair is persisted into the run's [`CheckpointFile`]
//!   (atomically, fsynced) and journaled with a digest of its JSON
//!   form, so recovery restores finished pairs from disk and
//!   cross-checks them against the WAL;
//! * fleet epochs have no per-epoch artifact — the fleet is a seeded
//!   deterministic simulation — so recovery *re-executes* completed
//!   epochs from a fresh same-seed fleet and cross-checks each epoch's
//!   [`Fleet::state_digest`] against the digest journaled at first
//!   execution. Any divergence is a hard error, never silent drift.
//!
//! Phase 1 (profiling + aging STA) runs at construction time: it is
//! fast, deterministic, and its outputs are inputs to everything else,
//! so re-deriving it on every start is simpler and safer than
//! persisting it.
//!
//! The state directory layout:
//!
//! ```text
//! <state-dir>/wal.jsonl        the write-ahead log (vega-serve)
//! <state-dir>/checkpoint.json  finished PairResults (Phase 2)
//! <state-dir>/telemetry.json   final fleet telemetry (written by finalize)
//! ```

use std::path::{Path, PathBuf};

use vega_serve::{digest_bytes, ServiceState, WalNote};

use crate::persist::{load_checkpoint, save_checkpoint, CheckpointEntry, CheckpointFile};
use crate::{
    analyze_aging, build_unit_pool, lift_config, prepare_unit, profile_standalone_obs, AgingPath,
    Fleet, FleetConfig, LiftReport, ModuleKind, PairResult, Policy, PreparedUnit, Scheduler,
    VegaError, WorkflowConfig,
};

/// Everything that identifies one `vega serve` run. The config digest
/// journaled in the WAL's `wal.run_start` record is computed over these
/// fields (except `threads`, which changes only scheduling, never
/// results), so a WAL can never be resumed under different parameters.
#[derive(Debug, Clone)]
pub struct ServeParams {
    /// Unit under analysis (`alu`, `fpu`, or `adder`).
    pub unit: String,
    /// Mission lifetime in years.
    pub years: f64,
    /// Unique pairs to lift (capped by how many Phase 1 finds).
    pub pairs: usize,
    /// Random profiling cycles for Phase 1.
    pub profile_cycles: usize,
    /// Enable the §3.3.4 mitigation during lifting.
    pub mitigation: bool,
    /// Fleet size.
    pub machines: usize,
    /// Fleet epochs to simulate.
    pub epochs: u64,
    /// Per-epoch test-cycle budget (None = the fleet's default).
    pub budget: Option<u64>,
    /// Scan-scheduling policy.
    pub policy: Policy,
    /// Master seed for the fleet simulation.
    pub seed: u64,
    /// Expected faulty fraction of the fleet.
    pub fault_fraction: f64,
    /// Override for the per-attempt formal conflict budget (None = the
    /// module's default [`vega_formal::BmcConfig`]). Changes round
    /// boundaries and outcomes — part of the config digest.
    pub lift_budget: Option<u64>,
    /// Portfolio racers for budget-exhausted Phase-2 attempts (0 or 1 =
    /// racing disabled). Changes which solver answers each round, the
    /// recorded winners, and hence pair digests — part of the config
    /// digest.
    pub portfolio_racers: usize,
    /// Conflict threshold before an exhausted attempt escalates to
    /// racing; part of the config digest for the same reason.
    pub portfolio_threshold: u64,
    /// Region count for the fleet's sharded epochs (None = one region
    /// per ~1k machines). Region boundaries shape the per-region RNG
    /// streams, so this IS part of the config digest.
    pub regions: Option<usize>,
    /// How the fleet's top-level allocator splits the epoch budget
    /// across regions; changes results, so part of the config digest.
    pub scheduler: Scheduler,
    /// Worker threads for lifting and fleet epochs (not part of the
    /// config digest: regions are striped across workers and merged in
    /// region order, so results are thread-count-invariant).
    pub threads: usize,
}

impl ServeParams {
    /// The canonical string the config digest is computed over. Field
    /// order and formatting are part of the WAL compatibility contract:
    /// change them and every existing state directory is (correctly)
    /// rejected as a different run.
    fn digest_string(&self) -> String {
        format!(
            "unit={};years={};pairs={};profile_cycles={};mitigation={};machines={};\
             epochs={};budget={:?};policy={};seed={};fault_fraction={};scheduler={};\
             regions={:?};lift_budget={:?};portfolio={};portfolio_threshold={}",
            self.unit,
            self.years,
            self.pairs,
            self.profile_cycles,
            self.mitigation,
            self.machines,
            self.epochs,
            self.budget,
            self.policy,
            self.seed,
            self.fault_fraction,
            self.scheduler,
            self.regions,
            self.lift_budget,
            self.portfolio_racers,
            self.portfolio_threshold
        )
    }
}

/// The real pipeline as a crash-recoverable [`ServiceState`].
pub struct VegaService {
    params: ServeParams,
    state_dir: PathBuf,
    config: WorkflowConfig,
    unit: PreparedUnit,
    analysis: crate::AgingAnalysis,
    pairs: Vec<AgingPath>,
    results: Vec<Option<PairResult>>,
    fleet: Option<Fleet>,
}

impl VegaService {
    /// Run Phase 1 (prepare, profile, aging STA) and set up the service
    /// over `state_dir`. Deterministic: the same `params` always
    /// produce the same prepared unit and pair list.
    pub fn new(
        params: ServeParams,
        state_dir: &Path,
        config: WorkflowConfig,
    ) -> Result<VegaService, VegaError> {
        std::fs::create_dir_all(state_dir).map_err(crate::persist::PersistError::Io)?;
        let (netlist, module) = match params.unit.as_str() {
            "alu" => (vega_circuits::alu::build_alu(), ModuleKind::Alu),
            "fpu" => (vega_circuits::fpu::build_fpu(), ModuleKind::Fpu),
            _ => (
                vega_circuits::adder_example::build_paper_adder(),
                ModuleKind::PaperAdder,
            ),
        };
        // The serve params are authoritative for the portfolio and
        // budget knobs: they are part of the config digest, so behaviour
        // and digest can never disagree.
        let mut config = config;
        config.portfolio.racers = params.portfolio_racers;
        config.portfolio.threshold = params.portfolio_threshold;
        config.lift_budget = params.lift_budget;
        let unit = prepare_unit(netlist, module, &config);
        let profile = profile_standalone_obs(
            &unit.netlist,
            params.profile_cycles,
            42,
            config.threads,
            &config.obs,
        )?;
        let analysis = analyze_aging(&unit, &profile, &config);
        let pairs: Vec<AgingPath> = analysis
            .unique_pairs
            .iter()
            .copied()
            .take(params.pairs)
            .collect();
        let results = vec![None; pairs.len()];
        Ok(VegaService {
            params,
            state_dir: state_dir.to_path_buf(),
            config,
            unit,
            analysis,
            pairs,
            results,
            fleet: None,
        })
    }

    /// Path of the WAL inside the state directory.
    pub fn wal_path(&self) -> PathBuf {
        self.state_dir.join("wal.jsonl")
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.state_dir.join("checkpoint.json")
    }

    /// Path of the final telemetry artifact.
    pub fn telemetry_path(&self) -> PathBuf {
        self.state_dir.join("telemetry.json")
    }

    fn empty_checkpoint(&self) -> CheckpointFile {
        CheckpointFile::new(
            self.unit.netlist.name().to_string(),
            self.unit.module,
            self.config.mitigation,
            self.pairs.len(),
        )
    }

    /// The digest journaled for a pair: FNV over its canonical JSON.
    /// Stable across a save/load round-trip because serde_json's f64
    /// rendering is shortest-round-trip and struct field order is
    /// fixed.
    fn pair_digest(result: &PairResult) -> Result<u64, String> {
        let json = serde_json::to_string(result).map_err(|e| e.to_string())?;
        Ok(digest_bytes(json.as_bytes()))
    }

    fn fleet(&mut self) -> Result<&mut Fleet, String> {
        self.fleet
            .as_mut()
            .ok_or_else(|| "epoch operation before start_epochs".to_string())
    }

    /// Step the fleet once and check it advanced to `epoch + 1`; the
    /// serve loop and the fleet must agree on where the run is.
    fn step_checked(&mut self, epoch: u64) -> Result<(), String> {
        let fleet = self.fleet()?;
        if fleet.current_epoch() != epoch {
            return Err(format!(
                "fleet is at epoch {} but the WAL asked for {epoch}",
                fleet.current_epoch()
            ));
        }
        if !fleet.step_epoch() {
            return Err(format!("fleet refused to step epoch {epoch}"));
        }
        Ok(())
    }
}

impl ServiceState for VegaService {
    fn label(&self) -> String {
        format!("vega-serve/{}", self.params.unit)
    }

    fn config_digest(&self) -> u64 {
        digest_bytes(self.params.digest_string().as_bytes())
    }

    fn pair_count(&self) -> u64 {
        self.pairs.len() as u64
    }

    fn epoch_count(&self) -> u64 {
        self.params.epochs
    }

    fn restore_pair(&mut self, index: u64) -> Result<Option<u64>, String> {
        let path = self.checkpoint_path();
        if !path.exists() {
            return Ok(None);
        }
        // An unreadable checkpoint is treated as artifact loss (the WAL
        // will drive re-execution), not as a hard error.
        let Ok(checkpoint) = load_checkpoint(&path) else {
            return Ok(None);
        };
        let Some(entry) = checkpoint
            .entries
            .iter()
            .find(|e| e.pair_index == index as usize)
        else {
            return Ok(None);
        };
        let digest = Self::pair_digest(&entry.result)?;
        self.results[index as usize] = Some(entry.result.clone());
        Ok(Some(digest))
    }

    fn observe_recovery(&mut self, view: &vega_serve::WalReplay) -> Result<(), String> {
        // Mine the journaled `round` notes for recorded portfolio-race
        // results: re-execution of an in-doubt (or artifact-lost) pair
        // then replays each raced round by running the recorded winner
        // alone, reproducing the pre-crash run byte-identically instead
        // of racing again (whose winner is scheduling-dependent).
        for record in &view.records {
            let vega_serve::WalRecord::Note(note) = record else {
                continue;
            };
            if note.name != "round" {
                continue;
            }
            let u64_field = |key: &str| {
                note.fields.iter().find_map(|(k, v)| match v {
                    vega_serve::WalValue::U64(n) if k == key => Some(*n),
                    _ => None,
                })
            };
            let str_field = |key: &str| {
                note.fields.iter().find_map(|(k, v)| match v {
                    vega_serve::WalValue::Str(s) if k == key => Some(s.clone()),
                    _ => None,
                })
            };
            if u64_field("raced") != Some(1) {
                continue;
            }
            let (Some(pair), Some(attempt), Some(round)) =
                (u64_field("pair"), u64_field("attempt"), u64_field("round"))
            else {
                continue;
            };
            let winner = match str_field("winner_backend") {
                Some(name) if !name.is_empty() && name != "-" => {
                    Some((name, u64_field("winner_seed").unwrap_or(0)))
                }
                _ => None,
            };
            self.config
                .portfolio
                .pinned
                .insert((pair as usize, attempt as usize, round as usize), winner);
        }
        Ok(())
    }

    fn apply_pair(&mut self, index: u64) -> Result<(u64, Vec<WalNote>), String> {
        let mut lift_config = lift_config(&self.config);
        // SIGINT/SIGTERM reaches into an in-flight solve: the cover
        // session (and any portfolio race) aborts cooperatively, the
        // serve loop journals a clean shutdown, and a restart re-lifts
        // the interrupted pair from scratch.
        lift_config.interrupt = Some(crate::Interrupt::watching(vega_serve::shutdown::flag()));
        let result = crate::lift_pair(
            &self.unit.netlist,
            self.unit.module,
            self.pairs[index as usize],
            index as usize,
            &lift_config,
        );

        // Persist into the checkpoint before the completion record is
        // journaled: on recovery the artifact must exist whenever the
        // WAL says the pair completed. Re-execution of an in-doubt pair
        // replaces any half-recorded entry for the same index.
        let mut checkpoint = if self.checkpoint_path().exists() {
            load_checkpoint(self.checkpoint_path()).unwrap_or_else(|_| self.empty_checkpoint())
        } else {
            self.empty_checkpoint()
        };
        checkpoint
            .entries
            .retain(|e| e.pair_index != index as usize);
        checkpoint.entries.push(CheckpointEntry {
            pair_index: index as usize,
            result: result.clone(),
        });
        save_checkpoint(self.checkpoint_path(), &checkpoint).map_err(|e| e.to_string())?;

        // Journal the in-flight budget rounds: the WAL's account of
        // *how* the pair was lifted, not just that it finished.
        let mut notes = Vec::new();
        for (attempt_index, attempt) in result.attempts.iter().enumerate() {
            for (round_index, round) in attempt.rounds.iter().enumerate() {
                let mut fields = vec![
                    ("pair".to_string(), index.into()),
                    ("attempt".to_string(), (attempt_index as u64).into()),
                    ("round".to_string(), (round_index as u64).into()),
                    ("budget".to_string(), round.budget.into()),
                    ("spent".to_string(), round.spent.into()),
                    ("raced".to_string(), u64::from(round.raced).into()),
                ];
                if round.raced {
                    // "-" marks a raced-but-inconclusive round; recovery
                    // replays it as racer 0 solo.
                    let winner = if round.winner_backend.is_empty() {
                        "-".to_string()
                    } else {
                        round.winner_backend.clone()
                    };
                    fields.push(("winner_backend".to_string(), winner.into()));
                    fields.push(("winner_seed".to_string(), round.winner_seed.into()));
                }
                notes.push(WalNote {
                    name: "round".to_string(),
                    fields,
                });
            }
        }

        let digest = Self::pair_digest(&result)?;
        self.results[index as usize] = Some(result);
        Ok((digest, notes))
    }

    fn start_epochs(&mut self) -> Result<(), String> {
        let pairs: Vec<PairResult> = self
            .results
            .iter()
            .map(|r| r.clone().ok_or_else(|| "missing pair result".to_string()))
            .collect::<Result<_, _>>()?;
        let report = LiftReport {
            module: self.unit.module,
            mitigation: self.config.mitigation,
            pairs,
        };
        let pool = build_unit_pool(&self.params.unit, &self.unit, &self.analysis, &report);
        if pool.suite.is_empty() {
            return Err(format!(
                "unit `{}` lifted no test cases; a fleet without tests cannot detect anything",
                self.params.unit
            ));
        }
        let mut fleet_config = FleetConfig::new(
            self.params.machines,
            self.params.epochs,
            self.params.policy,
            self.params.seed,
        );
        fleet_config.budget_cycles = self.params.budget;
        fleet_config.fault_fraction = self.params.fault_fraction;
        fleet_config.threads = self.params.threads.max(1);
        fleet_config.regions = self.params.regions;
        fleet_config.scheduler = self.params.scheduler;
        let mut fleet = Fleet::build(vec![pool], fleet_config);
        fleet.set_obs(self.config.obs.clone());
        self.fleet = Some(fleet);
        Ok(())
    }

    fn replay_epoch(&mut self, epoch: u64) -> Result<u64, String> {
        self.step_checked(epoch)?;
        let fleet = self.fleet()?;
        // Transitions were journaled at first execution; drain them so
        // replayed and fresh epochs leave identical fleet state.
        let _ = fleet.take_transitions();
        Ok(fleet.state_digest())
    }

    fn apply_epoch(&mut self, epoch: u64) -> Result<(u64, Vec<WalNote>), String> {
        self.step_checked(epoch)?;
        let fleet = self.fleet()?;
        let notes = fleet
            .take_transitions()
            .into_iter()
            .map(|t| WalNote {
                name: "transition".to_string(),
                fields: vec![
                    ("machine".to_string(), (t.machine.0 as u64).into()),
                    ("epoch".to_string(), t.epoch.into()),
                    ("from".to_string(), t.from.into()),
                    ("to".to_string(), t.to.into()),
                ],
            })
            .collect();
        Ok((fleet.state_digest(), notes))
    }

    fn finalize(&mut self) -> Result<(), String> {
        let fleet = self.fleet()?;
        let json = fleet.telemetry().to_json_string();
        crate::persist::save_text_atomic(self.telemetry_path(), &json).map_err(|e| e.to_string())
    }
}
