//! Out-of-process chaos: kill the real `vega serve` binary at random
//! WAL sequence numbers (via `--chaos-kill-seq`, which `process::abort`s
//! mid-append), restart it, and repeat — at least ten kills per seed,
//! some of them tearing the WAL line mid-write. After the final clean
//! run the state directory must be byte-identical to an uncrashed
//! same-seed run: telemetry, checkpoint, and the WAL's completed-op
//! digest map, with no in-doubt residue.

use std::path::{Path, PathBuf};
use std::process::Command;

use vega::serve::{read_wal, wal_status, WalRecord};

const BIN: &str = env!("CARGO_BIN_EXE_vega");
const KILLS_PER_SEED: u64 = 10;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vega-chaos-kill-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn serve_command(dir: &Path, seed: u64) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "serve",
        "--state-dir",
        dir.to_str().expect("utf8 dir"),
        "--unit",
        "adder",
        "--pairs",
        "2",
        "--profile-cycles",
        "256",
        "--machines",
        "8",
        "--epochs",
        "6",
        "--seed",
        &seed.to_string(),
    ]);
    cmd
}

fn run_clean(dir: &Path, seed: u64) {
    let out = serve_command(dir, seed).output().expect("spawn vega serve");
    assert!(
        out.status.success(),
        "clean serve failed (seed {seed}): {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn read_artifacts(dir: &Path) -> (String, String) {
    let telemetry = std::fs::read_to_string(dir.join("telemetry.json")).expect("telemetry");
    let checkpoint = std::fs::read_to_string(dir.join("checkpoint.json")).expect("checkpoint");
    (telemetry, checkpoint)
}

#[test]
fn kill_at_random_seqs_converges_to_the_uncrashed_run() {
    for seed in [1u64, 2, 3] {
        // Uncrashed baseline.
        let baseline = fresh_dir(&format!("baseline-{seed}"));
        run_clean(&baseline, seed);
        let (want_telemetry, want_checkpoint) = read_artifacts(&baseline);
        let want_ops = wal_status(&baseline.join("wal.jsonl"))
            .expect("baseline wal")
            .completed;

        // Chaos runs: kill at a seeded-random WAL sequence, restart,
        // until at least KILLS_PER_SEED kills actually landed.
        let dir = fresh_dir(&format!("chaos-{seed}"));
        let wal = dir.join("wal.jsonl");
        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut kills = 0u64;
        let mut iterations = 0u64;
        while kills < KILLS_PER_SEED {
            iterations += 1;
            assert!(
                iterations < 100,
                "seed {seed}: {kills} kills after {iterations} runs — not converging"
            );
            let status = wal
                .exists()
                .then(|| wal_status(&wal).expect("wal readable"));
            let next_seq = status.as_ref().map_or(0, |s| s.next_seq);
            let complete = status.as_ref().is_some_and(|s| s.run_complete);
            // Once the run has completed, each re-invocation appends
            // exactly recovery + clean-shutdown; only next_seq + 1 can
            // still be hit. Mid-run, spread kills over the next records
            // (the range outspans any single op, so every op can
            // eventually complete and the chain always makes progress).
            let arm = if complete {
                next_seq + 1
            } else {
                next_seq + 1 + xorshift(&mut rng) % 16
            };
            let torn = kills % 3 == 2;
            let mut cmd = serve_command(&dir, seed);
            cmd.args(["--chaos-kill-seq", &arm.to_string()]);
            if torn {
                cmd.arg("--chaos-torn");
            }
            let out = cmd.output().expect("spawn vega serve");
            if out.status.success() {
                // The armed seq was never written: the run finished.
                continue;
            }
            kills += 1;
        }

        // Final clean run: recovery must finish the job.
        run_clean(&dir, seed);

        let (telemetry, checkpoint) = read_artifacts(&dir);
        assert_eq!(
            telemetry, want_telemetry,
            "seed {seed}: telemetry diverged after {kills} kills"
        );
        assert_eq!(
            checkpoint, want_checkpoint,
            "seed {seed}: checkpoint diverged after {kills} kills"
        );

        // WAL invariants: schema version and gapless seq are enforced
        // by the loader; on top of that, every intent is paired with a
        // completion, the op digests match the uncrashed run, and the
        // log ends in a clean shutdown.
        let (records, torn) = read_wal(&wal).expect("final wal parses");
        assert!(torn.is_none(), "seed {seed}: torn tail survived recovery");
        assert!(
            matches!(records.first(), Some(WalRecord::RunStart { .. })),
            "seed {seed}: wal does not begin with run_start"
        );
        let status = wal_status(&wal).expect("final wal");
        assert!(
            status.in_doubt.is_empty(),
            "seed {seed}: in-doubt residue {:?}",
            status.in_doubt
        );
        assert!(status.run_complete, "seed {seed}: run never completed");
        assert!(status.clean_shutdown, "seed {seed}: no clean shutdown");
        assert_eq!(
            status.completed, want_ops,
            "seed {seed}: completed-op digests diverged"
        );
        assert!(
            status.recoveries >= kills,
            "seed {seed}: {} recoveries recorded for {kills} kills",
            status.recoveries
        );

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&baseline).ok();
    }
}
