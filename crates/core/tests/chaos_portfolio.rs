//! Crash recovery of a portfolio race: kill the real `vega serve`
//! binary while it appends (and tears) the completion record of a pair
//! whose lifting escalated to portfolio racing. The WAL then holds the
//! raced rounds' `round` notes — including each recorded winning
//! `(backend, seed)` — but the pair itself is in doubt.
//!
//! Recovery must re-execute the pair by replaying every recorded winner
//! *alone* (`race_round_pinned`) instead of racing again: a fresh race's
//! winner is scheduling-dependent, so only the pinned replay makes
//! re-execution deterministic. The test proves that by recovering two
//! independent copies of the killed state directory and demanding
//! byte-identical artifacts, and by checking the recovered checkpoint
//! records exactly the winners the pre-crash WAL journaled.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use vega::serve::{wal_status, WalRecord, WalValue};

const BIN: &str = env!("CARGO_BIN_EXE_vega");

/// A conflict budget small enough that the adder's cover sessions
/// exhaust their first rounds (escalating to racing), large enough that
/// doubling retries still resolve every pair.
const LIFT_BUDGET: u64 = 1;
const RACERS: usize = 3;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vega-chaos-portfolio-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn serve_command(dir: &Path) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "serve",
        "--state-dir",
        dir.to_str().expect("utf8 dir"),
        "--unit",
        "adder",
        "--pairs",
        "2",
        "--profile-cycles",
        "256",
        "--machines",
        "8",
        "--epochs",
        "4",
        "--seed",
        "5",
        "--retries",
        "8",
        "--lift-budget",
        &LIFT_BUDGET.to_string(),
        "--portfolio",
        &RACERS.to_string(),
        "--portfolio-threshold",
        "0",
    ]);
    cmd
}

fn run_clean(dir: &Path) {
    let out = serve_command(dir).output().expect("spawn vega serve");
    assert!(
        out.status.success(),
        "clean serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("mkdir copy");
    for entry in std::fs::read_dir(from).expect("read_dir") {
        let entry = entry.expect("entry");
        std::fs::copy(entry.path(), to.join(entry.file_name())).expect("copy");
    }
}

fn note_u64(fields: &[(String, WalValue)], key: &str) -> Option<u64> {
    fields.iter().find_map(|(k, v)| match v {
        WalValue::U64(n) if k == key => Some(*n),
        _ => None,
    })
}

fn note_str(fields: &[(String, WalValue)], key: &str) -> Option<String> {
    fields.iter().find_map(|(k, v)| match v {
        WalValue::Str(s) if k == key => Some(s.clone()),
        _ => None,
    })
}

/// `(pair, attempt, round)` — the identity of one raced budget round.
type RoundKey = (u64, u64, u64);
/// `(winner_backend, winner_seed)` journaled for a raced round.
type RoundWinner = (String, u64);

/// `(pair, attempt, round) → (winner_backend, winner_seed)` for every
/// raced round note in the WAL, plus the WAL seq of each pair's
/// completion record.
fn scan_wal(wal: &Path) -> (BTreeMap<RoundKey, RoundWinner>, BTreeMap<u64, u64>) {
    let status = wal_status(wal).expect("wal readable");
    let mut raced = BTreeMap::new();
    let mut complete_seqs = BTreeMap::new();
    for (seq, record) in status.records.iter().enumerate() {
        match record {
            WalRecord::Note(note) if note.name == "round" => {
                if note_u64(&note.fields, "raced") != Some(1) {
                    continue;
                }
                let key = (
                    note_u64(&note.fields, "pair").expect("pair field"),
                    note_u64(&note.fields, "attempt").expect("attempt field"),
                    note_u64(&note.fields, "round").expect("round field"),
                );
                let winner = note_str(&note.fields, "winner_backend").expect("winner field");
                let seed = note_u64(&note.fields, "winner_seed").unwrap_or(0);
                raced.insert(key, (winner, seed));
            }
            WalRecord::Complete { op, .. } if op.kind == vega::serve::OpKind::Pair => {
                complete_seqs.insert(op.index, seq as u64);
            }
            _ => {}
        }
    }
    (raced, complete_seqs)
}

fn read_artifacts(dir: &Path) -> (String, String) {
    let telemetry = std::fs::read_to_string(dir.join("telemetry.json")).expect("telemetry");
    let checkpoint = std::fs::read_to_string(dir.join("checkpoint.json")).expect("checkpoint");
    (telemetry, checkpoint)
}

#[test]
fn killed_mid_race_recovers_by_replaying_the_recorded_winners() {
    // Reference run: learn the WAL layout. The record *layout* is
    // deterministic even though race winners are not — racers agree on
    // every outcome, so the attempt/round structure (and hence the
    // sequence numbers) is schedule-invariant.
    let reference = fresh_dir("reference");
    run_clean(&reference);
    let (ref_raced, ref_completes) = scan_wal(&reference.join("wal.jsonl"));
    assert!(
        !ref_raced.is_empty(),
        "no round escalated to racing — the chaos test is vacuous; shrink LIFT_BUDGET"
    );
    // Kill while appending the completion record of the first pair that
    // raced, tearing the line: its round notes (with recorded winners)
    // are durable, the completion is not — the pair is left in doubt.
    let raced_pair = ref_raced.keys().next().expect("raced round").0;
    let kill_seq = *ref_completes.get(&raced_pair).expect("pair completion");

    let killed = fresh_dir("killed");
    let out = serve_command(&killed)
        .args(["--chaos-kill-seq", &kill_seq.to_string(), "--chaos-torn"])
        .output()
        .expect("spawn vega serve");
    assert!(!out.status.success(), "armed kill must abort the process");

    let status = wal_status(&killed.join("wal.jsonl")).expect("killed wal");
    assert!(status.torn.is_some(), "the kill must tear the final line");
    let (killed_raced, killed_completes) = scan_wal(&killed.join("wal.jsonl"));
    let recorded: Vec<(&RoundKey, &RoundWinner)> = killed_raced
        .iter()
        .filter(|((pair, _, _), _)| *pair == raced_pair)
        .collect();
    assert!(
        !recorded.is_empty(),
        "the in-doubt pair's raced round notes must be durable"
    );
    assert!(
        !killed_completes.contains_key(&raced_pair),
        "the killed pair must not have a durable completion"
    );

    // Recover two independent copies of the killed state. Each replays
    // the recorded winners solo, so both must converge byte-identically
    // — a fresh race could not guarantee that.
    let recover_a = fresh_dir("recover-a");
    let recover_b = fresh_dir("recover-b");
    copy_dir(&killed, &recover_a);
    copy_dir(&killed, &recover_b);
    run_clean(&recover_a);
    run_clean(&recover_b);

    let (telemetry_a, checkpoint_a) = read_artifacts(&recover_a);
    let (telemetry_b, checkpoint_b) = read_artifacts(&recover_b);
    assert_eq!(
        telemetry_a, telemetry_b,
        "two recoveries of the same killed state diverged (telemetry)"
    );
    assert_eq!(
        checkpoint_a, checkpoint_b,
        "two recoveries of the same killed state diverged (checkpoint)"
    );

    // The recovered checkpoint must record exactly the winners the
    // pre-crash WAL journaled: pinned replay, not a fresh race.
    let checkpoint =
        vega::persist::load_checkpoint(recover_a.join("checkpoint.json")).expect("checkpoint");
    let entry = checkpoint
        .entries
        .iter()
        .find(|e| e.pair_index == raced_pair as usize)
        .expect("recovered pair entry");
    for ((pair, attempt, round), (winner, seed)) in &killed_raced {
        if *pair != raced_pair {
            continue;
        }
        let round_record = &entry.result.attempts[*attempt as usize].rounds[*round as usize];
        assert!(round_record.raced, "recovered round {round} must be raced");
        let got = if round_record.winner_backend.is_empty() {
            "-".to_string()
        } else {
            round_record.winner_backend.clone()
        };
        assert_eq!(
            (&got, &round_record.winner_seed),
            (winner, seed),
            "recovered winner diverged from the journaled one (attempt {attempt}, round {round})"
        );
    }

    // Both recovered WALs settle clean: no in-doubt residue, identical
    // completed-op digests.
    for dir in [&recover_a, &recover_b] {
        let status = wal_status(&dir.join("wal.jsonl")).expect("recovered wal");
        assert!(status.in_doubt.is_empty(), "in-doubt residue");
        assert!(status.run_complete);
        assert!(status.clean_shutdown);
    }
    let ops_a = wal_status(&recover_a.join("wal.jsonl"))
        .expect("a")
        .completed;
    let ops_b = wal_status(&recover_b.join("wal.jsonl"))
        .expect("b")
        .completed;
    assert_eq!(ops_a, ops_b, "recovered op digests diverged");

    for dir in [&reference, &killed, &recover_a, &recover_b] {
        std::fs::remove_dir_all(dir).ok();
    }
}
