//! Crash recovery at fleet scale with the sharded engine: a 10k-machine
//! `vega serve` run is killed mid-epoch while running on 4 worker
//! threads, then recovered on 1 thread — and must converge to the
//! byte-identical artifacts of an uncrashed single-threaded baseline.
//!
//! This is the end-to-end form of the thread-invariance contract: WAL
//! replay re-executes completed epochs from a fresh same-seed fleet and
//! cross-checks each epoch's `state_digest` against the digest
//! journaled at first execution. Recovery deliberately runs at a
//! *different* `--threads` than the crashed process, so any
//! thread-count dependence in the sharded epoch loop shows up as a
//! hard `ReplayDivergence`, not a silent pass.

use std::path::{Path, PathBuf};

use vega::serve::{ServeChaos, ServeError, ServeOutcome, Server, Site};
use vega::{Scheduler, ServeParams, VegaService, WorkflowConfig};

const PAIRS: usize = 2;
const EPOCHS: u64 = 3;
const MACHINES: usize = 10_000;

fn params(threads: usize) -> ServeParams {
    ServeParams {
        unit: "adder".into(),
        years: 10.0,
        pairs: PAIRS,
        profile_cycles: 300,
        mitigation: false,
        machines: MACHINES,
        epochs: EPOCHS,
        budget: None,
        policy: vega::Policy::Adaptive,
        seed: 9,
        fault_fraction: 0.25,
        lift_budget: None,
        portfolio_racers: 0,
        portfolio_threshold: 0,
        regions: None, // one region per ~1k machines => 10 regions
        scheduler: Scheduler::Hierarchical,
        // NOT in the config digest: the crashed run and its recovery
        // may (and here, do) use different worker counts.
        threads,
    }
}

fn service(dir: &Path, threads: usize) -> VegaService {
    VegaService::new(params(threads), dir, WorkflowConfig::paper_demo()).expect("service")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vega-chaos-scale-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn sharded_10k_fleet_recovers_across_thread_counts() {
    // Uncrashed single-threaded baseline.
    let baseline = fresh_dir("baseline");
    let mut svc = service(&baseline, 1);
    let outcome = Server::new(&svc.wal_path())
        .run(&mut svc)
        .expect("baseline");
    assert!(matches!(outcome, ServeOutcome::Completed(_)));
    let want_telemetry =
        std::fs::read_to_string(baseline.join("telemetry.json")).expect("telemetry");
    let want_ops = vega::serve::wal_status(&baseline.join("wal.jsonl"))
        .expect("status")
        .completed;
    assert_eq!(want_ops.len(), PAIRS + EPOCHS as usize);

    // Crash a 4-thread run mid-way through the second fleet epoch (op
    // index PAIRS + 1), after the epoch applied but before its
    // completion record — the op is in-doubt and must be re-executed.
    let dir = fresh_dir("kill");
    let wal = dir.join("wal.jsonl");
    let mut svc = service(&dir, 4);
    let err = Server::new(&wal)
        .with_chaos(ServeChaos::kill(Site::AfterApply, PAIRS as u64 + 1))
        .run(&mut svc)
        .expect_err("chaos must fire");
    assert!(
        matches!(err, ServeError::SimulatedCrash { .. }),
        "unexpected error: {err}"
    );

    // Recover on 1 thread: replay cross-checks the digests the 4-thread
    // process journaled, then finishes the run.
    let mut svc = service(&dir, 1);
    let outcome = Server::new(&wal).run(&mut svc).expect("recovery");
    assert!(matches!(outcome, ServeOutcome::Completed(_)));

    let telemetry = std::fs::read_to_string(dir.join("telemetry.json")).expect("telemetry");
    assert_eq!(
        telemetry, want_telemetry,
        "10k-machine telemetry diverged across crash + thread-count change"
    );
    let status = vega::serve::wal_status(&wal).expect("status");
    assert!(status.in_doubt.is_empty(), "in-doubt residue");
    assert!(status.clean_shutdown);
    assert!(status.run_complete);
    assert_eq!(
        status.completed, want_ops,
        "per-op digests diverged from the single-threaded baseline"
    );
    assert_eq!(status.recoveries, 1);

    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&baseline).ok();
}
