//! Checkpoint/resume tests for the resilient lifting runner: round-trip
//! fidelity (property-tested), resume-equals-clean-run, and recovery
//! from truncated or mismatched checkpoints.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;

use vega::persist::{
    load_checkpoint, save_checkpoint, CheckpointEntry, CheckpointFile, PersistError,
    CHECKPOINT_FORMAT_VERSION,
};
use vega::runner::{lift_errors_resumable, RunnerOptions, RunnerOutcome};
use vega::{
    analyze_aging, lift_errors, prepare_unit, profile_standalone, AgingAnalysis, AgingPath,
    Attempt, BudgetRound, Check, ConstructionOutcome, FaultActivation, FaultValue, ModuleKind,
    PairResult, PreparedUnit, Provenance, TestCase, VegaError, ViolationKind, WorkflowConfig,
};
use vega_circuits::adder_example::build_paper_adder;
use vega_netlist::CellId;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vega_checkpoint_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn adder_pipeline() -> (PreparedUnit, WorkflowConfig, AgingAnalysis) {
    let config = WorkflowConfig::paper_demo();
    let unit = prepare_unit(build_paper_adder(), ModuleKind::PaperAdder, &config);
    let profile = profile_standalone(&unit.netlist, 1_000, 7).expect("profiling enabled");
    let analysis = analyze_aging(&unit, &profile, &config);
    (unit, config, analysis)
}

#[test]
fn resume_after_suspension_produces_a_suite_identical_to_a_clean_run() {
    let (unit, config, analysis) = adder_pipeline();
    let pairs = &analysis.unique_pairs;
    assert!(
        pairs.len() >= 2,
        "need at least two pairs to interrupt between"
    );

    let clean = lift_errors(&unit, pairs, &config);

    let checkpoint = temp_path("resume_equals_clean.json");
    std::fs::remove_file(&checkpoint).ok();

    // First invocation: "killed" after one pair (a clean suspension at a
    // pair boundary — exactly what a checkpointed kill leaves on disk).
    let first = lift_errors_resumable(
        &unit,
        pairs,
        &config,
        &RunnerOptions {
            checkpoint: Some(checkpoint.clone()),
            resume: false,
            stop_after: Some(1),
            ..RunnerOptions::default()
        },
    )
    .expect("runner runs");
    let RunnerOutcome::Suspended {
        completed_pairs,
        total_done,
    } = first
    else {
        panic!("expected suspension, got {first:?}");
    };
    assert_eq!(completed_pairs, 1);
    assert_eq!(total_done, 1);

    // Resume until done (each segment lifts one more pair).
    let mut resumed_report = None;
    for _ in 0..pairs.len() {
        let outcome = lift_errors_resumable(
            &unit,
            pairs,
            &config,
            &RunnerOptions {
                checkpoint: Some(checkpoint.clone()),
                resume: true,
                stop_after: Some(1),
                ..RunnerOptions::default()
            },
        )
        .expect("resume runs");
        if let RunnerOutcome::Complete {
            report,
            resumed_pairs,
        } = outcome
        {
            assert!(resumed_pairs >= 1, "the earlier segments were reused");
            resumed_report = Some(report);
            break;
        }
    }
    let resumed = resumed_report.expect("the run eventually completes");

    // Identical to the clean run — same pairs, same outcomes, same
    // suites, compared in serialized form (the canonical artifact).
    let clean_json = serde_json::to_string(&clean.pairs).expect("serializable");
    let resumed_json = serde_json::to_string(&resumed.pairs).expect("serializable");
    assert_eq!(
        clean_json, resumed_json,
        "resume must reproduce the clean run exactly"
    );
    assert_eq!(clean.table4_row(), resumed.table4_row());
    assert_eq!(
        clean
            .suite()
            .iter()
            .map(|t| t.name.clone())
            .collect::<Vec<_>>(),
        resumed
            .suite()
            .iter()
            .map(|t| t.name.clone())
            .collect::<Vec<_>>()
    );

    std::fs::remove_file(&checkpoint).ok();
}

#[test]
fn truncated_checkpoint_is_detected_and_the_run_starts_fresh() {
    let (unit, config, analysis) = adder_pipeline();
    let pairs = &analysis.unique_pairs;

    let checkpoint = temp_path("truncated.json");
    // Write a valid checkpoint, then truncate it mid-document.
    let done = lift_errors_resumable(
        &unit,
        pairs,
        &config,
        &RunnerOptions {
            checkpoint: Some(checkpoint.clone()),
            resume: false,
            stop_after: None,
            ..RunnerOptions::default()
        },
    )
    .expect("clean run");
    assert!(matches!(done, RunnerOutcome::Complete { .. }));
    let full = std::fs::read_to_string(&checkpoint).expect("checkpoint written");
    std::fs::write(&checkpoint, &full[..full.len() / 3]).expect("truncate");

    // The loader reports the truncation as a typed error...
    assert!(matches!(
        load_checkpoint(&checkpoint),
        Err(PersistError::Json(_))
    ));

    // ...and the runner shrugs it off: fresh full run, nothing resumed.
    let rerun = lift_errors_resumable(
        &unit,
        pairs,
        &config,
        &RunnerOptions {
            checkpoint: Some(checkpoint.clone()),
            resume: true,
            stop_after: None,
            ..RunnerOptions::default()
        },
    )
    .expect("recovery run");
    let RunnerOutcome::Complete {
        resumed_pairs,
        report,
    } = rerun
    else {
        panic!("expected completion");
    };
    assert_eq!(resumed_pairs, 0, "a truncated checkpoint resumes nothing");
    assert_eq!(report.pairs.len(), pairs.len());

    std::fs::remove_file(&checkpoint).ok();
}

#[test]
fn checkpoint_from_a_different_run_is_refused() {
    let (unit, config, analysis) = adder_pipeline();
    let pairs = &analysis.unique_pairs;

    let checkpoint = temp_path("mismatched.json");
    // A checkpoint for the same module but a different pair count.
    let foreign = CheckpointFile::new(
        unit.netlist.name().to_string(),
        unit.module,
        config.mitigation,
        pairs.len() + 17,
    );
    save_checkpoint(&checkpoint, &foreign).expect("saved");

    let result = lift_errors_resumable(
        &unit,
        pairs,
        &config,
        &RunnerOptions {
            checkpoint: Some(checkpoint.clone()),
            resume: true,
            stop_after: None,
            ..RunnerOptions::default()
        },
    );
    assert!(
        matches!(result, Err(VegaError::CheckpointMismatch { .. })),
        "mixing a different run's results would be silent corruption"
    );

    std::fs::remove_file(&checkpoint).ok();
}

// ---- property-tested round trip ------------------------------------------

fn arbitrary_outcome() -> impl Strategy<Value = ConstructionOutcome> {
    prop_oneof![
        (0usize..6).prop_map(|d| ConstructionOutcome::ProvenSafe { induction_depth: d }),
        Just(ConstructionOutcome::FormalFailure),
        Just(ConstructionOutcome::ConversionFailure),
        Just(ConstructionOutcome::BoundedInconclusive),
        ".{0,40}".prop_map(|message| ConstructionOutcome::Crashed { message }),
        (0u64..16, 0u64..16).prop_map(|(a, b)| {
            let mut cycle = BTreeMap::new();
            cycle.insert("a".to_string(), a);
            cycle.insert("b".to_string(), b);
            ConstructionOutcome::Success(Box::new(TestCase {
                name: format!("tc_{a}_{b}"),
                target: "prop".into(),
                stimulus: vec![cycle],
                checks: vec![Check::PortAt {
                    cycle: 2,
                    port: "o".into(),
                    expected: a + b,
                }],
                instructions: vec![],
                cpu_cycles: 4,
                provenance: if a % 2 == 0 {
                    Provenance::Formal
                } else {
                    Provenance::Fuzzed
                },
            }))
        }),
    ]
}

fn arbitrary_attempt() -> impl Strategy<Value = Attempt> {
    (
        prop_oneof![Just(FaultValue::Zero), Just(FaultValue::One)],
        prop_oneof![
            Just(FaultActivation::OnChange),
            Just(FaultActivation::RisingEdge),
            Just(FaultActivation::FallingEdge),
        ],
        arbitrary_outcome(),
        proptest::collection::vec(
            (1u64..1_000_000, 0u64..1_000_000).prop_map(|(budget, spent)| BudgetRound {
                budget,
                spent,
                ..BudgetRound::default()
            }),
            0..4,
        ),
    )
        .prop_map(|(value, activation, outcome, rounds)| Attempt {
            value,
            activation,
            outcome,
            rounds,
        })
}

fn arbitrary_entry() -> impl Strategy<Value = CheckpointEntry> {
    (
        0usize..64,
        0u32..512,
        0u32..512,
        prop_oneof![Just(ViolationKind::Setup), Just(ViolationKind::Hold)],
        proptest::collection::vec(arbitrary_attempt(), 1..4),
        "[a-z0-9_>-]{1,24}",
    )
        .prop_map(
            |(pair_index, launch, capture, violation, attempts, label)| CheckpointEntry {
                pair_index,
                result: PairResult {
                    path: AgingPath {
                        launch: CellId(launch),
                        capture: CellId(capture),
                        violation,
                    },
                    label,
                    attempts,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever mix of outcomes a run produced — successes, proofs,
    /// escalated retries, crashes, fuzzed fallbacks — the checkpoint must
    /// reload to the same serialized content.
    #[test]
    fn checkpoint_round_trips_losslessly(
        entries in proptest::collection::vec(arbitrary_entry(), 0..12),
        pair_count in 0usize..64,
        mitigation in proptest::bool::ANY,
        case in 0u64..u64::MAX,
    ) {
        let mut checkpoint = CheckpointFile::new(
            "prop_adder".to_string(),
            ModuleKind::PaperAdder,
            mitigation,
            pair_count,
        );
        checkpoint.entries = entries;
        prop_assert_eq!(checkpoint.version, CHECKPOINT_FORMAT_VERSION);

        let path = temp_path(&format!("roundtrip_{case}.json"));
        save_checkpoint(&path, &checkpoint).expect("save");
        let reloaded = load_checkpoint(&path).expect("load");
        std::fs::remove_file(&path).ok();

        let before = serde_json::to_string(&checkpoint).expect("serialize");
        let after = serde_json::to_string(&reloaded).expect("serialize");
        prop_assert_eq!(before, after);
    }
}
