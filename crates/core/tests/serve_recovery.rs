//! Crash recovery of the real pipeline: drive [`vega::VegaService`]
//! (phase-2 lifting + phase-3 fleet epochs on the worked-example adder)
//! through the `vega-serve` WAL loop, kill it at every in-process chaos
//! site, and assert that crash → restart → converge reproduces the
//! uncrashed run byte-for-byte — telemetry, checkpoint, and WAL digests.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

use vega::serve::{ServeChaos, ServeError, ServeOutcome, Server, Site};
use vega::{ServeParams, VegaService, WorkflowConfig};

const PAIRS: usize = 2;
const EPOCHS: u64 = 4;

fn params(seed: u64) -> ServeParams {
    ServeParams {
        unit: "adder".into(),
        years: 10.0,
        pairs: PAIRS,
        profile_cycles: 300,
        mitigation: false,
        machines: 8,
        epochs: EPOCHS,
        budget: None,
        policy: vega::Policy::Adaptive,
        seed,
        fault_fraction: 0.25,
        lift_budget: None,
        portfolio_racers: 0,
        portfolio_threshold: 0,
        regions: None,
        scheduler: vega::Scheduler::Central,
        threads: 1,
    }
}

fn service(dir: &Path, seed: u64) -> VegaService {
    VegaService::new(params(seed), dir, WorkflowConfig::paper_demo()).expect("service")
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("vega-serve-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn read_artifacts(dir: &Path) -> (String, String) {
    let telemetry = std::fs::read_to_string(dir.join("telemetry.json")).expect("telemetry");
    let checkpoint = std::fs::read_to_string(dir.join("checkpoint.json")).expect("checkpoint");
    (telemetry, checkpoint)
}

#[test]
fn crash_at_every_site_converges_to_the_uncrashed_run() {
    let baseline = fresh_dir("baseline");
    let mut svc = service(&baseline, 7);
    let outcome = Server::new(&svc.wal_path())
        .run(&mut svc)
        .expect("baseline");
    assert!(matches!(outcome, ServeOutcome::Completed(_)));
    let (want_telemetry, want_checkpoint) = read_artifacts(&baseline);
    let want_ops = vega::serve::wal_status(&baseline.join("wal.jsonl"))
        .expect("status")
        .completed;
    assert_eq!(want_ops.len(), PAIRS + EPOCHS as usize);

    // 2 pairs + 4 epochs = 6 ops, each passing every site once.
    for site in Site::ALL {
        for occurrence in 0..(PAIRS as u64 + EPOCHS) {
            let dir = fresh_dir(&format!("kill-{}-{occurrence}", site.label()));
            let wal = dir.join("wal.jsonl");
            let mut svc = service(&dir, 7);
            let err = Server::new(&wal)
                .with_chaos(ServeChaos::kill(site, occurrence))
                .run(&mut svc)
                .expect_err("chaos must fire");
            assert!(
                matches!(err, ServeError::SimulatedCrash { .. }),
                "unexpected error at {} #{occurrence}: {err}",
                site.label()
            );

            // Restart from scratch: a brand-new process would see
            // exactly this state object.
            let mut svc = service(&dir, 7);
            let outcome = Server::new(&wal).run(&mut svc).expect("recovery");
            assert!(matches!(outcome, ServeOutcome::Completed(_)));

            let (telemetry, checkpoint) = read_artifacts(&dir);
            assert_eq!(
                telemetry,
                want_telemetry,
                "telemetry diverged after crash at {} #{occurrence}",
                site.label()
            );
            assert_eq!(
                checkpoint,
                want_checkpoint,
                "checkpoint diverged after crash at {} #{occurrence}",
                site.label()
            );
            let status = vega::serve::wal_status(&wal).expect("status");
            assert!(status.in_doubt.is_empty(), "in-doubt residue");
            assert!(status.clean_shutdown);
            assert!(status.run_complete);
            assert_eq!(status.completed, want_ops, "op digests diverged");
            assert_eq!(status.recoveries, 1);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    // Re-invoking a completed run restores everything and re-executes
    // nothing; artifacts stay byte-identical.
    let mut svc = service(&baseline, 7);
    let outcome = Server::new(&svc.wal_path())
        .run(&mut svc)
        .expect("idempotent");
    let report = outcome.report();
    assert_eq!(report.resumed_pairs, PAIRS as u64);
    assert_eq!(report.resumed_epochs, EPOCHS);
    assert_eq!(report.reexecuted, 0);
    let (telemetry, checkpoint) = read_artifacts(&baseline);
    assert_eq!(telemetry, want_telemetry);
    assert_eq!(checkpoint, want_checkpoint);
    std::fs::remove_dir_all(&baseline).ok();
}

#[test]
fn shutdown_flag_suspends_and_resumes_to_identical_artifacts() {
    static FLAG: AtomicBool = AtomicBool::new(false);

    let baseline = fresh_dir("shutdown-baseline");
    let mut svc = service(&baseline, 11);
    Server::new(&svc.wal_path())
        .run(&mut svc)
        .expect("baseline");
    let (want_telemetry, _) = read_artifacts(&baseline);

    let dir = fresh_dir("shutdown");
    let wal = dir.join("wal.jsonl");
    FLAG.store(true, Ordering::SeqCst);
    let mut svc = service(&dir, 11);
    let outcome = Server::new(&wal)
        .with_shutdown_flag(&FLAG)
        .run(&mut svc)
        .expect("interrupt");
    assert!(matches!(outcome, ServeOutcome::Interrupted(_)));
    let status = vega::serve::wal_status(&wal).expect("status");
    assert!(status.clean_shutdown, "clean-shutdown record written");
    assert!(
        status.in_doubt.is_empty(),
        "clean shutdown leaves no in-doubt ops"
    );

    FLAG.store(false, Ordering::SeqCst);
    let mut svc = service(&dir, 11);
    let outcome = Server::new(&wal)
        .with_shutdown_flag(&FLAG)
        .run(&mut svc)
        .expect("resume");
    assert!(matches!(outcome, ServeOutcome::Completed(_)));
    let (telemetry, _) = read_artifacts(&dir);
    assert_eq!(telemetry, want_telemetry, "resumed run diverged");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&baseline).ok();
}

#[test]
fn mismatched_parameters_are_rejected() {
    let dir = fresh_dir("mismatch");
    let mut svc = service(&dir, 3);
    Server::new(&svc.wal_path()).run(&mut svc).expect("first");
    // Same state dir, different seed: the config digest differs and the
    // WAL must refuse to be resumed under it.
    let mut other = service(&dir, 4);
    let err = Server::new(&other.wal_path())
        .run(&mut other)
        .expect_err("mismatch");
    assert!(matches!(err, ServeError::RunMismatch { .. }));
    std::fs::remove_dir_all(&dir).ok();
}
