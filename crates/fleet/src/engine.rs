//! The fleet engine: a deterministic, seeded discrete-event simulation
//! of a machine fleet under proactive runtime SDC testing.
//!
//! Time advances in **epochs**. Each epoch the central scheduler spends
//! a fixed CPU-cycle budget dispatching Phase-3 test visits across the
//! fleet: first confirmation retests for machines already under
//! suspicion, then policy-driven scan visits ([`Policy`]). Detections
//! drive the quarantine state machine ([`HealthState`]); everything the
//! fleet observes lands in [`FleetTelemetry`].
//!
//! The whole simulation is wall-clock-free and bit-reproducible: one
//! seeded RNG drives fleet construction and scheduling noise, and each
//! visit's gate-level simulator is seeded from a deterministic mix of
//! `(fleet seed, machine, epoch, visit counter)` — the same discipline
//! as the repo's experiment binaries.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use vega_integrate::{AgingFault, DetectionReport};
use vega_lift::{
    build_failing_netlist, run_suite_wide, FaultActivation, FaultValue, ModuleKind, TestCase,
    TestOutcome,
};
use vega_predict::{RiskPath, SpAssessment, SpPoolPredictor, SpSource};

use crate::machine::{
    failure_mode_of, FaultCandidate, HealthState, HealthTransition, InjectedFault, Machine,
    MachineId,
};
use crate::policy::{adaptive_score, Policy};
use crate::telemetry::{
    EpochTelemetry, FleetSummary, FleetTelemetry, MachineTelemetry, OutcomeTally, PoolTelemetry,
};

/// One module type's worth of fleet inventory: the healthy netlist, the
/// Phase-3 suite machines of this type run, per-test severity from the
/// aging-aware STA, and the lifted pairs usable as injected faults.
#[derive(Debug, Clone)]
pub struct UnitPool {
    /// Pool name used in telemetry (e.g. `alu`).
    pub name: String,
    /// The module's port protocol.
    pub module: ModuleKind,
    /// The healthy signed-off netlist.
    pub healthy: vega_netlist::Netlist,
    /// The Phase-3 test suite for this unit.
    pub suite: Vec<TestCase>,
    /// Per-test severity: `|slack|` (ns) of the aging-prone path the
    /// test targets. Parallel to `suite`; drives the adaptive policy's
    /// severity-ranked test ordering.
    pub severity_ns: Vec<f64>,
    /// Lifted pairs a faulty machine of this pool may carry (worst
    /// slack first, by convention).
    pub candidates: Vec<FaultCandidate>,
    /// The unit's aging-prone paths distilled from Phase-1's aged
    /// timing report; what the SP-driven risk scorer evaluates.
    pub risk: Vec<RiskPath>,
    /// The trained SP predictor (with probe profile and risk scorer)
    /// for `predicted`/`predicted-fallback` profiling modes; `None`
    /// keeps the pool exact-only.
    pub sp: Option<SpPoolPredictor>,
}

impl UnitPool {
    /// A pool with uniform (zero) severities — severity ranking then
    /// degenerates to construction order.
    pub fn uniform(
        name: impl Into<String>,
        module: ModuleKind,
        healthy: vega_netlist::Netlist,
        suite: Vec<TestCase>,
        candidates: Vec<FaultCandidate>,
    ) -> UnitPool {
        let severity_ns = vec![0.0; suite.len()];
        UnitPool {
            name: name.into(),
            module,
            healthy,
            suite,
            severity_ns,
            candidates,
            risk: Vec::new(),
            sp: None,
        }
    }

    /// Suite indices in descending severity (ties broken by index, so
    /// the order is total and deterministic).
    pub fn severity_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.suite.len()).collect();
        order.sort_by(|&a, &b| {
            self.severity_ns[b]
                .partial_cmp(&self.severity_ns[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }
}

/// How the fleet obtains each machine's Phase-1 SP assessment.
///
/// Exact profiling replays a stimulus on every machine's own netlist —
/// `sp_profile_cycles` simulation lane-cycles per machine, the fleet's
/// dominant Phase-1 cost. The predicted modes replace that with the
/// trained per-pool [`SpPoolPredictor`] at zero simulation cycles;
/// `PredictedFallback` additionally re-profiles exactly those machines
/// whose predicted worst margin lands inside the guard band around the
/// STA violation threshold, where a prediction error could flip the
/// at-risk verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpMode {
    /// Exact `profile_sharded` on every machine.
    Exact,
    /// Predictor only; no machine is ever re-profiled.
    Predicted,
    /// Predictor everywhere, exact profiling for guard-band machines.
    PredictedFallback,
}

impl SpMode {
    /// The CLI/telemetry name.
    pub fn label(self) -> &'static str {
        match self {
            SpMode::Exact => "exact",
            SpMode::Predicted => "predicted",
            SpMode::PredictedFallback => "predicted-fallback",
        }
    }
}

impl std::str::FromStr for SpMode {
    type Err = String;

    fn from_str(s: &str) -> Result<SpMode, String> {
        match s {
            "exact" => Ok(SpMode::Exact),
            "predicted" => Ok(SpMode::Predicted),
            "predicted-fallback" | "fallback" => Ok(SpMode::PredictedFallback),
            other => Err(format!(
                "unknown sp mode `{other}` (exact|predicted|predicted-fallback)"
            )),
        }
    }
}

impl std::fmt::Display for SpMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Fleet-simulation configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of machines.
    pub machines: usize,
    /// Epochs to simulate.
    pub epochs: u64,
    /// Per-epoch CPU-cycle budget; `None` derives a default that visits
    /// roughly a quarter of the fleet per epoch.
    pub budget_cycles: Option<u64>,
    /// Scan-scheduling policy.
    pub policy: Policy,
    /// Master seed; fixes fleet composition and every scheduling and
    /// simulation decision.
    pub seed: u64,
    /// Target fraction of the fleet carrying an injected fault. Actual
    /// faultiness is age-weighted: a machine's probability is
    /// `2 * fault_fraction * age / max_age`, so old machines break more
    /// often and the expectation over the fleet stays `fault_fraction`.
    pub fault_fraction: f64,
    /// Confirming retests (beyond the triggering detection) required to
    /// quarantine.
    pub confirmations: u32,
    /// Tests per scan visit.
    pub tests_per_visit: usize,
    /// Per-visit probability of a spurious detection (test-environment
    /// noise); exercises the false-quarantine defenses.
    pub flake_probability: f64,
    /// Oldest machine in the fleet, in years.
    pub max_age_years: f64,
    /// Phase-1 SP assessment mode; `None` skips assessment entirely
    /// (the pre-prediction behaviour).
    pub sp_mode: Option<SpMode>,
    /// Simulation lane-cycles one exact per-machine SP profile costs.
    pub sp_profile_cycles: usize,
    /// Half-width (ns) of the guard band around zero slack inside which
    /// a predicted assessment escalates to exact profiling.
    pub sp_guard_band_ns: f64,
}

impl FleetConfig {
    /// Defaults for everything but the dimensions the caller always
    /// chooses.
    pub fn new(machines: usize, epochs: u64, policy: Policy, seed: u64) -> FleetConfig {
        FleetConfig {
            machines,
            epochs,
            budget_cycles: None,
            policy,
            seed,
            fault_fraction: 0.25,
            confirmations: 2,
            tests_per_visit: 4,
            flake_probability: 0.002,
            max_age_years: 12.0,
            sp_mode: None,
            sp_profile_cycles: 2000,
            sp_guard_band_ns: 0.005,
        }
    }
}

/// SplitMix64: decorrelates derived seeds from the master seed and the
/// visit coordinates.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The explicit budget, or a default sized so one epoch scans roughly a
/// quarter of the fleet at the mean per-test cost.
fn resolve_budget(pools: &[UnitPool], config: &FleetConfig) -> u64 {
    config.budget_cycles.unwrap_or_else(|| {
        let total: u64 = pools
            .iter()
            .flat_map(|p| p.suite.iter())
            .map(|t| t.cpu_cycles)
            .sum();
        let count: u64 = pools.iter().map(|p| p.suite.len() as u64).sum();
        let mean = (total / count.max(1)).max(1);
        mean * config.tests_per_visit.max(1) as u64 * (config.machines as u64 / 4).max(1)
    })
}

/// What one visit observed, after the flake model.
struct VisitResult {
    /// The suite indices that ran.
    tests: Vec<usize>,
    /// Cycles charged against the epoch budget.
    cycles: u64,
    /// Whether a (real) test detected a fault.
    detected: bool,
    /// Whether the flake model injected a spurious detection.
    flake: bool,
}

/// The fleet simulator. Build with [`Fleet::build`], run with
/// [`Fleet::run`]; the machines remain inspectable afterwards.
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    pools: Vec<UnitPool>,
    severity_orders: Vec<Vec<usize>>,
    machines: Vec<Machine>,
    rng: StdRng,
    budget_cycles: u64,
    rr_next: usize,
    visit_seq: u64,
    epoch: u64,
    tally: OutcomeTally,
    pool_detections: Vec<u64>,
    per_epoch: Vec<EpochTelemetry>,
    transitions: Vec<HealthTransition>,
    sp_assessed: bool,
    phase1_cycles: u64,
    sp_exact: u64,
    sp_predicted: u64,
    sp_escalations: u64,
    obs: vega_obs::Obs,
}

impl Fleet {
    /// Sample a fleet: each machine gets a pool (round-robin across
    /// pools), a seeded age, and — with age-weighted probability — one
    /// of the pool's failing netlists at `C ∈ {0, 1, random}`.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty, any pool's suite is empty, or
    /// `config.machines` is zero.
    pub fn build(pools: Vec<UnitPool>, config: FleetConfig) -> Fleet {
        assert!(!pools.is_empty(), "a fleet needs at least one unit pool");
        assert!(config.machines > 0, "a fleet needs at least one machine");
        for pool in &pools {
            assert!(
                !pool.suite.is_empty(),
                "pool `{}` has an empty test suite",
                pool.name
            );
            assert_eq!(
                pool.suite.len(),
                pool.severity_ns.len(),
                "pool `{}`: severity_ns must be parallel to suite",
                pool.name
            );
        }
        let mut rng = StdRng::seed_from_u64(mix(config.seed));
        let mut machines = Vec::with_capacity(config.machines);
        for index in 0..config.machines {
            let pool_index = index % pools.len();
            let pool = &pools[pool_index];
            let age_years = config.max_age_years * rng.gen::<f64>();
            let p_fault = (2.0 * config.fault_fraction * age_years
                / config.max_age_years.max(f64::MIN_POSITIVE))
            .clamp(0.0, 1.0);
            let is_faulty = rng.gen_bool(p_fault) && !pool.candidates.is_empty();
            let (netlist, fault) = if is_faulty {
                // Bias candidate choice toward the worst-slack pairs:
                // those paths have the least margin and age out first.
                let u = rng.gen::<f64>();
                let candidate_index = ((u * u * pool.candidates.len() as f64) as usize)
                    .min(pool.candidates.len() - 1);
                let candidate = &pool.candidates[candidate_index];
                let value = match rng.gen_range(0..3usize) {
                    0 => FaultValue::Zero,
                    1 => FaultValue::One,
                    _ => FaultValue::Random,
                };
                let failing = build_failing_netlist(
                    &pool.healthy,
                    candidate.path,
                    value,
                    FaultActivation::OnChange,
                );
                let fault = InjectedFault {
                    path_label: candidate.path.label(&pool.healthy),
                    mode: failure_mode_of(value),
                    severity_ns: candidate.severity_ns,
                };
                (failing, Some(fault))
            } else {
                (pool.healthy.clone(), None)
            };
            machines.push(Machine::new(
                MachineId(index),
                pool_index,
                age_years,
                netlist,
                fault,
            ));
        }
        let budget_cycles = resolve_budget(&pools, &config);
        let severity_orders = pools.iter().map(UnitPool::severity_order).collect();
        let pool_count = pools.len();
        Fleet {
            config,
            pools,
            severity_orders,
            machines,
            rng,
            budget_cycles,
            rr_next: 0,
            visit_seq: 0,
            epoch: 0,
            tally: OutcomeTally::default(),
            pool_detections: vec![0; pool_count],
            per_epoch: Vec::new(),
            transitions: Vec::new(),
            sp_assessed: false,
            phase1_cycles: 0,
            sp_exact: 0,
            sp_predicted: 0,
            sp_escalations: 0,
            obs: vega_obs::Obs::null(),
        }
    }

    /// Assemble a fleet from explicitly constructed machines instead of
    /// seeded sampling — the hook for tests (and embedders) that need an
    /// exact fleet composition. Scheduling remains seeded by
    /// `config.seed`.
    ///
    /// # Panics
    ///
    /// Same validation as [`Fleet::build`], plus every machine's `pool`
    /// index must be in range.
    pub fn from_machines(
        pools: Vec<UnitPool>,
        config: FleetConfig,
        machines: Vec<Machine>,
    ) -> Fleet {
        assert!(!pools.is_empty(), "a fleet needs at least one unit pool");
        assert!(!machines.is_empty(), "a fleet needs at least one machine");
        for machine in &machines {
            assert!(
                machine.pool < pools.len(),
                "machine {} references pool {} of {}",
                machine.id,
                machine.pool,
                pools.len()
            );
        }
        let mut config = config;
        config.machines = machines.len();
        let budget_cycles = resolve_budget(&pools, &config);
        let severity_orders = pools.iter().map(UnitPool::severity_order).collect();
        let pool_count = pools.len();
        Fleet {
            rng: StdRng::seed_from_u64(mix(config.seed)),
            config,
            pools,
            severity_orders,
            machines,
            budget_cycles,
            rr_next: 0,
            visit_seq: 0,
            epoch: 0,
            tally: OutcomeTally::default(),
            pool_detections: vec![0; pool_count],
            per_epoch: Vec::new(),
            transitions: Vec::new(),
            sp_assessed: false,
            phase1_cycles: 0,
            sp_exact: 0,
            sp_predicted: 0,
            sp_escalations: 0,
            obs: vega_obs::Obs::null(),
        }
    }

    /// Route this fleet's `phase3.fleet.*` spans and counters to `obs`
    /// (the default sink is null: recording disabled at zero cost).
    pub fn set_obs(&mut self, obs: vega_obs::Obs) {
        self.obs = obs;
    }

    /// The resolved per-epoch cycle budget.
    pub fn budget_cycles(&self) -> u64 {
        self.budget_cycles
    }

    /// The machines, in id order.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// Run every configured epoch and aggregate the telemetry.
    pub fn run(&mut self) -> FleetTelemetry {
        let _span = vega_obs::span!(
            self.obs,
            "phase3.fleet.run",
            machines = self.config.machines,
            epochs = self.config.epochs,
            policy = self.config.policy.label(),
            seed = self.config.seed,
        );
        while self.step_epoch() {}
        let telemetry = self.telemetry();
        telemetry.record_obs(&self.obs);
        telemetry
    }

    /// Simulate the next epoch, if any remain. Returns whether an epoch
    /// ran — `false` once all configured epochs are done.
    ///
    /// This is the resumable entry point `vega serve` drives: each call
    /// is one durable operation, and the fleet's evolution is identical
    /// whether epochs run in one [`Fleet::run`] loop or across process
    /// restarts (re-stepped from a fresh same-seed fleet).
    pub fn step_epoch(&mut self) -> bool {
        if self.epoch >= self.config.epochs {
            return false;
        }
        self.ensure_sp_assessed();
        let _epoch_span =
            vega_obs::span!(self.obs.detail(), "phase3.fleet.epoch", epoch = self.epoch);
        let stats = self.run_epoch();
        self.record_epoch_obs(&stats);
        self.per_epoch.push(stats);
        self.epoch += 1;
        true
    }

    /// Epochs simulated so far.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Run the one-shot Phase-1 SP assessment of every machine, if an SP
    /// mode is configured and it has not run yet.
    ///
    /// Deliberately lazy — first [`Fleet::step_epoch`] rather than
    /// construction — so it happens after [`Fleet::set_obs`] and at the
    /// same point whether the fleet runs in one process or is re-stepped
    /// from a fresh same-seed fleet during crash recovery. It never
    /// touches the scheduling RNG (per-machine profile seeds are mixed
    /// from the master seed and machine id), so the epoch-by-epoch
    /// evolution is identical across all SP modes.
    fn ensure_sp_assessed(&mut self) {
        if self.sp_assessed {
            return;
        }
        self.sp_assessed = true;
        let Some(mode) = self.config.sp_mode else {
            return;
        };
        let _span = vega_obs::span!(
            self.obs,
            "phase1.predict.assess",
            mode = mode.label(),
            machines = self.machines.len(),
            guard_band_ns = self.config.sp_guard_band_ns,
        );
        let detail = self.obs.detail();
        for index in 0..self.machines.len() {
            let machine = &self.machines[index];
            let pool = &self.pools[machine.pool];
            let Some(sp) = &pool.sp else {
                continue;
            };
            let age = machine.age_years;
            let assessment = match mode {
                SpMode::Exact => {
                    self.sp_exact += 1;
                    self.exact_assessment(sp, index, age)
                }
                SpMode::Predicted => {
                    self.sp_predicted += 1;
                    match sp.assess_predicted(&machine.netlist, age, &detail) {
                        Ok(a) => a,
                        // A schema/feature mismatch is a configuration
                        // error; fail safe to exact rather than guess.
                        Err(_) => {
                            self.sp_predicted -= 1;
                            self.sp_exact += 1;
                            self.exact_assessment(sp, index, age)
                        }
                    }
                }
                SpMode::PredictedFallback => {
                    match sp.assess_predicted(&machine.netlist, age, &detail) {
                        Ok(a) if !sp.needs_escalation(&a, self.config.sp_guard_band_ns) => {
                            self.sp_predicted += 1;
                            a
                        }
                        // Guard-band hit (or predictor error): pay for
                        // the exact profile on this machine only.
                        _ => {
                            self.sp_escalations += 1;
                            self.sp_exact += 1;
                            let mut exact = self.exact_assessment(sp, index, age);
                            exact.escalated = true;
                            exact
                        }
                    }
                }
            };
            self.phase1_cycles += assessment.phase1_cycles;
            self.machines[index].sp = Some(assessment);
        }
        self.obs
            .counter("phase1.predict.exact_profiles", self.sp_exact);
        self.obs
            .counter("phase1.predict.predicted", self.sp_predicted);
        self.obs
            .counter("phase1.predict.escalations", self.sp_escalations);
        self.obs
            .counter("phase1.predict.cycles", self.phase1_cycles);
    }

    /// Exact per-machine assessment: profile the machine's own netlist
    /// for `sp_profile_cycles` under a seed mixed from the master seed
    /// and the machine id (stable across epochs, modes, and restarts).
    fn exact_assessment(&self, sp: &SpPoolPredictor, index: usize, age_years: f64) -> SpAssessment {
        let machine = &self.machines[index];
        let cycles = self.config.sp_profile_cycles;
        let seed = mix(self
            .config
            .seed
            .wrapping_add(mix(0x5bad_c0de ^ machine.id.0 as u64)));
        let profile = vega_sim::profile_sharded(&machine.netlist, cycles, seed, 1);
        sp.assess_exact(&profile, age_years, cycles as u64)
    }

    /// Drain the health transitions recorded since the last drain (or
    /// construction), in occurrence order.
    pub fn take_transitions(&mut self) -> Vec<HealthTransition> {
        std::mem::take(&mut self.transitions)
    }

    /// FNV-1a 64 digest over the scheduler-visible simulation state:
    /// epoch and visit counters, outcome tally, per-pool detections, and
    /// every machine's health/cursor/counters. Two fleets that evolved
    /// through the same epochs (in one process or across restarts)
    /// digest identically; any divergence during crash recovery is
    /// caught by comparing this against the WAL's journaled digest.
    pub fn state_digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut enc = String::with_capacity(64 * self.machines.len());
        let _ = write!(
            enc,
            "epoch={};visit_seq={};rr_next={};tally={:?};pools={:?};",
            self.epoch, self.visit_seq, self.rr_next, self.tally, self.pool_detections
        );
        if let Some(last) = self.per_epoch.last() {
            let _ = write!(enc, "last={last:?};");
        }
        for m in &self.machines {
            let _ = write!(
                enc,
                "m{}:health={:?},flakes={},visits={},tests={},cursor={},first={:?},quar={:?}",
                m.id.0,
                m.health,
                m.flakes,
                m.visits,
                m.tests_run,
                m.cursor,
                m.first_detection_epoch,
                m.quarantine_epoch
            );
            // Folded only when present so digests of SP-less runs stay
            // comparable with pre-prediction WALs.
            if let Some(sp) = &m.sp {
                let _ = write!(
                    enc,
                    ",sp={}:{:016x}:{:016x}:{}:{}",
                    sp.source.label(),
                    sp.aging_score.to_bits(),
                    sp.worst_margin_ns.to_bits(),
                    sp.phase1_cycles,
                    sp.escalated
                );
            }
            enc.push(';');
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in enc.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Fold one epoch's counters into the observability stream. Zero
    /// increments are skipped (except the epoch count itself) so quiet
    /// epochs stay one journal line instead of eleven.
    fn record_epoch_obs(&self, stats: &EpochTelemetry) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.counter("phase3.fleet.epochs", 1);
        for (name, value) in [
            ("phase3.fleet.scan_visits", stats.scan_visits),
            ("phase3.fleet.retest_visits", stats.retest_visits),
            ("phase3.fleet.tests_run", stats.tests_run),
            ("phase3.fleet.cycles_spent", stats.cycles_spent),
            ("phase3.fleet.detections", stats.detections),
            ("phase3.fleet.flakes_injected", stats.flakes_injected),
            ("phase3.fleet.new_suspects", stats.new_suspects),
            ("phase3.fleet.cleared_suspects", stats.cleared_suspects),
            ("phase3.fleet.new_quarantines", stats.new_quarantines),
            ("phase3.fleet.false_quarantines", stats.false_quarantines),
        ] {
            if value > 0 {
                self.obs.counter(name, value);
            }
        }
    }

    /// Simulate one epoch: confirmation retests first, then policy scan
    /// visits, until the cycle budget runs out.
    fn run_epoch(&mut self) -> EpochTelemetry {
        let mut stats = EpochTelemetry {
            epoch: self.epoch,
            ..EpochTelemetry::default()
        };
        let mut remaining = self.budget_cycles;

        // Pending confirmations carried over from earlier epochs are
        // the most urgent work: a suspected machine is either failing
        // (quarantine it) or healthy-but-suspect (clear it and return
        // its capacity).
        for index in 0..self.machines.len() {
            if matches!(self.machines[index].health, HealthState::Suspected { .. }) {
                self.confirmation_loop(index, &mut remaining, &mut stats);
            }
        }

        let order = self.scan_order();
        for index in order {
            if remaining == 0 {
                break;
            }
            if !self.machines[index].in_rotation()
                || matches!(self.machines[index].health, HealthState::Suspected { .. })
            {
                continue;
            }
            let tests = self.tests_for_scan(index);
            let Some((tests, cost)) = self.fit_budget(index, tests, remaining) else {
                // Not even one test fits: the epoch is spent.
                break;
            };
            let result = self.run_visit(index, &tests, cost);
            remaining -= result.cycles;
            stats.scan_visits += 1;
            stats.tests_run += result.tests.len() as u64;
            stats.cycles_spent += result.cycles;
            self.machines[index].visits += 1;
            self.machines[index].tests_run += result.tests.len() as u64;
            self.rr_next = (index + 1) % self.machines.len();
            self.apply_result(index, &result, &mut stats);
            if matches!(self.machines[index].health, HealthState::Suspected { .. }) {
                // Confirm or clear immediately while budget lasts.
                self.confirmation_loop(index, &mut remaining, &mut stats);
            }
        }
        stats
    }

    /// Re-run a suspected machine's triggering tests until it is
    /// quarantined, cleared, or the budget runs out.
    fn confirmation_loop(&mut self, index: usize, remaining: &mut u64, stats: &mut EpochTelemetry) {
        loop {
            let HealthState::Suspected { tests, .. } = self.machines[index].health.clone() else {
                return;
            };
            let Some((tests, cost)) = self.fit_budget(index, tests, *remaining) else {
                return; // stays suspected; retried next epoch
            };
            let result = self.run_visit(index, &tests, cost);
            *remaining -= result.cycles;
            stats.retest_visits += 1;
            stats.tests_run += result.tests.len() as u64;
            stats.cycles_spent += result.cycles;
            self.machines[index].tests_run += result.tests.len() as u64;
            self.apply_result(index, &result, stats);
        }
    }

    /// Machine visit order for this epoch's scan phase.
    fn scan_order(&mut self) -> Vec<usize> {
        let in_rotation: Vec<usize> = (0..self.machines.len())
            .filter(|&i| self.machines[i].in_rotation())
            .collect();
        match self.config.policy {
            Policy::RoundRobin => {
                let start = self.rr_next;
                let mut order = in_rotation;
                order.sort_by_key(|&i| (i + self.machines.len() - start) % self.machines.len());
                order
            }
            Policy::Random => {
                let mut order = in_rotation;
                order.shuffle(&mut self.rng);
                order
            }
            Policy::Adaptive => {
                let mut order = in_rotation;
                order.sort_by(|&a, &b| {
                    self.machine_score(b)
                        .partial_cmp(&self.machine_score(a))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(&b))
                });
                order
            }
        }
    }

    fn machine_score(&self, index: usize) -> f64 {
        let machine = &self.machines[index];
        let suite_len = self.pools[machine.pool].suite.len() as f64;
        let covered = (machine.tests_run as f64 / suite_len.max(1.0)).min(1.0);
        let base = adaptive_score(machine.age_years, machine.flakes, covered);
        // SP-driven risk: rank machines whose risk paths have consumed
        // the most margin first. Bounded at 3.0 — below the coverage
        // term's weight of 16 — so prediction error can only reorder
        // machines *within* a sweep round, never starve one of visits;
        // detection coverage is unchanged by construction.
        let risk = match &machine.sp {
            Some(assessment) => 1.5 * assessment.aging_score.clamp(0.0, 2.0),
            None => 0.0,
        };
        base + risk
    }

    /// The suite indices a scan visit of `machine` runs, per policy.
    fn tests_for_scan(&mut self, index: usize) -> Vec<usize> {
        let pool_index = self.machines[index].pool;
        let suite_len = self.pools[pool_index].suite.len();
        let take = self.config.tests_per_visit.max(1).min(suite_len);
        let (base, start) = match self.config.policy {
            // Construction order from the machine's rotating cursor.
            Policy::RoundRobin => (None, self.machines[index].cursor),
            // Construction order from a fresh random offset.
            Policy::Random => (None, self.rng.gen_range(0..suite_len)),
            // Severity order (worst STA slack first) from the cursor.
            Policy::Adaptive => (Some(&self.severity_orders[pool_index]), {
                self.machines[index].cursor
            }),
        };
        let tests: Vec<usize> = (0..take)
            .map(|k| {
                let position = (start + k) % suite_len;
                match base {
                    Some(order) => order[position],
                    None => position,
                }
            })
            .collect();
        if !matches!(self.config.policy, Policy::Random) {
            self.machines[index].cursor = (start + take) % suite_len;
        }
        tests
    }

    /// Trim `tests` to the prefix that fits in `remaining` cycles.
    /// Returns `None` when not even the first test fits.
    fn fit_budget(
        &self,
        index: usize,
        tests: Vec<usize>,
        remaining: u64,
    ) -> Option<(Vec<usize>, u64)> {
        let pool = &self.pools[self.machines[index].pool];
        let mut cost = 0u64;
        let mut kept = Vec::with_capacity(tests.len());
        for test in tests {
            let cycles = pool.suite[test].cpu_cycles;
            if cost + cycles > remaining {
                break;
            }
            cost += cycles;
            kept.push(test);
        }
        if kept.is_empty() {
            None
        } else {
            Some((kept, cost))
        }
    }

    /// Execute `tests` on `machine`'s own netlist through the
    /// bit-parallel suite runner (up to 64 tests per settle pass), then
    /// apply the flake model.
    fn run_visit(&mut self, index: usize, tests: &[usize], cost: u64) -> VisitResult {
        let machine = &self.machines[index];
        let pool = &self.pools[machine.pool];
        let selected: Vec<TestCase> = tests.iter().map(|&t| pool.suite[t].clone()).collect();
        let seed = mix(self
            .config
            .seed
            .wrapping_add(mix(machine.id.0 as u64))
            .wrapping_add(mix(self.epoch << 20 | self.visit_seq)));
        self.visit_seq += 1;
        let outcomes = run_suite_wide(&machine.netlist, pool.module, &selected, seed);
        let mut report = DetectionReport {
            outcomes: Vec::with_capacity(selected.len()),
            first_detection: None,
            skipped: 0,
        };
        for (test, outcome) in selected.iter().zip(outcomes) {
            if matches!(outcome, TestOutcome::Skipped { .. }) {
                report.skipped += 1;
            } else if outcome != TestOutcome::Pass && report.first_detection.is_none() {
                report.first_detection = Some(AgingFault {
                    test: test.name.clone(),
                    target: test.target.clone(),
                    outcome: outcome.clone(),
                });
            }
            report.outcomes.push((test.name.clone(), outcome));
        }
        self.tally.ingest(&report);
        let detected = report.detected();
        if detected {
            self.pool_detections[machine.pool] += 1;
        }
        let flake = !detected && self.rng.gen_bool(self.config.flake_probability);
        VisitResult {
            tests: tests.to_vec(),
            cycles: cost,
            detected,
            flake,
        }
    }

    /// Drive the quarantine state machine with one visit's outcome.
    fn apply_result(&mut self, index: usize, result: &VisitResult, stats: &mut EpochTelemetry) {
        let epoch = self.epoch;
        let machine = &mut self.machines[index];
        let from = machine.health.label();
        let observed_detection = result.detected || result.flake;
        if result.flake {
            stats.flakes_injected += 1;
        }
        if observed_detection {
            stats.detections += 1;
        }
        if result.detected && machine.first_detection_epoch.is_none() {
            machine.first_detection_epoch = Some(epoch);
        }
        match (&mut machine.health, observed_detection) {
            (HealthState::Healthy, true) => {
                machine.health = HealthState::Suspected {
                    consecutive: 1,
                    tests: result.tests.clone(),
                };
                stats.new_suspects += 1;
            }
            (HealthState::Suspected { consecutive, .. }, true) => {
                *consecutive += 1;
                if *consecutive > self.config.confirmations {
                    machine.health = HealthState::Quarantined;
                    machine.quarantine_epoch = Some(epoch);
                    stats.new_quarantines += 1;
                    if !machine.truly_faulty() {
                        stats.false_quarantines += 1;
                    }
                }
            }
            (HealthState::Suspected { .. }, false) => {
                machine.health = HealthState::Healthy;
                machine.flakes += 1;
                stats.cleared_suspects += 1;
            }
            (HealthState::Healthy, false) | (HealthState::Quarantined, _) => {}
        }
        let to = machine.health.label();
        if from != to {
            let machine_id = machine.id;
            self.transitions.push(HealthTransition {
                machine: machine_id,
                epoch,
                from,
                to,
            });
        }
    }

    /// Assemble the end-of-run telemetry artifact. Callable mid-run as
    /// well (per-epoch rows cover only the epochs stepped so far), but
    /// the canonical artifact is the one taken after the final epoch.
    pub fn telemetry(&self) -> FleetTelemetry {
        let horizon = self.config.epochs;
        let faulty: Vec<&Machine> = self.machines.iter().filter(|m| m.truly_faulty()).collect();
        let detected_faulty = faulty
            .iter()
            .filter(|m| m.first_detection_epoch.is_some())
            .count() as u64;
        let quarantined_faulty = faulty
            .iter()
            .filter(|m| matches!(m.health, HealthState::Quarantined))
            .count() as u64;
        let false_quarantines = self
            .machines
            .iter()
            .filter(|m| !m.truly_faulty() && matches!(m.health, HealthState::Quarantined))
            .count() as u64;
        let latency_sum: u64 = faulty
            .iter()
            .map(|m| m.first_detection_epoch.unwrap_or(horizon))
            .sum();
        let mean_latency = if faulty.is_empty() {
            0.0
        } else {
            latency_sum as f64 / faulty.len() as f64
        };
        let coverage = if faulty.is_empty() {
            1.0
        } else {
            detected_faulty as f64 / faulty.len() as f64
        };
        let per_pool = self
            .pools
            .iter()
            .enumerate()
            .map(|(pi, pool)| PoolTelemetry {
                pool: pool.name.clone(),
                machines: self.machines.iter().filter(|m| m.pool == pi).count() as u64,
                faulty: self
                    .machines
                    .iter()
                    .filter(|m| m.pool == pi && m.truly_faulty())
                    .count() as u64,
                detections: self.pool_detections[pi],
                quarantined: self
                    .machines
                    .iter()
                    .filter(|m| m.pool == pi && matches!(m.health, HealthState::Quarantined))
                    .count() as u64,
            })
            .collect();
        let per_machine = self
            .machines
            .iter()
            .map(|m| MachineTelemetry {
                id: m.id.0,
                pool: self.pools[m.pool].name.clone(),
                age_years: m.age_years,
                fault: m.fault.clone(),
                final_health: m.health.label().to_string(),
                flakes: m.flakes,
                visits: m.visits,
                tests_run: m.tests_run,
                first_detection_epoch: m.first_detection_epoch,
                quarantine_epoch: m.quarantine_epoch,
                sp_source: m
                    .sp
                    .as_ref()
                    .map(|a| a.source.label())
                    .unwrap_or(SpSource::Exact.label())
                    .to_string(),
            })
            .collect();
        let total_cycles: u64 = self.per_epoch.iter().map(|e| e.cycles_spent).sum();
        let total_tests: u64 = self.per_epoch.iter().map(|e| e.tests_run).sum();
        let cleared: u64 = self.per_epoch.iter().map(|e| e.cleared_suspects).sum();
        FleetTelemetry {
            machines: self.config.machines as u64,
            epochs: self.config.epochs,
            budget_cycles: self.budget_cycles,
            policy: self.config.policy.label().to_string(),
            seed: self.config.seed,
            per_epoch: self.per_epoch.clone(),
            per_pool,
            per_machine,
            summary: FleetSummary {
                machines: self.config.machines as u64,
                faulty: faulty.len() as u64,
                detected_faulty,
                quarantined_faulty,
                false_quarantines,
                cleared_suspects: cleared,
                mean_detection_latency_epochs: mean_latency,
                detection_coverage: coverage,
                total_cycles,
                total_tests,
                sp_mode: self
                    .config
                    .sp_mode
                    .map(SpMode::label)
                    .unwrap_or("none")
                    .to_string(),
                phase1_cycles: self.phase1_cycles,
                phase1_exact_profiles: self.sp_exact,
                phase1_predicted: self.sp_predicted,
                phase1_escalations: self.sp_escalations,
                outcomes: self.tally,
            },
        }
    }
}
