//! The fleet engine: a deterministic, seeded discrete-event simulation
//! of a machine fleet under proactive runtime SDC testing.
//!
//! Time advances in **epochs**. Machines live in a structure-of-arrays
//! [`MachineTable`] and are partitioned into fixed contiguous regions
//! (~1k machines each). Every epoch the top-level allocator splits the
//! fleet-wide CPU-cycle budget across regions ([`Scheduler`]), then each
//! region runs independently — confirmation retests first, then
//! policy-driven scan visits ([`Policy`]) — on its own slice of the
//! state columns with its own `(seed, region, epoch)`-derived RNG
//! stream. Region results merge in region-index order, so telemetry,
//! health transitions, and [`Fleet::state_digest`] are byte-identical
//! at any thread count.
//!
//! The whole simulation is wall-clock-free and bit-reproducible: fleet
//! construction is seeded, scheduling noise comes from the per-region
//! streams, and each visit's gate-level simulator is seeded from a
//! deterministic mix of `(fleet seed, machine, epoch, region visit
//! counter)` — the same discipline as the repo's experiment binaries.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use vega_lift::{
    build_failing_netlist, run_selected_wide, FaultActivation, FaultValue, ModuleKind, TestCase,
    TestOutcome,
};
use vega_predict::{risk_term, RiskPath, SpAssessment, SpPoolPredictor, SpSource};

use crate::machine::{
    failure_mode_of, FaultCandidate, HealthState, HealthTransition, InjectedFault, Machine,
    MachineId, MachineView,
};
use crate::policy::{adaptive_score, Policy, Scheduler};
use crate::region::{apportion, run_striped, RegionState};
use crate::table::{
    health_label, MachineTable, PoolVariant, SpColumns, HEALTH_HEALTHY, HEALTH_QUARANTINED,
    HEALTH_SUSPECTED, NO_EPOCH, SP_ASSESSED, SP_ESCALATED, SP_PREDICTED,
};
use crate::telemetry::{
    EpochTelemetry, FleetSummary, FleetTelemetry, MachineTelemetry, OutcomeTally, PoolTelemetry,
};

/// One module type's worth of fleet inventory: the healthy netlist, the
/// Phase-3 suite machines of this type run, per-test severity from the
/// aging-aware STA, and the lifted pairs usable as injected faults.
#[derive(Debug, Clone)]
pub struct UnitPool {
    /// Pool name used in telemetry (e.g. `alu`).
    pub name: String,
    /// The module's port protocol.
    pub module: ModuleKind,
    /// The healthy signed-off netlist.
    pub healthy: vega_netlist::Netlist,
    /// The Phase-3 test suite for this unit.
    pub suite: Vec<TestCase>,
    /// Per-test severity: `|slack|` (ns) of the aging-prone path the
    /// test targets. Parallel to `suite`; drives the adaptive policy's
    /// severity-ranked test ordering.
    pub severity_ns: Vec<f64>,
    /// Lifted pairs a faulty machine of this pool may carry (worst
    /// slack first, by convention).
    pub candidates: Vec<FaultCandidate>,
    /// The unit's aging-prone paths distilled from Phase-1's aged
    /// timing report; what the SP-driven risk scorer evaluates.
    pub risk: Vec<RiskPath>,
    /// The trained SP predictor (with probe profile and risk scorer)
    /// for `predicted`/`predicted-fallback` profiling modes; `None`
    /// keeps the pool exact-only.
    pub sp: Option<SpPoolPredictor>,
}

impl UnitPool {
    /// A pool with uniform (zero) severities — severity ranking then
    /// degenerates to construction order.
    pub fn uniform(
        name: impl Into<String>,
        module: ModuleKind,
        healthy: vega_netlist::Netlist,
        suite: Vec<TestCase>,
        candidates: Vec<FaultCandidate>,
    ) -> UnitPool {
        let severity_ns = vec![0.0; suite.len()];
        UnitPool {
            name: name.into(),
            module,
            healthy,
            suite,
            severity_ns,
            candidates,
            risk: Vec::new(),
            sp: None,
        }
    }

    /// Suite indices in descending severity (ties broken by index, so
    /// the order is total and deterministic).
    pub fn severity_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.suite.len()).collect();
        order.sort_by(|&a, &b| {
            self.severity_ns[b]
                .partial_cmp(&self.severity_ns[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }
}

/// How the fleet obtains each machine's Phase-1 SP assessment.
///
/// Exact profiling replays a stimulus on every machine's own netlist —
/// `sp_profile_cycles` simulation lane-cycles per machine, the fleet's
/// dominant Phase-1 cost. The predicted modes replace that with the
/// trained per-pool [`SpPoolPredictor`] at zero simulation cycles;
/// `PredictedFallback` additionally re-profiles exactly those machines
/// whose predicted worst margin lands inside the guard band around the
/// STA violation threshold, where a prediction error could flip the
/// at-risk verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpMode {
    /// Exact `profile_sharded` on every machine.
    Exact,
    /// Predictor only; no machine is ever re-profiled.
    Predicted,
    /// Predictor everywhere, exact profiling for guard-band machines.
    PredictedFallback,
}

impl SpMode {
    /// The CLI/telemetry name.
    pub fn label(self) -> &'static str {
        match self {
            SpMode::Exact => "exact",
            SpMode::Predicted => "predicted",
            SpMode::PredictedFallback => "predicted-fallback",
        }
    }
}

impl std::str::FromStr for SpMode {
    type Err = String;

    fn from_str(s: &str) -> Result<SpMode, String> {
        match s {
            "exact" => Ok(SpMode::Exact),
            "predicted" => Ok(SpMode::Predicted),
            "predicted-fallback" | "fallback" => Ok(SpMode::PredictedFallback),
            other => Err(format!(
                "unknown sp mode `{other}` (exact|predicted|predicted-fallback)"
            )),
        }
    }
}

impl std::fmt::Display for SpMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Machines per region when the caller does not choose a region count.
const DEFAULT_REGION_MACHINES: usize = 1024;

/// Per-machine detail rows kept in [`FleetTelemetry::per_machine`] when
/// the caller does not choose a cap.
const DEFAULT_DETAIL_MACHINES: usize = 4096;

/// Fleet-simulation configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of machines.
    pub machines: usize,
    /// Epochs to simulate.
    pub epochs: u64,
    /// Per-epoch CPU-cycle budget; `None` derives a default that visits
    /// roughly a quarter of the fleet per epoch.
    pub budget_cycles: Option<u64>,
    /// Scan-scheduling policy.
    pub policy: Policy,
    /// Master seed; fixes fleet composition and every scheduling and
    /// simulation decision.
    pub seed: u64,
    /// Target fraction of the fleet carrying an injected fault. Actual
    /// faultiness is age-weighted: a machine's probability is
    /// `2 * fault_fraction * age / max_age`, so old machines break more
    /// often and the expectation over the fleet stays `fault_fraction`.
    pub fault_fraction: f64,
    /// Confirming retests (beyond the triggering detection) required to
    /// quarantine.
    pub confirmations: u32,
    /// Tests per scan visit.
    pub tests_per_visit: usize,
    /// Per-visit probability of a spurious detection (test-environment
    /// noise); exercises the false-quarantine defenses.
    pub flake_probability: f64,
    /// Oldest machine in the fleet, in years.
    pub max_age_years: f64,
    /// Phase-1 SP assessment mode; `None` skips assessment entirely
    /// (the pre-prediction behaviour).
    pub sp_mode: Option<SpMode>,
    /// Simulation lane-cycles one exact per-machine SP profile costs.
    pub sp_profile_cycles: usize,
    /// Half-width (ns) of the guard band around zero slack inside which
    /// a predicted assessment escalates to exact profiling.
    pub sp_guard_band_ns: f64,
    /// Worker threads for epoch execution and Phase-1 assessment. Has
    /// **no effect on results** — regions are statically striped across
    /// workers and merged in region order, so any thread count produces
    /// byte-identical telemetry and digests.
    pub threads: usize,
    /// Region count; `None` derives one region per ~1k machines.
    /// Region boundaries are part of the configuration (they shape the
    /// per-region RNG streams), so changing this changes results —
    /// unlike `threads`.
    pub regions: Option<usize>,
    /// How the top-level allocator splits the epoch budget across
    /// regions.
    pub scheduler: Scheduler,
    /// Per-machine detail rows retained in telemetry. Fleets at or
    /// under the cap report every machine (the historical behaviour);
    /// larger fleets keep the interesting rows — faulty, non-healthy,
    /// flaky, or detected machines — plus healthy filler up to the cap,
    /// all in id order. `0` means unlimited.
    pub detail_machines: usize,
}

impl FleetConfig {
    /// Defaults for everything but the dimensions the caller always
    /// chooses.
    pub fn new(machines: usize, epochs: u64, policy: Policy, seed: u64) -> FleetConfig {
        FleetConfig {
            machines,
            epochs,
            budget_cycles: None,
            policy,
            seed,
            fault_fraction: 0.25,
            confirmations: 2,
            tests_per_visit: 4,
            flake_probability: 0.002,
            max_age_years: 12.0,
            sp_mode: None,
            sp_profile_cycles: 2000,
            sp_guard_band_ns: 0.005,
            threads: 1,
            regions: None,
            scheduler: Scheduler::Central,
            detail_machines: DEFAULT_DETAIL_MACHINES,
        }
    }
}

/// SplitMix64: decorrelates derived seeds from the master seed and the
/// visit coordinates.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Chained SplitMix64 stream head for one region's epoch: decorrelated
/// across regions and epochs, independent of the thread count.
fn region_epoch_seed(seed: u64, region: u64, epoch: u64) -> u64 {
    mix(mix(mix(seed ^ 0x5E61_0D5E_ED00_0001) ^ region) ^ epoch)
}

/// The explicit budget, or a default sized so one epoch scans roughly a
/// quarter of the fleet at the mean per-test cost.
fn resolve_budget(pools: &[UnitPool], config: &FleetConfig) -> u64 {
    config.budget_cycles.unwrap_or_else(|| {
        let total: u64 = pools
            .iter()
            .flat_map(|p| p.suite.iter())
            .map(|t| t.cpu_cycles)
            .sum();
        let count: u64 = pools.iter().map(|p| p.suite.len() as u64).sum();
        let mean = (total / count.max(1)).max(1);
        mean * config.tests_per_visit.max(1) as u64 * (config.machines as u64 / 4).max(1)
    })
}

/// `(region_size, region_count)` for a fleet of `machines`.
fn region_layout(machines: usize, requested: Option<usize>) -> (usize, usize) {
    let default_regions = machines.div_ceil(DEFAULT_REGION_MACHINES);
    let count = requested
        .unwrap_or(default_regions)
        .clamp(1, machines.max(1));
    let size = machines.div_ceil(count).max(1);
    (size, machines.div_ceil(size).max(1))
}

/// `u32` epoch column value as the public `Option<u64>`.
fn epoch_opt(value: u32) -> Option<u64> {
    (value != NO_EPOCH).then_some(u64::from(value))
}

/// What one visit observed, after the flake model.
struct VisitResult {
    /// The suite indices that ran.
    tests: Vec<usize>,
    /// Cycles charged against the epoch budget.
    cycles: u64,
    /// Whether a (real) test detected a fault.
    detected: bool,
    /// Whether the flake model injected a spurious detection.
    flake: bool,
}

/// The immutable world one epoch's region workers share.
struct EpochShared<'a> {
    config: &'a FleetConfig,
    pools: &'a [UnitPool],
    severity_orders: &'a [Vec<usize>],
    variants: &'a [Vec<PoolVariant>],
    pool: &'a [u32],
    variant: &'a [u32],
    age_years: &'a [f64],
    sp: Option<&'a SpColumns>,
    epoch: u64,
    /// Estimated cycles per scan visit; sizes hierarchical top-k
    /// batches.
    est_visit_cost: u64,
}

/// One region's mutable slice of the fleet for one epoch.
struct RegionTask<'a> {
    index: usize,
    start: usize,
    budget: u64,
    health: &'a mut [u8],
    consecutive: &'a mut [u32],
    suspect_tests: &'a mut [Vec<u16>],
    flakes: &'a mut [u32],
    visits: &'a mut [u32],
    tests_run: &'a mut [u32],
    cursor: &'a mut [u16],
    first_detection: &'a mut [u32],
    quarantine_epoch: &'a mut [u32],
    state: &'a mut RegionState,
}

/// Everything one region produced in one epoch, merged into the fleet
/// in region-index order.
struct RegionOutput {
    stats: EpochTelemetry,
    tally: OutcomeTally,
    pool_detections: Vec<u64>,
    pool_quarantined: Vec<u64>,
    transitions: Vec<HealthTransition>,
    detected_faulty: u64,
    latency_sum: u64,
    quarantined_faulty: u64,
}

impl RegionOutput {
    fn new(pool_count: usize) -> RegionOutput {
        RegionOutput {
            stats: EpochTelemetry::default(),
            tally: OutcomeTally::default(),
            pool_detections: vec![0; pool_count],
            pool_quarantined: vec![0; pool_count],
            transitions: Vec::new(),
            detected_faulty: 0,
            latency_sum: 0,
            quarantined_faulty: 0,
        }
    }
}

/// The fleet simulator. Build with [`Fleet::build`], run with
/// [`Fleet::run`]; per-machine state remains inspectable afterwards
/// through [`Fleet::machines`].
#[derive(Debug)]
pub struct Fleet {
    config: FleetConfig,
    pools: Vec<UnitPool>,
    severity_orders: Vec<Vec<usize>>,
    /// Deduplicated netlist variants per pool; machines reference these
    /// by `(pool, variant)` index instead of owning netlist clones.
    variants: Vec<Vec<PoolVariant>>,
    table: MachineTable,
    regions: Vec<RegionState>,
    region_size: usize,
    budget_cycles: u64,
    mean_visit_cost: u64,
    epoch: u64,
    tally: OutcomeTally,
    pool_detections: Vec<u64>,
    pool_quarantined: Vec<u64>,
    pool_machines: Vec<u64>,
    pool_faulty: Vec<u64>,
    faulty_total: u64,
    detected_faulty: u64,
    /// Sum of first-detection epochs over detected faulty machines;
    /// undetected machines are censored at the horizon in
    /// [`Fleet::telemetry`].
    latency_sum: u64,
    quarantined_faulty: u64,
    false_quarantines: u64,
    per_epoch: Vec<EpochTelemetry>,
    transitions: Vec<HealthTransition>,
    sp_assessed: bool,
    phase1_cycles: u64,
    sp_exact: u64,
    sp_predicted: u64,
    sp_escalations: u64,
    obs: vega_obs::Obs,
}

impl Fleet {
    /// Sample a fleet: each machine gets a pool (round-robin across
    /// pools), a seeded age, and — with age-weighted probability — one
    /// of the pool's failing netlists at `C ∈ {0, 1, random}`.
    ///
    /// Failing netlists are deduplicated per `(candidate, value)` pair,
    /// so a million-machine fleet holds a handful of netlists per pool.
    ///
    /// # Panics
    ///
    /// Panics if `pools` is empty, any pool's suite is empty, or
    /// `config.machines` is zero.
    pub fn build(pools: Vec<UnitPool>, config: FleetConfig) -> Fleet {
        assert!(!pools.is_empty(), "a fleet needs at least one unit pool");
        assert!(config.machines > 0, "a fleet needs at least one machine");
        let mut rng = StdRng::seed_from_u64(mix(config.seed));
        let mut variants: Vec<Vec<PoolVariant>> = pools
            .iter()
            .map(|pool| {
                vec![PoolVariant {
                    netlist: pool.healthy.clone(),
                    fault: None,
                }]
            })
            .collect();
        let mut variant_keys: Vec<BTreeMap<(usize, u8), u32>> =
            pools.iter().map(|_| BTreeMap::new()).collect();
        let mut table = MachineTable::with_capacity(config.machines);
        for index in 0..config.machines {
            let pool_index = index % pools.len();
            let pool = &pools[pool_index];
            let age_years = config.max_age_years * rng.gen::<f64>();
            let p_fault = (2.0 * config.fault_fraction * age_years
                / config.max_age_years.max(f64::MIN_POSITIVE))
            .clamp(0.0, 1.0);
            let is_faulty = rng.gen_bool(p_fault) && !pool.candidates.is_empty();
            let variant = if is_faulty {
                // Bias candidate choice toward the worst-slack pairs:
                // those paths have the least margin and age out first.
                let u = rng.gen::<f64>();
                let candidate_index = ((u * u * pool.candidates.len() as f64) as usize)
                    .min(pool.candidates.len() - 1);
                let (value_code, value) = match rng.gen_range(0..3usize) {
                    0 => (0u8, FaultValue::Zero),
                    1 => (1u8, FaultValue::One),
                    _ => (2u8, FaultValue::Random),
                };
                match variant_keys[pool_index].get(&(candidate_index, value_code)) {
                    Some(&v) => v,
                    None => {
                        let candidate = &pool.candidates[candidate_index];
                        let failing = build_failing_netlist(
                            &pool.healthy,
                            candidate.path,
                            value,
                            FaultActivation::OnChange,
                        );
                        let fault = InjectedFault {
                            path_label: candidate.path.label(&pool.healthy),
                            mode: failure_mode_of(value),
                            severity_ns: candidate.severity_ns,
                        };
                        let v = variants[pool_index].len() as u32;
                        variants[pool_index].push(PoolVariant {
                            netlist: failing,
                            fault: Some(fault),
                        });
                        variant_keys[pool_index].insert((candidate_index, value_code), v);
                        v
                    }
                }
            } else {
                0 // the healthy variant
            };
            table.push_new(pool_index as u32, variant, age_years);
        }
        Fleet::assemble(pools, config, variants, table)
    }

    /// Assemble a fleet from explicitly constructed machines instead of
    /// seeded sampling — the hook for tests (and embedders) that need an
    /// exact fleet composition. Each machine becomes its own netlist
    /// variant (no deduplication is attempted). Scheduling remains
    /// seeded by `config.seed`.
    ///
    /// # Panics
    ///
    /// Same validation as [`Fleet::build`], plus every machine's `pool`
    /// index must be in range.
    pub fn from_machines(
        pools: Vec<UnitPool>,
        config: FleetConfig,
        machines: Vec<Machine>,
    ) -> Fleet {
        assert!(!pools.is_empty(), "a fleet needs at least one unit pool");
        assert!(!machines.is_empty(), "a fleet needs at least one machine");
        for machine in &machines {
            assert!(
                machine.pool < pools.len(),
                "machine {} references pool {} of {}",
                machine.id,
                machine.pool,
                pools.len()
            );
        }
        let mut config = config;
        config.machines = machines.len();
        let mut variants: Vec<Vec<PoolVariant>> = pools.iter().map(|_| Vec::new()).collect();
        let mut table = MachineTable::with_capacity(machines.len());
        let any_sp = machines.iter().any(|m| m.sp.is_some());
        if any_sp {
            table.sp = Some(SpColumns::unassessed(0));
        }
        for machine in machines {
            let pool_index = machine.pool;
            let variant = variants[pool_index].len() as u32;
            variants[pool_index].push(PoolVariant {
                netlist: machine.netlist,
                fault: machine.fault,
            });
            table.push_new(pool_index as u32, variant, machine.age_years);
            let row = table.len() - 1;
            match machine.health {
                HealthState::Healthy => {}
                HealthState::Suspected { consecutive, tests } => {
                    table.health[row] = HEALTH_SUSPECTED;
                    table.consecutive[row] = consecutive;
                    table.suspect_tests[row] = tests.iter().map(|&t| t as u16).collect();
                }
                HealthState::Quarantined => table.health[row] = HEALTH_QUARANTINED,
            }
            table.flakes[row] = machine.flakes;
            table.visits[row] =
                u32::try_from(machine.visits).expect("per-machine visit counter fits u32");
            table.tests_run[row] =
                u32::try_from(machine.tests_run).expect("per-machine test counter fits u32");
            table.cursor[row] = u16::try_from(machine.cursor).expect("suite cursor fits u16");
            table.first_detection[row] = machine
                .first_detection_epoch
                .map(|e| u32::try_from(e).expect("epoch fits u32"))
                .unwrap_or(NO_EPOCH);
            table.quarantine_epoch[row] = machine
                .quarantine_epoch
                .map(|e| u32::try_from(e).expect("epoch fits u32"))
                .unwrap_or(NO_EPOCH);
            if let Some(cols) = table.sp.as_mut() {
                let (score, margin, flags) = match &machine.sp {
                    Some(sp) => {
                        let mut flags = SP_ASSESSED;
                        if sp.source == SpSource::Predicted {
                            flags |= SP_PREDICTED;
                        }
                        if sp.escalated {
                            flags |= SP_ESCALATED;
                        }
                        (sp.aging_score, sp.worst_margin_ns, flags)
                    }
                    None => (0.0, 0.0, 0),
                };
                cols.score.push(score);
                cols.margin.push(margin);
                cols.flags.push(flags);
            }
        }
        Fleet::assemble(pools, config, variants, table)
    }

    /// The shared tail of both constructors: validate dimensions, fix
    /// the region layout, and fold imported machine state into the
    /// fleet's running aggregates.
    fn assemble(
        pools: Vec<UnitPool>,
        config: FleetConfig,
        variants: Vec<Vec<PoolVariant>>,
        table: MachineTable,
    ) -> Fleet {
        for pool in &pools {
            assert!(
                !pool.suite.is_empty(),
                "pool `{}` has an empty test suite",
                pool.name
            );
            assert_eq!(
                pool.suite.len(),
                pool.severity_ns.len(),
                "pool `{}`: severity_ns must be parallel to suite",
                pool.name
            );
            assert!(
                pool.suite.len() <= usize::from(u16::MAX),
                "pool `{}`: suite exceeds the u16 cursor range",
                pool.name
            );
        }
        assert!(
            config.epochs < u64::from(NO_EPOCH),
            "epoch horizon exceeds the u32 epoch-column range"
        );
        let budget_cycles = resolve_budget(&pools, &config);
        let severity_orders: Vec<Vec<usize>> = pools.iter().map(UnitPool::severity_order).collect();
        let total: u64 = pools
            .iter()
            .flat_map(|p| p.suite.iter())
            .map(|t| t.cpu_cycles)
            .sum();
        let count: u64 = pools.iter().map(|p| p.suite.len() as u64).sum();
        let mean_visit_cost = (total / count.max(1)).max(1) * config.tests_per_visit.max(1) as u64;
        let n = table.len();
        let (region_size, region_count) = region_layout(n, config.regions);
        let mut regions = Vec::with_capacity(region_count);
        for r in 0..region_count {
            let start = r * region_size;
            let end = (start + region_size).min(n);
            let in_rotation = table.health[start..end]
                .iter()
                .filter(|&&h| h != HEALTH_QUARANTINED)
                .count() as u32;
            regions.push(RegionState::new(in_rotation));
        }
        let pool_count = pools.len();
        let mut pool_machines = vec![0u64; pool_count];
        let mut pool_faulty = vec![0u64; pool_count];
        let mut pool_quarantined = vec![0u64; pool_count];
        let mut faulty_total = 0u64;
        let mut detected_faulty = 0u64;
        let mut latency_sum = 0u64;
        let mut quarantined_faulty = 0u64;
        let mut false_quarantines = 0u64;
        for i in 0..n {
            let p = table.pool[i] as usize;
            pool_machines[p] += 1;
            let faulty = variants[p][table.variant[i] as usize].fault.is_some();
            let quarantined = table.health[i] == HEALTH_QUARANTINED;
            if faulty {
                pool_faulty[p] += 1;
                faulty_total += 1;
                if table.first_detection[i] != NO_EPOCH {
                    detected_faulty += 1;
                    latency_sum += u64::from(table.first_detection[i]);
                }
                if quarantined {
                    quarantined_faulty += 1;
                }
            } else if quarantined {
                false_quarantines += 1;
            }
            if quarantined {
                pool_quarantined[p] += 1;
            }
        }
        Fleet {
            config,
            pools,
            severity_orders,
            variants,
            table,
            regions,
            region_size,
            budget_cycles,
            mean_visit_cost,
            epoch: 0,
            tally: OutcomeTally::default(),
            pool_detections: vec![0; pool_count],
            pool_quarantined,
            pool_machines,
            pool_faulty,
            faulty_total,
            detected_faulty,
            latency_sum,
            quarantined_faulty,
            false_quarantines,
            per_epoch: Vec::new(),
            transitions: Vec::new(),
            sp_assessed: false,
            phase1_cycles: 0,
            sp_exact: 0,
            sp_predicted: 0,
            sp_escalations: 0,
            obs: vega_obs::Obs::null(),
        }
    }

    /// Route this fleet's `phase3.fleet.*` spans and counters to `obs`
    /// (the default sink is null: recording disabled at zero cost).
    pub fn set_obs(&mut self, obs: vega_obs::Obs) {
        self.obs = obs;
    }

    /// The resolved per-epoch cycle budget.
    pub fn budget_cycles(&self) -> u64 {
        self.budget_cycles
    }

    /// The region count the fleet was laid out with.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Lightweight per-machine views, in id order. Materialized on
    /// demand from the state columns; netlists are borrowed from the
    /// shared pool variants.
    pub fn machines(&self) -> Vec<MachineView<'_>> {
        (0..self.table.len())
            .map(|i| self.machine_view(i))
            .collect()
    }

    /// The view of machine `i`.
    pub fn machine_view(&self, i: usize) -> MachineView<'_> {
        let p = self.table.pool[i] as usize;
        let variant = &self.variants[p][self.table.variant[i] as usize];
        MachineView {
            id: MachineId(i),
            pool: p,
            age_years: self.table.age_years[i],
            netlist: &variant.netlist,
            fault: variant.fault.as_ref(),
            health: self.table.health_state(i),
            flakes: self.table.flakes[i],
            visits: u64::from(self.table.visits[i]),
            tests_run: u64::from(self.table.tests_run[i]),
            cursor: usize::from(self.table.cursor[i]),
            first_detection_epoch: epoch_opt(self.table.first_detection[i]),
            quarantine_epoch: epoch_opt(self.table.quarantine_epoch[i]),
            sp: self.sp_view(i),
        }
    }

    /// Machine `i`'s SP assessment, reconstructed from the flag
    /// columns. `phase1_cycles` is derived: exact assessments cost
    /// `sp_profile_cycles`, predicted ones zero.
    fn sp_view(&self, i: usize) -> Option<SpAssessment> {
        let cols = self.table.sp.as_ref()?;
        let flags = cols.flags[i];
        if flags & SP_ASSESSED == 0 {
            return None;
        }
        let predicted = flags & SP_PREDICTED != 0;
        Some(SpAssessment {
            source: if predicted {
                SpSource::Predicted
            } else {
                SpSource::Exact
            },
            aging_score: cols.score[i],
            worst_margin_ns: cols.margin[i],
            phase1_cycles: if predicted {
                0
            } else {
                self.config.sp_profile_cycles as u64
            },
            escalated: flags & SP_ESCALATED != 0,
        })
    }

    /// Run every configured epoch and aggregate the telemetry.
    pub fn run(&mut self) -> FleetTelemetry {
        let _span = vega_obs::span!(
            self.obs,
            "phase3.fleet.run",
            machines = self.config.machines,
            epochs = self.config.epochs,
            policy = self.config.policy.label(),
            seed = self.config.seed,
        );
        while self.step_epoch() {}
        let telemetry = self.telemetry();
        telemetry.record_obs(&self.obs);
        telemetry
    }

    /// Simulate the next epoch, if any remain. Returns whether an epoch
    /// ran — `false` once all configured epochs are done.
    ///
    /// This is the resumable entry point `vega serve` drives: each call
    /// is one durable operation, and the fleet's evolution is identical
    /// whether epochs run in one [`Fleet::run`] loop or across process
    /// restarts (re-stepped from a fresh same-seed fleet).
    pub fn step_epoch(&mut self) -> bool {
        if self.epoch >= self.config.epochs {
            return false;
        }
        self.ensure_sp_assessed();
        let _epoch_span =
            vega_obs::span!(self.obs.detail(), "phase3.fleet.epoch", epoch = self.epoch);
        let stats = self.run_epoch();
        self.record_epoch_obs(&stats);
        self.per_epoch.push(stats);
        self.epoch += 1;
        true
    }

    /// Epochs simulated so far.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Run the one-shot Phase-1 SP assessment of every machine, if an SP
    /// mode is configured and it has not run yet.
    ///
    /// Deliberately lazy — first [`Fleet::step_epoch`] rather than
    /// construction — so it happens after [`Fleet::set_obs`] and at the
    /// same point whether the fleet runs in one process or is re-stepped
    /// from a fresh same-seed fleet during crash recovery. It never
    /// touches the scheduling RNG streams (per-machine profile seeds are
    /// mixed from the master seed and machine id), so the epoch-by-epoch
    /// evolution is identical across all SP modes.
    ///
    /// Two-phase at fleet scale: predicted SP maps are computed once per
    /// `(pool, variant)` netlist (sequential — there are only a handful),
    /// then per-machine scoring and guard-band escalation runs sharded
    /// over regions with counters merged in region order.
    fn ensure_sp_assessed(&mut self) {
        if self.sp_assessed {
            return;
        }
        self.sp_assessed = true;
        let Some(mode) = self.config.sp_mode else {
            return;
        };
        let _span = vega_obs::span!(
            self.obs,
            "phase1.predict.assess",
            mode = mode.label(),
            machines = self.table.len(),
            guard_band_ns = self.config.sp_guard_band_ns,
        );
        if self.table.sp.is_none() {
            self.table.sp = Some(SpColumns::unassessed(self.table.len()));
        }
        let detail = self.obs.detail();
        let predictive = !matches!(mode, SpMode::Exact);
        // Phase A: one predicted SP map per (pool, variant) netlist.
        // `None` at the pool level means "no predictor / exact mode";
        // `None` at the variant level records a predictor error, which
        // fails safe to exact profiling per machine below.
        let caches: Vec<Option<VariantSpMaps>> = self
            .pools
            .iter()
            .enumerate()
            .map(|(p, pool)| {
                if !predictive {
                    return None;
                }
                let sp = pool.sp.as_ref()?;
                Some(
                    self.variants[p]
                        .iter()
                        .map(|v| sp.predicted_sp_map(&v.netlist, &detail).ok())
                        .collect(),
                )
            })
            .collect();
        // Phase B: per-machine assessment, sharded over regions.
        let shared = SpShared {
            config: &self.config,
            pools: &self.pools,
            variants: &self.variants,
            pool: &self.table.pool,
            variant: &self.table.variant,
            age_years: &self.table.age_years,
            caches: &caches,
            mode,
        };
        let rs = self.region_size;
        let cols = self.table.sp.as_mut().expect("sp columns allocated above");
        let mut score = cols.score.chunks_mut(rs);
        let mut margin = cols.margin.chunks_mut(rs);
        let mut flags = cols.flags.chunks_mut(rs);
        let mut tasks = Vec::with_capacity(self.regions.len());
        for r in 0..self.regions.len() {
            tasks.push(SpTask {
                start: r * rs,
                score: score.next().expect("sp score chunk per region"),
                margin: margin.next().expect("sp margin chunk per region"),
                flags: flags.next().expect("sp flags chunk per region"),
            });
        }
        let shared = &shared;
        let outputs = run_striped(tasks, self.config.threads, move |_, task| {
            assess_region(shared, task)
        });
        for out in outputs {
            self.sp_exact += out.exact;
            self.sp_predicted += out.predicted;
            self.sp_escalations += out.escalations;
            self.phase1_cycles += out.cycles;
        }
        self.obs
            .counter("phase1.predict.exact_profiles", self.sp_exact);
        self.obs
            .counter("phase1.predict.predicted", self.sp_predicted);
        self.obs
            .counter("phase1.predict.escalations", self.sp_escalations);
        self.obs
            .counter("phase1.predict.cycles", self.phase1_cycles);
    }

    /// Drain the health transitions recorded since the last drain (or
    /// construction), in occurrence order (regions merge in index
    /// order within each epoch).
    pub fn take_transitions(&mut self) -> Vec<HealthTransition> {
        std::mem::take(&mut self.transitions)
    }

    /// FNV-1a 64 digest over the scheduler-visible simulation state:
    /// epoch counter, outcome tally, per-pool detections, per-region
    /// scheduler state (round-robin cursor, visit counter, rotation
    /// count, pressure), and every machine's health/cursor/counters.
    /// Folded streamingly — no intermediate encoding of the fleet is
    /// materialized. Two fleets that evolved through the same epochs
    /// (at any thread count, in one process or across restarts) digest
    /// identically; any divergence during crash recovery is caught by
    /// comparing this against the WAL's journaled digest.
    pub fn state_digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        let _ = write!(
            h,
            "epoch={};regions={};tally={:?};pools={:?};",
            self.epoch,
            self.regions.len(),
            self.tally,
            self.pool_detections
        );
        for (r, state) in self.regions.iter().enumerate() {
            let _ = write!(
                h,
                "r{r}:rr={},seq={},rot={},press={:016x};",
                state.rr_next,
                state.visit_seq,
                state.in_rotation,
                state.pressure.to_bits()
            );
        }
        if let Some(last) = self.per_epoch.last() {
            let _ = write!(h, "last={last:?};");
        }
        for i in 0..self.table.len() {
            let _ = write!(
                h,
                "m{}:health={:?},flakes={},visits={},tests={},cursor={},first={:?},quar={:?}",
                i,
                self.table.health_state(i),
                self.table.flakes[i],
                self.table.visits[i],
                self.table.tests_run[i],
                self.table.cursor[i],
                epoch_opt(self.table.first_detection[i]),
                epoch_opt(self.table.quarantine_epoch[i])
            );
            // Folded only when present so digests of SP-less runs stay
            // comparable with pre-prediction WALs.
            if let Some(sp) = self.sp_view(i) {
                let _ = write!(
                    h,
                    ",sp={}:{:016x}:{:016x}:{}:{}",
                    sp.source.label(),
                    sp.aging_score.to_bits(),
                    sp.worst_margin_ns.to_bits(),
                    sp.phase1_cycles,
                    sp.escalated
                );
            }
            let _ = h.write_str(";");
        }
        h.0
    }

    /// Fold one epoch's counters into the observability stream. Zero
    /// increments are skipped (except the epoch count itself) so quiet
    /// epochs stay one journal line instead of eleven.
    fn record_epoch_obs(&self, stats: &EpochTelemetry) {
        if !self.obs.enabled() {
            return;
        }
        self.obs.counter("phase3.fleet.epochs", 1);
        // Run-progress gauges for the live telemetry plane. Emitted on
        // the coordinating thread after the epoch's merge, so the values
        // (and their journal order) are deterministic at any thread
        // count. `self.epoch` still holds the just-finished epoch index.
        if self.epoch == 0 {
            self.obs
                .gauge("phase3.fleet.epochs_total", self.config.epochs as f64);
            self.obs
                .gauge("phase3.fleet.machines", self.table.len() as f64);
        }
        self.obs
            .gauge("phase3.fleet.epoch", (self.epoch + 1) as f64);
        let in_rotation: u64 = self.regions.iter().map(|r| u64::from(r.in_rotation)).sum();
        self.obs
            .gauge("phase3.fleet.machines_in_rotation", in_rotation as f64);
        for (name, value) in [
            ("phase3.fleet.scan_visits", stats.scan_visits),
            ("phase3.fleet.retest_visits", stats.retest_visits),
            ("phase3.fleet.tests_run", stats.tests_run),
            ("phase3.fleet.cycles_spent", stats.cycles_spent),
            ("phase3.fleet.detections", stats.detections),
            ("phase3.fleet.flakes_injected", stats.flakes_injected),
            ("phase3.fleet.new_suspects", stats.new_suspects),
            ("phase3.fleet.cleared_suspects", stats.cleared_suspects),
            ("phase3.fleet.new_quarantines", stats.new_quarantines),
            ("phase3.fleet.false_quarantines", stats.false_quarantines),
        ] {
            if value > 0 {
                self.obs.counter(name, value);
            }
        }
    }

    /// This epoch's per-region budget split, by the configured
    /// scheduler: central weighs regions by in-rotation machine count;
    /// hierarchical by the scan pressure each region reported after its
    /// last epoch (suspicion + adaptive scores + SP risk), so budget
    /// flows toward regions with suspects and uncovered machines.
    fn allocate_budgets(&self) -> Vec<u64> {
        let weights: Vec<u64> = match self.config.scheduler {
            Scheduler::Central => self
                .regions
                .iter()
                .map(|r| u64::from(r.in_rotation))
                .collect(),
            Scheduler::Hierarchical => self
                .regions
                .iter()
                .map(|r| {
                    if r.in_rotation == 0 {
                        0
                    } else {
                        ((r.pressure * 1024.0).round() as u64).max(1)
                    }
                })
                .collect(),
        };
        apportion(self.budget_cycles, &weights)
    }

    /// Simulate one epoch: apportion the budget, run every region on
    /// its own column slice (striped across workers), and merge the
    /// outputs in region-index order.
    fn run_epoch(&mut self) -> EpochTelemetry {
        let mut stats = EpochTelemetry {
            epoch: self.epoch,
            ..EpochTelemetry::default()
        };
        let budgets = self.allocate_budgets();
        let rs = self.region_size;
        let pool_count = self.pools.len();
        let outputs = {
            let shared = EpochShared {
                config: &self.config,
                pools: &self.pools,
                severity_orders: &self.severity_orders,
                variants: &self.variants,
                pool: &self.table.pool,
                variant: &self.table.variant,
                age_years: &self.table.age_years,
                sp: self.table.sp.as_ref(),
                epoch: self.epoch,
                est_visit_cost: self.mean_visit_cost,
            };
            let mut health = self.table.health.chunks_mut(rs);
            let mut consecutive = self.table.consecutive.chunks_mut(rs);
            let mut suspect_tests = self.table.suspect_tests.chunks_mut(rs);
            let mut flakes = self.table.flakes.chunks_mut(rs);
            let mut visits = self.table.visits.chunks_mut(rs);
            let mut tests_run = self.table.tests_run.chunks_mut(rs);
            let mut cursor = self.table.cursor.chunks_mut(rs);
            let mut first_detection = self.table.first_detection.chunks_mut(rs);
            let mut quarantine_epoch = self.table.quarantine_epoch.chunks_mut(rs);
            let mut states = self.regions.iter_mut();
            let mut tasks = Vec::with_capacity(budgets.len());
            for (r, &budget) in budgets.iter().enumerate() {
                tasks.push(RegionTask {
                    index: r,
                    start: r * rs,
                    budget,
                    health: health.next().expect("health chunk per region"),
                    consecutive: consecutive.next().expect("consecutive chunk per region"),
                    suspect_tests: suspect_tests.next().expect("suspect chunk per region"),
                    flakes: flakes.next().expect("flakes chunk per region"),
                    visits: visits.next().expect("visits chunk per region"),
                    tests_run: tests_run.next().expect("tests chunk per region"),
                    cursor: cursor.next().expect("cursor chunk per region"),
                    first_detection: first_detection.next().expect("first chunk per region"),
                    quarantine_epoch: quarantine_epoch.next().expect("quar chunk per region"),
                    state: states.next().expect("state per region"),
                });
            }
            let shared = &shared;
            run_striped(tasks, self.config.threads, move |_, task| {
                run_region_epoch(shared, task, pool_count)
            })
        };
        for out in outputs {
            stats.absorb(&out.stats);
            self.tally.merge(&out.tally);
            for (p, v) in out.pool_detections.iter().enumerate() {
                self.pool_detections[p] += v;
            }
            for (p, v) in out.pool_quarantined.iter().enumerate() {
                self.pool_quarantined[p] += v;
            }
            self.detected_faulty += out.detected_faulty;
            self.latency_sum += out.latency_sum;
            self.quarantined_faulty += out.quarantined_faulty;
            self.false_quarantines += out.stats.false_quarantines;
            self.transitions.extend(out.transitions);
        }
        stats
    }

    /// Assemble the telemetry artifact from the fleet's running
    /// aggregates. Callable mid-run as well (per-epoch rows cover only
    /// the epochs stepped so far) — this is a fold over counters the
    /// epochs maintained incrementally, not a fleet-wide scan, so
    /// mid-run calls cost O(pools + detail rows) and agree exactly with
    /// the end-of-run artifact on everything already observed.
    pub fn telemetry(&self) -> FleetTelemetry {
        let horizon = self.config.epochs;
        let faulty = self.faulty_total;
        // Undetected faulty machines are censored at the horizon.
        let latency_sum = self.latency_sum + (faulty - self.detected_faulty) * horizon;
        let mean_latency = if faulty == 0 {
            0.0
        } else {
            latency_sum as f64 / faulty as f64
        };
        let coverage = if faulty == 0 {
            1.0
        } else {
            self.detected_faulty as f64 / faulty as f64
        };
        let per_pool = self
            .pools
            .iter()
            .enumerate()
            .map(|(pi, pool)| PoolTelemetry {
                pool: pool.name.clone(),
                machines: self.pool_machines[pi],
                faulty: self.pool_faulty[pi],
                detections: self.pool_detections[pi],
                quarantined: self.pool_quarantined[pi],
            })
            .collect();
        let total_cycles: u64 = self.per_epoch.iter().map(|e| e.cycles_spent).sum();
        let total_tests: u64 = self.per_epoch.iter().map(|e| e.tests_run).sum();
        let cleared: u64 = self.per_epoch.iter().map(|e| e.cleared_suspects).sum();
        FleetTelemetry {
            machines: self.config.machines as u64,
            epochs: self.config.epochs,
            budget_cycles: self.budget_cycles,
            policy: self.config.policy.label().to_string(),
            seed: self.config.seed,
            per_epoch: self.per_epoch.clone(),
            per_pool,
            per_machine: self.detail_rows(),
            summary: FleetSummary {
                machines: self.config.machines as u64,
                faulty,
                detected_faulty: self.detected_faulty,
                quarantined_faulty: self.quarantined_faulty,
                false_quarantines: self.false_quarantines,
                cleared_suspects: cleared,
                mean_detection_latency_epochs: mean_latency,
                detection_coverage: coverage,
                total_cycles,
                total_tests,
                sp_mode: self
                    .config
                    .sp_mode
                    .map(SpMode::label)
                    .unwrap_or("none")
                    .to_string(),
                phase1_cycles: self.phase1_cycles,
                phase1_exact_profiles: self.sp_exact,
                phase1_predicted: self.sp_predicted,
                phase1_escalations: self.sp_escalations,
                outcomes: self.tally,
            },
        }
    }

    /// The ids whose detail rows the telemetry keeps: everyone at or
    /// under the cap; above it, interesting machines first (faulty,
    /// non-healthy, flaky, or detected — the rows analyses key on),
    /// healthy filler after, final ids sorted so the artifact stays in
    /// id order.
    fn detail_rows(&self) -> Vec<MachineTelemetry> {
        let n = self.table.len();
        let cap = self.config.detail_machines;
        let ids: Vec<usize> = if cap == 0 || n <= cap {
            (0..n).collect()
        } else {
            let interesting = |i: usize| {
                self.variants[self.table.pool[i] as usize][self.table.variant[i] as usize]
                    .fault
                    .is_some()
                    || self.table.health[i] != HEALTH_HEALTHY
                    || self.table.flakes[i] > 0
                    || self.table.first_detection[i] != NO_EPOCH
            };
            let mut ids: Vec<usize> = (0..n).filter(|&i| interesting(i)).take(cap).collect();
            if ids.len() < cap {
                let mut keep: Vec<bool> = vec![false; n];
                for &i in &ids {
                    keep[i] = true;
                }
                let missing = cap - ids.len();
                ids.extend((0..n).filter(|&i| !keep[i]).take(missing));
                ids.sort_unstable();
            }
            ids
        };
        ids.into_iter()
            .map(|i| {
                let p = self.table.pool[i] as usize;
                let variant = &self.variants[p][self.table.variant[i] as usize];
                MachineTelemetry {
                    id: i,
                    pool: self.pools[p].name.clone(),
                    age_years: self.table.age_years[i],
                    fault: variant.fault.clone(),
                    final_health: health_label(self.table.health[i]).to_string(),
                    flakes: self.table.flakes[i],
                    visits: u64::from(self.table.visits[i]),
                    tests_run: u64::from(self.table.tests_run[i]),
                    first_detection_epoch: epoch_opt(self.table.first_detection[i]),
                    quarantine_epoch: epoch_opt(self.table.quarantine_epoch[i]),
                    sp_source: self
                        .sp_view(i)
                        .map(|a| a.source.label())
                        .unwrap_or(SpSource::Exact.label())
                        .to_string(),
                }
            })
            .collect()
    }
}

/// Streaming FNV-1a 64 sink: hashes formatted fragments as they are
/// written instead of materializing the encoded fleet state.
struct Fnv(u64);

impl std::fmt::Write for Fnv {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for &b in s.as_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

/// Exact per-machine assessment: profile the machine's netlist for
/// `sp_profile_cycles` under a seed mixed from the master seed and the
/// machine id (stable across epochs, modes, and restarts).
fn exact_assessment(
    config: &FleetConfig,
    sp: &SpPoolPredictor,
    netlist: &vega_netlist::Netlist,
    machine: usize,
    age_years: f64,
) -> SpAssessment {
    let cycles = config.sp_profile_cycles;
    let seed = mix(config.seed.wrapping_add(mix(0x5bad_c0de ^ machine as u64)));
    let profile = vega_sim::profile_sharded(netlist, cycles, seed, 1);
    sp.assess_exact(&profile, age_years, cycles as u64)
}

/// One pool's predicted SP maps, indexed by variant; `None` records a
/// predictor error for that variant (fails safe to exact profiling).
type VariantSpMaps = Vec<Option<BTreeMap<String, f64>>>;

/// The immutable world Phase-1 assessment workers share.
struct SpShared<'a> {
    config: &'a FleetConfig,
    pools: &'a [UnitPool],
    variants: &'a [Vec<PoolVariant>],
    pool: &'a [u32],
    variant: &'a [u32],
    age_years: &'a [f64],
    /// Per-pool, per-variant predicted SP maps (`None` = exact mode,
    /// no predictor, or predictor error).
    caches: &'a [Option<VariantSpMaps>],
    mode: SpMode,
}

/// One region's mutable slice of the SP columns.
struct SpTask<'a> {
    start: usize,
    score: &'a mut [f64],
    margin: &'a mut [f64],
    flags: &'a mut [u8],
}

/// Phase-1 counters one region produced.
#[derive(Default)]
struct SpOutput {
    exact: u64,
    predicted: u64,
    escalations: u64,
    cycles: u64,
}

/// Assess one region's machines (Phase B of `ensure_sp_assessed`).
fn assess_region(shared: &SpShared<'_>, task: SpTask<'_>) -> SpOutput {
    let mut out = SpOutput::default();
    for l in 0..task.score.len() {
        let g = task.start + l;
        let p = shared.pool[g] as usize;
        let Some(sp) = shared.pools[p].sp.as_ref() else {
            continue;
        };
        let age = shared.age_years[g];
        let v = shared.variant[g] as usize;
        let netlist = &shared.variants[p][v].netlist;
        let cached = shared.caches[p].as_ref().and_then(|maps| maps[v].as_ref());
        let assessment = match shared.mode {
            SpMode::Exact => {
                out.exact += 1;
                exact_assessment(shared.config, sp, netlist, g, age)
            }
            SpMode::Predicted => match cached {
                Some(map) => {
                    out.predicted += 1;
                    sp.assess_sp_map(map, age)
                }
                // A schema/feature mismatch is a configuration error;
                // fail safe to exact rather than guess.
                None => {
                    out.exact += 1;
                    exact_assessment(shared.config, sp, netlist, g, age)
                }
            },
            SpMode::PredictedFallback => {
                let predicted = cached.map(|map| sp.assess_sp_map(map, age));
                match predicted {
                    Some(a) if !sp.needs_escalation(&a, shared.config.sp_guard_band_ns) => {
                        out.predicted += 1;
                        a
                    }
                    // Guard-band hit (or predictor error): pay for the
                    // exact profile on this machine only.
                    _ => {
                        out.escalations += 1;
                        out.exact += 1;
                        let mut exact = exact_assessment(shared.config, sp, netlist, g, age);
                        exact.escalated = true;
                        exact
                    }
                }
            }
        };
        out.cycles += assessment.phase1_cycles;
        task.score[l] = assessment.aging_score;
        task.margin[l] = assessment.worst_margin_ns;
        let mut flags = SP_ASSESSED;
        if assessment.source == SpSource::Predicted {
            flags |= SP_PREDICTED;
        }
        if assessment.escalated {
            flags |= SP_ESCALATED;
        }
        task.flags[l] = flags;
    }
    out
}

/// Run one region's epoch on its own RNG stream.
fn run_region_epoch(
    shared: &EpochShared<'_>,
    task: RegionTask<'_>,
    pool_count: usize,
) -> RegionOutput {
    let seed = region_epoch_seed(shared.config.seed, task.index as u64, shared.epoch);
    let remaining = task.budget;
    let mut run = RegionRun {
        shared,
        rng: StdRng::seed_from_u64(seed),
        remaining,
        out: RegionOutput::new(pool_count),
        t: task,
    };
    run.execute();
    run.out
}

/// One region's epoch in flight: the shared world, the region's column
/// slices, its RNG stream, and its remaining budget.
struct RegionRun<'s, 'e, 't> {
    shared: &'s EpochShared<'e>,
    t: RegionTask<'t>,
    rng: StdRng,
    remaining: u64,
    out: RegionOutput,
}

impl RegionRun<'_, '_, '_> {
    fn len(&self) -> usize {
        self.t.health.len()
    }

    /// Region-local index to fleet-wide machine id.
    fn g(&self, l: usize) -> usize {
        self.t.start + l
    }

    /// Confirmation retests first (a suspected machine is either
    /// failing — quarantine it — or healthy-but-suspect — clear it and
    /// return its capacity), then policy scan visits, then report the
    /// region's scan pressure for the next epoch's allocator.
    fn execute(&mut self) {
        for l in 0..self.len() {
            if self.t.health[l] == HEALTH_SUSPECTED {
                self.confirmation_loop(l);
            }
        }
        match (self.shared.config.scheduler, self.shared.config.policy) {
            (Scheduler::Hierarchical, Policy::Adaptive) => self.scan_hierarchical(),
            _ => {
                let order = self.scan_order();
                let _ = self.scan_in_order(&order);
            }
        }
        self.t.state.pressure = self.compute_pressure();
    }

    /// Machine visit order for this epoch's scan phase (region-local
    /// indices).
    fn scan_order(&mut self) -> Vec<usize> {
        let len = self.len();
        let in_rotation: Vec<usize> = (0..len)
            .filter(|&l| self.t.health[l] != HEALTH_QUARANTINED)
            .collect();
        match self.shared.config.policy {
            Policy::RoundRobin => {
                let start = self.t.state.rr_next as usize % len.max(1);
                let mut order = in_rotation;
                order.sort_by_key(|&l| (l + len - start) % len);
                order
            }
            Policy::Random => {
                let mut order = in_rotation;
                order.shuffle(&mut self.rng);
                order
            }
            Policy::Adaptive => {
                let mut order = in_rotation;
                order.sort_by(|&a, &b| self.score_cmp(a, b));
                order
            }
        }
    }

    /// Hierarchical-adaptive scan: instead of fully sorting the region,
    /// repeatedly select the top-k scoring healthy machines (k sized to
    /// the remaining budget at the estimated per-visit cost) via
    /// `select_nth_unstable`, and scan each batch in score order. Cost
    /// is O(region + scanned·log(scanned)) instead of a full
    /// O(region·log(region)) sort per epoch.
    fn scan_hierarchical(&mut self) {
        let mut candidates: Vec<usize> = (0..self.len())
            .filter(|&l| self.t.health[l] == HEALTH_HEALTHY)
            .collect();
        let est = self.shared.est_visit_cost.max(1);
        while !candidates.is_empty() && self.remaining > 0 {
            let k = usize::try_from(self.remaining / est)
                .unwrap_or(usize::MAX)
                .saturating_add(1)
                .min(candidates.len());
            if k < candidates.len() {
                candidates.select_nth_unstable_by(k - 1, |&a, &b| self.score_cmp(a, b));
            }
            let mut batch: Vec<usize> = candidates.drain(..k).collect();
            batch.sort_by(|&a, &b| self.score_cmp(a, b));
            if self.scan_in_order(&batch) {
                break;
            }
        }
    }

    /// Scan the given machines in order. Returns `true` when the budget
    /// is exhausted (nothing further can run this epoch).
    fn scan_in_order(&mut self, order: &[usize]) -> bool {
        for &l in order {
            if self.remaining == 0 {
                return true;
            }
            // Quarantined machines are out of rotation; suspected ones
            // are handled by the confirmation loop, not scans.
            if self.t.health[l] != HEALTH_HEALTHY {
                continue;
            }
            let tests = self.tests_for_scan(l);
            let Some((tests, cost)) = self.fit_budget(l, tests) else {
                // Not even one test fits: the region's epoch is spent.
                return true;
            };
            let result = self.run_visit(l, &tests, cost);
            self.remaining -= result.cycles;
            self.out.stats.scan_visits += 1;
            self.out.stats.tests_run += result.tests.len() as u64;
            self.out.stats.cycles_spent += result.cycles;
            self.t.visits[l] += 1;
            self.t.tests_run[l] += result.tests.len() as u32;
            self.t.state.rr_next = ((l + 1) % self.len()) as u32;
            self.apply_result(l, &result);
            if self.t.health[l] == HEALTH_SUSPECTED {
                // Confirm or clear immediately while budget lasts.
                self.confirmation_loop(l);
            }
        }
        false
    }

    /// Re-run a suspected machine's triggering tests until it is
    /// quarantined, cleared, or the budget runs out.
    fn confirmation_loop(&mut self, l: usize) {
        loop {
            if self.t.health[l] != HEALTH_SUSPECTED {
                return;
            }
            let tests: Vec<usize> = self.t.suspect_tests[l]
                .iter()
                .map(|&t| t as usize)
                .collect();
            let Some((tests, cost)) = self.fit_budget(l, tests) else {
                return; // stays suspected; retried next epoch
            };
            let result = self.run_visit(l, &tests, cost);
            self.remaining -= result.cycles;
            self.out.stats.retest_visits += 1;
            self.out.stats.tests_run += result.tests.len() as u64;
            self.out.stats.cycles_spent += result.cycles;
            self.t.tests_run[l] += result.tests.len() as u32;
            self.apply_result(l, &result);
        }
    }

    /// Descending adaptive score, ties by region-local index — the
    /// total order both the adaptive sort and the hierarchical top-k
    /// selection use.
    fn score_cmp(&self, a: usize, b: usize) -> std::cmp::Ordering {
        self.machine_score(b)
            .partial_cmp(&self.machine_score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    }

    fn machine_score(&self, l: usize) -> f64 {
        let g = self.g(l);
        let suite_len = self.shared.pools[self.shared.pool[g] as usize].suite.len() as f64;
        let covered = (f64::from(self.t.tests_run[l]) / suite_len.max(1.0)).min(1.0);
        let base = adaptive_score(self.shared.age_years[g], self.t.flakes[l], covered);
        // SP-driven risk: rank machines whose risk paths have consumed
        // the most margin first. Bounded below the coverage term's
        // weight so prediction error can only reorder machines *within*
        // a sweep round, never starve one of visits.
        let risk = match self.shared.sp {
            Some(cols) if cols.flags[g] & SP_ASSESSED != 0 => risk_term(cols.score[g]),
            _ => 0.0,
        };
        base + risk
    }

    /// The region's scan pressure: adaptive scores (plus a suspicion
    /// surcharge) summed over in-rotation machines. The hierarchical
    /// allocator weighs next epoch's budget split by this.
    fn compute_pressure(&self) -> f64 {
        let mut pressure = 0.0;
        for l in 0..self.len() {
            if self.t.health[l] == HEALTH_QUARANTINED {
                continue;
            }
            let mut score = self.machine_score(l);
            if self.t.health[l] == HEALTH_SUSPECTED {
                score += 8.0;
            }
            pressure += score;
        }
        pressure
    }

    /// The suite indices a scan visit of machine `l` runs, per policy.
    fn tests_for_scan(&mut self, l: usize) -> Vec<usize> {
        let pool_index = self.shared.pool[self.g(l)] as usize;
        let suite_len = self.shared.pools[pool_index].suite.len();
        let take = self.shared.config.tests_per_visit.max(1).min(suite_len);
        let (base, start) = match self.shared.config.policy {
            // Construction order from the machine's rotating cursor.
            Policy::RoundRobin => (None, usize::from(self.t.cursor[l])),
            // Construction order from a fresh random offset.
            Policy::Random => (None, self.rng.gen_range(0..suite_len)),
            // Severity order (worst STA slack first) from the cursor.
            Policy::Adaptive => (
                Some(&self.shared.severity_orders[pool_index]),
                usize::from(self.t.cursor[l]),
            ),
        };
        let tests: Vec<usize> = (0..take)
            .map(|k| {
                let position = (start + k) % suite_len;
                match base {
                    Some(order) => order[position],
                    None => position,
                }
            })
            .collect();
        if !matches!(self.shared.config.policy, Policy::Random) {
            self.t.cursor[l] = ((start + take) % suite_len) as u16;
        }
        tests
    }

    /// Trim `tests` to the prefix that fits in the remaining budget.
    /// Returns `None` when not even the first test fits.
    fn fit_budget(&self, l: usize, tests: Vec<usize>) -> Option<(Vec<usize>, u64)> {
        let pool = &self.shared.pools[self.shared.pool[self.g(l)] as usize];
        let mut cost = 0u64;
        let mut kept = Vec::with_capacity(tests.len());
        for test in tests {
            let cycles = pool.suite[test].cpu_cycles;
            if cost + cycles > self.remaining {
                break;
            }
            cost += cycles;
            kept.push(test);
        }
        if kept.is_empty() {
            None
        } else {
            Some((kept, cost))
        }
    }

    /// Execute `tests` on machine `l`'s shared variant netlist through
    /// the bit-parallel selected-suite runner (up to 64 tests per settle
    /// pass, no per-visit test-case clones), then apply the flake model.
    fn run_visit(&mut self, l: usize, tests: &[usize], cost: u64) -> VisitResult {
        let g = self.g(l);
        let pool_index = self.shared.pool[g] as usize;
        let pool = &self.shared.pools[pool_index];
        let netlist = &self.shared.variants[pool_index][self.shared.variant[g] as usize].netlist;
        let seed = mix(self
            .shared
            .config
            .seed
            .wrapping_add(mix(g as u64))
            .wrapping_add(mix(self.shared.epoch << 20 | self.t.state.visit_seq)));
        self.t.state.visit_seq += 1;
        let outcomes = run_selected_wide(netlist, pool.module, &pool.suite, tests, seed);
        let mut detected = false;
        for outcome in &outcomes {
            self.out.tally.ingest_outcome(outcome);
            if !matches!(outcome, TestOutcome::Pass | TestOutcome::Skipped { .. }) {
                detected = true;
            }
        }
        if detected {
            self.out.pool_detections[pool_index] += 1;
        }
        let flake = !detected && self.rng.gen_bool(self.shared.config.flake_probability);
        VisitResult {
            tests: tests.to_vec(),
            cycles: cost,
            detected,
            flake,
        }
    }

    /// Drive the quarantine state machine with one visit's outcome.
    fn apply_result(&mut self, l: usize, result: &VisitResult) {
        let g = self.g(l);
        let epoch = self.shared.epoch;
        let pool_index = self.shared.pool[g] as usize;
        let truly_faulty = self.shared.variants[pool_index][self.shared.variant[g] as usize]
            .fault
            .is_some();
        let from = health_label(self.t.health[l]);
        let observed_detection = result.detected || result.flake;
        if result.flake {
            self.out.stats.flakes_injected += 1;
        }
        if observed_detection {
            self.out.stats.detections += 1;
        }
        if result.detected && self.t.first_detection[l] == NO_EPOCH {
            self.t.first_detection[l] = epoch as u32;
            if truly_faulty {
                self.out.detected_faulty += 1;
                self.out.latency_sum += epoch;
            }
        }
        match (self.t.health[l], observed_detection) {
            (HEALTH_HEALTHY, true) => {
                self.t.health[l] = HEALTH_SUSPECTED;
                self.t.consecutive[l] = 1;
                self.t.suspect_tests[l] = result.tests.iter().map(|&t| t as u16).collect();
                self.out.stats.new_suspects += 1;
            }
            (HEALTH_SUSPECTED, true) => {
                self.t.consecutive[l] += 1;
                if self.t.consecutive[l] > self.shared.config.confirmations {
                    self.t.health[l] = HEALTH_QUARANTINED;
                    self.t.consecutive[l] = 0;
                    self.t.suspect_tests[l] = Vec::new();
                    self.t.quarantine_epoch[l] = epoch as u32;
                    self.t.state.in_rotation -= 1;
                    self.out.pool_quarantined[pool_index] += 1;
                    self.out.stats.new_quarantines += 1;
                    if truly_faulty {
                        self.out.quarantined_faulty += 1;
                    } else {
                        self.out.stats.false_quarantines += 1;
                    }
                }
            }
            (HEALTH_SUSPECTED, false) => {
                self.t.health[l] = HEALTH_HEALTHY;
                self.t.consecutive[l] = 0;
                self.t.suspect_tests[l] = Vec::new();
                self.t.flakes[l] += 1;
                self.out.stats.cleared_suspects += 1;
            }
            _ => {}
        }
        let to = health_label(self.t.health[l]);
        if from != to {
            self.out.transitions.push(HealthTransition {
                machine: MachineId(g),
                epoch,
                from,
                to,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_layout_defaults_and_clamps() {
        assert_eq!(region_layout(1, None), (1, 1));
        assert_eq!(region_layout(1024, None), (1024, 1));
        assert_eq!(region_layout(1025, None), (513, 2));
        assert_eq!(region_layout(1_000_000, None), (1024, 977));
        assert_eq!(region_layout(10, Some(4)), (3, 4));
        // More regions than machines clamps to one machine per region.
        assert_eq!(region_layout(3, Some(8)), (1, 3));
        assert_eq!(region_layout(5, Some(0)), (5, 1));
    }

    #[test]
    fn region_epoch_seeds_are_decorrelated() {
        let mut seen = std::collections::BTreeSet::new();
        for region in 0..16 {
            for epoch in 0..16 {
                assert!(seen.insert(region_epoch_seed(42, region, epoch)));
            }
        }
    }
}
