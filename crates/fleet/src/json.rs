//! A canonical JSON writer for telemetry artifacts.
//!
//! Fleet telemetry must be **byte-reproducible** under a fixed seed: two
//! runs of the same configuration have to produce identical files so the
//! CI determinism gate can diff them. This tiny value type guarantees
//! that: object keys keep their insertion order (the telemetry types
//! emit them in a fixed order), floats render through Rust's
//! shortest-roundtrip `Display`, and the writer itself has no
//! configuration. The telemetry types additionally derive
//! `serde::Serialize`/`Deserialize`, so embedding applications can use
//! any serde format; this writer is only the canonical file format.

use std::fmt::Write as _;

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An unsigned integer (renders without a decimal point).
    UInt(u64),
    /// A signed integer (renders without a decimal point).
    Int(i64),
    /// A float, rendered with Rust's shortest-roundtrip formatting.
    /// Non-finite values render as `null` (like serde_json).
    Float(f64),
    /// A string, escaped per RFC 8259.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Render compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render pretty-printed with two-space indentation and a trailing
    /// newline — the canonical artifact format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Keep integral floats visibly floats ("1.0", not
                    // "1") so the field's type never flaps between runs.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (key, value) = &members[i];
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = Json::obj(vec![
            ("n", Json::UInt(3)),
            ("f", Json::Float(0.25)),
            ("whole", Json::Float(2.0)),
            ("s", Json::Str("a\"b\n".into())),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.to_compact(),
            r#"{"n":3,"f":0.25,"whole":2.0,"s":"a\"b\n","a":[true,null],"empty":[]}"#
        );
        let pretty = v.to_pretty();
        assert!(pretty.starts_with("{\n  \"n\": 3,\n"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = Json::obj(vec![
            ("pi", Json::Float(std::f64::consts::PI)),
            ("neg", Json::Int(-7)),
        ]);
        assert_eq!(v.to_pretty(), v.to_pretty());
        assert_eq!(v.to_compact(), "{\"pi\":3.141592653589793,\"neg\":-7}");
    }
}
