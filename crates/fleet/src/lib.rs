//! # vega-fleet — fleet-scale runtime SDC detection
//!
//! The paper's pipeline (synthesize → lift → integrate) produces a
//! Phase-3 test suite for *one* unit. Production deployment is a fleet
//! problem: thousands of heterogeneously-aged machines, a bounded test
//! budget, and an operator who must decide *which machine to test next*
//! and *when to pull one out of service*. This crate closes that loop
//! with a deterministic, seeded discrete-event simulation:
//!
//! - [`Machine`]: per-instance aging state — years in service, a
//!   per-path severity draw, and (for a seeded minority) a Phase-2
//!   failing netlist at `C ∈ {0, 1, random}` in place of the healthy
//!   unit.
//! - [`Policy`]: scan-scheduling policies (`round-robin`, `random`,
//!   `adaptive`); the adaptive policy prioritizes machines by age,
//!   flake history, and uncovered suite fraction, and orders each
//!   visit's tests by STA-slack severity.
//! - [`HealthState`]: the quarantine state machine
//!   (healthy → suspected → quarantined) with confirmation retests, so
//!   one flaky detection never costs fleet capacity.
//! - [`FleetTelemetry`]: the aggregated artifact — per-epoch counters,
//!   per-pool and per-machine breakdowns, detection latency and
//!   coverage — rendered byte-reproducibly by [`crate::json::Json`]
//!   and serde-serializable for external tooling.
//!
//! Everything is wall-clock-free: under a fixed seed two runs of the
//! same configuration produce byte-identical telemetry.
//!
//! ```no_run
//! use vega_fleet::{Fleet, FleetConfig, Policy, UnitPool};
//! # fn pools() -> Vec<UnitPool> { unimplemented!() }
//! let config = FleetConfig::new(64, 32, Policy::Adaptive, 1);
//! let mut fleet = Fleet::build(pools(), config);
//! let telemetry = fleet.run();
//! println!("{}", telemetry.to_json_string());
//! ```

pub mod engine;
pub mod json;
pub mod machine;
pub mod policy;
pub(crate) mod region;
pub mod table;
pub mod telemetry;

pub use engine::{Fleet, FleetConfig, SpMode, UnitPool};
pub use json::Json;
pub use machine::{
    failure_mode_of, FaultCandidate, HealthState, HealthTransition, InjectedFault, Machine,
    MachineId, MachineView,
};
pub use policy::{adaptive_score, Policy, Scheduler};
pub use table::{MachineTable, PoolVariant, NO_EPOCH};
pub use telemetry::{
    EpochTelemetry, FleetSummary, FleetTelemetry, MachineTelemetry, OutcomeTally, PoolTelemetry,
};
pub use vega_predict::{RiskPath, SpAssessment, SpPoolPredictor, SpSource};
