//! Fleet machines: per-instance aging state and the quarantine state
//! machine.
//!
//! Aging is strongly instance- and workload-dependent, so a fleet is a
//! *population* of heterogeneously-aged machines: each carries its own
//! years-in-service, and a seeded minority runs one of the Phase-2
//! failing netlists (`C ∈ {0, 1, random}`) instead of the healthy one —
//! the same fault population the paper's evaluation uses (§5.1).

use serde::{Deserialize, Serialize};

use vega_lift::{AgingPath, FaultValue};
use vega_netlist::Netlist;
use vega_predict::SpAssessment;
use vega_riscv::FailureMode;

/// Identifies one machine within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub usize);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{:04}", self.0)
    }
}

/// The quarantine state machine:
///
/// ```text
///             detection                 `confirmations` consecutive
///   Healthy ────────────▶ Suspected ──────────────────────────────▶ Quarantined
///      ▲                      │            confirming retests
///      └──────────────────────┘
///        a confirming retest passes (the detection was a flake)
/// ```
///
/// A single detection never quarantines: the controller re-runs the
/// suspicious tests (`confirmations` times) before pulling a machine
/// out of service, so transient flakes — and test-environment noise —
/// cost retest cycles, not capacity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// No unresolved detection.
    Healthy,
    /// A detection awaits confirmation.
    Suspected {
        /// Consecutive detections so far (the triggering one included).
        consecutive: u32,
        /// Suite indices of the tests that fired, re-run on each
        /// confirming retest.
        tests: Vec<usize>,
    },
    /// Confirmed faulty; removed from the scan rotation.
    Quarantined,
}

impl HealthState {
    /// Short label for telemetry/tables.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspected { .. } => "suspected",
            HealthState::Quarantined => "quarantined",
        }
    }
}

/// One machine's quarantine-state change, recorded by the engine as it
/// happens. `vega serve` drains these each epoch and journals them as
/// WAL `transition` notes, so the log carries every state-machine move
/// (`healthy→suspected→quarantined`) the fleet made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTransition {
    /// The machine that moved.
    pub machine: MachineId,
    /// Epoch the move happened in.
    pub epoch: u64,
    /// State label before the move (see [`HealthState::label`]).
    pub from: &'static str,
    /// State label after the move.
    pub to: &'static str,
}

/// Ground truth about a machine's injected fault (hidden from the
/// scheduler; used only to build the machine's netlist and to score the
/// run afterwards).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Human-readable label of the broken path (e.g. `dff4->dff10 (Setup)`).
    pub path_label: String,
    /// The wrong-value constant behaviour (`0`, `1`, or random).
    pub mode: FailureMode,
    /// Severity of the broken path: `|slack|` of the violated timing
    /// check, in ns.
    pub severity_ns: f64,
}

/// One machine of the fleet.
///
/// The machine owns the netlist it actually runs — the healthy unit or a
/// failing variant — so a [`vega_sim::Simulator`] can be instantiated
/// per visit without the fleet holding self-referential borrows.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Fleet-wide identity.
    pub id: MachineId,
    /// Index of the unit pool (module type) this machine belongs to.
    pub pool: usize,
    /// Years in service; sampled per machine at fleet construction.
    pub age_years: f64,
    /// The netlist this machine executes tests on.
    pub netlist: Netlist,
    /// Ground truth: `Some` iff the netlist is a failing variant.
    pub fault: Option<InjectedFault>,
    /// Current quarantine state.
    pub health: HealthState,
    /// Cleared suspicions (detections that did not confirm). Feeds the
    /// adaptive policy: flaky machines get retested sooner.
    pub flakes: u32,
    /// Scan visits received so far.
    pub visits: u64,
    /// Individual test executions so far.
    pub tests_run: u64,
    /// Rotating position in this machine's test ordering, so successive
    /// visits walk the whole suite instead of re-running a fixed prefix.
    pub cursor: usize,
    /// Epoch of the first detection on this machine, if any.
    pub first_detection_epoch: Option<u64>,
    /// Epoch the machine entered quarantine, if it did.
    pub quarantine_epoch: Option<u64>,
    /// Phase-1 SP assessment (predicted or exact), once the fleet has
    /// run it; `None` until then, or when no SP mode is configured.
    pub sp: Option<SpAssessment>,
}

impl Machine {
    /// A fresh machine running `netlist` (healthy unless `fault` says
    /// otherwise).
    pub fn new(
        id: MachineId,
        pool: usize,
        age_years: f64,
        netlist: Netlist,
        fault: Option<InjectedFault>,
    ) -> Machine {
        Machine {
            id,
            pool,
            age_years,
            netlist,
            fault,
            health: HealthState::Healthy,
            flakes: 0,
            visits: 0,
            tests_run: 0,
            cursor: 0,
            first_detection_epoch: None,
            quarantine_epoch: None,
            sp: None,
        }
    }

    /// Whether the machine still participates in the scan rotation.
    pub fn in_rotation(&self) -> bool {
        !matches!(self.health, HealthState::Quarantined)
    }

    /// Whether the machine truly carries a failing netlist.
    pub fn truly_faulty(&self) -> bool {
        self.fault.is_some()
    }
}

/// A lightweight read-only view of one machine, materialized on demand
/// from the fleet's structure-of-arrays [`crate::MachineTable`].
///
/// This is what [`crate::Fleet::machines`] hands out: the same shape as
/// the old per-machine [`Machine`] object (so existing call sites read
/// `view.health`, `view.flakes`, … unchanged) but borrowing the shared
/// pool-variant netlist instead of owning a clone.
#[derive(Debug, Clone)]
pub struct MachineView<'a> {
    /// Fleet-wide identity.
    pub id: MachineId,
    /// Index of the unit pool this machine belongs to.
    pub pool: usize,
    /// Years in service.
    pub age_years: f64,
    /// The (shared) netlist this machine executes tests on.
    pub netlist: &'a Netlist,
    /// Ground truth: `Some` iff the netlist is a failing variant.
    pub fault: Option<&'a InjectedFault>,
    /// Current quarantine state.
    pub health: HealthState,
    /// Cleared suspicions.
    pub flakes: u32,
    /// Scan visits received so far.
    pub visits: u64,
    /// Individual test executions so far.
    pub tests_run: u64,
    /// Rotating position in this machine's test ordering.
    pub cursor: usize,
    /// Epoch of the first detection on this machine, if any.
    pub first_detection_epoch: Option<u64>,
    /// Epoch the machine entered quarantine, if it did.
    pub quarantine_epoch: Option<u64>,
    /// Phase-1 SP assessment, once the fleet has run it.
    pub sp: Option<SpAssessment>,
}

impl MachineView<'_> {
    /// Whether the machine still participates in the scan rotation.
    pub fn in_rotation(&self) -> bool {
        !matches!(self.health, HealthState::Quarantined)
    }

    /// Whether the machine truly carries a failing netlist.
    pub fn truly_faulty(&self) -> bool {
        self.fault.is_some()
    }
}

/// Maps a lift-layer fault value to the evaluation's failure-mode
/// vocabulary.
pub fn failure_mode_of(value: FaultValue) -> FailureMode {
    match value {
        FaultValue::Zero => FailureMode::Const0,
        FaultValue::One => FailureMode::Const1,
        FaultValue::Random => FailureMode::Random,
    }
}

/// A lifted pair that can serve as a machine's injected fault.
#[derive(Debug, Clone)]
pub struct FaultCandidate {
    /// The aging-prone path to break.
    pub path: AgingPath,
    /// `|slack|` of the violated check, in ns (worst-slack candidates
    /// first is the conventional ordering).
    pub severity_ns: f64,
}
