//! Fleet scan-scheduling policies.
//!
//! The scheduler spends a fixed per-epoch cycle budget visiting
//! machines; a policy decides *which machines* get visited first and
//! *which tests* a visit runs. Confirmation retests for suspected
//! machines are **not** a policy decision — the quarantine controller
//! schedules those ahead of scanning in every policy, so policies are
//! compared purely on how fast they surface new faults.

use serde::{Deserialize, Serialize};

/// How the scheduler orders machines and tests within an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Visit machines cyclically in id order; each visit walks the suite
    /// in construction order from the machine's rotating cursor.
    RoundRobin,
    /// Visit machines in a fresh seeded shuffle each epoch; each visit
    /// starts at a random position in the suite.
    Random,
    /// Visit machines by descending risk score — years in service,
    /// flake history, and uncovered suite fraction — and walk each
    /// machine's tests in descending path severity (worst STA slack
    /// first), so the tests most likely to expose aging run earliest.
    Adaptive,
}

impl Policy {
    /// Every policy, in comparison order.
    pub const ALL: [Policy; 3] = [Policy::RoundRobin, Policy::Random, Policy::Adaptive];

    /// The CLI/telemetry name.
    pub fn label(self) -> &'static str {
        match self {
            Policy::RoundRobin => "round-robin",
            Policy::Random => "random",
            Policy::Adaptive => "adaptive",
        }
    }
}

impl std::str::FromStr for Policy {
    type Err = String;

    fn from_str(s: &str) -> Result<Policy, String> {
        match s {
            "round-robin" | "rr" => Ok(Policy::RoundRobin),
            "random" => Ok(Policy::Random),
            "adaptive" => Ok(Policy::Adaptive),
            other => Err(format!(
                "unknown policy `{other}` (round-robin|random|adaptive)"
            )),
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the per-epoch cycle budget is distributed across regions.
///
/// Orthogonal to [`Policy`]: the policy orders machines *within* a
/// region; the scheduler decides how much budget each region gets. Both
/// schedulers apportion by largest remainder, so budgets are exact and
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheduler {
    /// Budget proportional to each region's in-rotation machine count —
    /// the flat scheduler every pre-region fleet ran (with one region
    /// it degenerates to the original central scan loop).
    Central,
    /// Two-level scheduling: budget proportional to each region's scan
    /// *pressure* (coverage deficit, age, flake history, suspicion, and
    /// SP risk folded over its machines after the previous epoch), and
    /// — under the adaptive policy — top-k partial selection inside the
    /// region instead of a full sort, so scan selection stays
    /// O(regions + scanned · log scanned) rather than O(fleet · log
    /// fleet) per epoch.
    Hierarchical,
}

impl Scheduler {
    /// Every scheduler, in comparison order.
    pub const ALL: [Scheduler; 2] = [Scheduler::Central, Scheduler::Hierarchical];

    /// The CLI/telemetry name.
    pub fn label(self) -> &'static str {
        match self {
            Scheduler::Central => "central",
            Scheduler::Hierarchical => "hierarchical",
        }
    }
}

impl std::str::FromStr for Scheduler {
    type Err = String;

    fn from_str(s: &str) -> Result<Scheduler, String> {
        match s {
            "central" => Ok(Scheduler::Central),
            "hierarchical" | "hier" => Ok(Scheduler::Hierarchical),
            other => Err(format!(
                "unknown scheduler `{other}` (central|hierarchical)"
            )),
        }
    }
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The adaptive policy's machine risk score. Pure function of observable
/// state (ground-truth faultiness is invisible to the scheduler):
/// machines with uncovered suite fraction hide undiscovered faults,
/// older machines age out first, and flaky machines deserve
/// re-examination.
///
/// The coverage term dominates (weight 16 vs. age capped at ~3 for a
/// 12-year fleet), so the policy sweeps the fleet in rounds — no
/// machine starves — while age and flake history order machines
/// *within* a round. The severity-ranked test ordering then makes each
/// visit count: the tests targeting the worst-slack paths run first.
pub fn adaptive_score(age_years: f64, flakes: u32, covered_fraction: f64) -> f64 {
    16.0 * (1.0 - covered_fraction.clamp(0.0, 1.0)) + age_years / 4.0 + f64::from(flakes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_labels() {
        for policy in Policy::ALL {
            assert_eq!(policy.label().parse::<Policy>().unwrap(), policy);
        }
        assert_eq!("rr".parse::<Policy>().unwrap(), Policy::RoundRobin);
        assert!("nope".parse::<Policy>().is_err());
        for scheduler in Scheduler::ALL {
            assert_eq!(scheduler.label().parse::<Scheduler>().unwrap(), scheduler);
        }
        assert_eq!(
            "hier".parse::<Scheduler>().unwrap(),
            Scheduler::Hierarchical
        );
        assert!("flat".parse::<Scheduler>().is_err());
    }

    #[test]
    fn adaptive_score_prefers_old_flaky_uncovered() {
        let fresh = adaptive_score(1.0, 0, 1.0);
        let old = adaptive_score(10.0, 0, 1.0);
        let flaky = adaptive_score(1.0, 3, 1.0);
        let uncovered = adaptive_score(1.0, 0, 0.0);
        assert!(old > fresh);
        assert!(flaky > fresh);
        assert!(uncovered > fresh);
    }
}
