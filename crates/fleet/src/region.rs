//! Regions: the fleet's unit of sharded execution and hierarchical
//! scheduling.
//!
//! Machines are split into fixed contiguous regions (~1k machines by
//! default) whose boundaries depend only on the configuration — never
//! on the thread count. Each epoch every region runs independently:
//! its own slice of the machine-state columns, its own persistent
//! scheduler state ([`RegionState`]), and its own RNG stream seeded
//! from `(master seed, region index, epoch)` by chained SplitMix64.
//! Region results merge in region-index order — the same determinism
//! discipline `vega_sim::profile_sharded` established — so telemetry,
//! transitions, and `state_digest()` are byte-identical at any thread
//! count.
//!
//! The per-epoch cycle budget is apportioned across regions by the
//! largest-remainder method over integer weights: exact (budgets sum to
//! the total), deterministic (ties break by region index), and
//! scheduler-pluggable (central weighs regions by in-rotation machine
//! count; hierarchical by scan pressure).

/// Persistent per-region scheduler state.
#[derive(Debug, Clone)]
pub(crate) struct RegionState {
    /// Round-robin resume point, as a region-local machine index.
    pub rr_next: u32,
    /// Visits dispatched by this region so far (seeds visit RNGs).
    pub visit_seq: u64,
    /// Machines still in scan rotation (not quarantined).
    pub in_rotation: u32,
    /// Scan pressure after the last completed epoch: the sum of
    /// adaptive scores (plus suspicion and SP-risk terms) over the
    /// region's in-rotation machines. Drives the hierarchical
    /// allocator's next-epoch budget split.
    pub pressure: f64,
}

impl RegionState {
    /// Fresh state for a region with `in_rotation` scannable machines.
    /// Initial pressure weighs regions by machine count, so the
    /// hierarchical allocator's epoch-0 split matches the central one.
    pub fn new(in_rotation: u32) -> RegionState {
        RegionState {
            rr_next: 0,
            visit_seq: 0,
            in_rotation,
            pressure: in_rotation as f64,
        }
    }
}

/// Split `total` across `weights` by largest remainder: each region
/// gets `floor(total * w / sum)` plus one of the leftover units, in
/// descending fractional-remainder order (ties by region index). The
/// result sums to `total` exactly unless every weight is zero.
pub(crate) fn apportion(total: u64, weights: &[u64]) -> Vec<u64> {
    let sum: u128 = weights.iter().map(|&w| w as u128).sum();
    if sum == 0 {
        return vec![0; weights.len()];
    }
    let mut shares = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut allocated = 0u64;
    for (index, &w) in weights.iter().enumerate() {
        let product = total as u128 * w as u128;
        let share = (product / sum) as u64;
        shares.push(share);
        allocated += share;
        remainders.push((product % sum, index));
    }
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = total - allocated;
    for &(_, index) in &remainders {
        if leftover == 0 {
            break;
        }
        shares[index] += 1;
        leftover -= 1;
    }
    shares
}

/// Run `tasks` (one per region, in region-index order) and return their
/// results in the same order, regardless of `threads`.
///
/// Tasks are statically striped across scoped worker threads — worker
/// `w` of `W` takes tasks `w, w+W, w+2W, …` — exactly the
/// `profile_sharded` pattern, so the work split is deterministic and
/// the merge (slotting results back by task index) restores region
/// order. With `threads <= 1` everything runs inline on the caller.
pub(crate) fn run_striped<T, R, F>(tasks: Vec<T>, threads: usize, run: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = threads.max(1).min(tasks.len().max(1));
    if workers <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(index, task)| run(index, task))
            .collect();
    }
    let count = tasks.len();
    let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (index, task) in tasks.into_iter().enumerate() {
        buckets[index % workers].push((index, task));
    }
    let mut slots: Vec<Option<R>> = (0..count).map(|_| None).collect();
    let run = &run;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(index, task)| (index, run(index, task)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("region worker panicked") {
                slots[index] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every region task produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_is_exact_and_deterministic() {
        let shares = apportion(100, &[1, 1, 1]);
        assert_eq!(shares.iter().sum::<u64>(), 100);
        assert_eq!(shares, vec![34, 33, 33]); // tie broken by index
        assert_eq!(apportion(7, &[0, 0]), vec![0, 0]);
        assert_eq!(apportion(10, &[3, 0, 1]), vec![8, 0, 2]);
        let uneven = apportion(1000, &[7, 13, 1, 0, 5]);
        assert_eq!(uneven.iter().sum::<u64>(), 1000);
        assert_eq!(uneven[3], 0);
    }

    #[test]
    fn striped_runner_preserves_order_at_any_width() {
        let tasks: Vec<usize> = (0..17).collect();
        let single = run_striped(tasks.clone(), 1, |index, task| index * 100 + task);
        for threads in [2, 4, 8] {
            let multi = run_striped(tasks.clone(), threads, |index, task| index * 100 + task);
            assert_eq!(single, multi, "threads={threads}");
        }
    }
}
