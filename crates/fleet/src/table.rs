//! Structure-of-arrays machine state.
//!
//! A fleet of a million machines cannot afford a heap-allocated
//! [`crate::Machine`] per instance — the netlist clone alone dwarfs the
//! scheduler state, and pointer-chasing per-machine objects defeats the
//! cache on every epoch sweep. [`MachineTable`] stores each scalar of
//! machine state in its own parallel column, so:
//!
//! - per-machine memory is tens of bytes (the bench asserts ≤ 128
//!   including allocator overhead), independent of netlist size;
//! - epoch sweeps (scoring, pressure folds, digesting) are linear scans
//!   over contiguous arrays;
//! - netlists are shared per *variant*: every machine stores a
//!   `(pool, variant)` pair indexing into the fleet's deduplicated
//!   [`PoolVariant`] list instead of owning a netlist clone.
//!
//! The public API still hands out [`crate::MachineView`]s that look
//! like the old `Machine` for existing call sites.

use vega_netlist::Netlist;

use crate::machine::{HealthState, InjectedFault};

/// Sentinel for "no epoch recorded" in the `u32` epoch columns.
pub const NO_EPOCH: u32 = u32::MAX;

/// `health` column code for [`HealthState::Healthy`].
pub(crate) const HEALTH_HEALTHY: u8 = 0;
/// `health` column code for [`HealthState::Suspected`].
pub(crate) const HEALTH_SUSPECTED: u8 = 1;
/// `health` column code for [`HealthState::Quarantined`].
pub(crate) const HEALTH_QUARANTINED: u8 = 2;

/// `sp_flags` bit: the machine has a Phase-1 SP assessment.
pub(crate) const SP_ASSESSED: u8 = 1 << 0;
/// `sp_flags` bit: the assessment's SP came from the predictor.
pub(crate) const SP_PREDICTED: u8 = 1 << 1;
/// `sp_flags` bit: a predicted assessment escalated to exact.
pub(crate) const SP_ESCALATED: u8 = 1 << 2;

/// One distinct netlist a pool's machines may run: the healthy netlist
/// (variant 0 by convention) or a Phase-2 failing netlist with its
/// injected-fault ground truth. Machines reference variants by index,
/// so a million-machine fleet holds a handful of netlists per pool
/// instead of a netlist clone per machine.
#[derive(Debug, Clone)]
pub struct PoolVariant {
    /// The netlist machines of this variant simulate.
    pub netlist: Netlist,
    /// Ground truth: the injected fault, `None` for the healthy
    /// variant.
    pub fault: Option<InjectedFault>,
}

/// Parallel per-machine state columns; row `i` is machine `i`.
///
/// Columns are sized to realistic fleet horizons: epochs and per-machine
/// counters fit `u32`, suite cursors fit `u16` (suites longer than
/// 65 535 tests are rejected at fleet construction).
#[derive(Debug, Default)]
pub struct MachineTable {
    /// Pool index.
    pub pool: Vec<u32>,
    /// Variant index within the pool's [`PoolVariant`] list.
    pub variant: Vec<u32>,
    /// Sampled years in service.
    pub age_years: Vec<f64>,
    /// Health code (`HEALTH_*`).
    pub health: Vec<u8>,
    /// Consecutive confirming detections while suspected.
    pub consecutive: Vec<u32>,
    /// The triggering suite indices a suspected machine retests.
    /// Empty unless suspected.
    pub suspect_tests: Vec<Vec<u16>>,
    /// Cleared suspicions (spurious detections survived).
    pub flakes: Vec<u32>,
    /// Scan visits received.
    pub visits: Vec<u32>,
    /// Individual tests executed.
    pub tests_run: Vec<u32>,
    /// Rotating suite cursor.
    pub cursor: Vec<u16>,
    /// Epoch of first real detection ([`NO_EPOCH`] = none).
    pub first_detection: Vec<u32>,
    /// Epoch of quarantine ([`NO_EPOCH`] = none).
    pub quarantine_epoch: Vec<u32>,
    /// Phase-1 SP assessment columns; allocated only when an SP mode is
    /// configured (or machines were imported with assessments).
    pub sp: Option<SpColumns>,
}

/// SP-assessment columns, parallel to the machine table.
#[derive(Debug, Default)]
pub struct SpColumns {
    /// Worst margin-consumption fraction across the risk paths.
    pub score: Vec<f64>,
    /// Smallest projected slack across the risk paths, ns.
    pub margin: Vec<f64>,
    /// `SP_*` flag bits; 0 = unassessed.
    pub flags: Vec<u8>,
}

impl SpColumns {
    /// All-unassessed columns for `n` machines.
    pub(crate) fn unassessed(n: usize) -> SpColumns {
        SpColumns {
            score: vec![0.0; n],
            margin: vec![0.0; n],
            flags: vec![0; n],
        }
    }
}

impl MachineTable {
    /// An empty table with capacity for `n` machines.
    pub(crate) fn with_capacity(n: usize) -> MachineTable {
        MachineTable {
            pool: Vec::with_capacity(n),
            variant: Vec::with_capacity(n),
            age_years: Vec::with_capacity(n),
            health: Vec::with_capacity(n),
            consecutive: Vec::with_capacity(n),
            suspect_tests: Vec::with_capacity(n),
            flakes: Vec::with_capacity(n),
            visits: Vec::with_capacity(n),
            tests_run: Vec::with_capacity(n),
            cursor: Vec::with_capacity(n),
            first_detection: Vec::with_capacity(n),
            quarantine_epoch: Vec::with_capacity(n),
            sp: None,
        }
    }

    /// Machines in the table.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Append one freshly built (healthy-state) machine row.
    pub(crate) fn push_new(&mut self, pool: u32, variant: u32, age_years: f64) {
        self.pool.push(pool);
        self.variant.push(variant);
        self.age_years.push(age_years);
        self.health.push(HEALTH_HEALTHY);
        self.consecutive.push(0);
        self.suspect_tests.push(Vec::new());
        self.flakes.push(0);
        self.visits.push(0);
        self.tests_run.push(0);
        self.cursor.push(0);
        self.first_detection.push(NO_EPOCH);
        self.quarantine_epoch.push(NO_EPOCH);
    }

    /// Reconstruct the enum health state of machine `i`.
    pub(crate) fn health_state(&self, i: usize) -> HealthState {
        match self.health[i] {
            HEALTH_HEALTHY => HealthState::Healthy,
            HEALTH_SUSPECTED => HealthState::Suspected {
                consecutive: self.consecutive[i],
                tests: self.suspect_tests[i].iter().map(|&t| t as usize).collect(),
            },
            _ => HealthState::Quarantined,
        }
    }
}

/// Label for a `health` column code; matches [`HealthState::label`].
pub(crate) fn health_label(code: u8) -> &'static str {
    match code {
        HEALTH_HEALTHY => "healthy",
        HEALTH_SUSPECTED => "suspected",
        _ => "quarantined",
    }
}
