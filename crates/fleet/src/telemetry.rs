//! Fleet-wide telemetry: per-epoch counters, per-machine histories, and
//! the aggregated summary a fleet operator would alert on.
//!
//! Everything here derives `serde::{Serialize, Deserialize}` so
//! per-machine [`DetectionReport`]s and fleet roll-ups can be persisted
//! and re-aggregated by external tooling; the canonical on-disk artifact
//! is produced by [`FleetTelemetry::to_json_string`], which renders
//! byte-reproducibly (see [`crate::json`]).

use serde::{Deserialize, Serialize};

use vega_integrate::DetectionReport;
use vega_lift::TestOutcome;

use crate::json::Json;
use crate::machine::InjectedFault;

/// Counters for one epoch of fleet operation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochTelemetry {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Policy-driven scan visits performed.
    pub scan_visits: u64,
    /// Confirmation retest visits performed.
    pub retest_visits: u64,
    /// Individual test executions.
    pub tests_run: u64,
    /// CPU cycles spent out of the epoch budget.
    pub cycles_spent: u64,
    /// Detection events observed (confirmed or not, flakes included).
    pub detections: u64,
    /// Spurious detections injected by the flake model.
    pub flakes_injected: u64,
    /// Machines newly moved `Healthy -> Suspected`.
    pub new_suspects: u64,
    /// Suspicions cleared by a passing confirmation retest.
    pub cleared_suspects: u64,
    /// Machines newly quarantined.
    pub new_quarantines: u64,
    /// Newly quarantined machines that were actually healthy.
    pub false_quarantines: u64,
}

impl EpochTelemetry {
    /// Add another epoch record's counters (the per-region → per-epoch
    /// merge); `epoch` itself is left untouched.
    pub fn absorb(&mut self, other: &EpochTelemetry) {
        self.scan_visits += other.scan_visits;
        self.retest_visits += other.retest_visits;
        self.tests_run += other.tests_run;
        self.cycles_spent += other.cycles_spent;
        self.detections += other.detections;
        self.flakes_injected += other.flakes_injected;
        self.new_suspects += other.new_suspects;
        self.cleared_suspects += other.cleared_suspects;
        self.new_quarantines += other.new_quarantines;
        self.false_quarantines += other.false_quarantines;
    }
}

/// Aggregate of every per-visit [`DetectionReport`] the fleet produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeTally {
    /// Tests that passed.
    pub passes: u64,
    /// Tests that detected a mismatch.
    pub detections: u64,
    /// Tests that observed a result-handshake stall.
    pub stalls: u64,
    /// Tests skipped as unrunnable.
    pub skips: u64,
}

impl OutcomeTally {
    /// Fold one per-visit report into the tally.
    pub fn ingest(&mut self, report: &DetectionReport) {
        for (_, outcome) in &report.outcomes {
            self.ingest_outcome(outcome);
        }
    }

    /// Fold one raw test outcome into the tally — the allocation-free
    /// path the fleet engine uses per visit (no `DetectionReport`
    /// construction, no test-name clones).
    pub fn ingest_outcome(&mut self, outcome: &TestOutcome) {
        match outcome {
            TestOutcome::Pass => self.passes += 1,
            TestOutcome::Detected { .. } => self.detections += 1,
            TestOutcome::Stall { .. } => self.stalls += 1,
            TestOutcome::Skipped { .. } => self.skips += 1,
        }
    }

    /// Add another tally's counts (sharded-epoch merge).
    pub fn merge(&mut self, other: &OutcomeTally) {
        self.passes += other.passes;
        self.detections += other.detections;
        self.stalls += other.stalls;
        self.skips += other.skips;
    }

    /// Total tests tallied.
    pub fn total(&self) -> u64 {
        self.passes + self.detections + self.stalls + self.skips
    }

    fn json(&self) -> Json {
        Json::obj(vec![
            ("passes", Json::UInt(self.passes)),
            ("detections", Json::UInt(self.detections)),
            ("stalls", Json::UInt(self.stalls)),
            ("skips", Json::UInt(self.skips)),
        ])
    }
}

/// Per-module (unit-pool) breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolTelemetry {
    /// Pool name (e.g. `alu`).
    pub pool: String,
    /// Machines in the pool.
    pub machines: u64,
    /// Machines carrying an injected fault.
    pub faulty: u64,
    /// Detection events attributed to the pool.
    pub detections: u64,
    /// Machines quarantined by the end of the run.
    pub quarantined: u64,
}

/// One machine's end-of-run record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineTelemetry {
    /// Machine index.
    pub id: usize,
    /// Pool name.
    pub pool: String,
    /// Sampled years in service.
    pub age_years: f64,
    /// Ground truth: the injected fault, if any.
    pub fault: Option<InjectedFault>,
    /// Final quarantine state label.
    pub final_health: String,
    /// Cleared suspicions.
    pub flakes: u32,
    /// Scan visits received.
    pub visits: u64,
    /// Tests executed.
    pub tests_run: u64,
    /// Epoch of the first detection on this machine.
    pub first_detection_epoch: Option<u64>,
    /// Epoch the machine entered quarantine.
    pub quarantine_epoch: Option<u64>,
    /// Provenance of the machine's Phase-1 SP assessment: `"exact"` or
    /// `"predicted"`. Artifacts written before SP prediction existed
    /// parse with the historical behaviour, `"exact"`.
    #[serde(default = "default_sp_source")]
    pub sp_source: String,
}

/// Pre-prediction artifacts were always exactly profiled.
fn default_sp_source() -> String {
    "exact".to_string()
}

/// SP-less runs report a `"none"` SP mode.
fn default_sp_mode() -> String {
    "none".to_string()
}

/// Pre-prediction artifacts carry no Phase-1 profiling counters.
fn default_zero() -> u64 {
    0
}

/// End-of-run aggregates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetSummary {
    /// Fleet size.
    pub machines: u64,
    /// Machines with an injected fault (ground truth).
    pub faulty: u64,
    /// Faulty machines with at least one detection.
    pub detected_faulty: u64,
    /// Faulty machines quarantined.
    pub quarantined_faulty: u64,
    /// Healthy machines quarantined (must stay 0 under the default
    /// confirmation-retest policy).
    pub false_quarantines: u64,
    /// Suspicions cleared fleet-wide.
    pub cleared_suspects: u64,
    /// Mean epochs from fleet start to first detection over *all* faulty
    /// machines; undetected machines are censored at the horizon
    /// (counted as `epochs`), so policies cannot cheat by never visiting
    /// hard machines.
    pub mean_detection_latency_epochs: f64,
    /// `detected_faulty / faulty` (1.0 when there is nothing to find).
    pub detection_coverage: f64,
    /// Total CPU cycles spent across all epochs.
    pub total_cycles: u64,
    /// Total test executions.
    pub total_tests: u64,
    /// Phase-1 SP assessment mode (`none` when assessment never ran).
    #[serde(default = "default_sp_mode")]
    pub sp_mode: String,
    /// Simulation lane-cycles spent on exact Phase-1 SP profiling.
    #[serde(default = "default_zero")]
    pub phase1_cycles: u64,
    /// Machines assessed by exact profiling (escalations included).
    #[serde(default = "default_zero")]
    pub phase1_exact_profiles: u64,
    /// Machines assessed by the predictor alone.
    #[serde(default = "default_zero")]
    pub phase1_predicted: u64,
    /// Predicted assessments escalated to exact by the guard band.
    #[serde(default = "default_zero")]
    pub phase1_escalations: u64,
    /// Outcome aggregate over every per-visit detection report.
    pub outcomes: OutcomeTally,
}

/// The full telemetry artifact for one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTelemetry {
    /// Fleet size.
    pub machines: u64,
    /// Epochs simulated.
    pub epochs: u64,
    /// Per-epoch cycle budget.
    pub budget_cycles: u64,
    /// Scheduling policy label.
    pub policy: String,
    /// Master seed.
    pub seed: u64,
    /// Per-epoch counters, in epoch order.
    pub per_epoch: Vec<EpochTelemetry>,
    /// Per-pool breakdown, in pool order.
    pub per_pool: Vec<PoolTelemetry>,
    /// Per-machine records, in id order.
    pub per_machine: Vec<MachineTelemetry>,
    /// End-of-run aggregates.
    pub summary: FleetSummary,
}

fn opt_epoch(value: Option<u64>) -> Json {
    match value {
        Some(e) => Json::UInt(e),
        None => Json::Null,
    }
}

impl FleetTelemetry {
    /// The canonical JSON value (fixed member order).
    pub fn to_json(&self) -> Json {
        let epochs = self
            .per_epoch
            .iter()
            .map(|e| {
                Json::obj(vec![
                    ("epoch", Json::UInt(e.epoch)),
                    ("scan_visits", Json::UInt(e.scan_visits)),
                    ("retest_visits", Json::UInt(e.retest_visits)),
                    ("tests_run", Json::UInt(e.tests_run)),
                    ("cycles_spent", Json::UInt(e.cycles_spent)),
                    ("detections", Json::UInt(e.detections)),
                    ("flakes_injected", Json::UInt(e.flakes_injected)),
                    ("new_suspects", Json::UInt(e.new_suspects)),
                    ("cleared_suspects", Json::UInt(e.cleared_suspects)),
                    ("new_quarantines", Json::UInt(e.new_quarantines)),
                    ("false_quarantines", Json::UInt(e.false_quarantines)),
                ])
            })
            .collect();
        let pools = self
            .per_pool
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("pool", Json::Str(p.pool.clone())),
                    ("machines", Json::UInt(p.machines)),
                    ("faulty", Json::UInt(p.faulty)),
                    ("detections", Json::UInt(p.detections)),
                    ("quarantined", Json::UInt(p.quarantined)),
                ])
            })
            .collect();
        let machines = self
            .per_machine
            .iter()
            .map(|m| {
                let fault = match &m.fault {
                    None => Json::Null,
                    Some(f) => Json::obj(vec![
                        ("path", Json::Str(f.path_label.clone())),
                        ("mode", Json::Str(f.mode.label().to_string())),
                        ("severity_ns", Json::Float(f.severity_ns)),
                    ]),
                };
                Json::obj(vec![
                    ("id", Json::UInt(m.id as u64)),
                    ("pool", Json::Str(m.pool.clone())),
                    ("age_years", Json::Float(m.age_years)),
                    ("fault", fault),
                    ("final_health", Json::Str(m.final_health.clone())),
                    ("flakes", Json::UInt(u64::from(m.flakes))),
                    ("visits", Json::UInt(m.visits)),
                    ("tests_run", Json::UInt(m.tests_run)),
                    ("first_detection_epoch", opt_epoch(m.first_detection_epoch)),
                    ("quarantine_epoch", opt_epoch(m.quarantine_epoch)),
                    ("sp_source", Json::Str(m.sp_source.clone())),
                ])
            })
            .collect();
        let s = &self.summary;
        let summary = Json::obj(vec![
            ("machines", Json::UInt(s.machines)),
            ("faulty", Json::UInt(s.faulty)),
            ("detected_faulty", Json::UInt(s.detected_faulty)),
            ("quarantined_faulty", Json::UInt(s.quarantined_faulty)),
            ("false_quarantines", Json::UInt(s.false_quarantines)),
            ("cleared_suspects", Json::UInt(s.cleared_suspects)),
            (
                "mean_detection_latency_epochs",
                Json::Float(s.mean_detection_latency_epochs),
            ),
            ("detection_coverage", Json::Float(s.detection_coverage)),
            ("total_cycles", Json::UInt(s.total_cycles)),
            ("total_tests", Json::UInt(s.total_tests)),
            ("sp_mode", Json::Str(s.sp_mode.clone())),
            ("phase1_cycles", Json::UInt(s.phase1_cycles)),
            ("phase1_exact_profiles", Json::UInt(s.phase1_exact_profiles)),
            ("phase1_predicted", Json::UInt(s.phase1_predicted)),
            ("phase1_escalations", Json::UInt(s.phase1_escalations)),
            ("outcomes", s.outcomes.json()),
        ]);
        Json::obj(vec![
            ("machines", Json::UInt(self.machines)),
            ("epochs", Json::UInt(self.epochs)),
            ("budget_cycles", Json::UInt(self.budget_cycles)),
            ("policy", Json::Str(self.policy.clone())),
            ("seed", Json::UInt(self.seed)),
            ("per_epoch", Json::Arr(epochs)),
            ("per_pool", Json::Arr(pools)),
            ("per_machine", Json::Arr(machines)),
            ("summary", summary),
        ])
    }

    /// The canonical pretty-printed JSON artifact (byte-reproducible
    /// under a fixed seed).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Emit this run's end-of-run aggregates as `phase3.fleet.*` metrics:
    /// summary gauges plus a per-faulty-machine detection-latency
    /// histogram. Undetected machines are censored at the horizon
    /// (`epochs`), exactly like [`FleetSummary::mean_detection_latency_epochs`],
    /// so the histogram's mean and the summary's mean agree and a journal
    /// can be cross-checked against the persisted telemetry artifact.
    pub fn record_obs(&self, obs: &vega_obs::Obs) {
        if !obs.enabled() {
            return;
        }
        let s = &self.summary;
        obs.gauge("phase3.fleet.machines", self.machines as f64);
        obs.gauge("phase3.fleet.faulty_machines", s.faulty as f64);
        obs.gauge("phase3.fleet.detected_faulty", s.detected_faulty as f64);
        obs.gauge(
            "phase3.fleet.quarantined_faulty",
            s.quarantined_faulty as f64,
        );
        obs.gauge("phase3.fleet.detection_coverage", s.detection_coverage);
        obs.gauge(
            "phase3.fleet.mean_detection_latency_epochs",
            s.mean_detection_latency_epochs,
        );
        for machine in self.per_machine.iter().filter(|m| m.fault.is_some()) {
            let latency = machine.first_detection_epoch.unwrap_or(self.epochs);
            obs.hist("phase3.fleet.detection_latency_epochs", latency as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_tally_ingests_reports() {
        let report = DetectionReport {
            outcomes: vec![
                ("a".into(), TestOutcome::Pass),
                (
                    "b".into(),
                    TestOutcome::Detected {
                        cycle: 1,
                        port: "o".into(),
                    },
                ),
                ("c".into(), TestOutcome::Skipped { reason: "x".into() }),
            ],
            first_detection: None,
            skipped: 1,
        };
        let mut tally = OutcomeTally::default();
        tally.ingest(&report);
        tally.ingest(&report);
        assert_eq!(tally.passes, 2);
        assert_eq!(tally.detections, 2);
        assert_eq!(tally.skips, 2);
        assert_eq!(tally.stalls, 0);
        assert_eq!(tally.total(), 6);
    }
}
