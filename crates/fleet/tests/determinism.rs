//! Thread-count invariance of the sharded fleet engine: for every
//! `(seed, policy, scheduler, sp_mode)` the per-epoch `state_digest`
//! and the final telemetry JSON must be byte-identical at 1, 2, 4, and
//! 8 worker threads. `vega serve` leans on exactly this property — WAL
//! replay cross-checks digests journaled at first execution, possibly
//! under a different `--threads` — so any divergence here is a crash
//! -recovery bug, not just a flaky test.

use std::collections::BTreeMap;

use proptest::prelude::*;

use vega_circuits::adder_example::build_paper_adder;
use vega_fleet::{Fleet, FleetConfig, Policy, RiskPath, Scheduler, SpMode, UnitPool};
use vega_lift::{AgingPath, Check, ModuleKind, Provenance, TestCase};
use vega_obs::Obs;
use vega_predict::{extract_features, train, RiskScorer, SpPoolPredictor, TrainOptions};
use vega_sta::ViolationKind;

fn one_cycle(a: u64, b: u64) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    m.insert("a".into(), a);
    m.insert("b".into(), b);
    m
}

fn adder_suite() -> Vec<TestCase> {
    let mut suite = Vec::new();
    for a in 0..4u64 {
        for b in 0..4u64 {
            suite.push(TestCase {
                name: format!("add_{a}_{b}"),
                target: format!("pair_{a}_{b}"),
                stimulus: vec![one_cycle(a, b)],
                checks: vec![Check::PortAt {
                    cycle: 2,
                    port: "o".into(),
                    expected: (a + b) % 4,
                }],
                instructions: Vec::new(),
                cpu_cycles: 8,
                provenance: Provenance::Fuzzed,
            });
        }
    }
    suite
}

/// One risk path whose margin straddles zero across machine ages, so
/// `predicted-fallback` genuinely escalates some machines and not
/// others (the hardest case for cross-thread SP counter parity).
fn risk_paths(netlist: &vega_netlist::Netlist) -> Vec<RiskPath> {
    let cells: Vec<String> = netlist
        .cells()
        .filter(|c| !c.name.is_empty())
        .take(4)
        .map(|c| c.name.clone())
        .collect();
    vec![RiskPath {
        label: "dff3 -> dff9 (Setup)".into(),
        cells,
        arrival_ns: 1.0,
        required_ns: 1.002,
        slack_ns: 0.002,
        ref_degradation: 0.002,
    }]
}

/// The adder pool with a trained SP predictor attached — built once and
/// cloned per run, the way `vega fleet` reuses one pool across configs.
fn predictive_pool() -> UnitPool {
    let healthy = build_paper_adder();
    let obs = Obs::null();
    let probe = vega_sim::profile_sharded(&healthy, 64, 0xA11CE, 1);
    let target = vega_sim::profile_sharded(&healthy, 512, 7, 1);
    let features = extract_features(&healthy, Some(&probe), 1, &obs).expect("extract");
    let targets = features.targets_from(&target);
    let trained = train(&features, &targets, &TrainOptions::default(), &obs).expect("train");
    let risk = risk_paths(&healthy);
    let candidates = [("dff3", "dff9", 0.4), ("dff4", "dff10", 0.2)]
        .into_iter()
        .map(
            |(launch, capture, severity_ns)| vega_fleet::FaultCandidate {
                path: AgingPath {
                    launch: healthy.cell_by_name(launch).expect("launch exists").id,
                    capture: healthy.cell_by_name(capture).expect("capture exists").id,
                    violation: ViolationKind::Setup,
                },
                severity_ns,
            },
        )
        .collect();
    let mut pool = UnitPool::uniform(
        "adder",
        ModuleKind::PaperAdder,
        healthy,
        adder_suite(),
        candidates,
    );
    pool.risk = risk.clone();
    pool.sp = Some(SpPoolPredictor {
        model: trained.model,
        probe,
        scorer: RiskScorer {
            aging: vega_aging::AgingModel::cmos28_worst_case(),
            paths: risk,
        },
    });
    pool
}

const MACHINES: usize = 24;
const EPOCHS: u64 = 5;

fn config(
    seed: u64,
    policy: Policy,
    scheduler: Scheduler,
    sp_mode: Option<SpMode>,
    threads: usize,
) -> FleetConfig {
    let mut config = FleetConfig::new(MACHINES, EPOCHS, policy, seed);
    config.threads = threads;
    config.regions = Some(4);
    config.scheduler = scheduler;
    config.sp_mode = sp_mode;
    config.sp_profile_cycles = 128;
    // Inside the margin spread of `risk_paths`, so fallback splits the
    // fleet into escalated and predicted machines.
    config.sp_guard_band_ns = 0.0005;
    config
}

/// Step a fleet to completion, collecting the digest after every epoch
/// and the final telemetry JSON.
fn trace(pool: &UnitPool, config: FleetConfig) -> (Vec<u64>, String) {
    let mut fleet = Fleet::build(vec![pool.clone()], config);
    let mut digests = Vec::new();
    while fleet.step_epoch() {
        digests.push(fleet.state_digest());
    }
    (digests, fleet.telemetry().to_json_string())
}

fn assert_thread_invariant(
    pool: &UnitPool,
    seed: u64,
    policy: Policy,
    scheduler: Scheduler,
    sp_mode: Option<SpMode>,
) {
    let label = format!(
        "seed={seed} policy={policy} scheduler={scheduler} sp_mode={:?}",
        sp_mode.map(|m| m.label())
    );
    let (base_digests, base_json) = trace(pool, config(seed, policy, scheduler, sp_mode, 1));
    for threads in [2, 4, 8] {
        let (digests, json) = trace(pool, config(seed, policy, scheduler, sp_mode, threads));
        assert_eq!(
            base_digests, digests,
            "{label}: per-epoch digests diverge at {threads} threads"
        );
        assert_eq!(
            base_json, json,
            "{label}: telemetry JSON diverges at {threads} threads"
        );
    }
}

/// The full acceptance grid: every policy × scheduler × SP mode at a
/// fixed seed, 1 vs 2/4/8 threads.
#[test]
fn digests_and_telemetry_are_thread_invariant_across_grid() {
    let pool = predictive_pool();
    for policy in [Policy::RoundRobin, Policy::Random, Policy::Adaptive] {
        for scheduler in [Scheduler::Central, Scheduler::Hierarchical] {
            for sp_mode in [
                None,
                Some(SpMode::Exact),
                Some(SpMode::Predicted),
                Some(SpMode::PredictedFallback),
            ] {
                assert_thread_invariant(&pool, 41, policy, scheduler, sp_mode);
            }
        }
    }
}

// Random seeds keep the grid honest: the property must hold for any
// seed, not just the one the grid test bakes in.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn digests_are_thread_invariant_for_any_seed(
        seed in 1u64..10_000,
        policy_sel in 0usize..3,
        scheduler_sel in 0usize..2,
        mode_sel in 0usize..4,
    ) {
        let pool = predictive_pool();
        let policy = [Policy::RoundRobin, Policy::Random, Policy::Adaptive][policy_sel];
        let scheduler = [Scheduler::Central, Scheduler::Hierarchical][scheduler_sel];
        let sp_mode = [
            None,
            Some(SpMode::Exact),
            Some(SpMode::Predicted),
            Some(SpMode::PredictedFallback),
        ][mode_sel];
        assert_thread_invariant(&pool, seed, policy, scheduler, sp_mode);
    }
}

/// Regression for the telemetry full-clone fix: `telemetry()` is a pure
/// read. Calling it after every epoch must neither perturb the run nor
/// disagree with the end-of-run artifact — the mid-run snapshot at the
/// final epoch IS the final artifact, byte for byte.
#[test]
fn mid_run_telemetry_agrees_with_end_of_run() {
    let pool = predictive_pool();
    let observed = config(41, Policy::Adaptive, Scheduler::Hierarchical, None, 2);
    let undisturbed = observed.clone();

    let mut fleet = Fleet::build(vec![pool.clone()], observed);
    let mut last_json = String::new();
    while fleet.step_epoch() {
        last_json = fleet.telemetry().to_json_string();
    }
    let final_json = fleet.telemetry().to_json_string();
    assert_eq!(
        last_json, final_json,
        "snapshot after the last epoch must equal the end-of-run artifact"
    );

    let mut quiet = Fleet::build(vec![pool], undisturbed);
    let quiet_json = quiet.run().to_json_string();
    assert_eq!(
        final_json, quiet_json,
        "mid-run telemetry() calls must not perturb the simulation"
    );
}
