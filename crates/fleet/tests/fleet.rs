//! End-to-end tests of the fleet simulation: determinism, the
//! quarantine state machine, and policy behaviour — all on the paper's
//! 2-bit adder so the gate-level work stays tiny.

use std::collections::BTreeMap;

use vega_circuits::adder_example::build_paper_adder;
use vega_fleet::{
    Fleet, FleetConfig, HealthState, InjectedFault, Machine, MachineId, Policy, UnitPool,
};
use vega_lift::{
    build_failing_netlist, AgingPath, Check, FaultActivation, FaultValue, ModuleKind, Provenance,
    TestCase,
};
use vega_riscv::FailureMode;
use vega_sta::ViolationKind;

fn one_cycle(a: u64, b: u64) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    m.insert("a".into(), a);
    m.insert("b".into(), b);
    m
}

/// Exhaustive suite for the paper adder: one test per `(a, b)` input
/// pair, checking `o = (a + b) % 4` at the pipeline's result cycle.
fn adder_suite() -> Vec<TestCase> {
    let mut suite = Vec::new();
    for a in 0..4u64 {
        for b in 0..4u64 {
            suite.push(TestCase {
                name: format!("add_{a}_{b}"),
                target: format!("pair_{a}_{b}"),
                stimulus: vec![one_cycle(a, b)],
                checks: vec![Check::PortAt {
                    cycle: 2,
                    port: "o".into(),
                    expected: (a + b) % 4,
                }],
                instructions: Vec::new(),
                cpu_cycles: 8,
                provenance: Provenance::Fuzzed,
            });
        }
    }
    suite
}

fn adder_path(netlist: &vega_netlist::Netlist, launch: &str, capture: &str) -> AgingPath {
    AgingPath {
        launch: netlist.cell_by_name(launch).expect("launch exists").id,
        capture: netlist.cell_by_name(capture).expect("capture exists").id,
        violation: ViolationKind::Setup,
    }
}

/// The adder pool with synthetic severities and the four sampling
/// flop → output flop paths as fault candidates (worst slack first).
fn adder_pool() -> UnitPool {
    let healthy = build_paper_adder();
    let suite = adder_suite();
    // Synthetic severities: descending in (a, b) order, so the
    // severity-ranked ordering differs from construction order only by
    // being explicit. Individual tests override this where the ordering
    // matters.
    let severity_ns = (0..suite.len()).map(|i| 0.5 - 0.02 * i as f64).collect();
    let candidates = [
        ("dff3", "dff9", 0.40),
        ("dff1", "dff9", 0.30),
        ("dff4", "dff10", 0.20),
        ("dff2", "dff10", 0.10),
    ]
    .into_iter()
    .map(
        |(launch, capture, severity_ns)| vega_fleet::FaultCandidate {
            path: adder_path(&healthy, launch, capture),
            severity_ns,
        },
    )
    .collect();
    UnitPool {
        name: "adder".into(),
        module: ModuleKind::PaperAdder,
        healthy,
        suite,
        severity_ns,
        candidates,
        risk: Vec::new(),
        sp: None,
    }
}

/// A machine running the failing variant of the adder: `capture`
/// samples the constant `value` whenever `launch`'s value changed.
fn faulty_machine(id: usize, age_years: f64, launch: &str, capture: &str) -> Machine {
    let healthy = build_paper_adder();
    let path = adder_path(&healthy, launch, capture);
    let failing =
        build_failing_netlist(&healthy, path, FaultValue::Zero, FaultActivation::OnChange);
    Machine::new(
        MachineId(id),
        0,
        age_years,
        failing,
        Some(InjectedFault {
            path_label: path.label(&healthy),
            mode: FailureMode::Const0,
            severity_ns: 0.4,
        }),
    )
}

fn healthy_machine(id: usize, age_years: f64) -> Machine {
    Machine::new(MachineId(id), 0, age_years, build_paper_adder(), None)
}

#[test]
fn same_seed_runs_are_byte_identical() {
    for policy in Policy::ALL {
        let run = |_| {
            let config = FleetConfig::new(12, 6, policy, 41);
            Fleet::build(vec![adder_pool()], config)
                .run()
                .to_json_string()
        };
        let first = run(0);
        let second = run(1);
        assert!(first.len() > 200, "telemetry should be substantial");
        assert_eq!(first, second, "policy {policy} must be deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let config = FleetConfig::new(12, 4, Policy::Adaptive, seed);
        Fleet::build(vec![adder_pool()], config)
            .run()
            .to_json_string()
    };
    assert_ne!(run(1), run(2), "the seed must actually steer the fleet");
}

#[test]
fn sampled_fleet_never_falsely_quarantines() {
    for policy in Policy::ALL {
        let config = FleetConfig::new(24, 12, policy, 7);
        let mut fleet = Fleet::build(vec![adder_pool()], config);
        let telemetry = fleet.run();
        assert_eq!(
            telemetry.summary.false_quarantines, 0,
            "policy {policy}: healthy machines must survive the run"
        );
        for machine in fleet.machines() {
            if matches!(machine.health, HealthState::Quarantined) {
                assert!(
                    machine.truly_faulty(),
                    "{} quarantined without a fault",
                    machine.id
                );
            }
        }
    }
}

#[test]
fn faulty_machine_is_confirmed_then_quarantined() {
    let mut config = FleetConfig::new(2, 8, Policy::RoundRobin, 5);
    config.flake_probability = 0.0;
    config.budget_cycles = Some(100_000);
    let machines = vec![
        healthy_machine(0, 3.0),
        faulty_machine(1, 9.0, "dff3", "dff9"),
    ];
    let mut fleet = Fleet::from_machines(vec![adder_pool()], config.clone(), machines);
    let telemetry = fleet.run();

    let healthy = fleet.machine_view(0);
    let faulty = fleet.machine_view(1);
    assert_eq!(healthy.health, HealthState::Healthy);
    assert_eq!(healthy.flakes, 0, "no noise, no suspicion");
    assert_eq!(faulty.health, HealthState::Quarantined);
    let detected = faulty.first_detection_epoch.expect("fault detected");
    let quarantined = faulty.quarantine_epoch.expect("fault quarantined");
    assert!(quarantined >= detected);

    // Quarantine must cost `confirmations` retest visits beyond the
    // triggering detection.
    let retests: u64 = telemetry.per_epoch.iter().map(|e| e.retest_visits).sum();
    assert!(
        retests >= u64::from(config.confirmations),
        "expected >= {} confirmation retests, saw {retests}",
        config.confirmations
    );
    assert_eq!(telemetry.summary.quarantined_faulty, 1);
    assert_eq!(telemetry.summary.false_quarantines, 0);
    assert_eq!(telemetry.summary.detection_coverage, 1.0);

    // Quarantined machines leave the rotation: no scan visits after the
    // quarantine epoch on a 2-machine fleet means total visits stay
    // bounded well below epochs * machines.
    assert!(faulty.visits <= quarantined + 1);
}

#[test]
fn pure_noise_is_eventually_quarantined_but_counted_false() {
    // With a 100% flake rate every confirmation retest also "detects",
    // so the controller cannot tell noise from a real fault — the run
    // must quarantine the machine AND report it as a false quarantine.
    // This is the diagnostic that says "your test environment is
    // broken", not a detection claim.
    let mut config = FleetConfig::new(1, 4, Policy::RoundRobin, 11);
    config.flake_probability = 1.0;
    config.budget_cycles = Some(100_000);
    let mut fleet = Fleet::from_machines(vec![adder_pool()], config, vec![healthy_machine(0, 2.0)]);
    let telemetry = fleet.run();
    assert_eq!(telemetry.summary.false_quarantines, 1);
    assert_eq!(fleet.machine_view(0).health, HealthState::Quarantined);
}

#[test]
fn detection_latency_is_censored_at_horizon() {
    // Zero budget: nothing ever runs, so the faulty machine is never
    // detected and its latency is censored at the horizon.
    let mut config = FleetConfig::new(1, 6, Policy::Adaptive, 3);
    config.budget_cycles = Some(0);
    let mut fleet = Fleet::from_machines(
        vec![adder_pool()],
        config,
        vec![faulty_machine(0, 8.0, "dff3", "dff9")],
    );
    let telemetry = fleet.run();
    assert_eq!(telemetry.summary.detected_faulty, 0);
    assert_eq!(telemetry.summary.mean_detection_latency_epochs, 6.0);
    assert_eq!(telemetry.summary.detection_coverage, 0.0);
    assert_eq!(telemetry.summary.total_tests, 0);
}

#[test]
fn adaptive_visits_oldest_machine_first() {
    // Budget of exactly one 4-test visit per epoch; three machines with
    // distinct ages and the oldest carrying the fault. Adaptive must
    // reach it in epoch 0; round-robin starts at machine 0 and needs
    // two more epochs.
    let machines = || {
        vec![
            healthy_machine(0, 1.0),
            healthy_machine(1, 5.0),
            faulty_machine(2, 11.0, "dff3", "dff9"),
        ]
    };
    let latency = |policy| {
        let mut config = FleetConfig::new(3, 6, policy, 17);
        config.flake_probability = 0.0;
        config.budget_cycles = Some(4 * 8); // tests_per_visit * cpu_cycles
        let mut fleet = Fleet::from_machines(vec![adder_pool()], config, machines());
        fleet.run().summary.mean_detection_latency_epochs
    };
    let adaptive = latency(Policy::Adaptive);
    let round_robin = latency(Policy::RoundRobin);
    assert_eq!(adaptive, 0.0, "adaptive visits the 11-year machine first");
    assert!(
        round_robin >= 2.0,
        "round-robin reaches machine 2 at epoch 2, saw {round_robin}"
    );
}

#[test]
fn budget_caps_cycles_per_epoch() {
    let mut config = FleetConfig::new(8, 5, Policy::RoundRobin, 23);
    config.budget_cycles = Some(50);
    let mut fleet = Fleet::build(vec![adder_pool()], config);
    let telemetry = fleet.run();
    for epoch in &telemetry.per_epoch {
        assert!(
            epoch.cycles_spent <= 50,
            "epoch {} overspent: {}",
            epoch.epoch,
            epoch.cycles_spent
        );
    }
}

#[test]
fn telemetry_json_is_well_formed_and_complete() {
    let config = FleetConfig::new(6, 3, Policy::Adaptive, 29);
    let mut fleet = Fleet::build(vec![adder_pool()], config);
    let telemetry = fleet.run();
    let json = telemetry.to_json_string();
    assert!(json.starts_with("{\n  \"machines\": 6,\n"));
    assert!(json.ends_with("}\n"));
    for key in [
        "\"per_epoch\"",
        "\"per_pool\"",
        "\"per_machine\"",
        "\"summary\"",
        "\"mean_detection_latency_epochs\"",
        "\"policy\": \"adaptive\"",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    assert_eq!(telemetry.per_machine.len(), 6);
    assert_eq!(telemetry.per_epoch.len(), 3);
    assert_eq!(telemetry.per_pool.len(), 1);
    assert_eq!(telemetry.per_pool[0].pool, "adder");
}

#[test]
fn fleet_telemetry_serde_round_trips() {
    let config = FleetConfig::new(4, 2, Policy::Random, 31);
    let mut fleet = Fleet::build(vec![adder_pool()], config);
    let telemetry = fleet.run();
    let encoded = serde_json::to_string(&telemetry).expect("serialize");
    let decoded: vega_fleet::FleetTelemetry = serde_json::from_str(&encoded).expect("deserialize");
    assert_eq!(decoded, telemetry);
}

#[test]
fn stepped_epochs_match_run_exactly() {
    for policy in Policy::ALL {
        let config = FleetConfig::new(12, 6, policy, 41);
        let want = Fleet::build(vec![adder_pool()], config.clone())
            .run()
            .to_json_string();
        let mut stepped = Fleet::build(vec![adder_pool()], config);
        let mut epochs = 0;
        while stepped.step_epoch() {
            epochs += 1;
        }
        assert_eq!(epochs, 6);
        assert!(!stepped.step_epoch(), "no epochs past the horizon");
        assert_eq!(
            stepped.telemetry().to_json_string(),
            want,
            "policy {policy}: stepping must equal the run() loop"
        );
    }
}

#[test]
fn state_digest_is_deterministic_and_tracks_evolution() {
    let config = FleetConfig::new(12, 4, Policy::Adaptive, 17);
    let mut a = Fleet::build(vec![adder_pool()], config.clone());
    let mut b = Fleet::build(vec![adder_pool()], config);
    assert_eq!(a.state_digest(), b.state_digest(), "same seed, same start");
    let mut digests = vec![a.state_digest()];
    while a.step_epoch() {
        b.step_epoch();
        assert_eq!(
            a.state_digest(),
            b.state_digest(),
            "same-seed fleets must agree after every epoch"
        );
        digests.push(a.state_digest());
    }
    digests.dedup();
    assert!(
        digests.len() > 1,
        "the digest must actually change as the fleet evolves"
    );
}

#[test]
fn health_transitions_are_recorded_and_drained() {
    let mut config = FleetConfig::new(2, 8, Policy::RoundRobin, 5);
    config.flake_probability = 0.0;
    config.budget_cycles = Some(100_000);
    let machines = vec![
        healthy_machine(0, 3.0),
        faulty_machine(1, 9.0, "dff3", "dff9"),
    ];
    let mut fleet = Fleet::from_machines(vec![adder_pool()], config, machines);
    fleet.run();
    let transitions = fleet.take_transitions();
    assert!(!transitions.is_empty(), "the faulty machine must move");
    // The faulty machine's history reads healthy→suspected→quarantined.
    let m1: Vec<(&str, &str)> = transitions
        .iter()
        .filter(|t| t.machine == MachineId(1))
        .map(|t| (t.from, t.to))
        .collect();
    assert_eq!(m1.first(), Some(&("healthy", "suspected")));
    assert_eq!(m1.last(), Some(&("suspected", "quarantined")));
    for t in &transitions {
        assert!(t.epoch < 8);
        assert_ne!(t.from, t.to);
    }
    // Draining empties the buffer.
    assert!(fleet.take_transitions().is_empty());
}
