//! SP-prediction integration tests: telemetry provenance (`sp_source`),
//! parse compatibility with pre-prediction artifacts, determinism of the
//! predicted modes, and the guard-band fallback's coverage guarantee.

use std::collections::BTreeMap;

use vega_circuits::adder_example::build_paper_adder;
use vega_fleet::{
    Fleet, FleetConfig, FleetSummary, FleetTelemetry, MachineTelemetry, Policy, RiskPath, SpMode,
    SpPoolPredictor, SpSource, UnitPool,
};
use vega_lift::{AgingPath, Check, ModuleKind, Provenance, TestCase};
use vega_obs::Obs;
use vega_predict::{extract_features, train, RiskScorer, TrainOptions};
use vega_sta::ViolationKind;

fn one_cycle(a: u64, b: u64) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    m.insert("a".into(), a);
    m.insert("b".into(), b);
    m
}

fn adder_suite() -> Vec<TestCase> {
    let mut suite = Vec::new();
    for a in 0..4u64 {
        for b in 0..4u64 {
            suite.push(TestCase {
                name: format!("add_{a}_{b}"),
                target: format!("pair_{a}_{b}"),
                stimulus: vec![one_cycle(a, b)],
                checks: vec![Check::PortAt {
                    cycle: 2,
                    port: "o".into(),
                    expected: (a + b) % 4,
                }],
                instructions: Vec::new(),
                cpu_cycles: 8,
                provenance: Provenance::Fuzzed,
            });
        }
    }
    suite
}

/// Risk paths spanning the guard-band boundary: at machine ages in
/// [0, 12] years some machines predict clearly-safe margins, some
/// clearly-at-risk, and some land inside the band.
fn risk_paths(netlist: &vega_netlist::Netlist) -> Vec<RiskPath> {
    let cells: Vec<String> = netlist
        .cells()
        .filter(|c| !c.name.is_empty())
        .take(4)
        .map(|c| c.name.clone())
        .collect();
    vec![RiskPath {
        label: "dff3 -> dff9 (Setup)".into(),
        cells,
        arrival_ns: 1.0,
        required_ns: 1.002,
        slack_ns: 0.002,
        ref_degradation: 0.002,
    }]
}

/// An adder pool with a predictor trained on a short uniform-random
/// profile of the healthy netlist (probe decorrelated from the target
/// profile, as in production training).
fn predictive_pool() -> UnitPool {
    let healthy = build_paper_adder();
    let obs = Obs::null();
    let probe = vega_sim::profile_sharded(&healthy, 64, 0xA11CE, 1);
    let target = vega_sim::profile_sharded(&healthy, 512, 7, 1);
    let features = extract_features(&healthy, Some(&probe), 1, &obs).expect("extract");
    let targets = features.targets_from(&target);
    let trained = train(&features, &targets, &TrainOptions::default(), &obs).expect("train");
    let risk = risk_paths(&healthy);
    let candidates = [("dff3", "dff9", 0.4), ("dff4", "dff10", 0.2)]
        .into_iter()
        .map(
            |(launch, capture, severity_ns)| vega_fleet::FaultCandidate {
                path: AgingPath {
                    launch: healthy.cell_by_name(launch).expect("launch exists").id,
                    capture: healthy.cell_by_name(capture).expect("capture exists").id,
                    violation: ViolationKind::Setup,
                },
                severity_ns,
            },
        )
        .collect();
    let mut pool = UnitPool::uniform(
        "adder",
        ModuleKind::PaperAdder,
        healthy,
        adder_suite(),
        candidates,
    );
    pool.risk = risk.clone();
    pool.sp = Some(SpPoolPredictor {
        model: trained.model,
        probe,
        scorer: RiskScorer {
            aging: vega_aging_model(),
            paths: risk,
        },
    });
    pool
}

fn vega_aging_model() -> vega_aging::AgingModel {
    vega_aging::AgingModel::cmos28_worst_case()
}

fn config(mode: Option<SpMode>, seed: u64) -> FleetConfig {
    let mut config = FleetConfig::new(12, 6, Policy::Adaptive, seed);
    config.sp_mode = mode;
    config.sp_profile_cycles = 128;
    config.sp_guard_band_ns = 0.0005;
    config
}

fn run(mode: Option<SpMode>, seed: u64) -> FleetTelemetry {
    Fleet::build(vec![predictive_pool()], config(mode, seed)).run()
}

#[test]
fn predicted_runs_are_byte_identical() {
    for mode in [SpMode::Exact, SpMode::Predicted, SpMode::PredictedFallback] {
        let first = run(Some(mode), 41).to_json_string();
        let second = run(Some(mode), 41).to_json_string();
        assert_eq!(first, second, "mode {mode} must be deterministic");
    }
}

#[test]
fn sp_source_provenance_matches_mode() {
    let exact = run(Some(SpMode::Exact), 41);
    assert!(exact
        .per_machine
        .iter()
        .all(|m| m.sp_source == SpSource::Exact.label()));
    assert_eq!(exact.summary.sp_mode, "exact");
    assert_eq!(exact.summary.phase1_exact_profiles, 12);
    assert_eq!(exact.summary.phase1_predicted, 0);
    assert_eq!(exact.summary.phase1_cycles, 12 * 128);

    let predicted = run(Some(SpMode::Predicted), 41);
    assert!(predicted
        .per_machine
        .iter()
        .all(|m| m.sp_source == SpSource::Predicted.label()));
    assert_eq!(predicted.summary.phase1_cycles, 0);

    let fallback = run(Some(SpMode::PredictedFallback), 41);
    assert_eq!(fallback.summary.sp_mode, "predicted-fallback");
    assert_eq!(
        fallback.summary.phase1_exact_profiles + fallback.summary.phase1_predicted,
        12
    );
    assert_eq!(
        fallback.summary.phase1_exact_profiles,
        fallback.summary.phase1_escalations
    );
    // Escalated machines report exact provenance, the rest predicted.
    let exact_sources = fallback
        .per_machine
        .iter()
        .filter(|m| m.sp_source == "exact")
        .count() as u64;
    assert_eq!(exact_sources, fallback.summary.phase1_escalations);

    let none = run(None, 41);
    assert_eq!(none.summary.sp_mode, "none");
    assert_eq!(none.summary.phase1_cycles, 0);
    assert!(none.per_machine.iter().all(|m| m.sp_source == "exact"));
}

/// The SP ranking term must only reorder scans, never change what gets
/// detected: every mode agrees on the final health of every machine.
#[test]
fn sp_modes_preserve_detection_outcomes() {
    let baseline = run(None, 41);
    for mode in [SpMode::Exact, SpMode::Predicted, SpMode::PredictedFallback] {
        let telemetry = run(Some(mode), 41);
        assert_eq!(
            telemetry.summary.detection_coverage, baseline.summary.detection_coverage,
            "mode {mode} changed coverage"
        );
        assert_eq!(
            telemetry.summary.false_quarantines, baseline.summary.false_quarantines,
            "mode {mode} changed false quarantines"
        );
        for (a, b) in telemetry.per_machine.iter().zip(&baseline.per_machine) {
            assert_eq!(
                a.final_health, b.final_health,
                "mode {mode} changed machine {} outcome",
                a.id
            );
        }
    }
}

#[test]
fn telemetry_serde_round_trips_with_sp_fields() {
    let telemetry = run(Some(SpMode::PredictedFallback), 43);
    let encoded = serde_json::to_string(&telemetry).expect("serialize");
    let decoded: FleetTelemetry = serde_json::from_str(&encoded).expect("deserialize");
    assert_eq!(decoded, telemetry);
    // Canonical JSON carries the new members.
    let json = telemetry.to_json_string();
    for key in [
        "\"sp_source\"",
        "\"sp_mode\"",
        "\"phase1_cycles\"",
        "\"phase1_exact_profiles\"",
        "\"phase1_predicted\"",
        "\"phase1_escalations\"",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
}

/// Artifacts serialized before SP prediction existed must still parse:
/// a machine record without `sp_source` defaults to the historical
/// behaviour (`"exact"`), and a summary without the phase1 counters
/// defaults to an SP-less run.
#[test]
fn pre_prediction_artifacts_parse_with_defaults() {
    let machine_json = r#"{
        "id": 3,
        "pool": "adder",
        "age_years": 4.5,
        "fault": null,
        "final_health": "healthy",
        "flakes": 0,
        "visits": 2,
        "tests_run": 8,
        "first_detection_epoch": null,
        "quarantine_epoch": null
    }"#;
    let machine: MachineTelemetry = serde_json::from_str(machine_json).expect("old machine parses");
    assert_eq!(machine.sp_source, "exact");

    let summary_json = r#"{
        "machines": 4,
        "faulty": 1,
        "detected_faulty": 1,
        "quarantined_faulty": 1,
        "false_quarantines": 0,
        "cleared_suspects": 0,
        "mean_detection_latency_epochs": 1.5,
        "detection_coverage": 1.0,
        "total_cycles": 100,
        "total_tests": 12,
        "outcomes": {"passes": 10, "detections": 2, "stalls": 0, "skips": 0}
    }"#;
    let summary: FleetSummary = serde_json::from_str(summary_json).expect("old summary parses");
    assert_eq!(summary.sp_mode, "none");
    assert_eq!(summary.phase1_cycles, 0);
    assert_eq!(summary.phase1_exact_profiles, 0);
    assert_eq!(summary.phase1_predicted, 0);
    assert_eq!(summary.phase1_escalations, 0);
}
