//! The bounded model checker: cover search plus k-induction proof.

use std::collections::BTreeMap;

use vega_netlist::{Netlist, PortDir};
use vega_sat::SolveResult;

use crate::encode::Unrolling;
use crate::property::{Assumption, Property};
use crate::trace::Trace;

/// Resource limits for one cover query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BmcConfig {
    /// Maximum unrolling depth for the cover search, in cycles.
    pub max_cycles: usize,
    /// Maximum induction depth attempted for an unreachability proof.
    pub max_induction: usize,
    /// Total SAT conflict budget across all queries; exhausting it is the
    /// analogue of a formal-tool timeout (paper Table 4 row "FF").
    pub conflict_budget: u64,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            max_cycles: 8,
            max_induction: 4,
            conflict_budget: 2_000_000,
        }
    }
}

/// Resource accounting for one cover query — how much of the conflict
/// budget was actually consumed. Callers that retry with escalating
/// budgets (Error Lifting's "FF" recovery) use this to record
/// per-attempt spend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverStats {
    /// SAT conflicts spent across all queries of this call.
    pub conflicts: u64,
}

/// Outcome of a cover query.
#[derive(Debug, Clone, PartialEq)]
pub enum CoverOutcome {
    /// A witness: these inputs make the property fire.
    Trace(Trace),
    /// A k-induction proof that the property can never fire.
    ProvedUnreachable {
        /// The induction depth at which the step case closed.
        induction_depth: usize,
    },
    /// No witness within `max_cycles`, but no proof either.
    BoundedOnly {
        /// The depth to which the search was exhaustive.
        depth: usize,
    },
    /// The conflict budget ran out before an answer.
    BudgetExhausted,
}

/// Run a cover query: search for an input sequence making `property` fire
/// within `config.max_cycles` cycles from reset, under `assumptions`;
/// failing that, attempt a k-induction proof that it never fires.
pub fn check_cover(
    netlist: &Netlist,
    property: &Property,
    assumptions: &[Assumption],
    config: &BmcConfig,
) -> CoverOutcome {
    check_cover_with_stats(netlist, property, assumptions, config).0
}

/// Like [`check_cover`], additionally reporting how much of the conflict
/// budget the query consumed — the observable cost behind a Table 4 "FF"
/// verdict, and the number a budget-escalation retry loop records per
/// attempt.
pub fn check_cover_with_stats(
    netlist: &Netlist,
    property: &Property,
    assumptions: &[Assumption],
    config: &BmcConfig,
) -> (CoverOutcome, CoverStats) {
    let mut stats = CoverStats::default();
    let mut budget_left = config.conflict_budget;

    // Phase 1: cover search from reset, one query per depth so the
    // returned witness has minimal length.
    for t in property.earliest_cycle..=config.max_cycles {
        let mut query = Unrolling::new(netlist, false);
        for tq in 0..=t {
            query.add_cycle();
            for assumption in assumptions {
                query.apply_assumption(assumption, tq);
            }
        }
        let fire = query.fire_literal(property, t);
        query.solver_mut().add_clause(&[fire]);
        query.solver_mut().set_conflict_budget(Some(budget_left));
        let result = query.solver_mut().solve();
        let spent = query.solver().stats().conflicts;
        stats.conflicts += spent;
        budget_left = budget_left.saturating_sub(spent);
        match result {
            SolveResult::Sat => {
                return (CoverOutcome::Trace(extract_trace(&query, t)), stats);
            }
            SolveResult::Unknown => return (CoverOutcome::BudgetExhausted, stats),
            SolveResult::Unsat => {
                if budget_left == 0 {
                    return (CoverOutcome::BudgetExhausted, stats);
                }
            }
        }
    }

    // Phase 2: k-induction step proofs. The base cases (no fire within
    // max_cycles from reset) were just established. Step(k): from an
    // arbitrary state, k non-firing cycles imply no fire at cycle k.
    for k in 1..=config.max_induction.min(config.max_cycles) {
        let mut step = Unrolling::new(netlist, true);
        for t in 0..=k {
            step.add_cycle();
            for assumption in assumptions {
                step.apply_assumption(assumption, t);
            }
        }
        let mut fires = Vec::new();
        for t in 0..=k {
            fires.push(step.fire_literal(property, t));
        }
        for &f in &fires[..k] {
            step.solver_mut().add_clause(&[!f]);
        }
        step.solver_mut().add_clause(&[fires[k]]);
        step.solver_mut().set_conflict_budget(Some(budget_left));
        let result = step.solver_mut().solve();
        let spent = step.solver().stats().conflicts;
        stats.conflicts += spent;
        budget_left = budget_left.saturating_sub(spent);
        match result {
            SolveResult::Unsat => {
                return (
                    CoverOutcome::ProvedUnreachable { induction_depth: k },
                    stats,
                );
            }
            SolveResult::Unknown => return (CoverOutcome::BudgetExhausted, stats),
            SolveResult::Sat => {
                if budget_left == 0 {
                    return (CoverOutcome::BudgetExhausted, stats);
                }
            }
        }
    }

    (
        CoverOutcome::BoundedOnly {
            depth: config.max_cycles,
        },
        stats,
    )
}

/// Read the witness inputs out of a satisfied unrolling.
fn extract_trace(unrolling: &Unrolling<'_>, fire_cycle: usize) -> Trace {
    let netlist = unrolling.netlist();
    let clock = netlist.clock();
    let mut inputs = Vec::with_capacity(fire_cycle + 1);
    for t in 0..=fire_cycle {
        let mut cycle = BTreeMap::new();
        for port in netlist.ports().iter().filter(|p| p.dir == PortDir::Input) {
            if port.width() == 1 && Some(port.bits[0]) == clock {
                continue;
            }
            let mut value = 0u64;
            for (i, &bit) in port.bits.iter().enumerate() {
                if unrolling.model_value(bit, t) {
                    value |= 1 << i;
                }
            }
            cycle.insert(port.name.clone(), value);
        }
        inputs.push(cycle);
    }
    Trace { inputs, fire_cycle }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_netlist::{CellKind, NetlistBuilder};
    use vega_sim::Simulator;

    /// The paper's 2-bit pipelined adder.
    fn paper_adder() -> Netlist {
        let mut b = NetlistBuilder::new("adder");
        let clk = b.clock("clk");
        let a = b.input("a", 2);
        let bb = b.input("b", 2);
        let aq0 = b.dff("dff1", a[0], clk);
        let aq1 = b.dff("dff2", a[1], clk);
        let bq0 = b.dff("dff3", bb[0], clk);
        let bq1 = b.dff("dff4", bb[1], clk);
        let s0 = b.cell(CellKind::Xor2, "xor5", &[aq0, bq0]);
        let c0 = b.cell(CellKind::And2, "and6", &[aq0, bq0]);
        let x7 = b.cell(CellKind::Xor2, "xor7", &[aq1, bq1]);
        let s1 = b.cell(CellKind::Xor2, "xor8", &[x7, c0]);
        let o0 = b.dff("dff9", s0, clk);
        let o1 = b.dff("dff10", s1, clk);
        b.output("o", &[o0, o1]);
        b.finish().unwrap()
    }

    #[test]
    fn covers_a_reachable_output_value() {
        // o = 3 requires a + b = 3 two cycles earlier.
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let p0 = Property::net_equals(o[0], true);
        let outcome = check_cover(&n, &p0, &[], &BmcConfig::default());
        let CoverOutcome::Trace(trace) = outcome else {
            panic!("expected trace, got {outcome:?}");
        };
        // Replay in the simulator and confirm o[0] goes high at the fire
        // cycle. The unrolling's cycle t sees the register state after t
        // captures plus combinational logic under inputs[t], so observe
        // after settling but before the capture step.
        let mut sim = Simulator::new(&n);
        let mut fired = false;
        for (t, cycle) in trace.inputs.iter().enumerate() {
            for (port, value) in cycle {
                sim.set_input(port, *value);
            }
            sim.settle_inputs();
            if t == trace.fire_cycle {
                fired = sim.output("o") & 1 == 1;
            }
            sim.step();
        }
        assert!(fired, "trace must replay: {trace}");
        // Minimal length: needs 2 cycles of latency + 1 (values visible
        // the cycle after capture).
        assert!(trace.fire_cycle <= 3);
    }

    #[test]
    fn respects_assumptions() {
        // Forbid any b with LSB 1 and any a with LSB 1: o[0] can then
        // never be 1 (sum of even numbers is even).
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let p0 = Property::net_equals(o[0], true);
        let assumptions = vec![
            Assumption::PortIn {
                port: "a".into(),
                allowed: vec![0, 2],
            },
            Assumption::PortIn {
                port: "b".into(),
                allowed: vec![0, 2],
            },
        ];
        let outcome = check_cover(&n, &p0, &assumptions, &BmcConfig::default());
        assert!(
            matches!(outcome, CoverOutcome::ProvedUnreachable { .. }),
            "even + even is even: {outcome:?}"
        );
    }

    #[test]
    fn proves_constant_false_unreachable() {
        // A net that is structurally never 1.
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let a = b.input("a", 1)[0];
        let z = b.const0("zero");
        let and = b.cell(CellKind::And2, "and", &[a, z]);
        let q = b.dff("q", and, clk);
        b.output("y", &[q]);
        let n = b.finish().unwrap();
        let q_net = n.cell_by_name("q").unwrap().output;
        let outcome = check_cover(
            &n,
            &Property::net_equals(q_net, true),
            &[],
            &BmcConfig::default(),
        );
        assert!(
            matches!(outcome, CoverOutcome::ProvedUnreachable { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn budget_exhaustion_reported() {
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let property = Property::any_differ(vec![(o[0], o[1])]);
        let config = BmcConfig {
            max_cycles: 6,
            max_induction: 3,
            conflict_budget: 0,
        };
        // Budget zero: the very first query cannot complete...
        let outcome = check_cover(&n, &property, &[], &config);
        // ...unless it is solved purely by propagation (conflicts = 0 can
        // still SAT). Accept either a trace or exhaustion, but never a
        // proof (proofs need conflicts).
        assert!(
            matches!(
                outcome,
                CoverOutcome::Trace(_) | CoverOutcome::BudgetExhausted
            ),
            "{outcome:?}"
        );
    }

    #[test]
    fn gated_flop_holds_value_in_formal_model() {
        // q behind a clock gate with enable `en`: covering q=1 requires
        // en to have been raised.
        let mut b = NetlistBuilder::new("gated");
        let clk = b.clock("clk");
        let en = b.input("en", 1)[0];
        let d = b.input("d", 1)[0];
        let gck = b.clock_gate("icg", clk, en);
        let q = b.dff("q", d, gck);
        b.output("y", &[q]);
        let n = b.finish().unwrap();
        let q_net = n.cell_by_name("q").unwrap().output;

        let outcome = check_cover(
            &n,
            &Property::net_equals(q_net, true),
            &[],
            &BmcConfig::default(),
        );
        let CoverOutcome::Trace(trace) = outcome else {
            panic!("should be coverable: {outcome:?}");
        };
        // In the firing trace, some earlier cycle must have en=1 and d=1.
        assert!(
            trace.inputs[..trace.fire_cycle]
                .iter()
                .any(|c| c["en"] == 1 && c["d"] == 1),
            "{trace}"
        );

        // With en forced low forever, q=1 is unreachable.
        let en_net = n.port("en").unwrap().bits[0];
        let outcome = check_cover(
            &n,
            &Property::net_equals(q_net, true),
            &[Assumption::NetAlways(en_net, false)],
            &BmcConfig::default(),
        );
        assert!(
            matches!(outcome, CoverOutcome::ProvedUnreachable { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn nets_differ_property_finds_mismatch() {
        // Two flops fed by a and !a: they differ once clocked... and also
        // at reset they are equal (both 0), so the first firing cycle is
        // cycle 1.
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let a = b.input("a", 1)[0];
        let na = b.cell(CellKind::Not, "na", &[a]);
        let q1 = b.dff("q1", a, clk);
        let q2 = b.dff("q2", na, clk);
        b.output("y1", &[q1]);
        b.output("y2", &[q2]);
        let n = b.finish().unwrap();
        let q1n = n.cell_by_name("q1").unwrap().output;
        let q2n = n.cell_by_name("q2").unwrap().output;
        let outcome = check_cover(
            &n,
            &Property::nets_differ(q1n, q2n),
            &[],
            &BmcConfig::default(),
        );
        let CoverOutcome::Trace(trace) = outcome else {
            panic!("{outcome:?}");
        };
        assert!(trace.fire_cycle >= 1, "reset state has q1 == q2");
    }

    #[test]
    fn earliest_cycle_skips_trivial_fires() {
        // Cover q == 0, which holds at reset; with not_before(2) the
        // witness must be at cycle >= 2.
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let d = b.input("d", 1)[0];
        let q = b.dff("q", d, clk);
        b.output("y", &[q]);
        let n = b.finish().unwrap();
        let q_net = n.cell_by_name("q").unwrap().output;
        let property = Property::net_equals(q_net, false).not_before(2);
        let outcome = check_cover(&n, &property, &[], &BmcConfig::default());
        let CoverOutcome::Trace(trace) = outcome else {
            panic!("{outcome:?}");
        };
        assert!(trace.fire_cycle >= 2);
    }
}
