//! The bounded model checker: cover search plus k-induction proof.
//!
//! The engine is incremental: one [`CoverSession`] owns a persistent
//! [`Unrolling`] (and a second one for the induction step), extends it
//! cycle by cycle, and solves each depth under an *assumed* fire literal
//! so learned clauses carry from depth `t` to depth `t + 1`. The
//! pre-incremental engine — a fresh unrolling and solver per depth — is
//! kept as [`check_cover_rebuild_with_stats`], both as the equivalence
//! oracle for tests and as the baseline the `bmc_speedup` benchmark
//! measures against.

use std::collections::BTreeMap;

use vega_netlist::{Netlist, PortDir};
use vega_sat::{IncrementalSolver, Interrupt, Lit, SolveResult, Solver, SolverConfig};

use crate::encode::{FirePolarity, Unrolling};
use crate::property::{Assumption, Property};
use crate::trace::Trace;

/// Resource limits for one cover query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BmcConfig {
    /// Maximum unrolling depth for the cover search, in cycles.
    pub max_cycles: usize,
    /// Maximum induction depth attempted for an unreachability proof.
    pub max_induction: usize,
    /// Total SAT conflict budget across all queries; exhausting it is the
    /// analogue of a formal-tool timeout (paper Table 4 row "FF").
    pub conflict_budget: u64,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            max_cycles: 8,
            max_induction: 4,
            conflict_budget: 2_000_000,
        }
    }
}

/// Resource accounting for one cover query — how much solver work the
/// call performed. Callers that retry with escalating budgets (Error
/// Lifting's "FF" recovery) use this to record per-attempt spend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverStats {
    /// SAT conflicts spent across all queries of this call.
    pub conflicts: u64,
    /// Decisions taken across all queries of this call.
    pub decisions: u64,
    /// Literals propagated across all queries of this call.
    pub propagations: u64,
    /// Problem clauses encoded (cycles, fire literals, assumptions, and
    /// learned-from-Unsat `!fire` assertions) during this call.
    pub encoded_clauses: u64,
}

impl CoverStats {
    fn add(&mut self, other: CoverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.encoded_clauses += other.encoded_clauses;
    }
}

/// Outcome of a cover query.
#[derive(Debug, Clone, PartialEq)]
pub enum CoverOutcome {
    /// A witness: these inputs make the property fire.
    Trace(Trace),
    /// A k-induction proof that the property can never fire.
    ProvedUnreachable {
        /// The induction depth at which the step case closed.
        induction_depth: usize,
    },
    /// No witness within `max_cycles`, but no proof either.
    BoundedOnly {
        /// The depth to which the search was exhaustive.
        depth: usize,
    },
    /// The conflict budget ran out before an answer.
    BudgetExhausted,
}

/// Run a cover query: search for an input sequence making `property` fire
/// within `config.max_cycles` cycles from reset, under `assumptions`;
/// failing that, attempt a k-induction proof that it never fires.
pub fn check_cover(
    netlist: &Netlist,
    property: &Property,
    assumptions: &[Assumption],
    config: &BmcConfig,
) -> CoverOutcome {
    check_cover_with_stats(netlist, property, assumptions, config).0
}

/// Like [`check_cover`], additionally reporting how much solver work the
/// query performed — the observable cost behind a Table 4 "FF" verdict,
/// and the numbers a budget-escalation retry loop records per attempt.
pub fn check_cover_with_stats(
    netlist: &Netlist,
    property: &Property,
    assumptions: &[Assumption],
    config: &BmcConfig,
) -> (CoverOutcome, CoverStats) {
    let mut session = CoverSession::new(netlist, property, assumptions, config);
    session.run(config.conflict_budget)
}

/// A journal-friendly snapshot of an in-flight [`CoverSession`]'s
/// logical position (see [`CoverSession::snapshot`]). Everything here is
/// schema-stable and tiny — what `vega serve` persists so a crashed
/// lifting pair can resume its BMC search without repeating refuted
/// depths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// The next cover depth to query; all earlier depths (from the
    /// property's earliest cycle) stand refuted.
    pub next_depth: usize,
    /// The next induction step `k` to attempt.
    pub next_k: usize,
    /// Whether cover depths were exhausted and the session had moved to
    /// k-induction.
    pub in_induction: bool,
}

/// Where an in-flight session stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Searching for a witness, depth by depth.
    Cover,
    /// Depths exhausted; attempting k-induction step proofs.
    Induction,
    /// A definite outcome was reached.
    Done,
}

/// An incremental cover query that survives budget exhaustion.
///
/// The session keeps one persistent cover [`Unrolling`] (cone-restricted,
/// [`FirePolarity::Positive`]) and, once depths are exhausted, a second
/// persistent induction unrolling ([`FirePolarity::Both`] — its `!fire`
/// assumptions must genuinely force non-firing). Each depth `t` is solved
/// under the *assumption* `fire@t`; on Unsat the entailed unit `!fire@t`
/// is asserted permanently (the clause database together with `fire@t`
/// was refuted, so `!fire@t` is a consequence — adding it removes no real
/// behavior) and the search moves on with every learned clause intact.
///
/// [`CoverSession::run`] may be called repeatedly with fresh budgets: a
/// [`CoverOutcome::BudgetExhausted`] return leaves the session resumable
/// exactly where it stopped, which is what makes escalating-budget
/// retries cheap — earlier rounds' work is never repeated.
#[derive(Debug)]
pub struct CoverSession<'n, S: IncrementalSolver = Solver> {
    property: Property,
    assumptions: Vec<Assumption>,
    config: BmcConfig,
    /// The backend configuration both unrollings' solvers are built from.
    backend: SolverConfig,
    cover: Unrolling<'n, S>,
    /// Fire literal per encoded depth (index = depth), created lazily.
    cover_fires: Vec<Option<Lit>>,
    /// The next cover depth to query.
    next_depth: usize,
    step: Option<Unrolling<'n, S>>,
    /// Fire literal per induction cycle (index = cycle).
    step_fires: Vec<Lit>,
    /// The next induction depth `k` to attempt.
    next_k: usize,
    phase: Phase,
    finished: Option<CoverOutcome>,
    total: CoverStats,
    /// Completed [`CoverSession::run`] calls, for resume accounting.
    runs: u64,
    /// Installed on both solvers (including a lazily created step
    /// unrolling's), so a portfolio loser or a SIGINT can cancel any
    /// query the session issues.
    interrupt: Option<Interrupt>,
    obs: vega_obs::Obs,
}

impl<'n> CoverSession<'n, Solver> {
    /// Open a session for one property on the default CDCL backend. No
    /// solving happens yet.
    pub fn new(
        netlist: &'n Netlist,
        property: &Property,
        assumptions: &[Assumption],
        config: &BmcConfig,
    ) -> Self {
        CoverSession::with_backend(
            netlist,
            property,
            assumptions,
            config,
            &SolverConfig::default(),
        )
    }

    /// Rebuild a session at a journaled [`SessionSnapshot`] position on
    /// the default backend (see [`CoverSession::resume_with_backend`]).
    pub fn resume_from(
        netlist: &'n Netlist,
        property: &Property,
        assumptions: &[Assumption],
        config: &BmcConfig,
        snapshot: &SessionSnapshot,
    ) -> Self {
        CoverSession::resume_with_backend(
            netlist,
            property,
            assumptions,
            config,
            &SolverConfig::default(),
            snapshot,
        )
    }
}

impl<'n, S: IncrementalSolver> CoverSession<'n, S> {
    /// Open a session whose solvers are built from `backend` — the entry
    /// point the portfolio runner uses to race one query across distinct
    /// configurations. No solving happens yet.
    pub fn with_backend(
        netlist: &'n Netlist,
        property: &Property,
        assumptions: &[Assumption],
        config: &BmcConfig,
        backend: &SolverConfig,
    ) -> Self {
        let cover = Unrolling::for_query_with_backend(
            netlist,
            false,
            property,
            assumptions,
            FirePolarity::Positive,
            backend,
        );
        CoverSession {
            property: property.clone(),
            assumptions: assumptions.to_vec(),
            config: *config,
            backend: backend.clone(),
            cover,
            cover_fires: Vec::new(),
            next_depth: property.earliest_cycle,
            step: None,
            step_fires: Vec::new(),
            next_k: 1,
            phase: Phase::Cover,
            finished: None,
            total: CoverStats::default(),
            runs: 0,
            interrupt: None,
            obs: vega_obs::Obs::null(),
        }
    }

    /// The name of the backend configuration this session solves with.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name
    }

    /// The randomization seed of this session's backend configuration.
    pub fn backend_seed(&self) -> u64 {
        self.backend.seed
    }

    /// Install a cooperative cancellation handle on every solver the
    /// session owns (now or later). A tripped handle makes the current
    /// [`CoverSession::run`] return [`CoverOutcome::BudgetExhausted`];
    /// the session stays resumable.
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.cover.solver_mut().set_interrupt(interrupt.clone());
        if let Some(step) = self.step.as_mut() {
            step.solver_mut().set_interrupt(interrupt.clone());
        }
        self.interrupt = Some(interrupt);
    }

    /// Attach an observability handle: each [`CoverSession::run`] call then
    /// records its solver-effort deltas as `phase2.bmc.*` counters
    /// (queries, session resumes, conflicts, decisions, propagations,
    /// encoded clauses).
    pub fn set_obs(&mut self, obs: vega_obs::Obs) {
        self.obs = obs;
    }

    /// Advance the session by up to `conflict_budget` conflicts,
    /// returning the outcome and the work done *by this call*.
    ///
    /// A non-[`CoverOutcome::BudgetExhausted`] outcome is final; calling
    /// again returns it unchanged at zero cost.
    pub fn run(&mut self, conflict_budget: u64) -> (CoverOutcome, CoverStats) {
        let already_finished = self.finished.is_some();
        let before = self.work_counters();
        let mut budget_left = conflict_budget;
        let outcome = self.advance(&mut budget_left);
        let after = self.work_counters();
        let delta = CoverStats {
            conflicts: after.conflicts - before.conflicts,
            decisions: after.decisions - before.decisions,
            propagations: after.propagations - before.propagations,
            encoded_clauses: after.encoded_clauses - before.encoded_clauses,
        };
        self.total.add(delta);
        if !already_finished && self.obs.enabled() {
            self.obs.counter("phase2.bmc.queries", 1);
            if self.runs > 0 {
                // A resumed round: the persistent unrolling and learnt
                // clauses from earlier rounds are being reused.
                self.obs.counter("phase2.bmc.session_resumes", 1);
            }
            self.obs.counter("phase2.bmc.conflicts", delta.conflicts);
            self.obs.counter("phase2.bmc.decisions", delta.decisions);
            self.obs
                .counter("phase2.bmc.propagations", delta.propagations);
            self.obs
                .counter("phase2.bmc.encoded_clauses", delta.encoded_clauses);
        }
        if !already_finished {
            self.runs += 1;
        }
        (outcome, delta)
    }

    /// Capture the session's logical position for crash recovery:
    /// which cover depths stand refuted, which induction step is next,
    /// and which phase the search is in. Learnt clauses and solver
    /// internals are deliberately *not* captured — a resumed session
    /// re-derives them, trading some re-search for a snapshot that is
    /// tiny, schema-stable, and safe to journal.
    ///
    /// Returns `None` once the session is finished (a final outcome
    /// needs no resumption).
    pub fn snapshot(&self) -> Option<SessionSnapshot> {
        if self.finished.is_some() {
            return None;
        }
        Some(SessionSnapshot {
            next_depth: self.next_depth,
            next_k: self.next_k,
            in_induction: self.phase == Phase::Induction,
        })
    }

    /// Rebuild a session at a journaled [`SessionSnapshot`] position on
    /// an explicit backend configuration.
    ///
    /// Every cover depth below `snapshot.next_depth` was proven Unsat
    /// before the snapshot, so `!fire@t` is entailed for each and is
    /// re-asserted permanently here — sound by the same argument as the
    /// live search, and it restores the depth-pruning the crashed
    /// session had earned. The solver then continues exactly where the
    /// snapshot says, modulo re-deriving learnt clauses.
    ///
    /// This is also how each portfolio racer starts: the same snapshot,
    /// a different `(backend, seed)`. The rebuild itself issues no
    /// solver queries beyond unit propagation, so a racer's subsequent
    /// run is exactly the run a solo session of the same backend would
    /// perform from this snapshot — the property the serve-mode
    /// winner-replay recovery relies on.
    pub fn resume_with_backend(
        netlist: &'n Netlist,
        property: &Property,
        assumptions: &[Assumption],
        config: &BmcConfig,
        backend: &SolverConfig,
        snapshot: &SessionSnapshot,
    ) -> Self {
        let mut session: CoverSession<'n, S> =
            CoverSession::with_backend(netlist, property, assumptions, config, backend);
        for t in property.earliest_cycle..snapshot.next_depth {
            while session.cover.cycles() <= t {
                let tq = session.cover.add_cycle();
                for assumption in &session.assumptions {
                    session.cover.apply_assumption(assumption, tq);
                }
            }
            if session.cover_fires.len() <= t {
                session.cover_fires.resize(t + 1, None);
            }
            let fire = session.cover.fire_literal(&session.property, t);
            session.cover_fires[t] = Some(fire);
            session.cover.solver_mut().add_clause(&[!fire]);
        }
        session.next_depth = snapshot.next_depth;
        session.next_k = snapshot.next_k;
        if snapshot.in_induction {
            session.phase = Phase::Induction;
        }
        session
    }

    /// Cumulative work over every [`CoverSession::run`] call so far.
    pub fn total_stats(&self) -> CoverStats {
        self.total
    }

    /// True once a definite (non-budget) outcome has been reached.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// Learnt clauses currently live across the session's solvers — the
    /// quantity the LBD-aware database reduction keeps bounded over long
    /// incremental runs.
    pub fn learnt_clauses(&self) -> u64 {
        self.cover.solver().stats().learnt_clauses
            + self
                .step
                .as_ref()
                .map_or(0, |u| u.solver().stats().learnt_clauses)
    }

    fn work_counters(&self) -> CoverStats {
        let c = self.cover.solver().stats();
        let s = self
            .step
            .as_ref()
            .map(|u| u.solver().stats())
            .unwrap_or_default();
        CoverStats {
            conflicts: c.conflicts + s.conflicts,
            decisions: c.decisions + s.decisions,
            propagations: c.propagations + s.propagations,
            encoded_clauses: c.added_clauses + s.added_clauses,
        }
    }

    fn advance(&mut self, budget_left: &mut u64) -> CoverOutcome {
        if let Some(done) = &self.finished {
            return done.clone();
        }

        // Phase 1: cover search from reset, one query per depth so the
        // returned witness has minimal length. The unrolling persists:
        // depth t + 1 reuses every cycle, clause, and learnt clause that
        // depth t left behind.
        while self.phase == Phase::Cover {
            if self.next_depth > self.config.max_cycles {
                self.phase = Phase::Induction;
                break;
            }
            let t = self.next_depth;
            while self.cover.cycles() <= t {
                let tq = self.cover.add_cycle();
                for assumption in &self.assumptions {
                    self.cover.apply_assumption(assumption, tq);
                }
            }
            if self.cover_fires.len() <= t {
                self.cover_fires.resize(t + 1, None);
            }
            let fire = match self.cover_fires[t] {
                Some(f) => f,
                None => {
                    let f = self.cover.fire_literal(&self.property, t);
                    self.cover_fires[t] = Some(f);
                    f
                }
            };
            let solver = self.cover.solver_mut();
            solver.set_conflict_budget(Some(*budget_left));
            let spent_before = solver.stats().conflicts;
            let result = solver.solve_with_assumptions(&[fire]);
            let spent = solver.stats().conflicts - spent_before;
            *budget_left = budget_left.saturating_sub(spent);
            match result {
                SolveResult::Sat => {
                    return self.finish(CoverOutcome::Trace(extract_trace(&self.cover, t)));
                }
                SolveResult::Unknown => return CoverOutcome::BudgetExhausted,
                SolveResult::Unsat => {
                    // The clause database together with fire@t was
                    // refuted, so !fire@t is entailed: asserting it
                    // permanently removes no real behavior and lets
                    // later depths propagate through it.
                    self.cover.solver_mut().add_clause(&[!fire]);
                    self.next_depth = t + 1;
                    if *budget_left == 0 {
                        return CoverOutcome::BudgetExhausted;
                    }
                }
            }
        }

        // Phase 2: k-induction step proofs, on a second persistent
        // unrolling with a free initial state. The base cases (no fire
        // within max_cycles from reset) were established by phase 1.
        // Step(k): from an arbitrary state, k non-firing cycles imply no
        // fire at cycle k — expressed entirely through assumptions, so
        // stepping k -> k + 1 just drops nothing and extends one cycle.
        while self.phase == Phase::Induction {
            if self.next_k > self.config.max_induction.min(self.config.max_cycles) {
                return self.finish(CoverOutcome::BoundedOnly {
                    depth: self.config.max_cycles,
                });
            }
            let k = self.next_k;
            if self.step.is_none() {
                let mut step: Unrolling<'n, S> = Unrolling::for_query_with_backend(
                    self.cover.netlist(),
                    true,
                    &self.property,
                    &self.assumptions,
                    FirePolarity::Both,
                    &self.backend,
                );
                if let Some(interrupt) = &self.interrupt {
                    step.solver_mut().set_interrupt(interrupt.clone());
                }
                self.step = Some(step);
            }
            let step = self.step.as_mut().expect("created above");
            while step.cycles() <= k {
                let tq = step.add_cycle();
                for assumption in &self.assumptions {
                    step.apply_assumption(assumption, tq);
                }
                let f = step.fire_literal(&self.property, tq);
                self.step_fires.push(f);
            }
            let mut assumed: Vec<Lit> = self.step_fires[..k].iter().map(|&f| !f).collect();
            assumed.push(self.step_fires[k]);
            let solver = step.solver_mut();
            solver.set_conflict_budget(Some(*budget_left));
            let spent_before = solver.stats().conflicts;
            let result = solver.solve_with_assumptions(&assumed);
            let spent = solver.stats().conflicts - spent_before;
            *budget_left = budget_left.saturating_sub(spent);
            match result {
                SolveResult::Unsat => {
                    return self.finish(CoverOutcome::ProvedUnreachable { induction_depth: k });
                }
                SolveResult::Unknown => return CoverOutcome::BudgetExhausted,
                SolveResult::Sat => {
                    // The counterexample-to-induction model leaves the
                    // trail deep; clear it so the next cycle's clauses
                    // can be added at the root level.
                    step.solver_mut().backtrack_to_root();
                    self.next_k = k + 1;
                    if *budget_left == 0 {
                        return CoverOutcome::BudgetExhausted;
                    }
                }
            }
        }
        unreachable!("phase loop always returns")
    }

    fn finish(&mut self, outcome: CoverOutcome) -> CoverOutcome {
        self.phase = Phase::Done;
        self.finished = Some(outcome.clone());
        outcome
    }
}

/// The pre-incremental reference engine: a fresh [`Unrolling`] and a
/// fresh solver per cover depth and per induction step, full (cone-free,
/// both-polarity) encoding throughout.
///
/// Kept for two jobs: the equivalence oracle the incremental engine is
/// tested against, and the baseline `bmc_speedup` measures. Semantics
/// match [`check_cover_with_stats`] whenever the budget suffices; under
/// tight budgets the two may exhaust at different points because they
/// spend conflicts differently.
pub fn check_cover_rebuild_with_stats(
    netlist: &Netlist,
    property: &Property,
    assumptions: &[Assumption],
    config: &BmcConfig,
) -> (CoverOutcome, CoverStats) {
    let mut stats = CoverStats::default();
    let mut spend = |u: &Unrolling<'_>| {
        let s = u.solver().stats();
        stats.conflicts += s.conflicts;
        stats.decisions += s.decisions;
        stats.propagations += s.propagations;
        stats.encoded_clauses += s.added_clauses;
        s.conflicts
    };
    let mut budget_left = config.conflict_budget;

    for t in property.earliest_cycle..=config.max_cycles {
        let mut query = Unrolling::new(netlist, false);
        for tq in 0..=t {
            query.add_cycle();
            for assumption in assumptions {
                query.apply_assumption(assumption, tq);
            }
        }
        let fire = query.fire_literal(property, t);
        query.solver_mut().add_clause(&[fire]);
        query.solver_mut().set_conflict_budget(Some(budget_left));
        let result = query.solver_mut().solve();
        budget_left = budget_left.saturating_sub(spend(&query));
        match result {
            SolveResult::Sat => {
                return (CoverOutcome::Trace(extract_trace(&query, t)), stats);
            }
            SolveResult::Unknown => return (CoverOutcome::BudgetExhausted, stats),
            SolveResult::Unsat => {
                if budget_left == 0 {
                    return (CoverOutcome::BudgetExhausted, stats);
                }
            }
        }
    }

    for k in 1..=config.max_induction.min(config.max_cycles) {
        let mut step = Unrolling::new(netlist, true);
        for t in 0..=k {
            step.add_cycle();
            for assumption in assumptions {
                step.apply_assumption(assumption, t);
            }
        }
        let mut fires = Vec::new();
        for t in 0..=k {
            fires.push(step.fire_literal(property, t));
        }
        for &f in &fires[..k] {
            step.solver_mut().add_clause(&[!f]);
        }
        step.solver_mut().add_clause(&[fires[k]]);
        step.solver_mut().set_conflict_budget(Some(budget_left));
        let result = step.solver_mut().solve();
        budget_left = budget_left.saturating_sub(spend(&step));
        match result {
            SolveResult::Unsat => {
                return (
                    CoverOutcome::ProvedUnreachable { induction_depth: k },
                    stats,
                );
            }
            SolveResult::Unknown => return (CoverOutcome::BudgetExhausted, stats),
            SolveResult::Sat => {
                if budget_left == 0 {
                    return (CoverOutcome::BudgetExhausted, stats);
                }
            }
        }
    }

    (
        CoverOutcome::BoundedOnly {
            depth: config.max_cycles,
        },
        stats,
    )
}

/// Read the witness inputs out of a satisfied unrolling.
fn extract_trace<S: IncrementalSolver>(unrolling: &Unrolling<'_, S>, fire_cycle: usize) -> Trace {
    let netlist = unrolling.netlist();
    let clock = netlist.clock();
    let mut inputs = Vec::with_capacity(fire_cycle + 1);
    for t in 0..=fire_cycle {
        let mut cycle = BTreeMap::new();
        for port in netlist.ports().iter().filter(|p| p.dir == PortDir::Input) {
            if port.width() == 1 && Some(port.bits[0]) == clock {
                continue;
            }
            let mut value = 0u64;
            for (i, &bit) in port.bits.iter().enumerate() {
                if unrolling.model_value(bit, t) {
                    value |= 1 << i;
                }
            }
            cycle.insert(port.name.clone(), value);
        }
        inputs.push(cycle);
    }
    Trace { inputs, fire_cycle }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_netlist::{CellKind, NetlistBuilder};
    use vega_sim::Simulator;

    /// The paper's 2-bit pipelined adder.
    fn paper_adder() -> Netlist {
        let mut b = NetlistBuilder::new("adder");
        let clk = b.clock("clk");
        let a = b.input("a", 2);
        let bb = b.input("b", 2);
        let aq0 = b.dff("dff1", a[0], clk);
        let aq1 = b.dff("dff2", a[1], clk);
        let bq0 = b.dff("dff3", bb[0], clk);
        let bq1 = b.dff("dff4", bb[1], clk);
        let s0 = b.cell(CellKind::Xor2, "xor5", &[aq0, bq0]);
        let c0 = b.cell(CellKind::And2, "and6", &[aq0, bq0]);
        let x7 = b.cell(CellKind::Xor2, "xor7", &[aq1, bq1]);
        let s1 = b.cell(CellKind::Xor2, "xor8", &[x7, c0]);
        let o0 = b.dff("dff9", s0, clk);
        let o1 = b.dff("dff10", s1, clk);
        b.output("o", &[o0, o1]);
        b.finish().unwrap()
    }

    #[test]
    fn covers_a_reachable_output_value() {
        // o = 3 requires a + b = 3 two cycles earlier.
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let p0 = Property::net_equals(o[0], true);
        let outcome = check_cover(&n, &p0, &[], &BmcConfig::default());
        let CoverOutcome::Trace(trace) = outcome else {
            panic!("expected trace, got {outcome:?}");
        };
        // Replay in the simulator and confirm o[0] goes high at the fire
        // cycle. The unrolling's cycle t sees the register state after t
        // captures plus combinational logic under inputs[t], so observe
        // after settling but before the capture step.
        let mut sim = Simulator::new(&n);
        let mut fired = false;
        for (t, cycle) in trace.inputs.iter().enumerate() {
            for (port, value) in cycle {
                sim.set_input(port, *value);
            }
            sim.settle_inputs();
            if t == trace.fire_cycle {
                fired = sim.output("o") & 1 == 1;
            }
            sim.step();
        }
        assert!(fired, "trace must replay: {trace}");
        // Minimal length: needs 2 cycles of latency + 1 (values visible
        // the cycle after capture).
        assert!(trace.fire_cycle <= 3);
    }

    #[test]
    fn respects_assumptions() {
        // Forbid any b with LSB 1 and any a with LSB 1: o[0] can then
        // never be 1 (sum of even numbers is even).
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let p0 = Property::net_equals(o[0], true);
        let assumptions = vec![
            Assumption::PortIn {
                port: "a".into(),
                allowed: vec![0, 2],
            },
            Assumption::PortIn {
                port: "b".into(),
                allowed: vec![0, 2],
            },
        ];
        let outcome = check_cover(&n, &p0, &assumptions, &BmcConfig::default());
        assert!(
            matches!(outcome, CoverOutcome::ProvedUnreachable { .. }),
            "even + even is even: {outcome:?}"
        );
    }

    #[test]
    fn proves_constant_false_unreachable() {
        // A net that is structurally never 1.
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let a = b.input("a", 1)[0];
        let z = b.const0("zero");
        let and = b.cell(CellKind::And2, "and", &[a, z]);
        let q = b.dff("q", and, clk);
        b.output("y", &[q]);
        let n = b.finish().unwrap();
        let q_net = n.cell_by_name("q").unwrap().output;
        let outcome = check_cover(
            &n,
            &Property::net_equals(q_net, true),
            &[],
            &BmcConfig::default(),
        );
        assert!(
            matches!(outcome, CoverOutcome::ProvedUnreachable { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn budget_exhaustion_reported() {
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let property = Property::any_differ(vec![(o[0], o[1])]);
        let config = BmcConfig {
            max_cycles: 6,
            max_induction: 3,
            conflict_budget: 0,
        };
        // Budget zero: the very first query cannot complete...
        let outcome = check_cover(&n, &property, &[], &config);
        // ...unless it is solved purely by propagation (conflicts = 0 can
        // still SAT). Accept either a trace or exhaustion, but never a
        // proof (proofs need conflicts).
        assert!(
            matches!(
                outcome,
                CoverOutcome::Trace(_) | CoverOutcome::BudgetExhausted
            ),
            "{outcome:?}"
        );
    }

    #[test]
    fn gated_flop_holds_value_in_formal_model() {
        // q behind a clock gate with enable `en`: covering q=1 requires
        // en to have been raised.
        let mut b = NetlistBuilder::new("gated");
        let clk = b.clock("clk");
        let en = b.input("en", 1)[0];
        let d = b.input("d", 1)[0];
        let gck = b.clock_gate("icg", clk, en);
        let q = b.dff("q", d, gck);
        b.output("y", &[q]);
        let n = b.finish().unwrap();
        let q_net = n.cell_by_name("q").unwrap().output;

        let outcome = check_cover(
            &n,
            &Property::net_equals(q_net, true),
            &[],
            &BmcConfig::default(),
        );
        let CoverOutcome::Trace(trace) = outcome else {
            panic!("should be coverable: {outcome:?}");
        };
        // In the firing trace, some earlier cycle must have en=1 and d=1.
        assert!(
            trace.inputs[..trace.fire_cycle]
                .iter()
                .any(|c| c["en"] == 1 && c["d"] == 1),
            "{trace}"
        );

        // With en forced low forever, q=1 is unreachable.
        let en_net = n.port("en").unwrap().bits[0];
        let outcome = check_cover(
            &n,
            &Property::net_equals(q_net, true),
            &[Assumption::NetAlways(en_net, false)],
            &BmcConfig::default(),
        );
        assert!(
            matches!(outcome, CoverOutcome::ProvedUnreachable { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn nets_differ_property_finds_mismatch() {
        // Two flops fed by a and !a: they differ once clocked... and also
        // at reset they are equal (both 0), so the first firing cycle is
        // cycle 1.
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let a = b.input("a", 1)[0];
        let na = b.cell(CellKind::Not, "na", &[a]);
        let q1 = b.dff("q1", a, clk);
        let q2 = b.dff("q2", na, clk);
        b.output("y1", &[q1]);
        b.output("y2", &[q2]);
        let n = b.finish().unwrap();
        let q1n = n.cell_by_name("q1").unwrap().output;
        let q2n = n.cell_by_name("q2").unwrap().output;
        let outcome = check_cover(
            &n,
            &Property::nets_differ(q1n, q2n),
            &[],
            &BmcConfig::default(),
        );
        let CoverOutcome::Trace(trace) = outcome else {
            panic!("{outcome:?}");
        };
        assert!(trace.fire_cycle >= 1, "reset state has q1 == q2");
    }

    #[test]
    fn earliest_cycle_skips_trivial_fires() {
        // Cover q == 0, which holds at reset; with not_before(2) the
        // witness must be at cycle >= 2.
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let d = b.input("d", 1)[0];
        let q = b.dff("q", d, clk);
        b.output("y", &[q]);
        let n = b.finish().unwrap();
        let q_net = n.cell_by_name("q").unwrap().output;
        let property = Property::net_equals(q_net, false).not_before(2);
        let outcome = check_cover(&n, &property, &[], &BmcConfig::default());
        let CoverOutcome::Trace(trace) = outcome else {
            panic!("{outcome:?}");
        };
        assert!(trace.fire_cycle >= 2);
    }

    #[test]
    fn incremental_matches_rebuild() {
        // Outcome-for-outcome agreement with the reference engine across
        // the interesting verdict shapes (ample budget on both sides).
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let config = BmcConfig::default();
        let cases: Vec<(Property, Vec<Assumption>)> = vec![
            (Property::net_equals(o[0], true), vec![]),
            (Property::any_differ(vec![(o[0], o[1])]), vec![]),
            (Property::net_equals(o[0], false).not_before(2), vec![]),
            (
                Property::net_equals(o[0], true),
                vec![
                    Assumption::PortIn {
                        port: "a".into(),
                        allowed: vec![0, 2],
                    },
                    Assumption::PortIn {
                        port: "b".into(),
                        allowed: vec![0, 2],
                    },
                ],
            ),
        ];
        for (property, assumptions) in &cases {
            let (inc, _) = check_cover_with_stats(&n, property, assumptions, &config);
            let (reb, _) = check_cover_rebuild_with_stats(&n, property, assumptions, &config);
            match (&inc, &reb) {
                (CoverOutcome::Trace(a), CoverOutcome::Trace(b)) => {
                    assert_eq!(a.fire_cycle, b.fire_cycle, "minimal fire cycle differs");
                }
                _ => assert_eq!(inc, reb),
            }
        }
    }

    #[test]
    fn session_resumes_across_budget_rounds() {
        // Tiny per-round budgets force many BudgetExhausted returns; the
        // session must eventually land on the same outcome as a one-shot
        // run, without ever re-solving earlier depths.
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let property = Property::net_equals(o[0], true);
        let assumptions = vec![
            Assumption::PortIn {
                port: "a".into(),
                allowed: vec![0, 2],
            },
            Assumption::PortIn {
                port: "b".into(),
                allowed: vec![0, 2],
            },
        ];
        let config = BmcConfig::default();
        let (oneshot, oneshot_stats) = check_cover_with_stats(&n, &property, &assumptions, &config);

        let mut session = CoverSession::new(&n, &property, &assumptions, &config);
        let mut rounds = 0;
        let outcome = loop {
            let (outcome, stats) = session.run(8);
            assert!(stats.conflicts <= 8 + 1, "round respects its budget");
            rounds += 1;
            assert!(rounds < 10_000, "session failed to converge");
            if outcome != CoverOutcome::BudgetExhausted {
                break outcome;
            }
        };
        assert_eq!(outcome, oneshot);
        assert!(session.is_finished());
        // Resumption means total work is comparable to one-shot work —
        // not rounds × one-shot. Allow slack for restart-boundary noise.
        assert!(
            session.total_stats().conflicts <= oneshot_stats.conflicts * 2 + 64,
            "resumed total {} vs one-shot {}",
            session.total_stats().conflicts,
            oneshot_stats.conflicts
        );
        // A finished session answers again for free.
        let (again, stats) = session.run(0);
        assert_eq!(again, outcome);
        assert_eq!(stats, CoverStats::default());
    }

    #[test]
    fn stats_are_populated() {
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let property = Property::net_equals(o[0], true);
        let (outcome, stats) = check_cover_with_stats(&n, &property, &[], &BmcConfig::default());
        assert!(matches!(outcome, CoverOutcome::Trace(_)));
        assert!(stats.encoded_clauses > 0, "{stats:?}");
        assert!(stats.propagations > 0, "{stats:?}");
        // decisions may be 0 for propagation-solved instances, but the
        // adder needs at least one input choice.
        assert!(stats.decisions > 0, "{stats:?}");
    }

    #[test]
    fn incremental_encodes_less_than_rebuild() {
        // The whole point: re-encoding cycles 0..=t per depth is
        // quadratic, the persistent unrolling is linear — and the cone
        // restriction shrinks each cycle further.
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        // Unreachable property drives the search through every depth.
        let property = Property::net_equals(o[0], true);
        let assumptions = vec![
            Assumption::PortIn {
                port: "a".into(),
                allowed: vec![0, 2],
            },
            Assumption::PortIn {
                port: "b".into(),
                allowed: vec![0, 2],
            },
        ];
        let config = BmcConfig::default();
        let (_, inc) = check_cover_with_stats(&n, &property, &assumptions, &config);
        let (_, reb) = check_cover_rebuild_with_stats(&n, &property, &assumptions, &config);
        assert!(
            inc.encoded_clauses * 2 < reb.encoded_clauses,
            "incremental {} vs rebuild {}",
            inc.encoded_clauses,
            reb.encoded_clauses
        );
    }
}
