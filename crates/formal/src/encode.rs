//! Tseitin encoding of a sequentially-unrolled netlist into CNF, with
//! cone-of-influence restriction and polarity-aware (Plaisted–Greenbaum)
//! clause pruning for query-specific unrollings.

use vega_sat::{IncrementalSolver, Lit, Solver, SolverConfig, Var};

use vega_netlist::{CellId, CellKind, NetDriver, NetId, Netlist, PortDir};

use crate::property::{Assumption, Property, PropertyTerm};

/// How a query uses the property's fire literals — this determines how
/// much of the Tseitin encoding may be pruned (Plaisted–Greenbaum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirePolarity {
    /// Fire literals are only ever *required true* (assumed for the
    /// current depth, or asserted). Gate clauses that would only justify
    /// a net being false for the unused direction can be dropped: a
    /// satisfying assignment still forces every cone net down to the
    /// inputs, and an Unsat answer still proves no real behavior fires.
    Positive,
    /// Fire literals are used in both polarities (k-induction assumes
    /// `!fire` for earlier cycles, which must genuinely force the circuit
    /// not to fire): every cone gate keeps its full biconditional.
    Both,
}

/// Usage-polarity bits per net: `POS` means some emitted clause contains
/// the net's positive literal (so a model may set it true and the `net →
/// gate-function` direction must be encoded to justify that), `NEG` the
/// mirror image. `0` means the net is outside the cone of influence: no
/// variable, no clauses.
const POS: u8 = 0b01;
const NEG: u8 = 0b10;
const BOTH: u8 = 0b11;

fn flip(p: u8) -> u8 {
    ((p & POS) << 1) | ((p & NEG) >> 1)
}

/// A netlist unrolled over a number of clock cycles into one CNF formula.
///
/// Cycle `t` holds a SAT variable for every net in scope; combinational
/// cells become Tseitin clauses within a cycle, and flip-flops become
/// transition clauses between consecutive cycles. Flip-flops behind
/// integrated clock gates hold their value in cycles where any gate on
/// their clock path is disabled, matching the simulator's semantics.
///
/// [`Unrolling::new`] encodes every net ([`FirePolarity::Both`] for all —
/// the historical full encoding). [`Unrolling::for_query`] restricts the
/// encoding to the transitive fanin of a specific property and assumption
/// set, with per-net polarity tracking so monotone cone gates emit only
/// the clause direction the query can observe.
/// The struct is generic over the [`IncrementalSolver`] backend (the
/// portfolio seam); `S` defaults to the in-tree CDCL [`Solver`], and the
/// plain [`Unrolling::new`] / [`Unrolling::for_query`] constructors pin
/// that default so existing call sites stay unchanged. Use
/// [`Unrolling::for_query_with_backend`] to pick a configured backend.
#[derive(Debug)]
pub struct Unrolling<'n, S: IncrementalSolver = Solver> {
    netlist: &'n Netlist,
    solver: S,
    cycle_vars: Vec<Vec<Option<Var>>>,
    /// Per-DFF: the clock-gate enable nets along its clock path.
    dff_enables: Vec<(CellId, Vec<NetId>)>,
    free_initial_state: bool,
    /// Per-net usage polarity (POS/NEG bits); 0 = outside the cone.
    pol: Vec<u8>,
    /// How fire literals built by [`Unrolling::fire_literal`] will be
    /// used; governs which directions of their aux clauses are emitted.
    fire_polarity: FirePolarity,
    /// Tell the solver to branch on the query's real degrees of freedom
    /// (primary inputs, free nets, and — for a free initial state — the
    /// cycle-0 flops) before any internal variable. Enabled by
    /// [`Unrolling::for_query`]; [`Unrolling::new`] keeps the solver's
    /// generic heuristic so the rebuild baseline stays pre-incremental.
    prefer_input_branching: bool,
}

impl<'n> Unrolling<'n, Solver> {
    /// Start an unrolling with zero cycles, encoding the whole netlist.
    ///
    /// With `free_initial_state` false, flip-flops start at the reset
    /// value `0` (the model checker's view after reset, paper §3.3.4);
    /// with true, the initial state is unconstrained — used for the
    /// inductive step of k-induction proofs.
    pub fn new(netlist: &'n Netlist, free_initial_state: bool) -> Self {
        let pol = vec![BOTH; netlist.net_count()];
        Self::with_polarities(netlist, free_initial_state, pol)
    }

    /// Start an unrolling restricted to the cone of influence of
    /// `property` and `assumptions`, on the default backend.
    pub fn for_query(
        netlist: &'n Netlist,
        free_initial_state: bool,
        property: &Property,
        assumptions: &[Assumption],
        fire_polarity: FirePolarity,
    ) -> Self {
        Self::for_query_with_backend(
            netlist,
            free_initial_state,
            property,
            assumptions,
            fire_polarity,
            &SolverConfig::default(),
        )
    }

    fn with_polarities(netlist: &'n Netlist, free_initial_state: bool, pol: Vec<u8>) -> Self {
        Unrolling {
            netlist,
            solver: Solver::new(),
            cycle_vars: Vec::new(),
            dff_enables: collect_dff_enables(netlist),
            free_initial_state,
            pol,
            fire_polarity: FirePolarity::Both,
            prefer_input_branching: false,
        }
    }
}

impl<'n, S: IncrementalSolver> Unrolling<'n, S> {
    /// Start an unrolling restricted to the cone of influence of
    /// `property` and `assumptions`, on a configured backend.
    ///
    /// Only nets in the transitive fanin of the property terms and
    /// assumption nets get variables and clauses; monotone gates whose
    /// output the query observes in one polarity only (per
    /// `fire_polarity`) emit just that Tseitin direction. The contract:
    /// for fire literals used as `fire_polarity` permits, satisfiability
    /// and extracted witnesses are identical to the full encoding — for
    /// *any* backend, which is what portfolio racing relies on.
    pub fn for_query_with_backend(
        netlist: &'n Netlist,
        free_initial_state: bool,
        property: &Property,
        assumptions: &[Assumption],
        fire_polarity: FirePolarity,
        config: &SolverConfig,
    ) -> Self {
        let dff_enables = collect_dff_enables(netlist);
        let pol = cone_polarities(netlist, &dff_enables, property, assumptions, fire_polarity);
        Unrolling {
            netlist,
            solver: S::from_config(config),
            cycle_vars: Vec::new(),
            dff_enables,
            free_initial_state,
            pol,
            fire_polarity,
            prefer_input_branching: true,
        }
    }

    /// The number of encoded cycles.
    pub fn cycles(&self) -> usize {
        self.cycle_vars.len()
    }

    /// The number of nets inside the cone of influence (every net for
    /// [`Unrolling::new`], the property/assumption fanin for
    /// [`Unrolling::for_query`]).
    pub fn cone_size(&self) -> usize {
        self.pol.iter().filter(|&&p| p != 0).count()
    }

    /// The SAT variable of `net` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the cycle has not been encoded yet, or if the net was
    /// pruned by the cone-of-influence restriction.
    pub fn var(&self, net: NetId, cycle: usize) -> Var {
        let vars = self.cycle_vars.get(cycle).unwrap_or_else(|| {
            panic!(
                "cycle {cycle} not encoded yet (unrolling has {} cycles)",
                self.cycle_vars.len()
            )
        });
        vars[net.index()].unwrap_or_else(|| {
            panic!("net {net:?} at cycle {cycle} is outside the cone of influence")
        })
    }

    fn var_opt(&self, net: NetId, cycle: usize) -> Option<Var> {
        self.cycle_vars[cycle][net.index()]
    }

    /// Access the underlying solver (to solve, set budgets, read models).
    pub fn solver_mut(&mut self) -> &mut S {
        &mut self.solver
    }

    /// Read-only access to the underlying solver.
    pub fn solver(&self) -> &S {
        &self.solver
    }

    /// Encode one more cycle, returning its index.
    pub fn add_cycle(&mut self) -> usize {
        let t = self.cycle_vars.len();
        let mut vars: Vec<Option<Var>> = Vec::with_capacity(self.pol.len());
        for i in 0..self.pol.len() {
            let in_cone = self.pol[i] != 0;
            vars.push(in_cone.then(|| self.solver.new_var()));
        }
        self.cycle_vars.push(vars);

        if self.prefer_input_branching {
            self.prefer_free_vars(t);
        }

        // Combinational cells and constants.
        for cell in self.netlist.cells() {
            let p = self.pol[cell.output.index()];
            if p == 0 {
                continue;
            }
            let y = Lit::pos(self.var(cell.output, t));
            match cell.kind {
                // A constant's positive direction is "y implies the
                // constant value"; the other direction forces the value
                // outright. Each is needed only if the query can observe
                // that polarity.
                CellKind::Const0 => {
                    if p & POS != 0 {
                        self.solver.add_clause(&[!y]);
                    }
                }
                CellKind::Const1 => {
                    if p & NEG != 0 {
                        self.solver.add_clause(&[y]);
                    }
                }
                CellKind::Random => {
                    // Existentially free: no clauses.
                }
                CellKind::Dff | CellKind::ClockBuf | CellKind::ClockGate => {
                    // Sequential/clock cells handled below or not data.
                }
                _ => self.encode_gate(cell.id, t, p),
            }
        }

        // Flip-flop transitions (or initial state). State is always
        // encoded exactly (both directions): a flop's value at t feeds
        // t+1 in both polarities regardless of how the property uses it.
        let dff_enables = self.dff_enables.clone();
        for (dff_id, enables) in &dff_enables {
            let dff = self.netlist.cell(*dff_id);
            if self.pol[dff.output.index()] == 0 {
                continue;
            }
            let q_now = Lit::pos(self.var(dff.output, t));
            if t == 0 {
                if !self.free_initial_state {
                    self.solver.add_clause(&[!q_now]); // reset to 0
                }
                continue;
            }
            let d_prev = Lit::pos(self.var(dff.inputs[0], t - 1));
            let q_prev = Lit::pos(self.var(dff.output, t - 1));
            if enables.is_empty() {
                // q_now <-> d_prev
                self.solver.add_clause(&[!d_prev, q_now]);
                self.solver.add_clause(&[d_prev, !q_now]);
            } else {
                // en := AND of all gate enables at t-1.
                let en = if enables.len() == 1 {
                    Lit::pos(self.var(enables[0], t - 1))
                } else {
                    let aux = self.solver.new_var();
                    let aux_lit = Lit::pos(aux);
                    let mut big = vec![aux_lit];
                    for &e in enables {
                        let e_lit = Lit::pos(self.var(e, t - 1));
                        self.solver.add_clause(&[!aux_lit, e_lit]);
                        big.push(!e_lit);
                    }
                    self.solver.add_clause(&big);
                    aux_lit
                };
                // q_now <-> en ? d_prev : q_prev
                self.solver.add_clause(&[!en, !d_prev, q_now]);
                self.solver.add_clause(&[!en, d_prev, !q_now]);
                self.solver.add_clause(&[en, !q_prev, q_now]);
                self.solver.add_clause(&[en, q_prev, !q_now]);
            }
        }
        t
    }

    /// Mark cycle `t`'s genuinely free variables — primary inputs,
    /// `Random` nets, and (when the initial state is free) the cycle-0
    /// flops — as preferred decisions. Every other cone variable is a
    /// function of these through the gate and transition clauses, so
    /// branching on them first confines the search to the circuit's
    /// actual degrees of freedom; the solver's activity heap still covers
    /// any variable the pruned encoding leaves unimplied.
    fn prefer_free_vars(&mut self, t: usize) {
        let mut free = Vec::new();
        for port in self
            .netlist
            .ports()
            .iter()
            .filter(|p| p.dir == PortDir::Input)
        {
            for &net in &port.bits {
                if self.is_clock_net(net) {
                    continue;
                }
                if let Some(var) = self.var_opt(net, t) {
                    free.push(var);
                }
            }
        }
        for cell in self.netlist.cells() {
            if cell.kind == CellKind::Random {
                if let Some(var) = self.var_opt(cell.output, t) {
                    free.push(var);
                }
            }
        }
        if t == 0 && self.free_initial_state {
            for dff in self.netlist.dffs() {
                if let Some(var) = self.var_opt(dff.output, 0) {
                    free.push(var);
                }
            }
        }
        self.solver.prefer_decisions(&free);
    }

    /// Emit one Tseitin clause of the gate defining `y_var`, unless the
    /// output polarity `p` says the query cannot observe its direction.
    ///
    /// A clause containing `!y` is triggered by `y = true` — it encodes
    /// the `y → f` direction, needed iff some emitted clause elsewhere
    /// contains `y` positively (`p & POS`). A clause containing `y` is
    /// the `f → y` direction, needed iff `p & NEG`.
    fn emit(&mut self, y_var: Var, p: u8, lits: &[Lit]) {
        let pos_direction = lits.contains(&!Lit::pos(y_var));
        let needed = if pos_direction { p & POS } else { p & NEG };
        if needed != 0 {
            self.solver.add_clause(lits);
        }
    }

    fn encode_gate(&mut self, cell: CellId, t: usize, p: u8) {
        let cell = self.netlist.cell(cell);
        let y_var = self.var(cell.output, t);
        let y = Lit::pos(y_var);
        let input = |u: &Unrolling<'_, S>, i: usize| Lit::pos(u.var(cell.inputs[i], t));
        match cell.kind {
            CellKind::Buf | CellKind::Delay => {
                let a = input(self, 0);
                self.emit(y_var, p, &[!a, y]);
                self.emit(y_var, p, &[a, !y]);
            }
            CellKind::Not => {
                let a = input(self, 0);
                self.emit(y_var, p, &[!a, !y]);
                self.emit(y_var, p, &[a, y]);
            }
            CellKind::And2 | CellKind::Nand2 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let y = if cell.kind == CellKind::Nand2 { !y } else { y };
                self.emit(y_var, p, &[!a, !b, y]);
                self.emit(y_var, p, &[a, !y]);
                self.emit(y_var, p, &[b, !y]);
            }
            CellKind::Or2 | CellKind::Nor2 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let y = if cell.kind == CellKind::Nor2 { !y } else { y };
                self.emit(y_var, p, &[a, b, !y]);
                self.emit(y_var, p, &[!a, y]);
                self.emit(y_var, p, &[!b, y]);
            }
            CellKind::Xor2 | CellKind::Xnor2 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let y = if cell.kind == CellKind::Xnor2 { !y } else { y };
                self.emit(y_var, p, &[!a, !b, !y]);
                self.emit(y_var, p, &[a, b, !y]);
                self.emit(y_var, p, &[!a, b, y]);
                self.emit(y_var, p, &[a, !b, y]);
            }
            CellKind::Mux2 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let s = input(self, 2);
                self.emit(y_var, p, &[s, !a, y]);
                self.emit(y_var, p, &[s, a, !y]);
                self.emit(y_var, p, &[!s, !b, y]);
                self.emit(y_var, p, &[!s, b, !y]);
            }
            CellKind::Maj3 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let c = input(self, 2);
                self.emit(y_var, p, &[!a, !b, y]);
                self.emit(y_var, p, &[!a, !c, y]);
                self.emit(y_var, p, &[!b, !c, y]);
                self.emit(y_var, p, &[a, b, !y]);
                self.emit(y_var, p, &[a, c, !y]);
                self.emit(y_var, p, &[b, c, !y]);
            }
            other => unreachable!("{other:?} is not a combinational gate"),
        }
    }

    /// A literal that is true iff `property` fires at `cycle` (for
    /// [`FirePolarity::Positive`] cones: a literal *implying* the
    /// property fires — the only direction such a query observes).
    pub fn fire_literal(&mut self, property: &Property, cycle: usize) -> Lit {
        let positive_only = self.positive_only();
        let term_lits: Vec<Lit> = property
            .terms
            .iter()
            .map(|term| match *term {
                PropertyTerm::NetEquals(net, value) => {
                    let v = Lit::pos(self.var(net, cycle));
                    if value {
                        v
                    } else {
                        !v
                    }
                }
                PropertyTerm::NetsDiffer(left, right) => {
                    let l = Lit::pos(self.var(left, cycle));
                    let r = Lit::pos(self.var(right, cycle));
                    let d = Lit::pos(self.solver.new_var());
                    // d -> l xor r
                    self.solver.add_clause(&[!l, !r, !d]);
                    self.solver.add_clause(&[l, r, !d]);
                    if !positive_only {
                        // l xor r -> d
                        self.solver.add_clause(&[!l, r, d]);
                        self.solver.add_clause(&[l, !r, d]);
                    }
                    d
                }
            })
            .collect();
        if term_lits.len() == 1 {
            return term_lits[0];
        }
        let f = Lit::pos(self.solver.new_var());
        let mut any = vec![!f];
        for &term in &term_lits {
            if !positive_only {
                self.solver.add_clause(&[f, !term]);
            }
            any.push(term);
        }
        self.solver.add_clause(&any);
        f
    }

    fn positive_only(&self) -> bool {
        self.fire_polarity == FirePolarity::Positive
    }

    /// Apply `assumption` at `cycle`.
    pub fn apply_assumption(&mut self, assumption: &Assumption, cycle: usize) {
        match assumption {
            Assumption::NetAlways(net, value) => {
                let v = Lit::pos(self.var(*net, cycle));
                self.solver.add_clause(&[if *value { v } else { !v }]);
            }
            Assumption::PortIn { port, allowed } => {
                let port = self
                    .netlist
                    .port(port)
                    .unwrap_or_else(|| panic!("no port named `{port}`"))
                    .clone();
                assert!(port.width() <= 64, "PortIn supports up to 64 bits");
                let mut selectors = Vec::with_capacity(allowed.len());
                for &value in allowed {
                    let m = Lit::pos(self.solver.new_var());
                    for (i, &bit_net) in port.bits.iter().enumerate() {
                        let bit = Lit::pos(self.var(bit_net, cycle));
                        let want = (value >> i) & 1 == 1;
                        let lit = if want { bit } else { !bit };
                        self.solver.add_clause(&[!m, lit]);
                    }
                    selectors.push(m);
                }
                self.solver.add_clause(&selectors);
            }
        }
    }

    /// The model value of `net` at `cycle` after a SAT answer (false for
    /// don't-care variables and nets pruned from the cone, matching the
    /// simulator's reset default).
    pub fn model_value(&self, net: NetId, cycle: usize) -> bool {
        self.var_opt(net, cycle)
            .and_then(|v| self.solver.model_value(v))
            .unwrap_or(false)
    }

    /// The netlist being unrolled.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// True if `net` carries clock (is the clock input or driven by a
    /// clock-network cell) — such nets have unconstrained variables and
    /// must not be read as data.
    pub fn is_clock_net(&self, net: NetId) -> bool {
        if Some(net) == self.netlist.clock() {
            return true;
        }
        match self.netlist.net(net).driver {
            NetDriver::Cell(c) => self.netlist.cell(c).kind.is_clock_network(),
            NetDriver::Input => false,
        }
    }
}

/// Per-DFF: the clock-gate enable nets along its clock path.
fn collect_dff_enables(netlist: &Netlist) -> Vec<(CellId, Vec<NetId>)> {
    netlist
        .dffs()
        .map(|dff| {
            let path = vega_netlist::graph::clock_path(netlist, dff.id)
                .expect("sequential netlist has a clock");
            let enables = path
                .iter()
                .filter(|&&c| netlist.cell(c).kind == CellKind::ClockGate)
                .map(|&c| netlist.cell(c).inputs[1])
                .collect();
            (dff.id, enables)
        })
        .collect()
}

/// Compute per-net usage polarities for the cone of influence of
/// `property` under `assumptions`: a backward traversal from the property
/// and assumption nets through cell fanin, tracking in which polarities
/// each net's literal can appear in emitted clauses.
fn cone_polarities(
    netlist: &Netlist,
    dff_enables: &[(CellId, Vec<NetId>)],
    property: &Property,
    assumptions: &[Assumption],
    fire_polarity: FirePolarity,
) -> Vec<u8> {
    let mut pol = vec![0u8; netlist.net_count()];
    let mut work: Vec<(NetId, u8)> = Vec::new();

    fn mark(pol: &mut [u8], work: &mut Vec<(NetId, u8)>, net: NetId, p: u8) {
        let added = p & !pol[net.index()];
        if added != 0 {
            pol[net.index()] |= added;
            work.push((net, added));
        }
    }

    // Seeds: the property terms...
    for term in &property.terms {
        match *term {
            PropertyTerm::NetEquals(net, value) => {
                let p = match fire_polarity {
                    FirePolarity::Both => BOTH,
                    // fire == (net lit); required-true usage of the fire
                    // literal is POS usage of the net when value, NEG
                    // when !value.
                    FirePolarity::Positive => {
                        if value {
                            POS
                        } else {
                            NEG
                        }
                    }
                };
                mark(&mut pol, &mut work, net, p);
            }
            PropertyTerm::NetsDiffer(left, right) => {
                // The xor aux references both nets in both polarities in
                // either fire-polarity mode.
                mark(&mut pol, &mut work, left, BOTH);
                mark(&mut pol, &mut work, right, BOTH);
            }
        }
    }
    // ...and the assumption nets (constrained in both directions).
    for assumption in assumptions {
        match assumption {
            Assumption::NetAlways(net, _) => mark(&mut pol, &mut work, *net, BOTH),
            Assumption::PortIn { port, .. } => {
                let port = netlist
                    .port(port)
                    .unwrap_or_else(|| panic!("no port named `{port}`"));
                for &bit in &port.bits {
                    mark(&mut pol, &mut work, bit, BOTH);
                }
            }
        }
    }

    // Per-DFF enable lookup for the traversal.
    let enables_of: std::collections::BTreeMap<usize, &[NetId]> = dff_enables
        .iter()
        .map(|(id, ens)| (id.index(), ens.as_slice()))
        .collect();

    while let Some((net, p)) = work.pop() {
        let NetDriver::Cell(cell_id) = netlist.net(net).driver else {
            continue; // primary input: no fanin
        };
        let cell = netlist.cell(cell_id);
        match cell.kind {
            CellKind::Const0 | CellKind::Const1 | CellKind::Random => {}
            // Clock-network cells are not data; their fanin (the clock
            // tree) stays unencoded. DFF enables are pulled in via the
            // explicit per-DFF enable list below, not the clock pin.
            CellKind::ClockBuf | CellKind::ClockGate => {}
            CellKind::Dff => {
                // State is encoded exactly: data fanin, the flop's own
                // previous value, and any clock-gate enables are all
                // used in both polarities by the transition clauses.
                mark(&mut pol, &mut work, cell.inputs[0], BOTH);
                mark(&mut pol, &mut work, cell.output, BOTH);
                if let Some(enables) = enables_of.get(&cell_id.index()) {
                    for &en in *enables {
                        mark(&mut pol, &mut work, en, BOTH);
                    }
                }
            }
            CellKind::Buf | CellKind::Delay => {
                mark(&mut pol, &mut work, cell.inputs[0], p);
            }
            CellKind::Not => {
                mark(&mut pol, &mut work, cell.inputs[0], flip(p));
            }
            // Monotone gates propagate the polarity unchanged...
            CellKind::And2 | CellKind::Or2 | CellKind::Maj3 => {
                for &i in &cell.inputs {
                    mark(&mut pol, &mut work, i, p);
                }
            }
            // ...inverting monotone gates flip it...
            CellKind::Nand2 | CellKind::Nor2 => {
                for &i in &cell.inputs {
                    mark(&mut pol, &mut work, i, flip(p));
                }
            }
            // ...and non-monotone gates need their inputs both ways.
            CellKind::Xor2 | CellKind::Xnor2 => {
                for &i in &cell.inputs {
                    mark(&mut pol, &mut work, i, BOTH);
                }
            }
            CellKind::Mux2 => {
                mark(&mut pol, &mut work, cell.inputs[0], p);
                mark(&mut pol, &mut work, cell.inputs[1], p);
                mark(&mut pol, &mut work, cell.inputs[2], BOTH);
            }
        }
    }
    pol
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_netlist::NetlistBuilder;
    use vega_sat::SolveResult;

    fn inverter_reg() -> vega_netlist::Netlist {
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let a = b.input("a", 1)[0];
        let inv = b.cell(CellKind::Not, "inv", &[a]);
        let q = b.dff("q", inv, clk);
        b.output("y", &[q]);
        b.finish().expect("test netlist builds")
    }

    #[test]
    fn unrolling_models_reset_and_transition() {
        let n = inverter_reg();
        let q_net = n.cell_by_name("q").expect("cell `q` exists").output;
        let a_net = n.port("a").expect("port `a` exists").bits[0];

        // Two cycles; force a=1 at cycle 0 and check q at cycle 1 must be
        // !a = 0 (any model claiming q=1 at cycle 1 is unsatisfiable).
        let mut u = Unrolling::new(&n, false);
        u.add_cycle();
        u.add_cycle();
        assert_eq!(u.cycles(), 2);
        let a0 = Lit::pos(u.var(a_net, 0));
        let q1 = Lit::pos(u.var(q_net, 1));
        u.solver_mut().add_clause(&[a0]); // a = 1 at cycle 0
        u.solver_mut().add_clause(&[q1]); // demand q = 1 at cycle 1
        assert_eq!(u.solver_mut().solve(), SolveResult::Unsat);

        // And q at cycle 0 is the reset value 0: demanding 1 is UNSAT.
        let mut u = Unrolling::new(&n, false);
        u.add_cycle();
        let q0 = Lit::pos(u.var(q_net, 0));
        u.solver_mut().add_clause(&[q0]);
        assert_eq!(u.solver_mut().solve(), SolveResult::Unsat);

        // With a free initial state, q = 1 at cycle 0 is satisfiable.
        let mut u = Unrolling::new(&n, true);
        u.add_cycle();
        let q0 = Lit::pos(u.var(q_net, 0));
        u.solver_mut().add_clause(&[q0]);
        assert_eq!(u.solver_mut().solve(), SolveResult::Sat);
    }

    #[test]
    fn port_in_assumption_restricts_models() {
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let v = b.input("v", 3);
        let q = b.dff("q", v[2], clk);
        b.output("y", &[q]);
        let n = b.finish().expect("test netlist builds");

        let mut u = Unrolling::new(&n, false);
        u.add_cycle();
        u.apply_assumption(
            &Assumption::PortIn {
                port: "v".into(),
                allowed: vec![1, 2, 3],
            },
            0,
        );
        // v[2] = 1 implies v >= 4, which the assumption forbids.
        let v2 = Lit::pos(u.var(n.port("v").expect("port `v` exists").bits[2], 0));
        u.solver_mut().add_clause(&[v2]);
        assert_eq!(u.solver_mut().solve(), SolveResult::Unsat);
    }

    #[test]
    fn clock_nets_are_recognized() {
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let en = b.input("en", 1)[0];
        let gck = b.clock_gate("icg", clk, en);
        let d = b.input("d", 1)[0];
        let q = b.dff("q", d, gck);
        b.output("y", &[q]);
        let n = b.finish().expect("test netlist builds");
        let u = Unrolling::new(&n, false);
        assert!(u.is_clock_net(n.clock().expect("sequential netlist has a clock")));
        assert!(u.is_clock_net(n.cell_by_name("icg").expect("cell `icg` exists").output));
        assert!(!u.is_clock_net(n.port("d").expect("port `d` exists").bits[0]));
        assert!(!u.is_clock_net(n.cell_by_name("q").expect("cell `q` exists").output));
    }

    #[test]
    fn fire_literal_encodes_terms() {
        let n = inverter_reg();
        let a_net = n.port("a").expect("port `a` exists").bits[0];
        let inv_net = n.cell_by_name("inv").expect("cell `inv` exists").output;

        // a and inv always differ combinationally: the differ-literal is
        // forced true once a cycle is encoded.
        let mut u = Unrolling::new(&n, false);
        u.add_cycle();
        let fire = u.fire_literal(&Property::nets_differ(a_net, inv_net), 0);
        u.solver_mut().add_clause(&[!fire]);
        assert_eq!(
            u.solver_mut().solve(),
            SolveResult::Unsat,
            "they always differ"
        );
    }

    /// Two independent registered pipelines; a property over one must not
    /// pull the other into the cone.
    fn two_pipes() -> vega_netlist::Netlist {
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let a = b.input("a", 1)[0];
        let c = b.input("c", 1)[0];
        let inv = b.cell(CellKind::Not, "inv", &[a]);
        let q1 = b.dff("q1", inv, clk);
        let x = b.cell(CellKind::Xor2, "x", &[c, q1]); // other pipe reads q1
        let q2 = b.dff("q2", x, clk);
        b.output("y1", &[q1]);
        b.output("y2", &[q2]);
        b.finish().expect("test netlist builds")
    }

    #[test]
    fn cone_prunes_unrelated_logic() {
        let n = two_pipes();
        let q1 = n.cell_by_name("q1").expect("cell `q1` exists").output;
        let property = Property::net_equals(q1, true);

        let full = Unrolling::new(&n, false);
        let mut coned = Unrolling::for_query(&n, false, &property, &[], FirePolarity::Positive);
        assert!(
            coned.cone_size() < full.cone_size(),
            "q1's cone excludes c, x, q2: {} vs {}",
            coned.cone_size(),
            full.cone_size()
        );
        // The cone still answers the query: q1=1 needs a=0 one cycle
        // earlier.
        coned.add_cycle();
        coned.add_cycle();
        let fire = coned.fire_literal(&property, 1);
        assert_eq!(
            coned.solver_mut().solve_with_assumptions(&[fire]),
            SolveResult::Sat
        );
        assert!(coned.model_value(q1, 1));
        let a_net = n.port("a").expect("port `a` exists").bits[0];
        assert!(!coned.model_value(a_net, 0), "q1 <- !a forces a=0");
        // Pruned nets read as the reset default, not a panic.
        let q2 = n.cell_by_name("q2").expect("cell `q2` exists").output;
        assert!(!coned.model_value(q2, 1));
    }

    #[test]
    fn positive_polarity_emits_fewer_clauses() {
        // A monotone AND tree: a positive-polarity query needs only the
        // `y -> inputs` direction of each gate. State (flip-flops) is
        // always encoded exactly, so the property targets the tree's
        // combinational root; the downstream flop falls out of the cone.
        let mut b = NetlistBuilder::new("and_tree");
        let clk = b.clock("clk");
        let i = b.input("i", 4);
        let a1 = b.cell(CellKind::And2, "a1", &[i[0], i[1]]);
        let a2 = b.cell(CellKind::And2, "a2", &[i[2], i[3]]);
        let a3 = b.cell(CellKind::And2, "a3", &[a1, a2]);
        let q = b.dff("q", a3, clk);
        b.output("y", &[q]);
        let tree = b.finish().expect("test netlist builds");
        let a3_net = tree.cell_by_name("a3").expect("cell `a3` exists").output;
        let property = Property::net_equals(a3_net, true);

        let mut full = Unrolling::new(&tree, false);
        let mut coned = Unrolling::for_query(&tree, false, &property, &[], FirePolarity::Positive);
        for u in [&mut full, &mut coned] {
            u.add_cycle();
            u.fire_literal(&property, 0);
        }
        let full_clauses = full.solver().stats().added_clauses;
        let coned_clauses = coned.solver().stats().added_clauses;
        assert!(
            coned_clauses < full_clauses,
            "PG keeps only the y->inputs direction: {coned_clauses} vs {full_clauses}"
        );
        // And the pruned encoding gives the same verdicts: a3=1
        // reachable (forcing every input high), a3=1 with i[0] held low
        // unreachable.
        let fire = coned.fire_literal(&property, 0);
        assert_eq!(
            coned.solver_mut().solve_with_assumptions(&[fire]),
            SolveResult::Sat
        );
        for bit in 0..4 {
            assert!(
                coned.model_value(tree.port("i").expect("port `i` exists").bits[bit], 0),
                "AND tree forces every input high"
            );
        }
        let i0 = Lit::pos(coned.var(tree.port("i").expect("port `i` exists").bits[0], 0));
        assert_eq!(
            coned.solver_mut().solve_with_assumptions(&[fire, !i0]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn negative_polarity_seeds_keep_constants_forced() {
        // Cover `z == 0` where z is Const1: the NEG-polarity seed must
        // keep the unit clause that makes the query Unsat.
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let d = b.input("d", 1)[0];
        let one = b.const1("one");
        let z = b.cell(CellKind::And2, "z", &[d, one]);
        let q = b.dff("q", z, clk);
        b.output("y", &[q]);
        let n = b.finish().expect("test netlist builds");
        let one_net = n.cell_by_name("one").expect("cell `one` exists").output;
        let property = Property::net_equals(one_net, false);
        let mut u = Unrolling::for_query(&n, false, &property, &[], FirePolarity::Positive);
        u.add_cycle();
        let fire = u.fire_literal(&property, 0);
        assert_eq!(
            u.solver_mut().solve_with_assumptions(&[fire]),
            SolveResult::Unsat,
            "a tie-high constant is never 0"
        );
    }
}
