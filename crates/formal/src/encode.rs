//! Tseitin encoding of a sequentially-unrolled netlist into CNF.

use vega_sat::{Lit, Solver, Var};

use vega_netlist::{CellKind, NetDriver, NetId, Netlist};

use crate::property::{Assumption, Property, PropertyTerm};

/// A netlist unrolled over a number of clock cycles into one CNF formula.
///
/// Cycle `t` holds a SAT variable for every net; combinational cells
/// become Tseitin clauses within a cycle, and flip-flops become transition
/// clauses between consecutive cycles. Flip-flops behind integrated clock
/// gates hold their value in cycles where any gate on their clock path is
/// disabled, matching the simulator's semantics.
#[derive(Debug)]
pub struct Unrolling<'n> {
    netlist: &'n Netlist,
    solver: Solver,
    cycle_vars: Vec<Vec<Var>>,
    /// Per-DFF: the clock-gate enable nets along its clock path.
    dff_enables: Vec<(vega_netlist::CellId, Vec<NetId>)>,
    free_initial_state: bool,
}

impl<'n> Unrolling<'n> {
    /// Start an unrolling with zero cycles.
    ///
    /// With `free_initial_state` false, flip-flops start at the reset
    /// value `0` (the model checker's view after reset, paper §3.3.4);
    /// with true, the initial state is unconstrained — used for the
    /// inductive step of k-induction proofs.
    pub fn new(netlist: &'n Netlist, free_initial_state: bool) -> Self {
        let dff_enables = netlist
            .dffs()
            .map(|dff| {
                let path = vega_netlist::graph::clock_path(netlist, dff.id)
                    .expect("sequential netlist has a clock");
                let enables = path
                    .iter()
                    .filter(|&&c| netlist.cell(c).kind == CellKind::ClockGate)
                    .map(|&c| netlist.cell(c).inputs[1])
                    .collect();
                (dff.id, enables)
            })
            .collect();
        Unrolling {
            netlist,
            solver: Solver::new(),
            cycle_vars: Vec::new(),
            dff_enables,
            free_initial_state,
        }
    }

    /// The number of encoded cycles.
    pub fn cycles(&self) -> usize {
        self.cycle_vars.len()
    }

    /// The SAT variable of `net` at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the cycle has not been encoded yet.
    pub fn var(&self, net: NetId, cycle: usize) -> Var {
        self.cycle_vars[cycle][net.index()]
    }

    /// Access the underlying solver (to solve, set budgets, read models).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Read-only access to the underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Encode one more cycle, returning its index.
    pub fn add_cycle(&mut self) -> usize {
        let t = self.cycle_vars.len();
        let vars: Vec<Var> = (0..self.netlist.net_count())
            .map(|_| self.solver.new_var())
            .collect();
        self.cycle_vars.push(vars);

        // Combinational cells and constants.
        for cell in self.netlist.cells() {
            let y = Lit::pos(self.var(cell.output, t));
            match cell.kind {
                CellKind::Const0 => {
                    self.solver.add_clause(&[!y]);
                }
                CellKind::Const1 => {
                    self.solver.add_clause(&[y]);
                }
                CellKind::Random => {
                    // Existentially free: no clauses.
                }
                CellKind::Dff | CellKind::ClockBuf | CellKind::ClockGate => {
                    // Sequential/clock cells handled below or not data.
                }
                _ => self.encode_gate(cell, t),
            }
        }

        // Flip-flop transitions (or initial state).
        let dff_enables = self.dff_enables.clone();
        for (dff_id, enables) in &dff_enables {
            let dff = self.netlist.cell(*dff_id);
            let q_now = Lit::pos(self.var(dff.output, t));
            if t == 0 {
                if !self.free_initial_state {
                    self.solver.add_clause(&[!q_now]); // reset to 0
                }
                continue;
            }
            let d_prev = Lit::pos(self.var(dff.inputs[0], t - 1));
            let q_prev = Lit::pos(self.var(dff.output, t - 1));
            if enables.is_empty() {
                // q_now <-> d_prev
                self.solver.add_clause(&[!d_prev, q_now]);
                self.solver.add_clause(&[d_prev, !q_now]);
            } else {
                // en := AND of all gate enables at t-1.
                let en = if enables.len() == 1 {
                    Lit::pos(self.var(enables[0], t - 1))
                } else {
                    let aux = self.solver.new_var();
                    let aux_lit = Lit::pos(aux);
                    let mut big = vec![aux_lit];
                    for &e in enables {
                        let e_lit = Lit::pos(self.var(e, t - 1));
                        self.solver.add_clause(&[!aux_lit, e_lit]);
                        big.push(!e_lit);
                    }
                    self.solver.add_clause(&big);
                    aux_lit
                };
                // q_now <-> en ? d_prev : q_prev
                self.solver.add_clause(&[!en, !d_prev, q_now]);
                self.solver.add_clause(&[!en, d_prev, !q_now]);
                self.solver.add_clause(&[en, !q_prev, q_now]);
                self.solver.add_clause(&[en, q_prev, !q_now]);
            }
        }
        t
    }

    fn encode_gate(&mut self, cell: &vega_netlist::Cell, t: usize) {
        let y = Lit::pos(self.var(cell.output, t));
        let input = |u: &Unrolling<'_>, i: usize| Lit::pos(u.var(cell.inputs[i], t));
        match cell.kind {
            CellKind::Buf | CellKind::Delay => {
                let a = input(self, 0);
                self.solver.add_clause(&[!a, y]);
                self.solver.add_clause(&[a, !y]);
            }
            CellKind::Not => {
                let a = input(self, 0);
                self.solver.add_clause(&[!a, !y]);
                self.solver.add_clause(&[a, y]);
            }
            CellKind::And2 | CellKind::Nand2 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let y = if cell.kind == CellKind::Nand2 { !y } else { y };
                self.solver.add_clause(&[!a, !b, y]);
                self.solver.add_clause(&[a, !y]);
                self.solver.add_clause(&[b, !y]);
            }
            CellKind::Or2 | CellKind::Nor2 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let y = if cell.kind == CellKind::Nor2 { !y } else { y };
                self.solver.add_clause(&[a, b, !y]);
                self.solver.add_clause(&[!a, y]);
                self.solver.add_clause(&[!b, y]);
            }
            CellKind::Xor2 | CellKind::Xnor2 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let y = if cell.kind == CellKind::Xnor2 { !y } else { y };
                self.solver.add_clause(&[!a, !b, !y]);
                self.solver.add_clause(&[a, b, !y]);
                self.solver.add_clause(&[!a, b, y]);
                self.solver.add_clause(&[a, !b, y]);
            }
            CellKind::Mux2 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let s = input(self, 2);
                self.solver.add_clause(&[s, !a, y]);
                self.solver.add_clause(&[s, a, !y]);
                self.solver.add_clause(&[!s, !b, y]);
                self.solver.add_clause(&[!s, b, !y]);
            }
            CellKind::Maj3 => {
                let a = input(self, 0);
                let b = input(self, 1);
                let c = input(self, 2);
                self.solver.add_clause(&[!a, !b, y]);
                self.solver.add_clause(&[!a, !c, y]);
                self.solver.add_clause(&[!b, !c, y]);
                self.solver.add_clause(&[a, b, !y]);
                self.solver.add_clause(&[a, c, !y]);
                self.solver.add_clause(&[b, c, !y]);
            }
            other => unreachable!("{other:?} is not a combinational gate"),
        }
    }

    /// A literal that is true iff `property` fires at `cycle`.
    pub fn fire_literal(&mut self, property: &Property, cycle: usize) -> Lit {
        let term_lits: Vec<Lit> = property
            .terms
            .iter()
            .map(|term| match *term {
                PropertyTerm::NetEquals(net, value) => {
                    let v = Lit::pos(self.var(net, cycle));
                    if value {
                        v
                    } else {
                        !v
                    }
                }
                PropertyTerm::NetsDiffer(left, right) => {
                    let l = Lit::pos(self.var(left, cycle));
                    let r = Lit::pos(self.var(right, cycle));
                    let d = Lit::pos(self.solver.new_var());
                    // d <-> l xor r
                    self.solver.add_clause(&[!l, !r, !d]);
                    self.solver.add_clause(&[l, r, !d]);
                    self.solver.add_clause(&[!l, r, d]);
                    self.solver.add_clause(&[l, !r, d]);
                    d
                }
            })
            .collect();
        if term_lits.len() == 1 {
            return term_lits[0];
        }
        let f = Lit::pos(self.solver.new_var());
        let mut any = vec![!f];
        for &term in &term_lits {
            self.solver.add_clause(&[f, !term]);
            any.push(term);
        }
        self.solver.add_clause(&any);
        f
    }

    /// Apply `assumption` at `cycle`.
    pub fn apply_assumption(&mut self, assumption: &Assumption, cycle: usize) {
        match assumption {
            Assumption::NetAlways(net, value) => {
                let v = Lit::pos(self.var(*net, cycle));
                self.solver.add_clause(&[if *value { v } else { !v }]);
            }
            Assumption::PortIn { port, allowed } => {
                let port = self
                    .netlist
                    .port(port)
                    .unwrap_or_else(|| panic!("no port named `{port}`"))
                    .clone();
                assert!(port.width() <= 64, "PortIn supports up to 64 bits");
                let mut selectors = Vec::with_capacity(allowed.len());
                for &value in allowed {
                    let m = Lit::pos(self.solver.new_var());
                    for (i, &bit_net) in port.bits.iter().enumerate() {
                        let bit = Lit::pos(self.var(bit_net, cycle));
                        let want = (value >> i) & 1 == 1;
                        let lit = if want { bit } else { !bit };
                        self.solver.add_clause(&[!m, lit]);
                    }
                    selectors.push(m);
                }
                self.solver.add_clause(&selectors);
            }
        }
    }

    /// The model value of `net` at `cycle` after a SAT answer (false for
    /// don't-care variables, matching the simulator's reset default).
    pub fn model_value(&self, net: NetId, cycle: usize) -> bool {
        self.solver.value(self.var(net, cycle)).unwrap_or(false)
    }

    /// The netlist being unrolled.
    pub fn netlist(&self) -> &'n Netlist {
        self.netlist
    }

    /// True if `net` carries clock (is the clock input or driven by a
    /// clock-network cell) — such nets have unconstrained variables and
    /// must not be read as data.
    pub fn is_clock_net(&self, net: NetId) -> bool {
        if Some(net) == self.netlist.clock() {
            return true;
        }
        match self.netlist.net(net).driver {
            NetDriver::Cell(c) => self.netlist.cell(c).kind.is_clock_network(),
            NetDriver::Input => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_netlist::NetlistBuilder;
    use vega_sat::SolveResult;

    fn inverter_reg() -> vega_netlist::Netlist {
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let a = b.input("a", 1)[0];
        let inv = b.cell(CellKind::Not, "inv", &[a]);
        let q = b.dff("q", inv, clk);
        b.output("y", &[q]);
        b.finish().unwrap()
    }

    #[test]
    fn unrolling_models_reset_and_transition() {
        let n = inverter_reg();
        let q_net = n.cell_by_name("q").unwrap().output;
        let a_net = n.port("a").unwrap().bits[0];

        // Two cycles; force a=1 at cycle 0 and check q at cycle 1 must be
        // !a = 0 (any model claiming q=1 at cycle 1 is unsatisfiable).
        let mut u = Unrolling::new(&n, false);
        u.add_cycle();
        u.add_cycle();
        assert_eq!(u.cycles(), 2);
        let a0 = Lit::pos(u.var(a_net, 0));
        let q1 = Lit::pos(u.var(q_net, 1));
        u.solver_mut().add_clause(&[a0]); // a = 1 at cycle 0
        u.solver_mut().add_clause(&[q1]); // demand q = 1 at cycle 1
        assert_eq!(u.solver_mut().solve(), SolveResult::Unsat);

        // And q at cycle 0 is the reset value 0: demanding 1 is UNSAT.
        let mut u = Unrolling::new(&n, false);
        u.add_cycle();
        let q0 = Lit::pos(u.var(q_net, 0));
        u.solver_mut().add_clause(&[q0]);
        assert_eq!(u.solver_mut().solve(), SolveResult::Unsat);

        // With a free initial state, q = 1 at cycle 0 is satisfiable.
        let mut u = Unrolling::new(&n, true);
        u.add_cycle();
        let q0 = Lit::pos(u.var(q_net, 0));
        u.solver_mut().add_clause(&[q0]);
        assert_eq!(u.solver_mut().solve(), SolveResult::Sat);
    }

    #[test]
    fn port_in_assumption_restricts_models() {
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let v = b.input("v", 3);
        let q = b.dff("q", v[2], clk);
        b.output("y", &[q]);
        let n = b.finish().unwrap();

        let mut u = Unrolling::new(&n, false);
        u.add_cycle();
        u.apply_assumption(
            &Assumption::PortIn {
                port: "v".into(),
                allowed: vec![1, 2, 3],
            },
            0,
        );
        // v[2] = 1 implies v >= 4, which the assumption forbids.
        let v2 = Lit::pos(u.var(n.port("v").unwrap().bits[2], 0));
        u.solver_mut().add_clause(&[v2]);
        assert_eq!(u.solver_mut().solve(), SolveResult::Unsat);
    }

    #[test]
    fn clock_nets_are_recognized() {
        let mut b = NetlistBuilder::new("m");
        let clk = b.clock("clk");
        let en = b.input("en", 1)[0];
        let gck = b.clock_gate("icg", clk, en);
        let d = b.input("d", 1)[0];
        let q = b.dff("q", d, gck);
        b.output("y", &[q]);
        let n = b.finish().unwrap();
        let u = Unrolling::new(&n, false);
        assert!(u.is_clock_net(n.clock().unwrap()));
        assert!(u.is_clock_net(n.cell_by_name("icg").unwrap().output));
        assert!(!u.is_clock_net(n.port("d").unwrap().bits[0]));
        assert!(!u.is_clock_net(n.cell_by_name("q").unwrap().output));
    }

    #[test]
    fn fire_literal_encodes_terms() {
        let n = inverter_reg();
        let a_net = n.port("a").unwrap().bits[0];
        let inv_net = n.cell_by_name("inv").unwrap().output;

        // a and inv always differ combinationally: the differ-literal is
        // forced true once a cycle is encoded.
        let mut u = Unrolling::new(&n, false);
        u.add_cycle();
        let fire = u.fire_literal(&Property::nets_differ(a_net, inv_net), 0);
        u.solver_mut().add_clause(&[!fire]);
        assert_eq!(
            u.solver_mut().solve(),
            SolveResult::Unsat,
            "they always differ"
        );
    }
}
