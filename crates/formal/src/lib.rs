//! Bounded model checking and inductive proofs over gate-level netlists.
//!
//! This crate is Vega's substitute for a commercial hardware formal
//! verification tool (the paper uses JasperGold, §3.3.3). It supports the
//! one query shape Error Lifting needs — the *cover property*: find a
//! cycle-accurate sequence of module inputs under which some condition
//! (e.g. "the shadow replica's output differs from the original") holds
//! in at least one cycle; or prove that no such sequence exists.
//!
//! Three verdicts are possible, matching the paper's taxonomy (Table 4):
//!
//! * [`CoverOutcome::Trace`] — a witness waveform was found (row "S" once
//!   converted to instructions);
//! * [`CoverOutcome::ProvedUnreachable`] — a k-induction proof shows the
//!   condition can never fire (row "UR");
//! * [`CoverOutcome::BudgetExhausted`] / [`CoverOutcome::BoundedOnly`] —
//!   the conflict budget ran out, the analogue of a formal-tool timeout
//!   (row "FF").
//!
//! Sequential semantics mirror `vega-sim`: flip-flops reset to `0`,
//! capture on every cycle unless an integrated clock gate on their clock
//! path is disabled, and `Random` pseudo-cells are existentially-chosen
//! fresh bits each cycle.
//!
//! # Example
//!
//! ```
//! use vega_netlist::{CellKind, NetlistBuilder};
//! use vega_formal::{check_cover, BmcConfig, CoverOutcome, Property};
//!
//! // q captures a; cover "q == 1" needs one cycle of a=1.
//! let mut b = NetlistBuilder::new("m");
//! let clk = b.clock("clk");
//! let a = b.input("a", 1)[0];
//! let q = b.dff("q", a, clk);
//! b.output("y", &[q]);
//! let n = b.finish().unwrap();
//!
//! let property = Property::net_equals(q, true);
//! match check_cover(&n, &property, &[], &BmcConfig::default()) {
//!     CoverOutcome::Trace(trace) => {
//!         assert_eq!(trace.inputs[0]["a"], 1);
//!     }
//!     other => panic!("expected a trace, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bmc;
mod encode;
mod portfolio;
mod property;
mod trace;

pub use bmc::{
    check_cover, check_cover_rebuild_with_stats, check_cover_with_stats, BmcConfig, CoverOutcome,
    CoverSession, CoverStats, SessionSnapshot,
};
pub use encode::{FirePolarity, Unrolling};
pub use portfolio::{race_round, race_round_pinned, RaceResult, RacerReport};
pub use property::{Assumption, Property};
pub use trace::Trace;
