//! Portfolio racing: one cover query, several solver backends, first
//! definitive answer wins.
//!
//! A race takes the *logical position* of a stuck query (a
//! [`SessionSnapshot`]) and resumes it on N scoped threads, each with a
//! distinct [`SolverConfig`] `(backend, seed)`. All racers share a
//! private stop flag (an [`Interrupt::child`] of the caller's handle, so
//! an outer SIGINT still cancels the whole race): the first racer to
//! reach a definitive outcome — a witness trace, an unreachability
//! proof, or bounded exhaustion — trips it, and the losers abandon their
//! searches at the next propagation-loop poll.
//!
//! # Determinism by construction
//!
//! *Which* racer wins a wall-clock race is scheduling-dependent, but
//! every quantity the rest of the pipeline consumes is not:
//!
//! * **Answers are backend-invariant.** Sound solvers cannot disagree on
//!   Sat/Unsat, so all definitive racers report the same outcome kind;
//!   the race asserts this. Witness *traces* may differ between
//!   backends — each is independently valid, which is why traces are
//!   validated by replay downstream, never compared byte-for-byte.
//! * **A definitive racer's run is its solo run.** The interrupt poll
//!   never mutates solver state, so a racer that finished without
//!   observing a trip behaved byte-identically to the same `(backend,
//!   seed)` resumed from the same snapshot with the same budget and no
//!   race at all. Re-running the recorded winner alone therefore
//!   reproduces the winning round exactly — the property serve-mode
//!   crash recovery relies on ([`race_round_pinned`]).
//! * **Inconclusive rounds are deterministic for every racer.** The stop
//!   flag is only tripped by a definitive outcome, so if no racer
//!   answers, each ran its full conflict budget undisturbed. The race
//!   then continues from racer 0 (always the caller's first
//!   configuration), making the no-winner path as replayable as the
//!   winner path.

use vega_netlist::Netlist;
use vega_sat::{Interrupt, SolverConfig};

use crate::bmc::{BmcConfig, CoverOutcome, CoverSession, CoverStats, SessionSnapshot};
use crate::property::{Assumption, Property};

/// What one racer did during a [`race_round`].
#[derive(Debug, Clone, PartialEq)]
pub struct RacerReport {
    /// The racer's backend configuration name.
    pub backend: &'static str,
    /// The racer's randomization seed.
    pub seed: u64,
    /// The racer's outcome for the round ([`CoverOutcome::BudgetExhausted`]
    /// if it was cancelled or genuinely exhausted its budget).
    pub outcome: CoverOutcome,
    /// Solver work the racer performed before answering or being
    /// cancelled. Only the continuation racer's numbers are
    /// deterministic; losers' depend on when the trip landed.
    pub stats: CoverStats,
}

impl RacerReport {
    /// Whether this racer reached a definitive (non-budget) outcome.
    pub fn definitive(&self) -> bool {
        !matches!(self.outcome, CoverOutcome::BudgetExhausted)
    }
}

/// The result of one raced budget round.
#[derive(Debug)]
pub struct RaceResult<'n> {
    /// The round's outcome: the winner's definitive answer, or
    /// [`CoverOutcome::BudgetExhausted`] if every racer ran dry.
    pub outcome: CoverOutcome,
    /// The continuation racer's solver work for this round — the
    /// deterministic spend the caller should account against its budget
    /// escalation, identical to what a pinned replay reports.
    pub stats: CoverStats,
    /// The `(backend_name, seed)` of the winning racer, or `None` for an
    /// inconclusive round. This is what gets journaled so recovery can
    /// re-run the winner alone.
    pub winner: Option<(&'static str, u64)>,
    /// The session to continue the search from: the winner's (finished)
    /// session, or racer 0's for an inconclusive round.
    pub session: CoverSession<'n>,
    /// Every racer's report, in roster order — for observability, not
    /// for control flow.
    pub reports: Vec<RacerReport>,
}

/// Race one budget round across `racers` backend configurations, all
/// resumed from `snapshot`.
///
/// Requires at least one racer; with exactly one this degenerates to a
/// solo round (which is precisely what [`race_round_pinned`] exploits).
/// Racer 0 is the continuation backend for inconclusive rounds, so
/// callers should put their default configuration first.
///
/// `cancel`, when given, cancels the entire race from outside (e.g. the
/// serve-mode SIGINT handle); the race's internal winner-cancellation
/// never trips it.
#[allow(clippy::too_many_arguments)]
pub fn race_round<'n>(
    netlist: &'n Netlist,
    property: &Property,
    assumptions: &[Assumption],
    config: &BmcConfig,
    snapshot: &SessionSnapshot,
    budget: u64,
    racers: &[SolverConfig],
    cancel: Option<&Interrupt>,
) -> RaceResult<'n> {
    assert!(!racers.is_empty(), "a race needs at least one racer");
    let stop = match cancel {
        Some(outer) => outer.child(),
        None => Interrupt::new(),
    };
    // usize::MAX = no winner yet; first definitive racer CASes its index.
    let winner_slot = std::sync::atomic::AtomicUsize::new(usize::MAX);

    let mut runs: Vec<Option<(CoverSession<'n>, CoverOutcome, CoverStats)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = racers
                .iter()
                .enumerate()
                .map(|(me, backend)| {
                    let stop = stop.clone();
                    let winner_slot = &winner_slot;
                    scope.spawn(move || {
                        let mut session = CoverSession::resume_with_backend(
                            netlist,
                            property,
                            assumptions,
                            config,
                            backend,
                            snapshot,
                        );
                        session.set_interrupt(stop.clone());
                        let (outcome, stats) = session.run(budget);
                        if !matches!(outcome, CoverOutcome::BudgetExhausted) {
                            // First definitive answer wins; everyone else
                            // gets cancelled at their next poll.
                            if winner_slot
                                .compare_exchange(
                                    usize::MAX,
                                    me,
                                    std::sync::atomic::Ordering::AcqRel,
                                    std::sync::atomic::Ordering::Acquire,
                                )
                                .is_ok()
                            {
                                stop.trip();
                            }
                        }
                        (session, outcome, stats)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().ok()).collect()
        });

    let reports: Vec<RacerReport> = runs
        .iter()
        .map(|run| {
            let (session, outcome, stats) = run.as_ref().expect("racer thread panicked");
            RacerReport {
                backend: session.backend_name(),
                seed: session.backend_seed(),
                outcome: outcome.clone(),
                stats: *stats,
            }
        })
        .collect();

    let winner_index = match winner_slot.load(std::sync::atomic::Ordering::Acquire) {
        usize::MAX => None,
        i => Some(i),
    };

    // Soundness cross-check: definitive racers must agree on the outcome
    // kind. (Traces may differ in content — each is validated by replay
    // downstream — but Sat/Unsat/bounded verdicts are backend-invariant.)
    let kinds: Vec<&str> = reports
        .iter()
        .filter(|r| r.definitive())
        .map(|r| outcome_kind(&r.outcome))
        .collect();
    assert!(
        kinds.windows(2).all(|w| w[0] == w[1]),
        "portfolio backends disagree on a definitive outcome: {kinds:?}"
    );

    let continue_from = winner_index.unwrap_or(0);
    let (session, outcome, stats) = runs
        .get_mut(continue_from)
        .and_then(Option::take)
        .expect("continuation racer exists");
    RaceResult {
        winner: winner_index.map(|_| (session.backend_name(), session.backend_seed())),
        outcome,
        stats,
        session,
        reports,
    }
}

/// Replay a journaled raced round deterministically: run the recorded
/// winner (or, for an inconclusive round, the roster's racer 0) *alone*
/// from the same snapshot with the same budget.
///
/// Because a definitive racer's race run is byte-identical to its solo
/// run (see the module docs), this reproduces the original round's
/// outcome, stats, and continuation state exactly — without spawning a
/// single extra thread.
#[allow(clippy::too_many_arguments)]
pub fn race_round_pinned<'n>(
    netlist: &'n Netlist,
    property: &Property,
    assumptions: &[Assumption],
    config: &BmcConfig,
    snapshot: &SessionSnapshot,
    budget: u64,
    pinned: &SolverConfig,
    was_winner: bool,
    cancel: Option<&Interrupt>,
) -> RaceResult<'n> {
    let mut result = race_round(
        netlist,
        property,
        assumptions,
        config,
        snapshot,
        budget,
        std::slice::from_ref(pinned),
        cancel,
    );
    if !was_winner {
        // The original round was inconclusive: the replayed racer 0
        // must run dry too, and the round stays winner-less.
        result.winner = None;
    }
    result
}

fn outcome_kind(outcome: &CoverOutcome) -> &'static str {
    match outcome {
        CoverOutcome::Trace(_) => "trace",
        CoverOutcome::ProvedUnreachable { .. } => "unreachable",
        CoverOutcome::BoundedOnly { .. } => "bounded",
        CoverOutcome::BudgetExhausted => "exhausted",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_netlist::{CellKind, NetlistBuilder};

    /// The paper's 2-bit pipelined adder.
    fn paper_adder() -> Netlist {
        let mut b = NetlistBuilder::new("adder");
        let clk = b.clock("clk");
        let a = b.input("a", 2);
        let bb = b.input("b", 2);
        let aq0 = b.dff("dff1", a[0], clk);
        let aq1 = b.dff("dff2", a[1], clk);
        let bq0 = b.dff("dff3", bb[0], clk);
        let bq1 = b.dff("dff4", bb[1], clk);
        let s0 = b.cell(CellKind::Xor2, "xor5", &[aq0, bq0]);
        let c0 = b.cell(CellKind::And2, "and6", &[aq0, bq0]);
        let x7 = b.cell(CellKind::Xor2, "xor7", &[aq1, bq1]);
        let s1 = b.cell(CellKind::Xor2, "xor8", &[x7, c0]);
        let o0 = b.dff("dff9", s0, clk);
        let o1 = b.dff("dff10", s1, clk);
        b.output("o", &[o0, o1]);
        b.finish().unwrap()
    }

    fn fresh_snapshot(property: &Property) -> SessionSnapshot {
        SessionSnapshot {
            next_depth: property.earliest_cycle,
            next_k: 1,
            in_induction: false,
        }
    }

    #[test]
    fn race_finds_the_same_answer_as_solo() {
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let property = Property::net_equals(o[0], true);
        let config = BmcConfig::default();
        let (solo, _) = crate::check_cover_with_stats(&n, &property, &[], &config);

        let racers = SolverConfig::portfolio(3);
        let result = race_round(
            &n,
            &property,
            &[],
            &config,
            &fresh_snapshot(&property),
            config.conflict_budget,
            &racers,
            None,
        );
        let winner = result.winner.expect("ample budget must produce a winner");
        assert!(SolverConfig::by_name(winner.0).is_some());
        match (&result.outcome, &solo) {
            (CoverOutcome::Trace(_), CoverOutcome::Trace(_)) => {}
            (a, b) => assert_eq!(a, b),
        }
        assert_eq!(result.reports.len(), 3);
    }

    #[test]
    fn pinned_replay_reproduces_winner_run_exactly() {
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let property = Property::net_equals(o[0], true);
        // Unreachable under even-only inputs: drives a full proof search.
        let assumptions = vec![
            Assumption::PortIn {
                port: "a".into(),
                allowed: vec![0, 2],
            },
            Assumption::PortIn {
                port: "b".into(),
                allowed: vec![0, 2],
            },
        ];
        let config = BmcConfig::default();
        let snapshot = fresh_snapshot(&property);
        let racers = SolverConfig::portfolio(3);
        let result = race_round(
            &n,
            &property,
            &assumptions,
            &config,
            &snapshot,
            config.conflict_budget,
            &racers,
            None,
        );
        let (name, seed) = result.winner.expect("winner");
        let pinned_config = SolverConfig::by_name(name).unwrap().with_seed(seed);

        let replay = race_round_pinned(
            &n,
            &property,
            &assumptions,
            &config,
            &snapshot,
            config.conflict_budget,
            &pinned_config,
            true,
            None,
        );
        assert_eq!(replay.outcome, result.outcome);
        assert_eq!(replay.stats, result.stats, "winner stats must replay");
        assert_eq!(replay.winner, result.winner);
    }

    #[test]
    fn inconclusive_round_continues_from_racer_zero_deterministically() {
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let property = Property::net_equals(o[0], true);
        let assumptions = vec![
            Assumption::PortIn {
                port: "a".into(),
                allowed: vec![0, 2],
            },
            Assumption::PortIn {
                port: "b".into(),
                allowed: vec![0, 2],
            },
        ];
        let config = BmcConfig::default();
        let snapshot = fresh_snapshot(&property);
        let racers = SolverConfig::portfolio(3);
        // Budget too small for anyone to answer.
        let result = race_round(
            &n,
            &property,
            &assumptions,
            &config,
            &snapshot,
            2,
            &racers,
            None,
        );
        assert_eq!(result.outcome, CoverOutcome::BudgetExhausted);
        assert!(result.winner.is_none());
        assert_eq!(result.session.backend_name(), racers[0].name);

        // The inconclusive continuation replays exactly as racer 0 solo.
        let replay = race_round_pinned(
            &n,
            &property,
            &assumptions,
            &config,
            &snapshot,
            2,
            &racers[0],
            false,
            None,
        );
        assert_eq!(replay.outcome, CoverOutcome::BudgetExhausted);
        assert!(replay.winner.is_none());
        assert_eq!(replay.stats, result.stats);
    }

    #[test]
    fn external_cancel_aborts_the_race_without_a_winner() {
        let n = paper_adder();
        let o = n.port("o").unwrap().bits.clone();
        let property = Property::net_equals(o[0], true);
        let config = BmcConfig::default();
        let cancel = Interrupt::new();
        cancel.trip();
        let racers = SolverConfig::portfolio(2);
        let result = race_round(
            &n,
            &property,
            &[],
            &config,
            &fresh_snapshot(&property),
            config.conflict_budget,
            &racers,
            Some(&cancel),
        );
        // A pre-tripped cancel may still lose the race to a solve that
        // finishes before its first poll on this tiny netlist; what must
        // hold is that the race returns and the cancel handle itself was
        // never tripped *by* the race.
        assert!(cancel.is_tripped());
        if result.winner.is_none() {
            assert_eq!(result.outcome, CoverOutcome::BudgetExhausted);
        }
    }
}
