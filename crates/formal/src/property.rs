//! Cover properties and input assumptions.

use vega_netlist::NetId;

/// The condition a cover query tries to make true in some cycle.
///
/// The workhorse is [`Property::any_differ`]: Error Lifting covers
/// "some shadow output bit differs from its original" (paper §3.3.3's
/// `cover property (o[1] != o_s[1])`, generalized to a set of bit pairs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Property {
    pub(crate) terms: Vec<PropertyTerm>,
    /// Earliest cycle (0-based) at which the property may fire; earlier
    /// fires are ignored. Used to skip reset artifacts.
    pub earliest_cycle: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PropertyTerm {
    /// `net == value`
    NetEquals(NetId, bool),
    /// `left != right`
    NetsDiffer(NetId, NetId),
}

impl Property {
    /// Cover `net == value` in some cycle.
    pub fn net_equals(net: NetId, value: bool) -> Self {
        Property {
            terms: vec![PropertyTerm::NetEquals(net, value)],
            earliest_cycle: 0,
        }
    }

    /// Cover `left != right` in some cycle.
    pub fn nets_differ(left: NetId, right: NetId) -> Self {
        Property {
            terms: vec![PropertyTerm::NetsDiffer(left, right)],
            earliest_cycle: 0,
        }
    }

    /// Cover "any of these pairs differ" in some cycle.
    pub fn any_differ(pairs: impl IntoIterator<Item = (NetId, NetId)>) -> Self {
        Property {
            terms: pairs
                .into_iter()
                .map(|(l, r)| PropertyTerm::NetsDiffer(l, r))
                .collect(),
            earliest_cycle: 0,
        }
    }

    /// Restrict the property to fire no earlier than `cycle`.
    pub fn not_before(mut self, cycle: usize) -> Self {
        self.earliest_cycle = cycle;
        self
    }
}

/// A constraint on module inputs, applied at every cycle of the unrolling
/// (the role of SystemVerilog `assume property` in the paper, §3.3.3:
/// e.g. restricting an ALU's operation encoding to valid operations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Assumption {
    /// The net holds this value in every cycle.
    NetAlways(NetId, bool),
    /// The named input port takes one of the allowed values each cycle
    /// (the port must be at most 64 bits wide).
    PortIn {
        /// Input port name.
        port: String,
        /// Allowed values, LSB-first encoding.
        allowed: Vec<u64>,
    },
}
