//! Counterexample / witness traces.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A cycle-accurate input witness produced by a successful cover query —
/// the module-level trace of paper Table 2.
///
/// `inputs[t]` maps each non-clock input port to its value during cycle
/// `t`; applying these with `vega_sim::Simulator` (stepping once per
/// cycle) drives the covered condition true at `fire_cycle`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Per-cycle input assignments, cycle 0 first.
    pub inputs: Vec<BTreeMap<String, u64>>,
    /// The (0-based) cycle at which the covered condition holds.
    pub fire_cycle: usize,
}

impl Trace {
    /// Number of cycles in the trace.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace ({} cycles, fires at cycle {}):",
            self.len(),
            self.fire_cycle
        )?;
        for (t, cycle) in self.inputs.iter().enumerate() {
            let parts: Vec<String> = cycle
                .iter()
                .map(|(port, value)| format!("{port}={value:#x}"))
                .collect();
            writeln!(f, "  cycle {t}: {}", parts.join(" "))?;
        }
        Ok(())
    }
}
