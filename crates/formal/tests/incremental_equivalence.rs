//! The incremental engine against the rebuild-per-depth oracle, on
//! randomly generated sequential circuits: same `CoverOutcome` variant,
//! same minimal fire cycle, and every witness trace replays in the
//! simulator. Deterministic xorshift generation (not `proptest`) so the
//! corpus is stable and the failures name their seed.

use vega_formal::{
    check_cover_rebuild_with_stats, check_cover_with_stats, Assumption, BmcConfig, CoverOutcome,
    CoverSession, Property,
};
use vega_netlist::{CellKind, NetId, Netlist, NetlistBuilder};
use vega_sat::SolverConfig;
use vega_sim::Simulator;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

const GATE_KINDS: [CellKind; 9] = [
    CellKind::Not,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Maj3,
];

/// A random sequential circuit over 3 inputs: a mix of gates (weighted
/// 4:1 over flops) wired to earlier nets, the last net exported as `out`.
fn random_netlist(seed: u64, steps: usize) -> Netlist {
    let mut rng = seed.wrapping_mul(2).wrapping_add(1);
    let mut b = NetlistBuilder::new("rand");
    let clk = b.clock("clk");
    let inputs = b.input("in", 3);
    let mut nets: Vec<NetId> = inputs.clone();
    for i in 0..steps {
        if xorshift(&mut rng) % 5 == 0 {
            let src = nets[xorshift(&mut rng) as usize % nets.len()];
            nets.push(b.dff(format!("q{i}"), src, clk));
        } else {
            let kind = GATE_KINDS[xorshift(&mut rng) as usize % GATE_KINDS.len()];
            let pick = |rng: &mut u64, nets: &[NetId]| nets[xorshift(rng) as usize % nets.len()];
            let ins: Vec<NetId> = (0..kind.arity()).map(|_| pick(&mut rng, &nets)).collect();
            nets.push(b.cell(kind, format!("g{i}"), &ins));
        }
    }
    b.output("out", &[*nets.last().unwrap()]);
    b.finish().unwrap()
}

/// Replay a trace in the simulator and return the value of `out` at the
/// fire cycle (settled inputs, before the capture edge — the unrolling's
/// view of cycle t).
fn replay_out(netlist: &Netlist, trace: &vega_formal::Trace) -> u64 {
    let mut sim = Simulator::new(netlist);
    let mut at_fire = u64::MAX;
    for (t, cycle) in trace.inputs.iter().enumerate() {
        for (port, value) in cycle {
            sim.set_input(port, *value);
        }
        sim.settle_inputs();
        if t == trace.fire_cycle {
            at_fire = sim.output("out");
        }
        sim.step();
    }
    at_fire
}

#[test]
fn incremental_agrees_with_rebuild_on_random_netlists() {
    let config = BmcConfig {
        max_cycles: 5,
        max_induction: 3,
        conflict_budget: 500_000,
    };
    let mut traces = 0;
    let mut proofs = 0;
    for seed in 0..60u64 {
        let n = random_netlist(seed, 4 + (seed as usize * 7) % 21);
        let out_net = n.port("out").unwrap().bits[0];
        let target = seed % 2 == 0;
        let property = Property::net_equals(out_net, target);

        let (inc, _) = check_cover_with_stats(&n, &property, &[], &config);
        let (reb, _) = check_cover_rebuild_with_stats(&n, &property, &[], &config);
        match (&inc, &reb) {
            (CoverOutcome::Trace(a), CoverOutcome::Trace(b)) => {
                assert_eq!(
                    a.fire_cycle, b.fire_cycle,
                    "seed {seed}: minimal fire cycle differs"
                );
                // Trace validity end-to-end: the incremental witness must
                // replay through the simulator.
                assert_eq!(
                    replay_out(&n, a),
                    u64::from(target),
                    "seed {seed}: incremental trace does not replay: {a}"
                );
                traces += 1;
            }
            _ => {
                assert_eq!(inc, reb, "seed {seed}: engines disagree");
                if matches!(inc, CoverOutcome::ProvedUnreachable { .. }) {
                    proofs += 1;
                }
            }
        }
    }
    // The corpus must actually exercise both verdict shapes.
    assert!(traces >= 10, "only {traces} traces in the corpus");
    assert!(proofs >= 1, "no proofs in the corpus");
}

#[test]
fn long_incremental_session_keeps_learnt_db_bounded() {
    // Drive one session through many depths and induction steps; the
    // LBD-aware database reduction must keep the learnt-clause count
    // bounded relative to the problem size rather than growing with the
    // total conflict count.
    let n = random_netlist(17, 40);
    let out_net = n.port("out").unwrap().bits[0];
    // `out == out` can never... a property that stays inconclusive is
    // what maximizes queries: cover `out != out`-style contradictions
    // prove too fast, so instead sweep both targets over a deep search.
    for target in [false, true] {
        let property = Property::net_equals(out_net, target);
        let config = BmcConfig {
            max_cycles: 24,
            max_induction: 12,
            conflict_budget: 500_000,
        };
        let mut session = CoverSession::new(&n, &property, &[], &config);
        let (_, stats) = session.run(config.conflict_budget);
        let learnt = session.learnt_clauses();
        let bound = 2 * (1000u64.max(stats.encoded_clauses / 3)) + 16;
        assert!(
            learnt <= bound,
            "target {target}: {learnt} learnt clauses live after {} conflicts (bound {bound})",
            stats.conflicts
        );
    }
}

#[test]
fn snapshot_resume_reaches_the_uninterrupted_outcome() {
    // Interrupt sessions by running them in tiny budget slices,
    // snapshotting after every slice, and rebuilding a *fresh* session
    // from the snapshot each time — the crash-recovery path `vega
    // serve` takes for in-flight BMC work. The final outcome must match
    // the uninterrupted run on every seed.
    let config = BmcConfig {
        max_cycles: 5,
        max_induction: 3,
        conflict_budget: 500_000,
    };
    let mut interrupted = 0;
    for seed in 0..30u64 {
        let n = random_netlist(seed, 4 + (seed as usize * 7) % 21);
        let out_net = n.port("out").unwrap().bits[0];
        let target = seed % 2 == 0;
        let property = Property::net_equals(out_net, target);
        let (want, _) = check_cover_with_stats(&n, &property, &[], &config);

        let mut session = CoverSession::new(&n, &property, &[], &config);
        // The slice budget escalates: a rebuilt session re-derives its
        // learnt clauses, so a fixed tiny slice could re-attack one hard
        // depth forever. Doubling guarantees convergence while the first
        // slices stay small enough to force interruptions.
        let mut slice = 1u64;
        let mut rounds = 0;
        let outcome = loop {
            rounds += 1;
            assert!(rounds < 100, "seed {seed}: session does not converge");
            let (outcome, _) = session.run(slice);
            slice = slice.saturating_mul(2);
            match outcome {
                CoverOutcome::BudgetExhausted => {
                    // "Crash": drop the session, keep only the snapshot.
                    let snap = session.snapshot().expect("unfinished has a snapshot");
                    interrupted += 1;
                    session = CoverSession::resume_from(&n, &property, &[], &config, &snap);
                    // Snapshot round-trips through the rebuilt session.
                    assert_eq!(session.snapshot(), Some(snap), "seed {seed}");
                }
                other => break other,
            }
        };
        match (&outcome, &want) {
            (CoverOutcome::Trace(a), CoverOutcome::Trace(b)) => {
                assert_eq!(a.fire_cycle, b.fire_cycle, "seed {seed}");
                assert_eq!(replay_out(&n, a), u64::from(target), "seed {seed}");
            }
            _ => assert_eq!(outcome, want, "seed {seed}"),
        }
        assert!(session.snapshot().is_none(), "finished session snapshots");
    }
    // The tiny budget must actually interrupt (else this tests nothing).
    assert!(interrupted >= 10, "only {interrupted} interruptions");
}

/// One cover query of the cross-backend grid: a real unit, a property
/// over its outputs, and a simulator-side check of what "fire" means.
struct GridSample {
    name: &'static str,
    netlist: Netlist,
    property: Property,
    assumptions: Vec<Assumption>,
    /// Evaluates the fire condition on a settled simulator cycle.
    fired: fn(&mut Simulator) -> bool,
}

fn grid_samples() -> Vec<GridSample> {
    let alu = vega_circuits::alu::build_alu();
    let fpu = vega_circuits::fpu::build_fpu();
    let alu_r = alu.port("r").unwrap().bits.clone();
    let fpu_valid_out = fpu.port("out_valid").unwrap().bits[0];
    let fpu_valid_in = fpu.port("valid").unwrap().bits[0];
    let fpu_tag = fpu.port("tag_out").unwrap().bits.clone();
    vec![
        GridSample {
            name: "alu-low-bits-differ",
            property: Property::any_differ(vec![(alu_r[0], alu_r[1])]),
            assumptions: vec![],
            fired: |sim| {
                let r = sim.output("r");
                (r & 1) != ((r >> 1) & 1)
            },
            netlist: vega_circuits::alu::build_alu(),
        },
        GridSample {
            name: "alu-sign-bit-covered",
            property: Property::net_equals(alu_r[31], true),
            assumptions: vec![],
            fired: |sim| (sim.output("r") >> 31) & 1 == 1,
            netlist: vega_circuits::alu::build_alu(),
        },
        GridSample {
            name: "alu-zero-operands-prove-zero",
            property: Property::net_equals(alu_r[5], true),
            assumptions: vec![
                Assumption::PortIn {
                    port: "a".into(),
                    allowed: vec![0],
                },
                Assumption::PortIn {
                    port: "b".into(),
                    allowed: vec![0],
                },
                Assumption::PortIn {
                    port: "op".into(),
                    allowed: vec![vega_circuits::golden::AluOp::Add.encoding()],
                },
            ],
            fired: |sim| (sim.output("r") >> 5) & 1 == 1,
            netlist: vega_circuits::alu::build_alu(),
        },
        GridSample {
            name: "fpu-handshake-covered",
            property: Property::net_equals(fpu_valid_out, true),
            assumptions: vec![],
            fired: |sim| sim.output("out_valid") == 1,
            netlist: vega_circuits::fpu::build_fpu(),
        },
        GridSample {
            name: "fpu-tag-bits-differ",
            property: Property::any_differ(vec![(fpu_tag[0], fpu_tag[1])]),
            assumptions: vec![],
            fired: |sim| {
                let t = sim.output("tag_out");
                (t & 1) != ((t >> 1) & 1)
            },
            netlist: vega_circuits::fpu::build_fpu(),
        },
        GridSample {
            name: "fpu-idle-proves-no-handshake",
            property: Property::net_equals(fpu_valid_out, true),
            assumptions: vec![Assumption::NetAlways(fpu_valid_in, false)],
            fired: |sim| sim.output("out_valid") == 1,
            netlist: vega_circuits::fpu::build_fpu(),
        },
    ]
}

/// Replay a trace against `sample.fired` and report whether the fire
/// condition holds at the trace's fire cycle.
fn trace_fires(sample: &GridSample, trace: &vega_formal::Trace) -> bool {
    let mut sim = Simulator::new(&sample.netlist);
    let mut fired = false;
    for (t, cycle) in trace.inputs.iter().enumerate() {
        for (port, value) in cycle {
            sim.set_input(port, *value);
        }
        sim.settle_inputs();
        if t == trace.fire_cycle {
            fired = (sample.fired)(&mut sim);
        }
        sim.step();
    }
    fired
}

/// The portfolio's soundness contract, exhaustively: every roster
/// backend must reach the same Sat/Unsat verdict as `cdcl-default` on
/// every (ALU, FPU) sample query, and every witness trace — whichever
/// backend produced it — must replay in the simulator. Witness *content*
/// is allowed to differ between backends; validity is not.
#[test]
fn all_backends_agree_on_alu_and_fpu_sample_pairs() {
    let config = BmcConfig {
        max_cycles: 4,
        max_induction: 3,
        conflict_budget: 2_000_000,
    };
    let mut traces = 0;
    let mut proofs = 0;
    for sample in grid_samples() {
        let mut reference: Option<CoverOutcome> = None;
        for name in SolverConfig::BACKEND_NAMES {
            let backend = SolverConfig::by_name(name).unwrap().with_seed(11);
            let mut session: CoverSession<'_> = CoverSession::with_backend(
                &sample.netlist,
                &sample.property,
                &sample.assumptions,
                &config,
                &backend,
            );
            let (outcome, _) = session.run(config.conflict_budget);
            if let CoverOutcome::Trace(trace) = &outcome {
                assert!(
                    trace_fires(&sample, trace),
                    "{}: {name} witness does not replay: {trace}",
                    sample.name
                );
                traces += 1;
            }
            match &reference {
                None => reference = Some(outcome),
                Some(want) => match (want, &outcome) {
                    (CoverOutcome::Trace(a), CoverOutcome::Trace(b)) => {
                        assert_eq!(
                            a.fire_cycle, b.fire_cycle,
                            "{}: {name} minimal fire cycle differs",
                            sample.name
                        );
                    }
                    _ => assert_eq!(
                        want, &outcome,
                        "{}: {name} disagrees with the default backend",
                        sample.name
                    ),
                },
            }
        }
        if matches!(reference, Some(CoverOutcome::ProvedUnreachable { .. })) {
            proofs += 1;
        }
    }
    // The grid must exercise both verdict shapes on both units.
    assert!(traces >= 2 * SolverConfig::BACKEND_NAMES.len(), "{traces}");
    assert!(proofs >= 2, "only {proofs} proof samples");
}
