//! The incremental engine against the rebuild-per-depth oracle, on
//! randomly generated sequential circuits: same `CoverOutcome` variant,
//! same minimal fire cycle, and every witness trace replays in the
//! simulator. Deterministic xorshift generation (not `proptest`) so the
//! corpus is stable and the failures name their seed.

use vega_formal::{
    check_cover_rebuild_with_stats, check_cover_with_stats, BmcConfig, CoverOutcome, CoverSession,
    Property,
};
use vega_netlist::{CellKind, NetId, Netlist, NetlistBuilder};
use vega_sim::Simulator;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

const GATE_KINDS: [CellKind; 9] = [
    CellKind::Not,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Maj3,
];

/// A random sequential circuit over 3 inputs: a mix of gates (weighted
/// 4:1 over flops) wired to earlier nets, the last net exported as `out`.
fn random_netlist(seed: u64, steps: usize) -> Netlist {
    let mut rng = seed.wrapping_mul(2).wrapping_add(1);
    let mut b = NetlistBuilder::new("rand");
    let clk = b.clock("clk");
    let inputs = b.input("in", 3);
    let mut nets: Vec<NetId> = inputs.clone();
    for i in 0..steps {
        if xorshift(&mut rng) % 5 == 0 {
            let src = nets[xorshift(&mut rng) as usize % nets.len()];
            nets.push(b.dff(format!("q{i}"), src, clk));
        } else {
            let kind = GATE_KINDS[xorshift(&mut rng) as usize % GATE_KINDS.len()];
            let pick = |rng: &mut u64, nets: &[NetId]| nets[xorshift(rng) as usize % nets.len()];
            let ins: Vec<NetId> = (0..kind.arity()).map(|_| pick(&mut rng, &nets)).collect();
            nets.push(b.cell(kind, format!("g{i}"), &ins));
        }
    }
    b.output("out", &[*nets.last().unwrap()]);
    b.finish().unwrap()
}

/// Replay a trace in the simulator and return the value of `out` at the
/// fire cycle (settled inputs, before the capture edge — the unrolling's
/// view of cycle t).
fn replay_out(netlist: &Netlist, trace: &vega_formal::Trace) -> u64 {
    let mut sim = Simulator::new(netlist);
    let mut at_fire = u64::MAX;
    for (t, cycle) in trace.inputs.iter().enumerate() {
        for (port, value) in cycle {
            sim.set_input(port, *value);
        }
        sim.settle_inputs();
        if t == trace.fire_cycle {
            at_fire = sim.output("out");
        }
        sim.step();
    }
    at_fire
}

#[test]
fn incremental_agrees_with_rebuild_on_random_netlists() {
    let config = BmcConfig {
        max_cycles: 5,
        max_induction: 3,
        conflict_budget: 500_000,
    };
    let mut traces = 0;
    let mut proofs = 0;
    for seed in 0..60u64 {
        let n = random_netlist(seed, 4 + (seed as usize * 7) % 21);
        let out_net = n.port("out").unwrap().bits[0];
        let target = seed % 2 == 0;
        let property = Property::net_equals(out_net, target);

        let (inc, _) = check_cover_with_stats(&n, &property, &[], &config);
        let (reb, _) = check_cover_rebuild_with_stats(&n, &property, &[], &config);
        match (&inc, &reb) {
            (CoverOutcome::Trace(a), CoverOutcome::Trace(b)) => {
                assert_eq!(
                    a.fire_cycle, b.fire_cycle,
                    "seed {seed}: minimal fire cycle differs"
                );
                // Trace validity end-to-end: the incremental witness must
                // replay through the simulator.
                assert_eq!(
                    replay_out(&n, a),
                    u64::from(target),
                    "seed {seed}: incremental trace does not replay: {a}"
                );
                traces += 1;
            }
            _ => {
                assert_eq!(inc, reb, "seed {seed}: engines disagree");
                if matches!(inc, CoverOutcome::ProvedUnreachable { .. }) {
                    proofs += 1;
                }
            }
        }
    }
    // The corpus must actually exercise both verdict shapes.
    assert!(traces >= 10, "only {traces} traces in the corpus");
    assert!(proofs >= 1, "no proofs in the corpus");
}

#[test]
fn long_incremental_session_keeps_learnt_db_bounded() {
    // Drive one session through many depths and induction steps; the
    // LBD-aware database reduction must keep the learnt-clause count
    // bounded relative to the problem size rather than growing with the
    // total conflict count.
    let n = random_netlist(17, 40);
    let out_net = n.port("out").unwrap().bits[0];
    // `out == out` can never... a property that stays inconclusive is
    // what maximizes queries: cover `out != out`-style contradictions
    // prove too fast, so instead sweep both targets over a deep search.
    for target in [false, true] {
        let property = Property::net_equals(out_net, target);
        let config = BmcConfig {
            max_cycles: 24,
            max_induction: 12,
            conflict_budget: 500_000,
        };
        let mut session = CoverSession::new(&n, &property, &[], &config);
        let (_, stats) = session.run(config.conflict_budget);
        let learnt = session.learnt_clauses();
        let bound = 2 * (1000u64.max(stats.encoded_clauses / 3)) + 16;
        assert!(
            learnt <= bound,
            "target {target}: {learnt} learnt clauses live after {} conflicts (bound {bound})",
            stats.conflicts
        );
    }
}

#[test]
fn snapshot_resume_reaches_the_uninterrupted_outcome() {
    // Interrupt sessions by running them in tiny budget slices,
    // snapshotting after every slice, and rebuilding a *fresh* session
    // from the snapshot each time — the crash-recovery path `vega
    // serve` takes for in-flight BMC work. The final outcome must match
    // the uninterrupted run on every seed.
    let config = BmcConfig {
        max_cycles: 5,
        max_induction: 3,
        conflict_budget: 500_000,
    };
    let mut interrupted = 0;
    for seed in 0..30u64 {
        let n = random_netlist(seed, 4 + (seed as usize * 7) % 21);
        let out_net = n.port("out").unwrap().bits[0];
        let target = seed % 2 == 0;
        let property = Property::net_equals(out_net, target);
        let (want, _) = check_cover_with_stats(&n, &property, &[], &config);

        let mut session = CoverSession::new(&n, &property, &[], &config);
        // The slice budget escalates: a rebuilt session re-derives its
        // learnt clauses, so a fixed tiny slice could re-attack one hard
        // depth forever. Doubling guarantees convergence while the first
        // slices stay small enough to force interruptions.
        let mut slice = 1u64;
        let mut rounds = 0;
        let outcome = loop {
            rounds += 1;
            assert!(rounds < 100, "seed {seed}: session does not converge");
            let (outcome, _) = session.run(slice);
            slice = slice.saturating_mul(2);
            match outcome {
                CoverOutcome::BudgetExhausted => {
                    // "Crash": drop the session, keep only the snapshot.
                    let snap = session.snapshot().expect("unfinished has a snapshot");
                    interrupted += 1;
                    session = CoverSession::resume_from(&n, &property, &[], &config, &snap);
                    // Snapshot round-trips through the rebuilt session.
                    assert_eq!(session.snapshot(), Some(snap), "seed {seed}");
                }
                other => break other,
            }
        };
        match (&outcome, &want) {
            (CoverOutcome::Trace(a), CoverOutcome::Trace(b)) => {
                assert_eq!(a.fire_cycle, b.fire_cycle, "seed {seed}");
                assert_eq!(replay_out(&n, a), u64::from(target), "seed {seed}");
            }
            _ => assert_eq!(outcome, want, "seed {seed}"),
        }
        assert!(session.snapshot().is_none(), "finished session snapshots");
    }
    // The tiny budget must actually interrupt (else this tests nothing).
    assert!(interrupted >= 10, "only {interrupted} interruptions");
}
