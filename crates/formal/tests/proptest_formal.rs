//! Property tests for the bounded model checker: on randomly generated
//! sequential circuits, every cover trace must replay in the simulator,
//! and every unreachability proof must withstand random simulation.

use proptest::prelude::*;

use vega_formal::{check_cover, BmcConfig, CoverOutcome, Property};
use vega_netlist::{CellKind, NetId, Netlist, NetlistBuilder};
use vega_sim::{RandomStimulus, Simulator};

#[derive(Debug, Clone)]
enum Step {
    Gate(u8, u8, u8, u8),
    Dff(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(k, a, b, c)| Step::Gate(k, a, b, c)),
        1 => any::<u8>().prop_map(Step::Dff),
    ]
}

const GATE_KINDS: [CellKind; 9] = [
    CellKind::Not,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Maj3,
];

fn build(steps: &[Step]) -> Netlist {
    let mut b = NetlistBuilder::new("prop");
    let clk = b.clock("clk");
    let inputs = b.input("in", 3);
    let mut nets: Vec<NetId> = inputs.clone();
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Gate(k, a, bb, c) => {
                let kind = GATE_KINDS[*k as usize % GATE_KINDS.len()];
                let pick = |sel: &u8| nets[*sel as usize % nets.len()];
                let ins: Vec<NetId> = [pick(a), pick(bb), pick(c)][..kind.arity()].to_vec();
                nets.push(b.cell(kind, format!("g{i}"), &ins));
            }
            Step::Dff(d) => {
                let src = nets[*d as usize % nets.len()];
                nets.push(b.dff(format!("q{i}"), src, clk));
            }
        }
    }
    b.output("out", &[*nets.last().unwrap()]);
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness both ways: a trace must replay (the property really
    /// fires at the claimed cycle), and a proof must survive randomized
    /// simulation (the property never fires in 300 random cycles).
    #[test]
    fn cover_verdicts_are_sound(
        steps in prop::collection::vec(step_strategy(), 1..25),
        target in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let n = build(&steps);
        let out_net = n.port("out").unwrap().bits[0];
        let property = Property::net_equals(out_net, target);
        let config = BmcConfig { max_cycles: 5, max_induction: 3, conflict_budget: 500_000 };
        match check_cover(&n, &property, &[], &config) {
            CoverOutcome::Trace(trace) => {
                let mut sim = Simulator::new(&n);
                let mut fired = false;
                for (t, cycle) in trace.inputs.iter().enumerate() {
                    for (port, value) in cycle {
                        sim.set_input(port, *value);
                    }
                    sim.settle_inputs();
                    if t == trace.fire_cycle {
                        fired = sim.output("out") == u64::from(target);
                    }
                    sim.step();
                }
                prop_assert!(fired, "trace does not replay: {trace}");
            }
            CoverOutcome::ProvedUnreachable { .. } => {
                let mut sim = Simulator::with_seed(&n, seed);
                let mut stim = RandomStimulus::new(&n, seed);
                for _ in 0..300 {
                    for (port, value) in stim.next_vector() {
                        sim.set_input(&port, value);
                    }
                    sim.settle_inputs();
                    prop_assert_ne!(
                        sim.output("out"),
                        u64::from(target),
                        "proof contradicted by simulation"
                    );
                    sim.step();
                }
            }
            CoverOutcome::BoundedOnly { .. } | CoverOutcome::BudgetExhausted => {
                // Inconclusive is always acceptable.
            }
        }
    }
}
