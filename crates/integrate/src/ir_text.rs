//! A textual format for mini-IR programs: print and parse.
//!
//! Lets workloads be written, inspected and diffed as plain text — the
//! same role `.ll` files play for LLVM IR. Every construct of
//! [`crate::mini_ir`] round-trips. Grammar (one statement per line,
//! `#` comments):
//!
//! ```text
//! program <name> regs <n> mem <bytes>
//! block <label>:
//!   r<d> = const <int>            # decimal or 0x hex
//!   r<d> = alu.<op> r<a>, r<b>    # add sub sll slt sltu xor srl sra or and
//!   r<d> = mul r<a>, r<b>
//!   r<d> = divu r<a>, r<b>
//!   r<d> = fp.<op> r<a>, r<b>     # add sub mul min max eq lt le
//!   r<d> = load r<a> + <offset>
//!   store r<a> + <offset>, r<b>
//!   r<d> = copy r<s>
//!   run_aging_tests cost <n> every <n>
//!   jump <label>
//!   branch r<c> ? <label> : <label>
//!   return r<v>
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use vega_circuits::golden::{AluOp, FpuOp};

use crate::mini_ir::{Block, Op, Program, Term};

/// Render a program in the textual format.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program {} regs {} mem {}",
        program.name, program.registers, program.memory_bytes
    );
    for block in &program.blocks {
        let _ = writeln!(out, "block {}:", block.label);
        for op in &block.ops {
            let _ = writeln!(out, "  {}", print_op(op));
        }
        let term = match block.term {
            Term::Jump(target) => format!("jump {}", program.blocks[target].label),
            Term::Branch(cond, then_block, else_block) => format!(
                "branch r{cond} ? {} : {}",
                program.blocks[then_block].label, program.blocks[else_block].label
            ),
            Term::Return(reg) => format!("return r{reg}"),
        };
        let _ = writeln!(out, "  {term}");
    }
    out
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
    }
}

fn fpu_name(op: FpuOp) -> &'static str {
    match op {
        FpuOp::Add => "add",
        FpuOp::Sub => "sub",
        FpuOp::Mul => "mul",
        FpuOp::Min => "min",
        FpuOp::Max => "max",
        FpuOp::Eq => "eq",
        FpuOp::Lt => "lt",
        FpuOp::Le => "le",
    }
}

fn print_op(op: &Op) -> String {
    match *op {
        Op::Const(rd, value) => {
            if value > 0xFFFF {
                format!("r{rd} = const {value:#x}")
            } else {
                format!("r{rd} = const {value}")
            }
        }
        Op::Alu(op, rd, ra, rb) => format!("r{rd} = alu.{} r{ra}, r{rb}", alu_name(op)),
        Op::Mul(rd, ra, rb) => format!("r{rd} = mul r{ra}, r{rb}"),
        Op::Divu(rd, ra, rb) => format!("r{rd} = divu r{ra}, r{rb}"),
        Op::Fp(op, rd, ra, rb) => format!("r{rd} = fp.{} r{ra}, r{rb}", fpu_name(op)),
        Op::Load(rd, ra, offset) => format!("r{rd} = load r{ra} + {offset}"),
        Op::Store(ra, offset, rb) => format!("store r{ra} + {offset}, r{rb}"),
        Op::Copy(rd, rs) => format!("r{rd} = copy r{rs}"),
        Op::RunAgingTests { cost, every } => {
            format!("run_aging_tests cost {cost} every {every}")
        }
    }
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for IrParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IrParseError {}

/// Parse the textual format back into a [`Program`].
pub fn parse_program(text: &str) -> Result<Program, IrParseError> {
    let err = |line: usize, message: String| IrParseError { line, message };
    let mut name = String::new();
    let mut registers = 0usize;
    let mut memory_bytes = 0usize;
    // First pass: block labels -> indices.
    let mut labels: HashMap<String, usize> = HashMap::new();
    for line in text.lines() {
        let line = strip(line);
        if let Some(rest) = line.strip_prefix("block ") {
            let label = rest.trim_end_matches(':').trim().to_string();
            let index = labels.len();
            labels.insert(label, index);
        }
    }

    #[derive(Default)]
    struct PendingBlock {
        label: String,
        ops: Vec<Op>,
        term: Option<Term>,
    }
    let mut blocks: Vec<PendingBlock> = Vec::new();

    for (line_index, raw) in text.lines().enumerate() {
        let lineno = line_index + 1;
        let line = strip(raw);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("program ") {
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if tokens.len() != 5 || tokens[1] != "regs" || tokens[3] != "mem" {
                return Err(err(
                    lineno,
                    "expected `program <name> regs <n> mem <n>`".into(),
                ));
            }
            name = tokens[0].to_string();
            registers = tokens[2]
                .parse()
                .map_err(|e| err(lineno, format!("regs: {e}")))?;
            memory_bytes = tokens[4]
                .parse()
                .map_err(|e| err(lineno, format!("mem: {e}")))?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("block ") {
            blocks.push(PendingBlock {
                label: rest.trim_end_matches(':').trim().to_string(),
                ..Default::default()
            });
            continue;
        }
        let block = blocks
            .last_mut()
            .ok_or_else(|| err(lineno, "statement before any `block`".into()))?;
        if block.term.is_some() {
            return Err(err(lineno, "statement after the block terminator".into()));
        }
        if let Some(term) = parse_term(line, &labels).transpose() {
            block.term = Some(term.map_err(|m| err(lineno, m))?);
            continue;
        }
        block.ops.push(parse_op(line).map_err(|m| err(lineno, m))?);
    }

    if name.is_empty() {
        return Err(err(1, "missing `program` header".into()));
    }
    let blocks: Result<Vec<Block>, IrParseError> = blocks
        .into_iter()
        .map(|b| {
            let term = b
                .term
                .ok_or_else(|| err(0, format!("block `{}` has no terminator", b.label)))?;
            Ok(Block {
                label: b.label,
                ops: b.ops,
                term,
            })
        })
        .collect();
    Ok(Program {
        name,
        blocks: blocks?,
        registers,
        memory_bytes,
    })
}

fn strip(line: &str) -> &str {
    match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

fn reg(token: &str) -> Result<usize, String> {
    token
        .trim()
        .trim_end_matches(',')
        .strip_prefix('r')
        .ok_or_else(|| format!("expected register, found `{token}`"))?
        .parse()
        .map_err(|e| format!("register index: {e}"))
}

fn int(token: &str) -> Result<u32, String> {
    let token = token.trim();
    if let Some(hex) = token.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).map_err(|e| format!("integer: {e}"))
    } else {
        token.parse().map_err(|e| format!("integer: {e}"))
    }
}

/// Try to parse a terminator; `Ok(None)` means "not a terminator".
fn parse_term(line: &str, labels: &HashMap<String, usize>) -> Result<Option<Term>, String> {
    let resolve = |label: &str| {
        labels
            .get(label.trim())
            .copied()
            .ok_or_else(|| format!("unknown block label `{}`", label.trim()))
    };
    if let Some(target) = line.strip_prefix("jump ") {
        return Ok(Some(Term::Jump(resolve(target)?)));
    }
    if let Some(rest) = line.strip_prefix("branch ") {
        let (cond, targets) = rest
            .split_once('?')
            .ok_or_else(|| "branch needs `?`".to_string())?;
        let (then_label, else_label) = targets
            .split_once(':')
            .ok_or_else(|| "branch needs `:`".to_string())?;
        return Ok(Some(Term::Branch(
            reg(cond)?,
            resolve(then_label)?,
            resolve(else_label)?,
        )));
    }
    if let Some(value) = line.strip_prefix("return ") {
        return Ok(Some(Term::Return(reg(value)?)));
    }
    Ok(None)
}

fn parse_op(line: &str) -> Result<Op, String> {
    if let Some(rest) = line.strip_prefix("store ") {
        // store r<a> + <offset>, r<b>
        let (addr, src) = rest.split_once(',').ok_or("store needs `,`")?;
        let (base, offset) = addr.split_once('+').ok_or("store needs `+`")?;
        return Ok(Op::Store(reg(base)?, int(offset)?, reg(src)?));
    }
    if let Some(rest) = line.strip_prefix("run_aging_tests ") {
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        if tokens.len() != 4 || tokens[0] != "cost" || tokens[2] != "every" {
            return Err("expected `run_aging_tests cost <n> every <n>`".into());
        }
        return Ok(Op::RunAgingTests {
            cost: u64::from(int(tokens[1])?),
            every: int(tokens[3])?,
        });
    }
    let (dest, rhs) = line.split_once('=').ok_or("expected `r<d> = ...`")?;
    let rd = reg(dest)?;
    let rhs = rhs.trim();
    if let Some(value) = rhs.strip_prefix("const ") {
        return Ok(Op::Const(rd, int(value)?));
    }
    if let Some(rest) = rhs.strip_prefix("alu.") {
        let (mnemonic, operands) = rest.split_once(' ').ok_or("alu op needs operands")?;
        let op = AluOp::ALL
            .into_iter()
            .find(|o| alu_name(*o) == mnemonic)
            .ok_or_else(|| format!("unknown alu op `{mnemonic}`"))?;
        let (ra, rb) = operands
            .split_once(',')
            .ok_or("alu op needs two operands")?;
        return Ok(Op::Alu(op, rd, reg(ra)?, reg(rb)?));
    }
    if let Some(rest) = rhs.strip_prefix("fp.") {
        let (mnemonic, operands) = rest.split_once(' ').ok_or("fp op needs operands")?;
        let op = FpuOp::ALL
            .into_iter()
            .find(|o| fpu_name(*o) == mnemonic)
            .ok_or_else(|| format!("unknown fp op `{mnemonic}`"))?;
        let (ra, rb) = operands.split_once(',').ok_or("fp op needs two operands")?;
        return Ok(Op::Fp(op, rd, reg(ra)?, reg(rb)?));
    }
    if let Some(operands) = rhs.strip_prefix("mul ") {
        let (ra, rb) = operands.split_once(',').ok_or("mul needs two operands")?;
        return Ok(Op::Mul(rd, reg(ra)?, reg(rb)?));
    }
    if let Some(operands) = rhs.strip_prefix("divu ") {
        let (ra, rb) = operands.split_once(',').ok_or("divu needs two operands")?;
        return Ok(Op::Divu(rd, reg(ra)?, reg(rb)?));
    }
    if let Some(rest) = rhs.strip_prefix("load ") {
        let (base, offset) = rest.split_once('+').ok_or("load needs `+`")?;
        return Ok(Op::Load(rd, reg(base)?, int(offset)?));
    }
    if let Some(src) = rhs.strip_prefix("copy ") {
        return Ok(Op::Copy(rd, reg(src)?));
    }
    Err(format!("unparseable statement `{line}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mini_ir::Interpreter;
    use crate::workloads;

    #[test]
    fn every_workload_round_trips() {
        for program in workloads::all() {
            let text = print_program(&program);
            let parsed =
                parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", program.name));
            // Same results and same costs when interpreted.
            let mut a = Interpreter::new(&program);
            let mut b = Interpreter::new(&parsed);
            let ra = a.run(&program, None);
            let rb = b.run(&parsed, None);
            assert_eq!(ra.value, rb.value, "{}", program.name);
            assert_eq!(ra.cycles, rb.cycles, "{}", program.name);
            assert_eq!(ra.profile, rb.profile, "{}", program.name);
            // And printing the parse reproduces the text exactly.
            assert_eq!(text, print_program(&parsed), "{}", program.name);
        }
    }

    #[test]
    fn parses_hand_written_program() {
        let text = "
# doubles r0 five times
program doubler regs 4 mem 0
block entry:
  r0 = const 1
  r1 = const 0
  r2 = const 5
  r3 = const 1
  jump loop
block loop:
  r0 = alu.add r0, r0
  r1 = alu.add r1, r3
  r3 = alu.sltu r1, r2      # hmm: clobbers the increment register
  branch r3 ? loop : exit
block exit:
  return r0
";
        let program = parse_program(text).unwrap();
        assert_eq!(program.name, "doubler");
        let mut interp = Interpreter::new(&program);
        let result = interp.run(&program, None);
        // r3 becomes the comparison result (1 while looping), so the
        // increment keeps working until r1 == 5: r0 = 2^5.
        assert_eq!(result.value, 32);
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let text = "program p regs 1 mem 0\nblock b:\n  r0 = bogus r1\n  return r0\n";
        let e = parse_program(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("unparseable"));

        let text = "program p regs 1 mem 0\nblock b:\n  jump nowhere\n";
        let e = parse_program(text).unwrap_err();
        assert!(e.message.contains("unknown block label"));
    }

    #[test]
    fn terminator_rules_are_enforced() {
        let text = "program p regs 1 mem 0\nblock b:\n  r0 = const 1\n";
        assert!(parse_program(text)
            .unwrap_err()
            .message
            .contains("no terminator"));

        let text = "program p regs 1 mem 0\nblock b:\n  return r0\n  r0 = const 1\n";
        assert!(parse_program(text)
            .unwrap_err()
            .message
            .contains("after the block terminator"));
    }
}
