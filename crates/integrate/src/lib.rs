//! Test Integration: putting Vega's test cases into applications.
//!
//! Phase 3 of the workflow (paper §3.4) offers two integration styles:
//!
//! * **Software aging library** ([`AgingLibrary`]) — the generated test
//!   cases packaged behind a small API with sequential or randomized
//!   scheduling and exception-style fault reporting, plus emission of a
//!   self-contained C source file with the test cases as inline assembly
//!   (§3.4.1).
//! * **Profile-guided test integration** ([`pgi`]) — automatic embedding
//!   of the test suite into an application without source changes: the
//!   application is profiled at basic-block granularity, an integration
//!   point that is "not frequently invoked but still routinely accessed"
//!   is chosen, the expected overhead is estimated from instruction
//!   counts, and the invocation is probability-gated to stay under a
//!   user-set overhead threshold (§3.4.2).
//!
//! Because the paper's applications are embench programs compiled by
//! LLVM, and this reproduction builds everything from scratch, the crate
//! also provides the application substrate itself:
//!
//! * [`mini_ir`] — a small basic-block IR with an interpreter, a
//!   cycle-cost model aligned with `vega-riscv`, per-block execution
//!   counters, and optional *module drivers* that forward every executed
//!   operation to gate-level ALU/FPU simulators (this is how the Aging
//!   Analysis phase gathers realistic signal-probability profiles from
//!   workloads);
//! * [`workloads`] — eleven embench-style benchmark programs (including
//!   `minver`, the paper's representative workload) written in that IR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod c_emit;
pub mod ir_text;
mod library;
pub mod mini_ir;
pub mod pgi;
pub mod workloads;

pub use c_emit::emit_c_library;
pub use library::{AgingFault, AgingLibrary, DetectionReport, Schedule};
pub use pgi::{choose_integration_point, integrate, IntegratedProgram, PgiConfig};
