//! The software aging library (paper §3.4.1).

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use vega_lift::{run_test_case, validate_test_case, ModuleKind, TestCase, TestOutcome};
use vega_sim::Simulator;

/// Test scheduling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// Run the suite in construction order.
    Sequential,
    /// Run a freshly shuffled order each invocation (seeded).
    Random {
        /// RNG seed for the shuffle.
        seed: u64,
    },
}

/// A detected aging fault — the library's "exception". For languages
/// with exceptions, the generated C library raises through a callback;
/// in Rust the idiomatic equivalent is this error type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgingFault {
    /// Name of the detecting test case.
    pub test: String,
    /// The targeted aging-prone path.
    pub target: String,
    /// The raw outcome (mismatch or stall).
    pub outcome: TestOutcome,
}

impl std::fmt::Display for AgingFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "aging-related fault detected by `{}` (target {}): {:?}",
            self.test, self.target, self.outcome
        )
    }
}

impl std::error::Error for AgingFault {}

/// What a full suite execution observed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Per-test outcomes in the order executed.
    pub outcomes: Vec<(String, TestOutcome)>,
    /// The first detection, if any.
    pub first_detection: Option<AgingFault>,
    /// How many tests could not run at all (malformed stimulus, port
    /// mismatch, or a panicking runner) and were skipped. A skip is
    /// reported, never silently dropped — and never confused with a
    /// detection.
    pub skipped: usize,
}

impl DetectionReport {
    /// Whether any test detected a fault.
    pub fn detected(&self) -> bool {
        self.first_detection.is_some()
    }
}

/// The packaged test suite: Vega's generated test cases behind a small
/// scheduling/reporting API (paper §3.4.1).
#[derive(Debug, Clone)]
pub struct AgingLibrary {
    /// The hardware module the suite targets.
    pub module: ModuleKind,
    /// The test cases.
    pub suite: Vec<TestCase>,
    /// Scheduling strategy.
    pub schedule: Schedule,
    shuffle_rng: StdRng,
}

impl AgingLibrary {
    /// Package a suite.
    pub fn new(module: ModuleKind, suite: Vec<TestCase>, schedule: Schedule) -> Self {
        let seed = match schedule {
            Schedule::Random { seed } => seed,
            Schedule::Sequential => 0,
        };
        AgingLibrary {
            module,
            suite,
            schedule,
            shuffle_rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Total CPU cycles one full suite execution costs (a Table 5 cell).
    pub fn suite_cpu_cycles(&self) -> u64 {
        self.suite.iter().map(|t| t.cpu_cycles).sum()
    }

    /// Execute the whole suite once against the module simulated by
    /// `sim` (healthy or failing), in schedule order, without resets —
    /// exactly how the embedded tests run inside an application.
    pub fn run_once(&mut self, sim: &mut Simulator<'_>) -> DetectionReport {
        let mut order: Vec<usize> = (0..self.suite.len()).collect();
        if matches!(self.schedule, Schedule::Random { .. }) {
            order.shuffle(&mut self.shuffle_rng);
        }
        let mut outcomes = Vec::with_capacity(order.len());
        let mut first_detection = None;
        let mut skipped = 0;
        for index in order {
            let test = &self.suite[index];
            // An unrunnable test (built for a different unit revision,
            // corrupted on load, ...) must not take the embedded suite
            // down: validate first, catch any residual panic, and report
            // the skip instead.
            let outcome = match validate_test_case(sim.netlist(), test) {
                Err(reason) => TestOutcome::Skipped { reason },
                Ok(()) => catch_unwind(AssertUnwindSafe(|| run_test_case(sim, self.module, test)))
                    .unwrap_or_else(|payload| TestOutcome::Skipped {
                        reason: format!(
                            "test runner panicked: {}",
                            vega_lift::panic_message(payload)
                        ),
                    }),
            };
            if matches!(outcome, TestOutcome::Skipped { .. }) {
                skipped += 1;
            } else if outcome != TestOutcome::Pass && first_detection.is_none() {
                first_detection = Some(AgingFault {
                    test: test.name.clone(),
                    target: test.target.clone(),
                    outcome: outcome.clone(),
                });
            }
            outcomes.push((test.name.clone(), outcome));
        }
        DetectionReport {
            outcomes,
            first_detection,
            skipped,
        }
    }

    /// Exception-style entry point: `Ok(())` on a clean pass, `Err` with
    /// the first detection otherwise.
    pub fn run_checked(&mut self, sim: &mut Simulator<'_>) -> Result<(), AgingFault> {
        match self.run_once(sim).first_detection {
            None => Ok(()),
            Some(fault) => Err(fault),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_circuits::adder_example::build_paper_adder;
    use vega_lift::{generate_suite, AgingPath, LiftConfig};
    use vega_sta::ViolationKind;

    fn adder_suite() -> (vega_netlist::Netlist, Vec<TestCase>, AgingPath) {
        let n = build_paper_adder();
        let path = AgingPath {
            launch: n.cell_by_name("dff4").unwrap().id,
            capture: n.cell_by_name("dff10").unwrap().id,
            violation: ViolationKind::Setup,
        };
        let report = generate_suite(&n, ModuleKind::PaperAdder, &[path], &LiftConfig::default());
        let suite = report.suite();
        (n, suite, path)
    }

    #[test]
    fn healthy_hardware_passes_and_fault_raises() {
        let (n, suite, path) = adder_suite();
        assert!(!suite.is_empty());

        let mut library =
            AgingLibrary::new(ModuleKind::PaperAdder, suite.clone(), Schedule::Sequential);
        let mut healthy = Simulator::new(&n);
        assert!(library.run_checked(&mut healthy).is_ok());

        let failing = vega_lift::build_failing_netlist(
            &n,
            path,
            vega_lift::FaultValue::One,
            vega_lift::FaultActivation::OnChange,
        );
        let mut sim = Simulator::new(&failing);
        let fault = library.run_checked(&mut sim).unwrap_err();
        assert!(fault.to_string().contains("aging-related fault"));
    }

    #[test]
    fn unrunnable_tests_are_skipped_and_reported_not_fatal() {
        let (n, mut suite, _) = adder_suite();
        assert!(!suite.is_empty());
        // A test built for some other unit: drives a port the adder does
        // not have. Without validation this would panic the simulator and
        // take the whole suite down.
        let mut broken = suite[0].clone();
        broken.name = "foreign_unit_test".into();
        for cycle in &mut broken.stimulus {
            cycle.insert("no_such_port".into(), 1);
        }
        suite.insert(0, broken);

        let mut library = AgingLibrary::new(ModuleKind::PaperAdder, suite, Schedule::Sequential);
        let mut healthy = Simulator::new(&n);
        let report = library.run_once(&mut healthy);
        assert_eq!(report.skipped, 1, "the broken test is counted as a skip");
        assert!(
            matches!(report.outcomes[0].1, TestOutcome::Skipped { .. }),
            "the skip is reported in order"
        );
        assert!(!report.detected(), "a skip is not a detection");
        // The rest of the suite still ran (and passed on healthy hardware).
        assert!(report.outcomes[1..]
            .iter()
            .all(|(_, o)| *o == TestOutcome::Pass));
        // The exception-style entry point agrees: skips do not raise.
        let mut healthy = Simulator::new(&n);
        assert!(library.run_checked(&mut healthy).is_ok());
    }

    #[test]
    fn report_fault_and_schedule_serde_round_trip() {
        let (n, suite, _) = adder_suite();
        let failing = {
            let path = AgingPath {
                launch: n.cell_by_name("dff4").unwrap().id,
                capture: n.cell_by_name("dff10").unwrap().id,
                violation: ViolationKind::Setup,
            };
            vega_lift::build_failing_netlist(
                &n,
                path,
                vega_lift::FaultValue::One,
                vega_lift::FaultActivation::OnChange,
            )
        };
        let mut library = AgingLibrary::new(ModuleKind::PaperAdder, suite, Schedule::Sequential);
        let mut sim = Simulator::new(&failing);
        let report = library.run_once(&mut sim);
        assert!(report.detected(), "the failing adder must be detected");

        let encoded = serde_json::to_string(&report).expect("serialize report");
        let decoded: DetectionReport = serde_json::from_str(&encoded).expect("deserialize report");
        assert_eq!(decoded, report);

        let fault = report.first_detection.expect("fault present");
        let encoded = serde_json::to_string(&fault).expect("serialize fault");
        let decoded: AgingFault = serde_json::from_str(&encoded).expect("deserialize fault");
        assert_eq!(decoded, fault);

        for schedule in [Schedule::Sequential, Schedule::Random { seed: 99 }] {
            let encoded = serde_json::to_string(&schedule).expect("serialize schedule");
            let decoded: Schedule = serde_json::from_str(&encoded).expect("deserialize schedule");
            assert_eq!(decoded, schedule);
        }
    }

    #[test]
    fn random_schedule_is_seeded_and_permutes() {
        let (n, suite, _) = adder_suite();
        if suite.len() < 2 {
            return; // nothing to permute
        }
        let mut a = AgingLibrary::new(
            ModuleKind::PaperAdder,
            suite.clone(),
            Schedule::Random { seed: 1 },
        );
        let mut b = AgingLibrary::new(ModuleKind::PaperAdder, suite, Schedule::Random { seed: 1 });
        let mut sim1 = Simulator::new(&n);
        let mut sim2 = Simulator::new(&n);
        let r1 = a.run_once(&mut sim1);
        let r2 = b.run_once(&mut sim2);
        let names1: Vec<_> = r1.outcomes.iter().map(|(n, _)| n.clone()).collect();
        let names2: Vec<_> = r2.outcomes.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names1, names2, "same seed, same order");
    }
}
