//! A small basic-block IR with an interpreter and block-level profiling.
//!
//! The IR plays the role LLVM IR plays in the paper: applications are
//! functions over basic blocks; a profiler counts block executions; the
//! integrator splices test-case invocations into a chosen block. The
//! interpreter charges costs from the same timing model as `vega-riscv`,
//! so "overhead in cycles" is meaningful, and can optionally forward
//! every executed operation to gate-level ALU/FPU simulators so workload
//! runs double as signal-probability profiling runs (paper §3.2.1).

use vega_circuits::golden::{alu_golden, fpu_golden, AluOp, FpuOp};
use vega_sim::Simulator;

/// A virtual register index.
pub type VReg = usize;

/// A basic-block index within a program.
pub type BlockId = usize;

/// One IR operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `rd = constant`
    Const(VReg, u32),
    /// `rd = alu_op(ra, rb)` — executes on the ALU under test.
    Alu(AluOp, VReg, VReg, VReg),
    /// `rd = ra * rb` (behavioural multiplier, as in the CV32E40P).
    Mul(VReg, VReg, VReg),
    /// `rd = ra / rb` unsigned (behavioural; division by zero yields
    /// `u32::MAX` per RISC-V).
    Divu(VReg, VReg, VReg),
    /// `rd = fp_op(ra, rb)` over raw FP32 bits — executes on the FPU.
    Fp(FpuOp, VReg, VReg, VReg),
    /// `rd = mem[ra + offset]` (word).
    Load(VReg, VReg, u32),
    /// `mem[ra + offset] = rb` (word).
    Store(VReg, u32, VReg),
    /// `rd = rs`
    Copy(VReg, VReg),
    /// Invoke the embedded aging test suite. `cost` is the suite's CPU
    /// cycles; `every` gates the invocation to each N-th arrival
    /// (probability-gating with a deterministic counter). Inserted by the
    /// integrator, never written by applications.
    RunAgingTests {
        /// CPU cycles one full suite execution costs.
        cost: u64,
        /// Invoke only every N-th time this op is reached (N >= 1).
        every: u32,
    },
}

/// Block terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// Unconditional jump.
    Jump(BlockId),
    /// Jump to the first block if the register is non-zero, else the
    /// second.
    Branch(VReg, BlockId, BlockId),
    /// Return the register's value.
    Return(VReg),
}

/// A basic block: straight-line ops plus a terminator.
#[derive(Debug, Clone)]
pub struct Block {
    /// Human-readable label.
    pub label: String,
    /// Straight-line operations.
    pub ops: Vec<Op>,
    /// Control transfer out of the block.
    pub term: Term,
}

/// A program: blocks, an entry point, register and memory sizes.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name (benchmark name).
    pub name: String,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Number of virtual registers.
    pub registers: usize,
    /// Data memory size in bytes.
    pub memory_bytes: usize,
}

impl Program {
    /// Total static operation count (the integrator's "IR instructions
    /// before/after" metric).
    pub fn static_ops(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len() + 1).sum()
    }
}

/// Per-block execution counts gathered by a profiling run (§3.4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockProfile {
    /// `counts[b]` = times block `b` was entered.
    pub counts: Vec<u64>,
}

/// Optional gate-level module drivers: every interpreted operation is
/// forwarded to the hardware simulators, so an application run produces
/// exactly the stimulus the Aging Analysis phase profiles.
#[derive(Debug)]
pub struct ModuleDrivers<'a, 'n> {
    /// The ALU netlist simulator (ports `op`/`a`/`b`).
    pub alu: &'a mut Simulator<'n>,
    /// The FPU netlist simulator (ports `op`/`valid`/`a`/`b`/`tag`).
    pub fpu: &'a mut Simulator<'n>,
}

impl ModuleDrivers<'_, '_> {
    fn drive_alu(&mut self, op: AluOp, a: u32, b: u32) {
        self.alu.set_input("op", op.encoding());
        self.alu.set_input("a", a as u64);
        self.alu.set_input("b", b as u64);
        self.alu.step();
        // The FPU sees a bubble.
        self.fpu.set_input("valid", 0);
        self.fpu.step();
    }

    fn drive_fpu(&mut self, op: FpuOp, a: u32, b: u32) {
        self.fpu.set_input("op", op.encoding());
        self.fpu.set_input("a", a as u64);
        self.fpu.set_input("b", b as u64);
        self.fpu.set_input("valid", 1);
        self.fpu.set_input("tag", 0);
        self.fpu.step();
        // The ALU idles on its previous inputs (it has no clock gate).
        self.alu.step();
    }
}

/// The result of an interpreted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The returned value.
    pub value: u32,
    /// Total cycles under the timing model (including embedded test
    /// invocations).
    pub cycles: u64,
    /// Dynamic operation count.
    pub ops: u64,
    /// Block execution counts.
    pub profile: BlockProfile,
    /// How many times the embedded suite actually ran.
    pub suite_invocations: u64,
}

/// Interpreter over a [`Program`].
#[derive(Debug)]
pub struct Interpreter {
    regs: Vec<u32>,
    memory: Vec<u8>,
    /// Deterministic counters for `RunAgingTests` gating, one per static
    /// occurrence (keyed by (block, op index)).
    gate_counters: std::collections::HashMap<(BlockId, usize), u32>,
}

impl Interpreter {
    /// Fresh state for `program`.
    pub fn new(program: &Program) -> Self {
        Interpreter {
            regs: vec![0; program.registers],
            memory: vec![0; program.memory_bytes],
            gate_counters: std::collections::HashMap::new(),
        }
    }

    /// Pre-set a register before running (program inputs).
    pub fn set_reg(&mut self, reg: VReg, value: u32) {
        self.regs[reg] = value;
    }

    /// Pre-fill a memory word (program inputs).
    pub fn store_word(&mut self, addr: u32, value: u32) {
        let a = addr as usize;
        self.memory[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Read a memory word after a run.
    pub fn load_word(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.memory[a..a + 4].try_into().unwrap())
    }

    /// Execute the program, optionally forwarding ops to gate-level
    /// simulators via `drivers`.
    ///
    /// # Panics
    ///
    /// Panics if the block limit (an internal watchdog of 100 million
    /// block entries) is exceeded — IR programs here always terminate.
    pub fn run(
        &mut self,
        program: &Program,
        mut drivers: Option<&mut ModuleDrivers<'_, '_>>,
    ) -> RunResult {
        let mut counts = vec![0u64; program.blocks.len()];
        let mut cycles = 0u64;
        let mut ops = 0u64;
        let mut suite_invocations = 0u64;
        let mut block = 0usize;
        let mut entries = 0u64;
        loop {
            entries += 1;
            assert!(entries < 100_000_000, "runaway IR program");
            counts[block] += 1;
            let b = &program.blocks[block];
            for (op_index, op) in b.ops.iter().enumerate() {
                ops += 1;
                match *op {
                    Op::Const(rd, value) => {
                        cycles += 1;
                        self.regs[rd] = value;
                    }
                    Op::Alu(op, rd, ra, rb) => {
                        cycles += 1;
                        let (a, bb) = (self.regs[ra], self.regs[rb]);
                        if let Some(d) = drivers.as_deref_mut() {
                            d.drive_alu(op, a, bb);
                        }
                        self.regs[rd] = alu_golden(op, a, bb);
                    }
                    Op::Mul(rd, ra, rb) => {
                        cycles += 2;
                        self.regs[rd] = self.regs[ra].wrapping_mul(self.regs[rb]);
                    }
                    Op::Divu(rd, ra, rb) => {
                        cycles += 9;
                        let b = self.regs[rb];
                        self.regs[rd] = self.regs[ra].checked_div(b).unwrap_or(u32::MAX);
                    }
                    Op::Fp(op, rd, ra, rb) => {
                        cycles += 2;
                        let (a, bb) = (self.regs[ra], self.regs[rb]);
                        if let Some(d) = drivers.as_deref_mut() {
                            d.drive_fpu(op, a, bb);
                        }
                        self.regs[rd] = fpu_golden(op, a, bb).bits;
                    }
                    Op::Load(rd, ra, offset) => {
                        cycles += 2;
                        let addr = self.regs[ra].wrapping_add(offset);
                        self.regs[rd] = self.load_word(addr);
                        if let Some(d) = drivers.as_deref_mut() {
                            // Address arithmetic flows through the ALU.
                            d.drive_alu(AluOp::Add, self.regs[ra], offset);
                        }
                    }
                    Op::Store(ra, offset, rb) => {
                        cycles += 1;
                        let addr = self.regs[ra].wrapping_add(offset);
                        let value = self.regs[rb];
                        self.store_word(addr, value);
                        if let Some(d) = drivers.as_deref_mut() {
                            d.drive_alu(AluOp::Add, self.regs[ra], offset);
                        }
                    }
                    Op::Copy(rd, rs) => {
                        cycles += 1;
                        self.regs[rd] = self.regs[rs];
                    }
                    Op::RunAgingTests { cost, every } => {
                        let counter = self.gate_counters.entry((block, op_index)).or_insert(0);
                        *counter += 1;
                        cycles += 1; // the gate check itself
                        if *counter % every.max(1) == 0 {
                            cycles += cost;
                            suite_invocations += 1;
                        }
                    }
                }
            }
            cycles += 1; // terminator
            match b.term {
                Term::Jump(next) => block = next,
                Term::Branch(cond, then_block, else_block) => {
                    block = if self.regs[cond] != 0 {
                        then_block
                    } else {
                        else_block
                    };
                }
                Term::Return(reg) => {
                    return RunResult {
                        value: self.regs[reg],
                        cycles,
                        ops,
                        profile: BlockProfile { counts },
                        suite_invocations,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sum 1..=n with a loop.
    fn sum_program(n: u32) -> Program {
        Program {
            name: "sum".into(),
            registers: 8,
            memory_bytes: 0,
            blocks: vec![
                Block {
                    label: "entry".into(),
                    ops: vec![
                        Op::Const(0, 0),     // acc
                        Op::Const(1, 1),     // i
                        Op::Const(2, n + 1), // limit
                        Op::Const(3, 1),     // one
                    ],
                    term: Term::Jump(1),
                },
                Block {
                    label: "loop".into(),
                    ops: vec![
                        Op::Alu(AluOp::Add, 0, 0, 1),
                        Op::Alu(AluOp::Add, 1, 1, 3),
                        Op::Alu(AluOp::Sltu, 4, 1, 2), // i < limit
                    ],
                    term: Term::Branch(4, 1, 2),
                },
                Block {
                    label: "exit".into(),
                    ops: vec![],
                    term: Term::Return(0),
                },
            ],
        }
    }

    #[test]
    fn interprets_a_loop() {
        let p = sum_program(10);
        let mut interp = Interpreter::new(&p);
        let result = interp.run(&p, None);
        assert_eq!(result.value, 55);
        assert_eq!(result.profile.counts[0], 1);
        assert_eq!(result.profile.counts[1], 10);
        assert_eq!(result.profile.counts[2], 1);
        assert!(result.cycles > result.ops);
    }

    #[test]
    fn memory_round_trips() {
        let p = Program {
            name: "mem".into(),
            registers: 4,
            memory_bytes: 64,
            blocks: vec![Block {
                label: "entry".into(),
                ops: vec![
                    Op::Const(0, 16),
                    Op::Const(1, 0xDEADBEEF),
                    Op::Store(0, 4, 1),
                    Op::Load(2, 0, 4),
                ],
                term: Term::Return(2),
            }],
        };
        let mut interp = Interpreter::new(&p);
        assert_eq!(interp.run(&p, None).value, 0xDEADBEEF);
    }

    #[test]
    fn gated_test_invocation_counts() {
        let p = Program {
            name: "gated".into(),
            registers: 4,
            memory_bytes: 0,
            blocks: vec![
                Block {
                    label: "entry".into(),
                    ops: vec![Op::Const(0, 0), Op::Const(1, 10), Op::Const(2, 1)],
                    term: Term::Jump(1),
                },
                Block {
                    label: "loop".into(),
                    ops: vec![
                        Op::RunAgingTests {
                            cost: 100,
                            every: 3,
                        },
                        Op::Alu(AluOp::Add, 0, 0, 2),
                        Op::Alu(AluOp::Sltu, 3, 0, 1),
                    ],
                    term: Term::Branch(3, 1, 2),
                },
                Block {
                    label: "exit".into(),
                    ops: vec![],
                    term: Term::Return(0),
                },
            ],
        };
        let mut interp = Interpreter::new(&p);
        let result = interp.run(&p, None);
        assert_eq!(result.value, 10);
        assert_eq!(result.suite_invocations, 3, "10 arrivals gated every 3rd");
    }

    #[test]
    fn fp_ops_compute() {
        let p = Program {
            name: "fp".into(),
            registers: 4,
            memory_bytes: 0,
            blocks: vec![Block {
                label: "entry".into(),
                ops: vec![
                    Op::Const(0, 0x3F80_0000), // 1.0
                    Op::Const(1, 0x4000_0000), // 2.0
                    Op::Fp(FpuOp::Add, 2, 0, 1),
                    Op::Fp(FpuOp::Mul, 3, 2, 1),
                ],
                term: Term::Return(3),
            }],
        };
        let mut interp = Interpreter::new(&p);
        assert_eq!(interp.run(&p, None).value, 0x40C0_0000, "(1+2)*2 = 6.0");
    }
}
