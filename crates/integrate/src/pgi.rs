//! Profile-guided test integration (paper §3.4.2).

use serde::{Deserialize, Serialize};

use crate::mini_ir::{BlockId, BlockProfile, Interpreter, Op, Program};

/// Configuration of the profile-guided integrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PgiConfig {
    /// Minimum executions over the whole profiling period for a block to
    /// count as "routinely accessed".
    pub min_invocations: u64,
    /// Maximum acceptable estimated overhead, as a fraction (0.01 = 1 %).
    pub overhead_threshold: f64,
    /// Number of application executions in the profiling period. Blocks
    /// that run once per execution (e.g. the entry) are *routinely
    /// accessed* even though they are never hot — exactly the locations
    /// the paper's integrator prefers.
    pub profile_runs: u32,
}

impl Default for PgiConfig {
    fn default() -> Self {
        PgiConfig {
            min_invocations: 4,
            overhead_threshold: 0.01,
            profile_runs: 8,
        }
    }
}

/// Profile the program with its representative input over `runs`
/// back-to-back executions (the mini-IR programs are self-contained, so
/// plain runs *are* the profiling runs). Returns accumulated block
/// counts and total cycles.
pub fn profile(program: &Program, runs: u32) -> (BlockProfile, u64) {
    let mut interp = Interpreter::new(program);
    let mut counts = vec![0u64; program.blocks.len()];
    let mut cycles = 0u64;
    for _ in 0..runs.max(1) {
        let result = interp.run(program, None);
        for (total, c) in counts.iter_mut().zip(&result.profile.counts) {
            *total += c;
        }
        cycles += result.cycles;
    }
    (BlockProfile { counts }, cycles)
}

/// Choose the integration point: among blocks executed at least
/// `min_invocations` times (routinely accessed), pick the least
/// frequently invoked one — "not frequently invoked, but still routinely
/// accessed" (§3.4.2). Ties break toward the earliest block.
pub fn choose_integration_point(profile: &BlockProfile, config: &PgiConfig) -> Option<BlockId> {
    profile
        .counts
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count >= config.min_invocations)
        .min_by_key(|&(block, &count)| (count, block))
        .map(|(block, _)| block)
}

/// The outcome of integrating a test suite into a program.
#[derive(Debug, Clone)]
pub struct IntegratedProgram {
    /// The instrumented program.
    pub program: Program,
    /// Where the tests were embedded.
    pub integration_point: BlockId,
    /// The probability gate chosen (invoke every N-th arrival).
    pub every: u32,
    /// Estimated overhead fraction after gating.
    pub estimated_overhead: f64,
}

/// Embed a test suite costing `suite_cycles` per execution into
/// `program`, choosing the integration point from a profiling run and
/// gating the invocation so the estimated overhead stays below the
/// configured threshold.
///
/// Returns `None` if no block qualifies as routinely accessed.
pub fn integrate(
    program: &Program,
    suite_cycles: u64,
    config: &PgiConfig,
) -> Option<IntegratedProgram> {
    let (profile, base_cycles) = profile(program, config.profile_runs);
    let point = choose_integration_point(&profile, config)?;
    let invocations = profile.counts[point];

    // Estimated overhead if the suite ran at every arrival. The gate
    // check itself costs one cycle per arrival and cannot be gated away.
    let gate_cost = invocations as f64 / base_cycles.max(1) as f64;
    let ungated = (suite_cycles * invocations) as f64 / base_cycles.max(1) as f64;
    let budget = (config.overhead_threshold - gate_cost).max(0.0);
    let every = if ungated <= budget {
        1
    } else if budget > 0.0 {
        (ungated / budget).ceil() as u32
    } else {
        u32::MAX // gate cost alone exceeds the threshold; run minimally
    };
    let estimated_overhead = gate_cost + ungated / f64::from(every.max(1));

    let mut instrumented = program.clone();
    instrumented.blocks[point].ops.insert(
        0,
        Op::RunAgingTests {
            cost: suite_cycles,
            every,
        },
    );
    Some(IntegratedProgram {
        program: instrumented,
        integration_point: point,
        every,
        estimated_overhead,
    })
}

/// Measure the actual overhead of an integrated program against its
/// baseline over `repeats` back-to-back executions (a long-running
/// application): `(cycles_with - cycles_without) / cycles_without`,
/// plus the number of suite invocations observed.
///
/// The probability gate's counter persists across executions, exactly
/// like a static counter in an instrumented binary, so a gate of
/// `every = N` fires once per `N` arrivals even when one execution sees
/// fewer than `N`.
pub fn measured_overhead(base: &Program, integrated: &Program, repeats: u32) -> (f64, u64) {
    let mut a = Interpreter::new(base);
    let mut base_cycles = 0u64;
    for _ in 0..repeats.max(1) {
        base_cycles += a.run(base, None).cycles;
    }
    let mut b = Interpreter::new(integrated);
    let mut with_cycles = 0u64;
    let mut invocations = 0u64;
    for _ in 0..repeats.max(1) {
        let result = b.run(integrated, None);
        with_cycles += result.cycles;
        invocations += result.suite_invocations;
    }
    (
        (with_cycles as f64 - base_cycles as f64) / base_cycles as f64,
        invocations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn integration_respects_overhead_threshold() {
        let config = PgiConfig::default();
        for program in workloads::all() {
            let suite_cycles = 700; // a Table-5-sized suite
            let Some(integrated) = integrate(&program, suite_cycles, &config) else {
                panic!("{}: no integration point", program.name);
            };
            assert!(
                integrated.estimated_overhead <= config.overhead_threshold * 1.001,
                "{}: estimated {:.4}",
                program.name,
                integrated.estimated_overhead
            );
            // Run long enough that the gate fires at least a few times.
            let (profile_counts, _) = profile(&program, config.profile_runs);
            let per_run = (profile_counts.counts[integrated.integration_point]
                / u64::from(config.profile_runs))
            .max(1);
            let repeats = (u64::from(integrated.every) * 3 / per_run + 1) as u32;
            let (overhead, invocations) = measured_overhead(&program, &integrated.program, repeats);
            assert!(
                overhead <= config.overhead_threshold * 2.0 + 0.002,
                "{}: measured {:.4} (every={})",
                program.name,
                overhead,
                integrated.every
            );
            assert!(
                invocations >= 1,
                "{}: tests never ran (every={}, repeats={repeats})",
                program.name,
                integrated.every
            );
        }
    }

    #[test]
    fn chooses_quiet_but_routine_block() {
        let program = workloads::matmult();
        let (profile, _) = profile(&program, 8);
        let config = PgiConfig::default();
        let point = choose_integration_point(&profile, &config).unwrap();
        let count = profile.counts[point];
        assert!(count >= config.min_invocations);
        // It must not be the hottest block.
        let max = profile.counts.iter().max().unwrap();
        assert!(count < *max, "picked the hottest block");
    }

    #[test]
    fn gating_divides_frequency() {
        let program = workloads::huff();
        let config = PgiConfig {
            min_invocations: 4,
            overhead_threshold: 0.0005,
            profile_runs: 8,
        };
        let integrated = integrate(&program, 5_000, &config).unwrap();
        assert!(integrated.every > 1, "tight threshold forces gating");
    }
}
