//! Embench-style benchmark programs written in the mini IR.
//!
//! The paper evaluates on embench-iot and uses its `minver` (floating-
//! point matrix inversion) as the representative workload for SP
//! profiling (§4). These eleven kernels mirror that suite's mix: some are
//! integer-only (the FPU idles, which is what makes its gated clock
//! branches age), some are float-heavy, and all have the nested-loop
//! structure profile-guided integration expects.

use vega_circuits::golden::{AluOp, FpuOp};

use crate::mini_ir::{Block, BlockId, Op, Program, Term, VReg};

/// Incremental program builder.
struct Pb {
    name: &'static str,
    blocks: Vec<Block>,
    registers: usize,
    memory_bytes: usize,
}

impl Pb {
    fn new(name: &'static str, memory_bytes: usize) -> Self {
        Pb {
            name,
            blocks: Vec::new(),
            registers: 0,
            memory_bytes,
        }
    }

    fn reg(&mut self) -> VReg {
        self.registers += 1;
        self.registers - 1
    }

    fn block(&mut self, label: &str) -> BlockId {
        self.blocks.push(Block {
            label: label.to_string(),
            ops: Vec::new(),
            term: Term::Return(0),
        });
        self.blocks.len() - 1
    }

    fn push(&mut self, block: BlockId, op: Op) {
        self.blocks[block].ops.push(op);
    }

    fn term(&mut self, block: BlockId, term: Term) {
        self.blocks[block].term = term;
    }

    fn finish(self) -> Program {
        Program {
            name: self.name.to_string(),
            blocks: self.blocks,
            registers: self.registers.max(1),
            memory_bytes: self.memory_bytes,
        }
    }
}

/// Emit a counted loop skeleton: returns `(body, done, i)` where `body`
/// runs `count` times with induction register `i` (0-based), falling
/// through to `done`. The caller fills `body`'s extra ops (they run
/// before the induction update) and must not touch `i`.
fn counted_loop(pb: &mut Pb, from: BlockId, label: &str, count: u32) -> (BlockId, BlockId, VReg) {
    let i = pb.reg();
    let limit = pb.reg();
    let one = pb.reg();
    let cond = pb.reg();
    pb.push(from, Op::Const(i, 0));
    pb.push(from, Op::Const(limit, count));
    pb.push(from, Op::Const(one, 1));
    let head = pb.block(&format!("{label}_body"));
    let latch = pb.block(&format!("{label}_latch"));
    let done = pb.block(&format!("{label}_done"));
    pb.term(from, Term::Jump(head));
    pb.term(head, Term::Jump(latch));
    pb.push(latch, Op::Alu(AluOp::Add, i, i, one));
    pb.push(latch, Op::Alu(AluOp::Sltu, cond, i, limit));
    pb.term(latch, Term::Branch(cond, head, done));
    (head, done, i)
}

/// `crc32`: bitwise CRC-32 (poly 0xEDB88320) over a 64-byte buffer whose
/// bytes are `i * 7 + 3`. Integer-only.
pub fn crc32() -> Program {
    let mut pb = Pb::new("crc32", 256);
    let entry = pb.block("entry");
    let crc = pb.reg();
    let poly = pb.reg();
    let byte = pb.reg();
    let seven = pb.reg();
    let three = pb.reg();
    let ff = pb.reg();
    let onebit = pb.reg();
    let tmp = pb.reg();
    let mask = pb.reg();
    pb.push(entry, Op::Const(crc, 0xFFFF_FFFF));
    pb.push(entry, Op::Const(poly, 0xEDB8_8320));
    pb.push(entry, Op::Const(seven, 7));
    pb.push(entry, Op::Const(three, 3));
    pb.push(entry, Op::Const(ff, 0xFF));
    pb.push(entry, Op::Const(onebit, 1));

    let (outer, outer_done, i) = counted_loop(&mut pb, entry, "bytes", 64);
    // byte = (i * 7 + 3) & 0xFF; crc ^= byte
    pb.push(outer, Op::Mul(byte, i, seven));
    pb.push(outer, Op::Alu(AluOp::Add, byte, byte, three));
    pb.push(outer, Op::Alu(AluOp::And, byte, byte, ff));
    pb.push(outer, Op::Alu(AluOp::Xor, crc, crc, byte));
    let (inner, _inner_done, _j) = counted_loop(&mut pb, outer, "bits", 8);
    // mask = -(crc & 1); crc = (crc >> 1) ^ (poly & mask)
    pb.push(inner, Op::Alu(AluOp::And, tmp, crc, onebit));
    pb.push(inner, Op::Const(mask, 0));
    pb.push(inner, Op::Alu(AluOp::Sub, mask, mask, tmp));
    pb.push(inner, Op::Alu(AluOp::Srl, crc, crc, onebit));
    pb.push(inner, Op::Alu(AluOp::And, tmp, poly, mask));
    pb.push(inner, Op::Alu(AluOp::Xor, crc, crc, tmp));
    // Note: counted_loop wired outer's body to fall into its own latch;
    // inserting the inner loop rewired outer -> inner head. The inner
    // loop's `done` must continue to outer's latch: fix the wiring.
    // (counted_loop(from=outer) replaced outer's terminator.)
    let inner_done = pb.blocks.len() - 1; // "bits_done"
    let outer_latch = inner_done - 2 - 1; // fragile; recomputed below
    let _ = outer_latch;
    // Find blocks by label to wire robustly.
    let find = |pb: &Pb, label: &str| pb.blocks.iter().position(|b| b.label == label).unwrap();
    let bits_done = find(&pb, "bits_done");
    let bytes_latch = find(&pb, "bytes_latch");
    pb.term(bits_done, Term::Jump(bytes_latch));

    let result = pb.reg();
    let all_ones = pb.reg();
    pb.push(outer_done, Op::Const(all_ones, 0xFFFF_FFFF));
    pb.push(outer_done, Op::Alu(AluOp::Xor, result, crc, all_ones));
    pb.term(outer_done, Term::Return(result));
    pb.finish()
}

/// `matmult`: 12×12 integer matrix multiply; matrices are generated from
/// index arithmetic, result is the checksum of the product.
pub fn matmult() -> Program {
    let n = 12u32;
    let mut pb = Pb::new("matmult", 4 * (3 * 144) as usize + 16);
    let entry = pb.block("entry");
    let four = pb.reg();
    let nn = pb.reg();
    pb.push(entry, Op::Const(four, 4));
    pb.push(entry, Op::Const(nn, n));
    // Fill A (base 0) and B (base 576) with small values.
    let (fill, fill_done, idx) = counted_loop(&mut pb, entry, "fill", n * n);
    let addr = pb.reg();
    let value = pb.reg();
    let c5 = pb.reg();
    let c576 = pb.reg();
    let baddr = pb.reg();
    pb.push(fill, Op::Const(c5, 5));
    pb.push(fill, Op::Const(c576, 576));
    pb.push(fill, Op::Alu(AluOp::And, value, idx, c5));
    pb.push(fill, Op::Mul(addr, idx, four));
    pb.push(fill, Op::Store(addr, 0, value));
    pb.push(fill, Op::Alu(AluOp::Add, baddr, addr, c576));
    pb.push(fill, Op::Alu(AluOp::Xor, value, value, idx));
    pb.push(fill, Op::Store(baddr, 0, value));

    // Triple loop: checksum += A[i][k] * B[k][j].
    let checksum = pb.reg();
    pb.push(fill_done, Op::Const(checksum, 0));
    let (iloop, i_done, i) = counted_loop(&mut pb, fill_done, "i", n);
    let (jloop, _j_done, j) = counted_loop(&mut pb, iloop, "j", n);
    let acc = pb.reg();
    pb.push(jloop, Op::Const(acc, 0));
    let (kloop, k_done, k) = counted_loop(&mut pb, jloop, "k", n);
    let t1 = pb.reg();
    let t2 = pb.reg();
    let t3 = pb.reg();
    let a_val = pb.reg();
    let b_val = pb.reg();
    // A[i][k] at 4*(i*n + k); B[k][j] at 576 + 4*(k*n + j).
    pb.push(kloop, Op::Mul(t1, i, nn));
    pb.push(kloop, Op::Alu(AluOp::Add, t1, t1, k));
    pb.push(kloop, Op::Mul(t1, t1, four));
    pb.push(kloop, Op::Load(a_val, t1, 0));
    pb.push(kloop, Op::Mul(t2, k, nn));
    pb.push(kloop, Op::Alu(AluOp::Add, t2, t2, j));
    pb.push(kloop, Op::Mul(t2, t2, four));
    pb.push(kloop, Op::Load(b_val, t2, 576));
    pb.push(kloop, Op::Mul(t3, a_val, b_val));
    pb.push(kloop, Op::Alu(AluOp::Add, acc, acc, t3));
    pb.push(k_done, Op::Alu(AluOp::Xor, checksum, checksum, acc));
    // Wire loop exits: k_done -> j latch, j_done -> i latch.
    let find = |pb: &Pb, label: &str| pb.blocks.iter().position(|b| b.label == label).unwrap();
    let j_latch = find(&pb, "j_latch");
    let i_latch = find(&pb, "i_latch");
    let k_done_id = find(&pb, "k_done");
    let j_done_id = find(&pb, "j_done");
    pb.term(k_done_id, Term::Jump(j_latch));
    pb.term(j_done_id, Term::Jump(i_latch));
    pb.term(i_done, Term::Return(checksum));
    pb.finish()
}

/// `minver`: Gauss-Jordan inversion of a well-conditioned 3×3 FP32
/// matrix, iterated 40 times — the paper's representative workload.
pub fn minver() -> Program {
    let mut pb = Pb::new("minver", 4 * 32);
    let entry = pb.block("entry");
    // Registers for the 3x3 matrix (a..i) and its inverse accumulator.
    let m: Vec<VReg> = (0..9).map(|_| pb.reg()).collect();
    let inv: Vec<VReg> = (0..9).map(|_| pb.reg()).collect();
    let (rep, rep_done, _r) = counted_loop(&mut pb, entry, "rep", 40);
    // Load the matrix [[4,2,1],[2,5,3],[1,3,6]] (f32 bit patterns).
    let bits = [
        0x4080_0000u32,
        0x4000_0000,
        0x3F80_0000, // 4 2 1
        0x4000_0000,
        0x40A0_0000,
        0x4040_0000, // 2 5 3
        0x3F80_0000,
        0x4040_0000,
        0x40C0_0000, // 1 3 6
    ];
    for (reg, &b) in m.iter().zip(&bits) {
        pb.push(rep, Op::Const(*reg, b));
    }
    // Identity into inv.
    let one_f = 0x3F80_0000;
    for (index, reg) in inv.iter().enumerate() {
        let value = if index % 4 == 0 { one_f } else { 0 };
        pb.push(rep, Op::Const(*reg, value));
    }
    // Adjugate-based inverse: compute cofactors and determinant, then
    // scale. det = a(ei-fh) - b(di-fg) + c(dh-eg).
    let t = |pb: &mut Pb| pb.reg();
    let (c0, c1, c2) = (t(&mut pb), t(&mut pb), t(&mut pb));
    let (p, q) = (t(&mut pb), t(&mut pb));
    // c0 = e*i - f*h
    pb.push(rep, Op::Fp(FpuOp::Mul, p, m[4], m[8]));
    pb.push(rep, Op::Fp(FpuOp::Mul, q, m[5], m[7]));
    pb.push(rep, Op::Fp(FpuOp::Sub, c0, p, q));
    // c1 = f*g - d*i
    pb.push(rep, Op::Fp(FpuOp::Mul, p, m[5], m[6]));
    pb.push(rep, Op::Fp(FpuOp::Mul, q, m[3], m[8]));
    pb.push(rep, Op::Fp(FpuOp::Sub, c1, p, q));
    // c2 = d*h - e*g
    pb.push(rep, Op::Fp(FpuOp::Mul, p, m[3], m[7]));
    pb.push(rep, Op::Fp(FpuOp::Mul, q, m[4], m[6]));
    pb.push(rep, Op::Fp(FpuOp::Sub, c2, p, q));
    // det = a*c0 + b*c1 + c*c2
    let det = t(&mut pb);
    pb.push(rep, Op::Fp(FpuOp::Mul, det, m[0], c0));
    pb.push(rep, Op::Fp(FpuOp::Mul, p, m[1], c1));
    pb.push(rep, Op::Fp(FpuOp::Add, det, det, p));
    pb.push(rep, Op::Fp(FpuOp::Mul, p, m[2], c2));
    pb.push(rep, Op::Fp(FpuOp::Add, det, det, p));
    // inv[0] = c0 (times 1/det conceptually; we keep the adjugate and
    // multiply a few entries by det to stress the multiplier).
    pb.push(rep, Op::Fp(FpuOp::Mul, inv[0], c0, det));
    pb.push(rep, Op::Fp(FpuOp::Mul, inv[1], c1, det));
    pb.push(rep, Op::Fp(FpuOp::Mul, inv[2], c2, det));
    pb.push(rep, Op::Fp(FpuOp::Max, inv[3], c0, c1));
    pb.push(rep, Op::Fp(FpuOp::Min, inv[4], c1, c2));
    // checksum via compare chain
    let cmp = t(&mut pb);
    pb.push(rep, Op::Fp(FpuOp::Lt, cmp, inv[4], inv[3]));
    pb.push(rep, Op::Copy(inv[8], cmp));

    let result = pb.reg();
    pb.push(rep_done, Op::Copy(result, inv[0]));
    pb.term(rep_done, Term::Return(result));
    pb.finish()
}

/// `fir`: 16-tap FIR filter over 200 FP32 samples.
pub fn fir() -> Program {
    let mut pb = Pb::new("fir", 4 * 300);
    let entry = pb.block("entry");
    let four = pb.reg();
    pb.push(entry, Op::Const(four, 4));
    // Samples: x[i] = float-ish bit pattern derived from i.
    let (fill, fill_done, i) = counted_loop(&mut pb, entry, "fill", 200);
    let addr = pb.reg();
    let v = pb.reg();
    let base = pb.reg();
    pb.push(fill, Op::Const(base, 0x3F00_0000));
    pb.push(fill, Op::Mul(addr, i, four));
    pb.push(fill, Op::Alu(AluOp::Add, v, base, i));
    pb.push(fill, Op::Store(addr, 0, v));

    let acc_total = pb.reg();
    pb.push(fill_done, Op::Const(acc_total, 0));
    let (outer, outer_done, n) = counted_loop(&mut pb, fill_done, "samples", 180);
    let acc = pb.reg();
    pb.push(outer, Op::Const(acc, 0));
    let (taps, taps_done, k) = counted_loop(&mut pb, outer, "taps", 16);
    let t1 = pb.reg();
    let x = pb.reg();
    let coeff = pb.reg();
    let prod = pb.reg();
    pb.push(taps, Op::Alu(AluOp::Add, t1, n, k));
    pb.push(taps, Op::Mul(t1, t1, four));
    pb.push(taps, Op::Load(x, t1, 0));
    pb.push(taps, Op::Const(coeff, 0x3E80_0000)); // 0.25
    pb.push(taps, Op::Fp(FpuOp::Mul, prod, x, coeff));
    pb.push(taps, Op::Fp(FpuOp::Add, acc, acc, prod));
    pb.push(taps_done, Op::Alu(AluOp::Xor, acc_total, acc_total, acc));
    let find = |pb: &Pb, label: &str| pb.blocks.iter().position(|b| b.label == label).unwrap();
    let samples_latch = find(&pb, "samples_latch");
    let taps_done_id = find(&pb, "taps_done");
    pb.term(taps_done_id, Term::Jump(samples_latch));
    pb.term(outer_done, Term::Return(acc_total));
    pb.finish()
}

/// `edn`: integer vector kernel (dot products with saturation).
pub fn edn() -> Program {
    let mut pb = Pb::new("edn", 4 * 300);
    let entry = pb.block("entry");
    let four = pb.reg();
    pb.push(entry, Op::Const(four, 4));
    let (fill, fill_done, i) = counted_loop(&mut pb, entry, "fill", 256);
    let addr = pb.reg();
    let v = pb.reg();
    let c13 = pb.reg();
    pb.push(fill, Op::Const(c13, 13));
    pb.push(fill, Op::Mul(v, i, c13));
    pb.push(fill, Op::Mul(addr, i, four));
    pb.push(fill, Op::Store(addr, 0, v));

    let acc = pb.reg();
    pb.push(fill_done, Op::Const(acc, 0));
    let (dot, dot_done, j) = counted_loop(&mut pb, fill_done, "dot", 4096);
    let mask = pb.reg();
    let idx = pb.reg();
    let a = pb.reg();
    let b = pb.reg();
    let prod = pb.reg();
    let c255 = pb.reg();
    let c64 = pb.reg();
    pb.push(dot, Op::Const(c255, 255));
    pb.push(dot, Op::Const(c64, 64));
    pb.push(dot, Op::Alu(AluOp::And, mask, j, c255));
    pb.push(dot, Op::Mul(idx, mask, four));
    pb.push(dot, Op::Load(a, idx, 0));
    pb.push(dot, Op::Alu(AluOp::Add, b, mask, c64));
    pb.push(dot, Op::Alu(AluOp::And, b, b, c255));
    pb.push(dot, Op::Mul(idx, b, four));
    pb.push(dot, Op::Load(b, idx, 0));
    pb.push(dot, Op::Mul(prod, a, b));
    pb.push(dot, Op::Alu(AluOp::Add, acc, acc, prod));
    pb.push(dot, Op::Alu(AluOp::Sra, prod, acc, four));
    pb.push(dot, Op::Alu(AluOp::Xor, acc, acc, prod));
    pb.term(dot_done, Term::Return(acc));
    let _ = j;
    pb.finish()
}

/// `cubic`: Newton iterations on x^3 - 20 = 0 in FP32.
pub fn cubic() -> Program {
    let mut pb = Pb::new("cubic", 16);
    let entry = pb.block("entry");
    let x = pb.reg();
    let twenty = pb.reg();
    let three = pb.reg();
    let two = pb.reg();
    pb.push(entry, Op::Const(x, 0x4040_0000)); // 3.0 initial guess
    pb.push(entry, Op::Const(twenty, 0x41A0_0000)); // 20.0
    pb.push(entry, Op::Const(three, 0x4040_0000));
    pb.push(entry, Op::Const(two, 0x4000_0000));
    let (body, done, _i) = counted_loop(&mut pb, entry, "newton", 600);
    // x = (2x + 20/x^2) / 3, restructured multiplication-only:
    // x2 = x*x; num = 2*x*x2 + 20; den = 3*x2; x = num * recip-ish —
    // avoid division: use the multiplicative form x = x - (x^3-20)*k
    // with fixed k = 0.02.
    let x2 = pb.reg();
    let x3 = pb.reg();
    let err = pb.reg();
    let k = pb.reg();
    let step = pb.reg();
    pb.push(body, Op::Fp(FpuOp::Mul, x2, x, x));
    pb.push(body, Op::Fp(FpuOp::Mul, x3, x2, x));
    pb.push(body, Op::Fp(FpuOp::Sub, err, x3, twenty));
    pb.push(body, Op::Const(k, 0x3CA3_D70A)); // 0.02
    pb.push(body, Op::Fp(FpuOp::Mul, step, err, k));
    pb.push(body, Op::Fp(FpuOp::Sub, x, x, step));
    let _ = (two, three);
    pb.term(done, Term::Return(x));
    pb.finish()
}

/// `huffbench`-style bit packing: shifts, masks and table walks.
pub fn huff() -> Program {
    let mut pb = Pb::new("huff", 4 * 80);
    let entry = pb.block("entry");
    let acc = pb.reg();
    let bitbuf = pb.reg();
    let one = pb.reg();
    let c3 = pb.reg();
    let c31 = pb.reg();
    pb.push(entry, Op::Const(acc, 0));
    pb.push(entry, Op::Const(bitbuf, 0x9E37_79B9));
    pb.push(entry, Op::Const(one, 1));
    pb.push(entry, Op::Const(c3, 3));
    pb.push(entry, Op::Const(c31, 31));
    let (body, done, i) = counted_loop(&mut pb, entry, "symbols", 5000);
    let len = pb.reg();
    let code = pb.reg();
    let t = pb.reg();
    // len = (bitbuf & 3) + 1; code = bitbuf >> len; rotate the buffer.
    pb.push(body, Op::Alu(AluOp::And, len, bitbuf, c3));
    pb.push(body, Op::Alu(AluOp::Add, len, len, one));
    pb.push(body, Op::Alu(AluOp::Srl, code, bitbuf, len));
    pb.push(body, Op::Alu(AluOp::Sll, t, bitbuf, one));
    pb.push(body, Op::Alu(AluOp::Srl, bitbuf, bitbuf, c31));
    pb.push(body, Op::Alu(AluOp::Or, bitbuf, bitbuf, t));
    pb.push(body, Op::Alu(AluOp::Xor, bitbuf, bitbuf, i));
    pb.push(body, Op::Alu(AluOp::Add, acc, acc, code));
    pb.term(done, Term::Return(acc));
    pb.finish()
}

/// `nbody`: a 2-body gravity-like update, FP32, 400 steps.
pub fn nbody() -> Program {
    let mut pb = Pb::new("nbody", 16);
    let entry = pb.block("entry");
    let x = pb.reg();
    let v = pb.reg();
    let dt = pb.reg();
    let g = pb.reg();
    pb.push(entry, Op::Const(x, 0x3F80_0000)); // 1.0
    pb.push(entry, Op::Const(v, 0x3DCC_CCCD)); // 0.1
    pb.push(entry, Op::Const(dt, 0x3C23_D70A)); // 0.01
    pb.push(entry, Op::Const(g, 0xBF00_0000)); // -0.5
    let (body, done, _i) = counted_loop(&mut pb, entry, "steps", 400);
    let a = pb.reg();
    let dv = pb.reg();
    let dx = pb.reg();
    // a = g * x; v += a*dt; x += v*dt.
    pb.push(body, Op::Fp(FpuOp::Mul, a, g, x));
    pb.push(body, Op::Fp(FpuOp::Mul, dv, a, dt));
    pb.push(body, Op::Fp(FpuOp::Add, v, v, dv));
    pb.push(body, Op::Fp(FpuOp::Mul, dx, v, dt));
    pb.push(body, Op::Fp(FpuOp::Add, x, x, dx));
    pb.term(done, Term::Return(x));
    pb.finish()
}

/// `primecount`: trial-division prime counting up to 400 (divider-heavy).
pub fn primecount() -> Program {
    let mut pb = Pb::new("primecount", 16);
    let entry = pb.block("entry");
    let count = pb.reg();
    let two = pb.reg();
    pb.push(entry, Op::Const(count, 0));
    pb.push(entry, Op::Const(two, 2));
    let (outer, outer_done, i) = counted_loop(&mut pb, entry, "candidates", 400);
    // n = i + 2; composite = OR over d in 2..10 of (n % d == 0 && n != d)
    let n = pb.reg();
    let composite = pb.reg();
    pb.push(outer, Op::Alu(AluOp::Add, n, i, two));
    pb.push(outer, Op::Const(composite, 0));
    let (dloop, d_done, dd) = counted_loop(&mut pb, outer, "divisors", 12);
    let d = pb.reg();
    let quotient = pb.reg();
    let back = pb.reg();
    let rem_zero = pb.reg();
    let neq = pb.reg();
    let hit = pb.reg();
    pb.push(dloop, Op::Alu(AluOp::Add, d, dd, two));
    pb.push(dloop, Op::Divu(quotient, n, d));
    pb.push(dloop, Op::Mul(back, quotient, d));
    pb.push(dloop, Op::Alu(AluOp::Sub, back, n, back));
    pb.push(dloop, Op::Const(rem_zero, 1));
    pb.push(dloop, Op::Alu(AluOp::Sltu, neq, back, rem_zero)); // back == 0
    pb.push(dloop, Op::Alu(AluOp::Xor, hit, n, d));
    pb.push(dloop, Op::Alu(AluOp::Sltu, hit, rem_zero, hit)); // n != d  (hit >= 1)
    pb.push(dloop, Op::Alu(AluOp::And, hit, hit, neq));
    pb.push(dloop, Op::Alu(AluOp::Or, composite, composite, hit));
    let is_prime = pb.reg();
    let onec = pb.reg();
    pb.push(d_done, Op::Const(onec, 1));
    pb.push(d_done, Op::Alu(AluOp::Sltu, is_prime, composite, onec)); // !composite
    pb.push(d_done, Op::Alu(AluOp::Add, count, count, is_prime));
    let find = |pb: &Pb, label: &str| pb.blocks.iter().position(|b| b.label == label).unwrap();
    let candidates_latch = find(&pb, "candidates_latch");
    let d_done_id = find(&pb, "divisors_done");
    pb.term(d_done_id, Term::Jump(candidates_latch));
    pb.term(outer_done, Term::Return(count));
    pb.finish()
}

/// `st`: streaming statistics (mean/variance-flavoured FP32 accumulation).
pub fn st() -> Program {
    let mut pb = Pb::new("st", 16);
    let entry = pb.block("entry");
    let sum = pb.reg();
    let sumsq = pb.reg();
    let x = pb.reg();
    let step = pb.reg();
    pb.push(entry, Op::Const(sum, 0));
    pb.push(entry, Op::Const(sumsq, 0));
    pb.push(entry, Op::Const(x, 0x3F00_0000)); // 0.5
    pb.push(entry, Op::Const(step, 0x3A83_126F)); // 0.001
    let (body, done, _i) = counted_loop(&mut pb, entry, "samples", 1200);
    let sq = pb.reg();
    pb.push(body, Op::Fp(FpuOp::Add, sum, sum, x));
    pb.push(body, Op::Fp(FpuOp::Mul, sq, x, x));
    pb.push(body, Op::Fp(FpuOp::Add, sumsq, sumsq, sq));
    pb.push(body, Op::Fp(FpuOp::Add, x, x, step));
    let diff = pb.reg();
    pb.push(done, Op::Fp(FpuOp::Sub, diff, sumsq, sum));
    pb.term(done, Term::Return(diff));
    pb.finish()
}

/// `mont32`: Montgomery-style modular multiply-accumulate, integer.
pub fn mont32() -> Program {
    let mut pb = Pb::new("mont32", 16);
    let entry = pb.block("entry");
    let acc = pb.reg();
    let a = pb.reg();
    let b = pb.reg();
    let modulus = pb.reg();
    let c16 = pb.reg();
    pb.push(entry, Op::Const(acc, 1));
    pb.push(entry, Op::Const(a, 0x1234_5677));
    pb.push(entry, Op::Const(b, 0x0FED_CBA9));
    pb.push(entry, Op::Const(modulus, 0x7FFF_FFFF));
    pb.push(entry, Op::Const(c16, 16));
    let (body, done, i) = counted_loop(&mut pb, entry, "rounds", 3000);
    let lo = pb.reg();
    let hi = pb.reg();
    let t = pb.reg();
    pb.push(body, Op::Mul(lo, acc, a));
    pb.push(body, Op::Alu(AluOp::Srl, hi, lo, c16));
    pb.push(body, Op::Alu(AluOp::Xor, t, lo, hi));
    pb.push(body, Op::Alu(AluOp::Add, t, t, b));
    pb.push(body, Op::Alu(AluOp::And, acc, t, modulus));
    pb.push(body, Op::Alu(AluOp::Xor, acc, acc, i));
    pb.term(done, Term::Return(acc));
    pb.finish()
}

/// `nsichneu`-style Petri-net state machine: branch-heavy integer code
/// whose control flow depends on evolving state bits.
pub fn nsichneu() -> Program {
    let mut pb = Pb::new("nsichneu", 16);
    let entry = pb.block("entry");
    let state = pb.reg();
    let acc = pb.reg();
    let one = pb.reg();
    let c7 = pb.reg();
    let c3 = pb.reg();
    pb.push(entry, Op::Const(state, 0x5A5A_0001));
    pb.push(entry, Op::Const(acc, 0));
    pb.push(entry, Op::Const(one, 1));
    pb.push(entry, Op::Const(c7, 7));
    pb.push(entry, Op::Const(c3, 3));
    let (body, done, i) = counted_loop(&mut pb, entry, "steps", 4000);
    // Dispatch on the low bits of the state: two "transitions" with
    // different mixing, selected per iteration.
    let sel = pb.reg();
    let t = pb.reg();
    pb.push(body, Op::Alu(AluOp::And, sel, state, one));
    let t_a = pb.block("trans_a");
    let t_b = pb.block("trans_b");
    let merge = pb.block("merge");
    pb.term(body, Term::Branch(sel, t_a, t_b));
    // transition A: state = (state >> 3) ^ (state + i)
    pb.push(t_a, Op::Alu(AluOp::Srl, t, state, c3));
    pb.push(t_a, Op::Alu(AluOp::Add, state, state, i));
    pb.push(t_a, Op::Alu(AluOp::Xor, state, state, t));
    pb.term(t_a, Term::Jump(merge));
    // transition B: state = (state << 7) | (state >> 25), acc += 1
    pb.push(t_b, Op::Alu(AluOp::Sll, t, state, c7));
    pb.push(t_b, Op::Const(sel, 25));
    pb.push(t_b, Op::Alu(AluOp::Srl, state, state, sel));
    pb.push(t_b, Op::Alu(AluOp::Or, state, state, t));
    pb.push(t_b, Op::Alu(AluOp::Add, acc, acc, one));
    pb.term(t_b, Term::Jump(merge));
    pb.push(merge, Op::Alu(AluOp::Xor, acc, acc, state));
    // merge falls through to the loop latch.
    let find = |pb: &Pb, label: &str| pb.blocks.iter().position(|b| b.label == label).unwrap();
    let latch = find(&pb, "steps_latch");
    pb.term(merge, Term::Jump(latch));
    pb.term(done, Term::Return(acc));
    pb.finish()
}

/// All eleven workloads, integer-heavy and float-heavy mixed, in a fixed
/// order (the Fig. 9 x-axis).
pub fn all() -> Vec<Program> {
    vec![
        crc32(),
        matmult(),
        minver(),
        fir(),
        edn(),
        cubic(),
        huff(),
        nbody(),
        nsichneu(),
        primecount(),
        st(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mini_ir::Interpreter;

    #[test]
    fn all_workloads_terminate_and_compute() {
        for program in all() {
            let mut interp = Interpreter::new(&program);
            let result = interp.run(&program, None);
            assert!(
                result.cycles > 1_000,
                "{}: {} cycles",
                program.name,
                result.cycles
            );
            assert!(
                result.cycles < 5_000_000,
                "{}: {} cycles is too slow for the harness",
                program.name,
                result.cycles
            );
            // Deterministic: a second run agrees.
            let mut again = Interpreter::new(&program);
            assert_eq!(
                again.run(&program, None).value,
                result.value,
                "{}",
                program.name
            );
        }
    }

    #[test]
    fn crc32_matches_reference() {
        // Reference CRC-32 of the same synthetic buffer.
        let mut crc = 0xFFFF_FFFFu32;
        for i in 0..64u32 {
            let byte = (i * 7 + 3) & 0xFF;
            crc ^= byte;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        let expected = crc ^ 0xFFFF_FFFF;

        let program = crc32();
        let mut interp = Interpreter::new(&program);
        assert_eq!(interp.run(&program, None).value, expected);
    }

    #[test]
    fn primecount_counts_primes() {
        // Primes n with 2 <= n <= 401 that have no divisor in 2..=13
        // (the kernel only trial-divides up to 13, so small semiprimes of
        // larger factors count too — compute the same reference).
        let mut expected = 0u32;
        for i in 0..400u32 {
            let n = i + 2;
            let mut composite = false;
            for d in 2..=13u32 {
                if n % d == 0 && n != d {
                    composite = true;
                }
            }
            if !composite {
                expected += 1;
            }
        }
        let program = primecount();
        let mut interp = Interpreter::new(&program);
        assert_eq!(interp.run(&program, None).value, expected);
    }

    #[test]
    fn newton_converges() {
        let program = cubic();
        let mut interp = Interpreter::new(&program);
        let bits = interp.run(&program, None).value;
        let x = f32::from_bits(bits);
        assert!((x * x * x - 20.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn workload_mix_exercises_both_units() {
        let mut fp_heavy = 0;
        let mut int_only = 0;
        for program in all() {
            let has_fp = program
                .blocks
                .iter()
                .any(|b| b.ops.iter().any(|op| matches!(op, Op::Fp(..))));
            if has_fp {
                fp_heavy += 1;
            } else {
                int_only += 1;
            }
        }
        assert!(fp_heavy >= 4, "need float workloads for FPU SP profiles");
        assert!(int_only >= 4, "need integer workloads so the FPU idles");
    }
}
