//! Instruction construction: module-level traces → software test cases
//! (paper §3.3.5).

use std::collections::BTreeMap;

use vega_circuits::golden::{alu_golden, fpu_golden, AluOp, FpuOp};
use vega_formal::Trace;
use vega_riscv::{Instr, Reg};
use vega_sim::Simulator;

use crate::instrument::ShadowInstrumented;
use crate::module::ModuleKind;
use crate::testcase::{Check, Provenance, TestCase};

/// Why a formal waveform could not be turned into a test case — the
/// paper's "FC" outcome (§5.2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConversionError {
    /// Replaying the trace produces no difference that software could
    /// observe: the only corrupted outputs are status flags whose bits an
    /// earlier instruction of the same trace already raised, or signals
    /// (like routing tags) that the ISA cannot read.
    Unobservable,
    /// The trace used an operation encoding outside the lookup table.
    UnknownOp {
        /// The offending encoding.
        encoding: u64,
    },
}

impl std::fmt::Display for ConversionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConversionError::Unobservable => {
                write!(
                    f,
                    "no software-observable effect (sticky flags already set)"
                )
            }
            ConversionError::UnknownOp { encoding } => {
                write!(f, "trace uses unknown operation encoding {encoding}")
            }
        }
    }
}

impl std::error::Error for ConversionError {}

/// Construct a runnable [`TestCase`] from a covering trace.
///
/// The conversion (1) schedules one module operation per trace cycle,
/// back-to-back, with operand values preloaded into registers before the
/// trace window (the paper's "mapping constant values to specific
/// registers"); (2) derives each operation's expected result from the
/// golden model; and (3) *replays* the trace on the shadow-instrumented
/// netlist to confirm the corruption is software-observable — rejecting
/// waveforms whose only symptom is a sticky status flag that the trace
/// itself already raised (the paper's "FC").
pub fn construct_test_case(
    module: ModuleKind,
    instrumented: &ShadowInstrumented,
    trace: &Trace,
    name: String,
    target: String,
) -> Result<TestCase, ConversionError> {
    match module {
        ModuleKind::Alu => construct_alu(instrumented, trace, name, target),
        ModuleKind::Fpu => construct_fpu(instrumented, trace, name, target),
        ModuleKind::PaperAdder => construct_adder(instrumented, trace, name, target),
    }
}

/// Materialize a 32-bit constant into `rd` (lui+addi, or addi alone).
fn li(rd: Reg, value: u32, out: &mut Vec<Instr>) {
    let low = (value & 0xFFF) as i32;
    let low_sext = (low << 20) >> 20;
    let high = value.wrapping_sub(low_sext as u32) >> 12;
    if high == 0 {
        out.push(Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs1: Reg::ZERO,
            imm: low_sext,
        });
    } else {
        out.push(Instr::Lui { rd, imm20: high });
        if low_sext != 0 {
            out.push(Instr::AluImm {
                op: AluOp::Add,
                rd,
                rs1: rd,
                imm: low_sext,
            });
        }
    }
}

fn estimated_cycles(instructions: &[Instr], module: ModuleKind) -> u64 {
    instructions
        .iter()
        .map(|i| match i {
            Instr::Fpu { .. } => module.latency() as u64,
            Instr::Branch { .. } => 1,
            _ => 1,
        })
        .sum()
}

fn construct_alu(
    instrumented: &ShadowInstrumented,
    trace: &Trace,
    name: String,
    target: String,
) -> Result<TestCase, ConversionError> {
    let latency = ModuleKind::Alu.latency();

    // Decode the trace window into operations.
    let mut ops: Vec<(AluOp, u32, u32)> = Vec::new();
    for cycle in &trace.inputs {
        let encoding = cycle["op"];
        let op = AluOp::from_encoding(encoding).ok_or(ConversionError::UnknownOp { encoding })?;
        ops.push((op, cycle["a"] as u32, cycle["b"] as u32));
    }

    // Trace-window stimulus + result checks (cycle indices are relative
    // to the window; the preload offset is added below).
    let window: Vec<BTreeMap<String, u64>> = trace.inputs.clone();
    let window_checks: Vec<(usize, String, u64)> = ops
        .iter()
        .enumerate()
        .map(|(t, &(op, a, b))| {
            (
                t + latency,
                "r".to_string(),
                u64::from(alu_golden(op, a, b)),
            )
        })
        .collect();

    // Observability replay on the instrumented netlist.
    if !replay_observable(instrumented, &window, &window_checks, &[]) {
        return Err(ConversionError::Unobservable);
    }

    // Operand preload window: one register materialization per distinct
    // constant. Each preload op flows through the ALU as an addi-style
    // transaction (op = Add, a = 0).
    let mut const_reg: BTreeMap<u32, Reg> = BTreeMap::new();
    let mut preload: Vec<BTreeMap<String, u64>> = Vec::new();
    let mut instructions: Vec<Instr> = Vec::new();
    for &(_, a, b) in &ops {
        for value in [a, b] {
            if !const_reg.contains_key(&value) {
                let reg = Reg(8 + const_reg.len() as u8);
                const_reg.insert(value, reg);
                li(reg, value, &mut instructions);
                let mut tx = BTreeMap::new();
                tx.insert("op".to_string(), AluOp::Add.encoding());
                tx.insert("a".to_string(), 0);
                tx.insert("b".to_string(), u64::from(value));
                preload.push(tx);
            }
        }
    }
    let offset = preload.len();

    // The back-to-back operation window.
    for (i, &(op, a, b)) in ops.iter().enumerate() {
        instructions.push(Instr::Alu {
            op,
            rd: Reg(22 + i as u8 % 6),
            rs1: const_reg[&a],
            rs2: const_reg[&b],
        });
    }
    // Compares.
    for (i, &(op, a, b)) in ops.iter().enumerate() {
        li(Reg(29), alu_golden(op, a, b), &mut instructions);
        instructions.push(Instr::Branch {
            cond: vega_riscv::BranchCond::Ne,
            rs1: Reg(22 + i as u8 % 6),
            rs2: Reg(29),
            offset: 8, // to the failure handler
        });
    }

    let mut stimulus = preload;
    stimulus.extend(window);
    let checks = window_checks
        .into_iter()
        .map(|(cycle, port, expected)| Check::PortAt {
            cycle: cycle + offset,
            port,
            expected,
        })
        .collect();

    let cpu_cycles = estimated_cycles(&instructions, ModuleKind::Alu);
    Ok(TestCase {
        name,
        target,
        stimulus,
        checks,
        instructions,
        cpu_cycles,
        provenance: Provenance::Formal,
    })
}

fn construct_fpu(
    instrumented: &ShadowInstrumented,
    trace: &Trace,
    name: String,
    target: String,
) -> Result<TestCase, ConversionError> {
    let latency = ModuleKind::Fpu.latency();

    // Valid cycles carry FP operations; invalid ones are pipeline
    // bubbles (non-FP instructions in the real program).
    struct FpOp {
        cycle: usize,
        op: FpuOp,
        a: u32,
        b: u32,
    }
    let mut ops: Vec<FpOp> = Vec::new();
    for (t, cycle) in trace.inputs.iter().enumerate() {
        if cycle["valid"] == 1 {
            let encoding = cycle["op"];
            let op =
                FpuOp::from_encoding(encoding).ok_or(ConversionError::UnknownOp { encoding })?;
            ops.push(FpOp {
                cycle: t,
                op,
                a: cycle["a"] as u32,
                b: cycle["b"] as u32,
            });
        }
    }

    let window: Vec<BTreeMap<String, u64>> = trace.inputs.clone();
    let mut result_checks: Vec<(usize, String, u64)> = Vec::new();
    let mut flag_cycles: Vec<usize> = Vec::new();
    let mut flags_accum = 0u64;
    for op in &ops {
        let golden = fpu_golden(op.op, op.a, op.b);
        result_checks.push((op.cycle + latency, "r".into(), u64::from(golden.bits)));
        result_checks.push((op.cycle + latency, "out_valid".into(), 1));
        flag_cycles.push(op.cycle + latency);
        flags_accum |= u64::from(golden.flags.to_bits());
    }
    let sticky = (flag_cycles.clone(), "flags".to_string(), flags_accum);

    if !replay_observable(
        instrumented,
        &window,
        &result_checks,
        std::slice::from_ref(&sticky),
    ) {
        return Err(ConversionError::Unobservable);
    }

    // Instructions: preload operand bit patterns into integer registers,
    // move them into float registers, run the ops back-to-back (bubbles
    // become nops), then compare results and the accumulated flags.
    let mut instructions: Vec<Instr> = Vec::new();
    let mut const_freg: BTreeMap<u32, u8> = BTreeMap::new();
    for op in &ops {
        for value in [op.a, op.b] {
            if !const_freg.contains_key(&value) {
                let freg = 1 + const_freg.len() as u8;
                const_freg.insert(value, freg);
                li(Reg(29), value, &mut instructions);
                instructions.push(Instr::FmvWX {
                    rd: freg,
                    rs: Reg(29),
                });
            }
        }
    }
    let mut last_cycle = None::<usize>;
    for (i, op) in ops.iter().enumerate() {
        // Bubbles between valid cycles become integer nops.
        if let Some(prev) = last_cycle {
            for _ in prev + 1..op.cycle {
                instructions.push(Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg::ZERO,
                    rs1: Reg::ZERO,
                    imm: 0,
                });
            }
        }
        last_cycle = Some(op.cycle);
        instructions.push(Instr::Fpu {
            op: op.op,
            rd: 20 + (i as u8 % 6),
            rs1: const_freg[&op.a],
            rs2: const_freg[&op.b],
        });
    }
    for (i, op) in ops.iter().enumerate() {
        let golden = fpu_golden(op.op, op.a, op.b);
        instructions.push(Instr::FmvXW {
            rd: Reg(28),
            rs: 20 + (i as u8 % 6),
        });
        li(Reg(29), golden.bits, &mut instructions);
        instructions.push(Instr::Branch {
            cond: vega_riscv::BranchCond::Ne,
            rs1: Reg(28),
            rs2: Reg(29),
            offset: 8,
        });
    }
    instructions.push(Instr::ReadClearFflags { rd: Reg(28) });
    li(Reg(29), flags_accum as u32, &mut instructions);
    instructions.push(Instr::Branch {
        cond: vega_riscv::BranchCond::Ne,
        rs1: Reg(28),
        rs2: Reg(29),
        offset: 8,
    });

    // FPU operands arrive via the float register file, so there is no
    // module-visible preload window: the stimulus is the trace itself.
    let mut checks: Vec<Check> = result_checks
        .into_iter()
        .map(|(cycle, port, expected)| Check::PortAt {
            cycle,
            port,
            expected,
        })
        .collect();
    checks.push(Check::StickyOr {
        cycles: sticky.0,
        port: sticky.1,
        expected: sticky.2,
    });

    let cpu_cycles = estimated_cycles(&instructions, ModuleKind::Fpu);
    Ok(TestCase {
        name,
        target,
        stimulus: window,
        checks,
        instructions,
        cpu_cycles,
        provenance: Provenance::Formal,
    })
}

fn construct_adder(
    instrumented: &ShadowInstrumented,
    trace: &Trace,
    name: String,
    target: String,
) -> Result<TestCase, ConversionError> {
    let latency = ModuleKind::PaperAdder.latency();
    // Soak repetition: the formal witness is *minimal* — often a single
    // launch-flop toggle — which is enough for a constant wrong value C
    // but gives a C=random fault only one coin-flip chance to corrupt a
    // checked cycle. Tiling the witness re-triggers the same activation
    // every repetition, so the deployed test samples the random fault
    // several times per run (the adder is a feed-forward pipeline, so
    // the per-cycle expected outputs stay valid across the seam).
    const SOAK_REPEATS: usize = 4;
    let window: Vec<BTreeMap<String, u64>> = trace
        .inputs
        .iter()
        .cycle()
        .take(trace.inputs.len() * SOAK_REPEATS)
        .cloned()
        .collect();
    let checks: Vec<(usize, String, u64)> = window
        .iter()
        .enumerate()
        .map(|(t, cycle)| (t + latency, "o".to_string(), (cycle["a"] + cycle["b"]) % 4))
        .collect();
    if !replay_observable(instrumented, &window, &checks, &[]) {
        return Err(ConversionError::Unobservable);
    }
    let checks = checks
        .into_iter()
        .map(|(cycle, port, expected)| Check::PortAt {
            cycle,
            port,
            expected,
        })
        .collect();
    let cpu_cycles = (window.len() + latency) as u64;
    Ok(TestCase {
        name,
        target,
        stimulus: window,
        checks,
        instructions: Vec::new(),
        cpu_cycles,
        provenance: Provenance::Formal,
    })
}

/// Replay the trace window on the shadow-instrumented netlist and decide
/// whether any *software-observable* check would catch the divergence:
/// a result-port or handshake mismatch at a result cycle, or a change in
/// the accumulated sticky flags.
fn replay_observable(
    instrumented: &ShadowInstrumented,
    window: &[BTreeMap<String, u64>],
    port_checks: &[(usize, String, u64)],
    sticky_checks: &[(Vec<usize>, String, u64)],
) -> bool {
    let netlist = &instrumented.netlist;
    let mut sim = Simulator::new(netlist);
    let horizon = window.len() + 4;
    let mut sticky_orig = vec![0u64; sticky_checks.len()];
    let mut sticky_shadow = vec![0u64; sticky_checks.len()];
    let mut observable = false;

    let has_valid = netlist.port("valid").is_some();
    for cycle in 0..horizon {
        if let Some(inputs) = window.get(cycle) {
            for (port, value) in inputs {
                sim.set_input(port, *value);
            }
        } else if has_valid {
            sim.set_input("valid", 0);
        }
        sim.settle_inputs();

        for (check_cycle, port, _) in port_checks {
            if *check_cycle != cycle {
                continue;
            }
            let shadow_port = format!("{port}_s");
            if netlist.port(&shadow_port).is_some() && sim.output(port) != sim.output(&shadow_port)
            {
                observable = true;
            }
        }
        for (index, (cycles, port, _)) in sticky_checks.iter().enumerate() {
            if cycles.contains(&cycle) {
                sticky_orig[index] |= sim.output(port);
                let shadow_port = format!("{port}_s");
                if netlist.port(&shadow_port).is_some() {
                    sticky_shadow[index] |= sim.output(&shadow_port);
                } else {
                    sticky_shadow[index] |= sim.output(port);
                }
            }
        }
        sim.step();
    }
    if sticky_orig != sticky_shadow {
        observable = true;
    }
    observable
}
