//! Fuzzing-based test case generation — the paper's §6.3 future-work
//! direction, implemented: instead of (or before) the formal cover
//! search, generate random candidate stimuli and keep the first one that
//! makes the shadow replica diverge in *simulation*. No proofs, no
//! completeness — but candidates are screened in microseconds, so this
//! explores easy faults far faster than bounded model checking, exactly
//! the trade the paper anticipates ("fast exploration of useful test
//! cases via random and fuzzing-based methods" + "efficient filtering").

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vega_formal::Trace;
use vega_sim::{Simulator64, LANES};

use crate::construct::{construct_test_case, ConversionError};
use crate::instrument::ShadowInstrumented;
use crate::module::ModuleKind;
use crate::testcase::{Provenance, TestCase};

/// Fuzzing limits.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Random candidate stimuli to try before giving up.
    pub candidates: usize,
    /// Length of each candidate, in cycles.
    pub max_cycles: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            candidates: 400,
            max_cycles: 8,
            seed: 0xF422,
        }
    }
}

/// Statistics from one fuzzing campaign.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzStats {
    /// Candidates simulated.
    pub candidates_tried: usize,
    /// Total simulated cycles.
    pub cycles_simulated: u64,
}

/// One cycle of random module inputs respecting the module's protocol.
fn random_cycle(module: ModuleKind, rng: &mut StdRng) -> BTreeMap<String, u64> {
    let mut cycle = BTreeMap::new();
    match module {
        ModuleKind::Alu => {
            let ops = vega_circuits::alu::alu_valid_ops();
            cycle.insert("op".into(), ops[rng.gen_range(0..ops.len())]);
            cycle.insert("a".into(), u64::from(rng.gen::<u32>()));
            cycle.insert("b".into(), u64::from(rng.gen::<u32>()));
        }
        ModuleKind::Fpu => {
            let ops = vega_circuits::fpu::fpu_valid_ops();
            cycle.insert("op".into(), ops[rng.gen_range(0..ops.len())]);
            cycle.insert("valid".into(), u64::from(rng.gen_bool(0.85)));
            cycle.insert("tag".into(), 0);
            cycle.insert("a".into(), u64::from(rng.gen::<u32>()));
            cycle.insert("b".into(), u64::from(rng.gen::<u32>()));
        }
        ModuleKind::PaperAdder => {
            cycle.insert("a".into(), rng.gen_range(0..4));
            cycle.insert("b".into(), rng.gen_range(0..4));
        }
    }
    cycle
}

/// Search for a divergence-inducing stimulus by random simulation of the
/// shadow-instrumented netlist, 64 candidates per pass on the
/// bit-parallel [`Simulator64`]: every lane carries an independent
/// random stimulus, divergence is a single XOR/OR word sweep over the
/// observable pairs, and the first covering lane (lowest lane index,
/// truncated to that lane's own firing cycle) is converted through the
/// ordinary instruction-construction pipeline — so fuzzed and formal
/// test cases are interchangeable artifacts.
///
/// Returns the test case, the witness trace, and campaign statistics;
/// `Ok(None)` means the budget ran out without a hit (which, unlike the
/// formal path, proves nothing).
pub fn fuzz_test_case(
    module: ModuleKind,
    instrumented: &ShadowInstrumented,
    config: &FuzzConfig,
    name: String,
    target: String,
) -> Result<Option<(TestCase, Trace, FuzzStats)>, ConversionError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats = FuzzStats::default();
    let netlist = &instrumented.netlist;
    if instrumented.observable_pairs.is_empty() {
        // The fault's fan-out reaches no output; no stimulus can expose
        // it (the formal path would *prove* this — fuzzing just skips).
        return Ok(None);
    }

    let passes = config.candidates.div_ceil(LANES);
    for _ in 0..passes {
        stats.candidates_tried += LANES;
        let mut sim = Simulator64::with_seed(netlist, rng.gen());
        let mut inputs: Vec<Vec<BTreeMap<String, u64>>> = (0..LANES)
            .map(|_| Vec::with_capacity(config.max_cycles))
            .collect();
        let mut fire_cycle = [None::<usize>; LANES];
        let mut fired_mask = 0u64;
        for t in 0..config.max_cycles {
            let lane_cycles: Vec<BTreeMap<String, u64>> =
                (0..LANES).map(|_| random_cycle(module, &mut rng)).collect();
            for port in lane_cycles[0].keys() {
                let mut lanes = [0u64; LANES];
                for (lane, cycle) in lane_cycles.iter().enumerate() {
                    lanes[lane] = cycle[port];
                }
                sim.set_input_lanes(port, &lanes);
            }
            for (lane, cycle) in lane_cycles.into_iter().enumerate() {
                inputs[lane].push(cycle);
            }
            sim.settle_inputs();
            stats.cycles_simulated += LANES as u64;
            let diverged: u64 = instrumented
                .observable_pairs
                .iter()
                .fold(0, |acc, &(orig, shadow)| {
                    acc | (sim.net_word(orig) ^ sim.net_word(shadow))
                });
            let mut newly = diverged & !fired_mask;
            while newly != 0 {
                let lane = newly.trailing_zeros() as usize;
                fire_cycle[lane] = Some(t);
                newly &= newly - 1;
            }
            fired_mask |= diverged;
            if fired_mask == u64::MAX {
                break;
            }
            sim.step();
        }
        // First covering lane wins; later lanes are fallbacks when the
        // witness turns out unobservable at the instruction level.
        for lane in 0..LANES {
            let Some(fire_cycle) = fire_cycle[lane] else {
                continue;
            };
            let mut lane_inputs = std::mem::take(&mut inputs[lane]);
            lane_inputs.truncate(fire_cycle + 1);
            let trace = Trace {
                inputs: lane_inputs,
                fire_cycle,
            };
            match construct_test_case(module, instrumented, &trace, name.clone(), target.clone()) {
                Ok(mut test) => {
                    test.provenance = Provenance::Fuzzed;
                    return Ok(Some((test, trace, stats)));
                }
                Err(ConversionError::Unobservable) => continue, // keep fuzzing
                Err(other) => return Err(other),
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{
        build_failing_netlist, instrument_with_shadow, AgingPath, FaultActivation, FaultValue,
    };
    use crate::testcase::{run_test_case, TestOutcome};
    use vega_circuits::adder_example::build_paper_adder;
    use vega_sim::Simulator;
    use vega_sta::ViolationKind;

    #[test]
    fn fuzzing_finds_and_validates_a_test() {
        let n = build_paper_adder();
        let path = AgingPath {
            launch: n.cell_by_name("dff4").unwrap().id,
            capture: n.cell_by_name("dff10").unwrap().id,
            violation: ViolationKind::Setup,
        };
        let instrumented =
            instrument_with_shadow(&n, path, FaultValue::One, FaultActivation::OnChange);
        let result = fuzz_test_case(
            ModuleKind::PaperAdder,
            &instrumented,
            &FuzzConfig::default(),
            "fuzzed".into(),
            path.label(&n),
        )
        .expect("no conversion error");
        let (test, trace, stats) = result.expect("the adder fault is easy to fuzz");
        assert!(stats.candidates_tried >= 1);
        assert_eq!(trace.inputs.len(), trace.fire_cycle + 1);
        assert_eq!(
            test.provenance,
            Provenance::Fuzzed,
            "fallback provenance is recorded"
        );

        // Like formal tests: passes on healthy hardware, detects the
        // failing netlist.
        let mut healthy = Simulator::new(&n);
        assert_eq!(
            run_test_case(&mut healthy, ModuleKind::PaperAdder, &test),
            TestOutcome::Pass
        );
        let failing = build_failing_netlist(&n, path, FaultValue::One, FaultActivation::OnChange);
        let mut faulty = Simulator::new(&failing);
        assert_ne!(
            run_test_case(&mut faulty, ModuleKind::PaperAdder, &test),
            TestOutcome::Pass
        );
    }

    #[test]
    fn fuzzing_gives_up_within_budget_on_unobservable_faults() {
        // A fault whose fan-out reaches no output can never diverge.
        use vega_netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("dead");
        let clk = b.clock("clk");
        let d = b.input("d", 1)[0];
        let q1 = b.dff("q1", d, clk);
        let _q2 = b.dff("q2", q1, clk); // dead end
        let q3 = b.dff("q3", d, clk);
        b.output("y", &[q3]);
        let n = b.finish().unwrap();
        let path = AgingPath {
            launch: n.cell_by_name("q1").unwrap().id,
            capture: n.cell_by_name("q2").unwrap().id,
            violation: ViolationKind::Setup,
        };
        let instrumented =
            instrument_with_shadow(&n, path, FaultValue::One, FaultActivation::OnChange);
        assert!(instrumented.observable_pairs.is_empty());
        let config = FuzzConfig {
            candidates: 10,
            max_cycles: 4,
            seed: 3,
        };
        let result = fuzz_test_case(
            ModuleKind::PaperAdder,
            &instrumented,
            &config,
            "dead".into(),
            "q1->q2".into(),
        )
        .unwrap();
        assert!(result.is_none(), "nothing to observe, nothing to find");
    }
}
