//! The Error Lifting driver: paths in, test suite + Table 4 taxonomy out.
//!
//! Lifting is the pipeline's expensive, failure-prone phase, so the
//! driver is built defensively: every pair runs in panic isolation (a
//! crashing pair becomes a [`ConstructionOutcome::Crashed`] record
//! instead of tearing down the suite), exhausted formal budgets can be
//! retried with escalating limits ([`RetryPolicy`]), and pairs whose
//! formal search still gives up can degrade to simulation-based fuzzing
//! ([`LiftConfig::fuzz_fallback`]) so they yield a best-effort test case
//! rather than nothing. A deterministic fault-injection hook
//! ([`ChaosHook`]) exercises all of these paths in tests.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use vega_formal::{race_round, race_round_pinned, BmcConfig, CoverOutcome, CoverSession, Property};
use vega_netlist::Netlist;
use vega_sat::{Interrupt, SolverConfig};

use crate::construct::construct_test_case;
use crate::fuzz::{fuzz_test_case, FuzzConfig};
use crate::instrument::{instrument_with_shadow, AgingPath, FaultActivation, FaultValue};
use crate::module::ModuleKind;
use crate::testcase::TestCase;

/// Budget-escalation policy for formal failures: when a cover query
/// exhausts its conflict budget (a Table 4 "FF"), re-attempt with the
/// budget multiplied by `budget_growth`, up to `max_attempts` total
/// tries per `(C, activation)` combination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total formal tries per attempt (1 = no retry; the default, so the
    /// budget ablation still reproduces the FF cliff).
    pub max_attempts: usize,
    /// Multiplier applied to the conflict budget on each retry.
    pub budget_growth: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            budget_growth: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A doubling policy with `max_attempts` total tries.
    pub fn doubling(max_attempts: usize) -> Self {
        RetryPolicy {
            max_attempts,
            budget_growth: 2.0,
        }
    }

    /// The budget for retry round `round` (0-based; round 0 is the
    /// initial try at `base` conflicts).
    pub fn budget_for_round(&self, base: u64, round: usize) -> u64 {
        let mut budget = base.max(1) as f64;
        for _ in 0..round {
            budget *= self.budget_growth.max(1.0);
        }
        budget.min(u64::MAX as f64) as u64
    }
}

/// Portfolio-racing settings for Phase-2 BMC: when an attempt's first
/// budget rounds exhaust with at least `threshold` conflicts of real
/// work, subsequent rounds race `racers` solver backends from the
/// session's logical snapshot and take the first definitive answer.
///
/// `pinned` is the crash-recovery override: raced rounds journaled by a
/// previous (crashed) run are replayed by running the recorded winner
/// alone — deterministically reproducing the round instead of racing
/// again (see `vega_formal::race_round_pinned`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PortfolioSettings {
    /// Number of racing backends (0 or 1 = portfolio disabled).
    pub racers: usize,
    /// Minimum conflicts an exhausted round must have spent before the
    /// attempt escalates to racing (filters out trivially tiny rounds).
    pub threshold: u64,
    /// Offset added to every racer's seed, so fleets can decorrelate
    /// their portfolios without changing the roster.
    pub seed_base: u64,
    /// `(pair_index, attempt_index, round)` → recorded race result:
    /// `Some((backend_name, seed))` for a definitive winner, `None` for
    /// a raced-but-inconclusive round (replayed as racer 0 solo).
    pub pinned: BTreeMap<(usize, usize, usize), Option<(String, u64)>>,
}

impl PortfolioSettings {
    /// Whether racing is enabled (needs at least two racers).
    pub fn enabled(&self) -> bool {
        self.racers >= 2
    }

    /// The racer roster: `racers` distinct `(backend, seed)` configs,
    /// racer 0 always the default backend (the inconclusive-round
    /// continuation and the solo baseline).
    pub fn roster(&self) -> Vec<SolverConfig> {
        SolverConfig::portfolio(self.racers.max(1))
            .into_iter()
            .map(|c| {
                let seed = c.seed.wrapping_add(self.seed_base);
                c.with_seed(seed)
            })
            .collect()
    }
}

/// Deterministic fault injection for resilience testing: make the pair
/// with a given run-global index panic mid-lift, or force all of its
/// formal queries to report budget exhaustion. Production runs leave
/// this at `default()` (no injection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosHook {
    /// Panic while lifting the pair with this index.
    pub panic_at_pair: Option<usize>,
    /// Report `BudgetExhausted` for every formal query of the pair with
    /// this index (without running the solver).
    pub exhaust_budget_at_pair: Option<usize>,
}

impl ChaosHook {
    /// Whether any injection is armed.
    pub fn armed(&self) -> bool {
        self.panic_at_pair.is_some() || self.exhaust_budget_at_pair.is_some()
    }
}

/// Configuration of one Error Lifting run.
#[derive(Debug, Clone, Default)]
pub struct LiftConfig {
    /// Enable the §3.3.4 mitigation: generate edge-gated variants (up to
    /// 4 test cases per pair) instead of plain change-gated ones (up to
    /// 2 per pair).
    pub mitigation: bool,
    /// Override the module's default BMC limits (None = per-module
    /// defaults, whose budgets reproduce the paper's timeout rates).
    pub bmc: Option<BmcConfig>,
    /// Scalar override of just the per-attempt conflict budget, applied
    /// on top of `bmc` (or the module default) — what `--lift-budget`
    /// sets (None = keep the structural config's budget).
    pub conflict_budget: Option<u64>,
    /// Budget escalation on formal failures (default: no retries).
    pub retry: RetryPolicy,
    /// When the formal search (including retries) exhausts its budget,
    /// fall back to simulation-based fuzzing so the pair degrades from
    /// "proof-quality" to "best-effort test case" rather than to nothing
    /// (None = no fallback).
    pub fuzz_fallback: Option<FuzzConfig>,
    /// Deterministic fault injection (tests only).
    pub chaos: ChaosHook,
    /// Portfolio racing for budget-exhausted attempts (default: off).
    pub portfolio: PortfolioSettings,
    /// Cooperative cancellation installed on every formal session this
    /// run creates — how serve-mode SIGINT reaches an in-flight solve
    /// (default: none).
    pub interrupt: Option<Interrupt>,
    /// Observability sink for `phase2.*` spans, counters, and events
    /// (default: null, i.e. recording disabled at zero cost).
    pub obs: vega_obs::Obs,
}

/// How one `(pair, C, activation)` attempt ended — the unit behind the
/// paper's Table 4 percentages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ConstructionOutcome {
    /// A test case was constructed ("S").
    Success(Box<TestCase>),
    /// Formally proved that the fault can never corrupt an observable
    /// output ("UR").
    ProvenSafe {
        /// k-induction depth of the proof (0 = structurally unobservable:
        /// the fault's fan-out reaches no output port).
        induction_depth: usize,
    },
    /// The formal budget ran out ("FF").
    FormalFailure,
    /// A waveform was found but could not be converted into a test case
    /// ("FC").
    ConversionFailure,
    /// The search was exhaustive to its depth without a witness, but no
    /// inductive proof closed — counted with "FF" (the tool gave up).
    BoundedInconclusive,
    /// The lifting chain panicked; the panic was caught, the pair was
    /// isolated, and the rest of the suite continued. Counted with "FF"
    /// (the tool crashed instead of answering).
    Crashed {
        /// The captured panic message.
        message: String,
    },
}

/// One formal round within an attempt: the initial try, or an escalated
/// retry after a budget exhaustion. Recording these makes the cost of a
/// Table 4 "FF" verdict — and the escalation that recovered from it —
/// observable in the lift report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetRound {
    /// The conflict budget this round was allowed (cumulative across the
    /// attempt: escalation grows the total, and the incremental session
    /// only spends the difference).
    pub budget: u64,
    /// The conflicts the round actually spent.
    pub spent: u64,
    /// Decisions the round took (0 in records from older versions).
    #[serde(default)]
    pub decisions: u64,
    /// Literals the round propagated (0 in records from older versions).
    #[serde(default)]
    pub propagations: u64,
    /// Problem clauses the round encoded — near zero for resumed rounds,
    /// which is the observable signature of incremental resumption (0 in
    /// records from older versions).
    #[serde(default)]
    pub encoded_clauses: u64,
    /// Whether this round was a portfolio race (false in records from
    /// pre-portfolio versions and for all solo rounds).
    #[serde(default)]
    pub raced: bool,
    /// The winning backend's name for a raced round with a definitive
    /// answer; empty for solo rounds and inconclusive races.
    #[serde(default)]
    pub winner_backend: String,
    /// The winning backend's seed (0 unless `winner_backend` is set).
    #[serde(default)]
    pub winner_seed: u64,
}

impl BudgetRound {
    /// The recorded race result in the shape [`PortfolioSettings::pinned`]
    /// consumes: `None` for solo rounds, `Some(None)` for a raced round
    /// without a winner, `Some(Some((backend, seed)))` for a won round.
    pub fn race_record(&self) -> Option<Option<(String, u64)>> {
        if !self.raced {
            None
        } else if self.winner_backend.is_empty() {
            Some(None)
        } else {
            Some(Some((self.winner_backend.clone(), self.winner_seed)))
        }
    }
}

/// One `(C, activation)` attempt of a pair, with its outcome and the
/// formal budget spend of every round (empty when the fault was
/// structurally unobservable, or the attempt crashed before solving).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attempt {
    /// The wrong value `C` of the failure model.
    pub value: FaultValue,
    /// The activation gating of the failure model.
    pub activation: FaultActivation,
    /// How the attempt ended.
    pub outcome: ConstructionOutcome,
    /// Per-round conflict budgets and spend, in escalation order.
    pub rounds: Vec<BudgetRound>,
}

impl Attempt {
    /// Total conflicts this attempt spent across all rounds.
    pub fn conflicts_spent(&self) -> u64 {
        self.rounds.iter().map(|r| r.spent).sum()
    }
}

/// All attempts for one unique endpoint pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairResult {
    /// The aging-prone path.
    pub path: AgingPath,
    /// Human-readable label.
    pub label: String,
    /// One outcome per attempted `(C, activation)` combination.
    pub attempts: Vec<Attempt>,
}

/// The paper's per-pair classification (Table 4 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairClass {
    /// At least one test case was constructed.
    Success,
    /// Every attempt was formally proven harmless.
    Unreachable,
    /// The formal tool gave up on at least one attempt (timeout or
    /// crash), with no success elsewhere.
    FormalFailure,
    /// A waveform existed but no attempt could convert it.
    ConversionFailure,
}

impl PairResult {
    /// Classify this pair per the paper's priority: any success counts as
    /// "S"; otherwise all-proven is "UR"; otherwise a conversion failure
    /// anywhere is "FC"; otherwise "FF" (which also covers crashed
    /// attempts: the tool gave up without an answer).
    pub fn class(&self) -> PairClass {
        let mut any_success = false;
        let mut all_safe = true;
        let mut any_conversion_failure = false;
        for attempt in &self.attempts {
            match &attempt.outcome {
                ConstructionOutcome::Success(_) => any_success = true,
                ConstructionOutcome::ProvenSafe { .. } => {}
                ConstructionOutcome::ConversionFailure => {
                    all_safe = false;
                    any_conversion_failure = true;
                }
                ConstructionOutcome::FormalFailure
                | ConstructionOutcome::BoundedInconclusive
                | ConstructionOutcome::Crashed { .. } => all_safe = false,
            }
        }
        if any_success {
            PairClass::Success
        } else if all_safe {
            PairClass::Unreachable
        } else if any_conversion_failure {
            PairClass::ConversionFailure
        } else {
            PairClass::FormalFailure
        }
    }

    /// The constructed test cases of this pair.
    pub fn test_cases(&self) -> Vec<&TestCase> {
        self.attempts
            .iter()
            .filter_map(|attempt| match &attempt.outcome {
                ConstructionOutcome::Success(tc) => Some(tc.as_ref()),
                _ => None,
            })
            .collect()
    }

    /// Total conflicts this pair spent across all attempts and rounds.
    pub fn conflicts_spent(&self) -> u64 {
        self.attempts.iter().map(Attempt::conflicts_spent).sum()
    }

    /// Whether any attempt of this pair crashed (and was isolated).
    pub fn crashed(&self) -> bool {
        self.attempts
            .iter()
            .any(|a| matches!(a.outcome, ConstructionOutcome::Crashed { .. }))
    }
}

/// The result of lifting every unique pair of one module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiftReport {
    /// The analyzed module.
    pub module: ModuleKind,
    /// Whether the mitigation was enabled.
    pub mitigation: bool,
    /// Per-pair results, in input order.
    pub pairs: Vec<PairResult>,
}

impl LiftReport {
    /// Percentages `(S, UR, FF, FC)` over pairs — one Table 4 row.
    pub fn table4_row(&self) -> (f64, f64, f64, f64) {
        let total = self.pairs.len().max(1) as f64;
        let count = |class: PairClass| {
            self.pairs.iter().filter(|p| p.class() == class).count() as f64 / total * 100.0
        };
        (
            count(PairClass::Success),
            count(PairClass::Unreachable),
            count(PairClass::FormalFailure),
            count(PairClass::ConversionFailure),
        )
    }

    /// The full test suite, in pair order.
    pub fn suite(&self) -> Vec<TestCase> {
        self.pairs
            .iter()
            .flat_map(|p| p.test_cases().into_iter().cloned())
            .collect()
    }

    /// Total estimated CPU cycles for one execution of the whole suite
    /// (one Table 5 cell).
    pub fn suite_cpu_cycles(&self) -> u64 {
        self.suite().iter().map(|t| t.cpu_cycles).sum()
    }

    /// Total SAT conflicts the whole run spent, across every pair,
    /// attempt, and escalation round.
    pub fn total_conflicts(&self) -> u64 {
        self.pairs.iter().map(PairResult::conflicts_spent).sum()
    }

    /// Total solver effort across every pair, attempt, and escalation
    /// round: `(conflicts, decisions, propagations, encoded_clauses)`.
    /// The decision/propagation/clause counters exist only on reports
    /// produced by the incremental engine; older (deserialized) reports
    /// default them to zero.
    pub fn solver_effort(&self) -> (u64, u64, u64, u64) {
        let mut totals = (0u64, 0u64, 0u64, 0u64);
        for round in self
            .pairs
            .iter()
            .flat_map(|p| p.attempts.iter())
            .flat_map(|a| a.rounds.iter())
        {
            totals.0 += round.spent;
            totals.1 += round.decisions;
            totals.2 += round.propagations;
            totals.3 += round.encoded_clauses;
        }
        totals
    }

    /// How many test cases in the suite came from the fuzzing fallback
    /// rather than a formal witness.
    pub fn fallback_test_count(&self) -> usize {
        self.suite()
            .iter()
            .filter(|t| t.provenance == crate::testcase::Provenance::Fuzzed)
            .count()
    }

    /// How many pairs had at least one isolated crash.
    pub fn crashed_pair_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.crashed()).count()
    }
}

/// Render a caught panic payload for a [`ConstructionOutcome::Crashed`]
/// record (or any other caught-panic diagnostic that must not lose the
/// message).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Replay a witness trace on the shadow-instrumented netlist and check
/// that some observable pair genuinely differs at the fire cycle — the
/// acceptance gate for traces produced by non-default portfolio
/// backends. Mirrors the unrolling's view of a cycle: inputs settled,
/// registers not yet captured.
fn trace_replays(
    instrumented: &crate::instrument::ShadowInstrumented,
    trace: &vega_formal::Trace,
) -> bool {
    let mut sim = vega_sim::Simulator::new(&instrumented.netlist);
    let mut fired = false;
    for (t, cycle) in trace.inputs.iter().enumerate() {
        for (port, value) in cycle {
            sim.set_input(port, *value);
        }
        sim.settle_inputs();
        if t == trace.fire_cycle {
            fired = instrumented
                .observable_pairs
                .iter()
                .any(|&(a, b)| sim.net_value(a) != sim.net_value(b));
        }
        sim.step();
    }
    fired
}

/// One `(C, activation)` attempt: instrument, run the formal search with
/// budget escalation, construct instructions — falling back to fuzzing
/// when every formal round exhausts its budget. Runs inside the caller's
/// panic isolation.
#[allow(clippy::too_many_arguments)]
fn lift_attempt(
    netlist: &Netlist,
    module: ModuleKind,
    path: AgingPath,
    label: &str,
    value: FaultValue,
    activation: FaultActivation,
    assumptions: &[vega_formal::Assumption],
    base_bmc: &BmcConfig,
    config: &LiftConfig,
    pair_index: usize,
    attempt_index: usize,
) -> Attempt {
    if config.chaos.panic_at_pair == Some(pair_index) {
        panic!("chaos: injected panic while lifting pair {pair_index} ({label})");
    }
    let forced_exhaustion = config.chaos.exhaust_budget_at_pair == Some(pair_index);
    config.obs.counter("phase2.attempts", 1);

    let instrumented = instrument_with_shadow(netlist, path, value, activation);
    if instrumented.observable_pairs.is_empty() {
        // The fault's fan-out reaches no output: trivially harmless.
        return Attempt {
            value,
            activation,
            outcome: ConstructionOutcome::ProvenSafe { induction_depth: 0 },
            rounds: Vec::new(),
        };
    }
    let property = Property::any_differ(instrumented.observable_pairs.clone());
    let name = format!(
        "{}_{}_{:?}_{:?}",
        netlist.name(),
        label.replace(['-', '>', ' ', '(', ')'], "_"),
        value,
        activation
    )
    .to_lowercase();

    let max_rounds = config.retry.max_attempts.max(1);
    let mut rounds = Vec::with_capacity(1);
    let mut outcome = ConstructionOutcome::FormalFailure;
    // One incremental session serves every escalation round: a retry
    // after a budget exhaustion resumes at the depth (and with the
    // learned clauses) the previous round stopped at, instead of
    // re-solving from conflict zero.
    let mut session = (!forced_exhaustion).then(|| {
        let mut session =
            CoverSession::new(&instrumented.netlist, &property, assumptions, base_bmc);
        session.set_obs(config.obs.clone());
        if let Some(interrupt) = &config.interrupt {
            session.set_interrupt(interrupt.clone());
        }
        session
    });
    let mut spent_total = 0u64;
    // Once an exhausted round has done `threshold` conflicts of real
    // work, subsequent rounds race the portfolio roster instead of
    // resuming the solo session.
    let mut racing = false;
    for round in 0..max_rounds {
        if round > 0 {
            config.obs.counter("phase2.retry.rounds", 1);
        }
        let round_budget = config
            .retry
            .budget_for_round(base_bmc.conflict_budget, round);
        if forced_exhaustion {
            // Pretend the solver burned the whole budget without an
            // answer (deterministic stand-in for a hard cone).
            rounds.push(BudgetRound {
                budget: round_budget,
                spent: round_budget,
                ..BudgetRound::default()
            });
            outcome = ConstructionOutcome::FormalFailure;
            continue;
        }
        // The escalated budget is a total across rounds; earlier rounds'
        // conflicts already happened and stay paid for.
        let slice = round_budget.saturating_sub(spent_total);
        let pinned = config
            .portfolio
            .pinned
            .get(&(pair_index, attempt_index, round));
        let (cover, stats, raced, winner) = if pinned.is_some() || racing {
            // A raced round (live, or a pinned crash-recovery replay):
            // the solo session's solver state is abandoned and every
            // racer resumes from its logical snapshot. Trading learnt
            // clauses away here is what makes the round replayable.
            let snapshot = session
                .as_ref()
                .and_then(|s| s.snapshot())
                .expect("racing implies an unfinished session");
            let roster = config.portfolio.roster();
            config.obs.counter("phase2.portfolio.races", 1);
            let race = match pinned {
                Some(Some((backend_name, seed))) => {
                    let backend = SolverConfig::by_name(backend_name)
                        .unwrap_or_default()
                        .with_seed(*seed);
                    race_round_pinned(
                        &instrumented.netlist,
                        &property,
                        assumptions,
                        base_bmc,
                        &snapshot,
                        slice,
                        &backend,
                        true,
                        config.interrupt.as_ref(),
                    )
                }
                Some(None) => race_round_pinned(
                    &instrumented.netlist,
                    &property,
                    assumptions,
                    base_bmc,
                    &snapshot,
                    slice,
                    &roster[0],
                    false,
                    config.interrupt.as_ref(),
                ),
                None => race_round(
                    &instrumented.netlist,
                    &property,
                    assumptions,
                    base_bmc,
                    &snapshot,
                    slice,
                    &roster,
                    config.interrupt.as_ref(),
                ),
            };
            match race.winner {
                Some((backend_name, _)) => {
                    config
                        .obs
                        .counter(&format!("phase2.portfolio.winner.{backend_name}"), 1);
                    let cancelled = race.reports.iter().filter(|r| !r.definitive()).count();
                    config
                        .obs
                        .counter("phase2.portfolio.cancelled", cancelled as u64);
                }
                None => config.obs.counter("phase2.portfolio.inconclusive", 1),
            }
            let mut continuation = race.session;
            continuation.set_obs(config.obs.clone());
            session = Some(continuation);
            (race.outcome, race.stats, true, race.winner)
        } else {
            let session = session.as_mut().expect("built unless forced_exhaustion");
            let (cover, stats) = session.run(slice);
            (cover, stats, false, None)
        };
        spent_total += stats.conflicts;
        rounds.push(BudgetRound {
            budget: round_budget,
            spent: stats.conflicts,
            decisions: stats.decisions,
            propagations: stats.propagations,
            encoded_clauses: stats.encoded_clauses,
            raced,
            winner_backend: winner.map(|(n, _)| n.to_string()).unwrap_or_default(),
            winner_seed: winner.map(|(_, s)| s).unwrap_or(0),
        });
        match cover {
            CoverOutcome::Trace(trace) => {
                // A raced witness may come from any backend; validate it
                // by replay before trusting it (solo witnesses are
                // replay-checked again inside construction).
                if raced && !trace_replays(&instrumented, &trace) {
                    config.obs.counter("phase2.portfolio.rejected_traces", 1);
                    outcome = ConstructionOutcome::ConversionFailure;
                    break;
                }
                outcome = match construct_test_case(
                    module,
                    &instrumented,
                    &trace,
                    name.clone(),
                    label.to_string(),
                ) {
                    Ok(tc) => ConstructionOutcome::Success(Box::new(tc)),
                    Err(_) => ConstructionOutcome::ConversionFailure,
                };
                break;
            }
            CoverOutcome::ProvedUnreachable { induction_depth } => {
                outcome = ConstructionOutcome::ProvenSafe { induction_depth };
                break;
            }
            CoverOutcome::BudgetExhausted => {
                // Escalate and retry (the loop applies the growth);
                // sufficiently hard rounds escalate to a portfolio race.
                if config.portfolio.enabled()
                    && !racing
                    && stats.conflicts >= config.portfolio.threshold
                {
                    racing = true;
                    config.obs.counter("phase2.portfolio.escalations", 1);
                }
                outcome = ConstructionOutcome::FormalFailure;
            }
            CoverOutcome::BoundedOnly { .. } => {
                // Depth-bounded, not budget-bounded: a bigger budget
                // cannot change the verdict, so retrying is pointless.
                outcome = ConstructionOutcome::BoundedInconclusive;
                break;
            }
        }
    }

    // Graceful degradation: every formal round ran out of budget, so the
    // pair would otherwise yield nothing. Fuzzing trades the proof away
    // for a best-effort test case, recorded as such in its provenance.
    if matches!(outcome, ConstructionOutcome::FormalFailure) {
        if let Some(fuzz_config) = &config.fuzz_fallback {
            if let Ok(Some((test, _, _))) = fuzz_test_case(
                module,
                &instrumented,
                fuzz_config,
                format!("{name}_fuzzed"),
                label.to_string(),
            ) {
                config.obs.counter("phase2.fuzz.fallback_tests", 1);
                outcome = ConstructionOutcome::Success(Box::new(test));
            }
        }
    }
    if matches!(outcome, ConstructionOutcome::Success(_)) {
        config.obs.counter("phase2.tests", 1);
    }

    Attempt {
        value,
        activation,
        outcome,
        rounds,
    }
}

/// Lift one pair — the `pair_index`-th of its run — with panic
/// isolation: each `(C, activation)` attempt runs under `catch_unwind`,
/// so a crash in instrumentation, solving, or construction becomes a
/// [`ConstructionOutcome::Crashed`] record and the remaining attempts
/// (and pairs) still run. This is the unit of work the checkpoint/resume
/// runner in `vega::runner` schedules and persists.
pub fn lift_pair(
    netlist: &Netlist,
    module: ModuleKind,
    path: AgingPath,
    pair_index: usize,
    config: &LiftConfig,
) -> PairResult {
    // Even the label can panic on a forged path; keep the pair alive —
    // but keep the panic message too, so the fallback label explains
    // itself instead of silently degrading to "(?)".
    let label = catch_unwind(AssertUnwindSafe(|| path.label(netlist))).unwrap_or_else(|payload| {
        format!(
            "cell{}->cell{} (label panicked: {})",
            path.launch.0,
            path.capture.0,
            panic_message(payload)
        )
    });
    let _span = vega_obs::span!(
        config.obs.detail(),
        "phase2.pair",
        pair = pair_index,
        label = label.as_str(),
    );
    let mut base_bmc = config.bmc.unwrap_or_else(|| module.bmc_config());
    if let Some(budget) = config.conflict_budget {
        base_bmc.conflict_budget = budget;
    }
    let assumptions = module.assumptions(netlist);
    let activations: &[FaultActivation] = if config.mitigation {
        &FaultActivation::MITIGATED
    } else {
        &[FaultActivation::OnChange]
    };

    let mut attempts = Vec::new();
    for &value in &FaultValue::FORMAL {
        for &activation in activations {
            let attempt_index = attempts.len();
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                lift_attempt(
                    netlist,
                    module,
                    path,
                    &label,
                    value,
                    activation,
                    &assumptions,
                    &base_bmc,
                    config,
                    pair_index,
                    attempt_index,
                )
            }))
            .unwrap_or_else(|payload| {
                let message = panic_message(payload);
                config.obs.event(
                    "phase2.pair.crashed",
                    vec![
                        ("pair".to_string(), vega_obs::Value::from(pair_index)),
                        ("label".to_string(), vega_obs::Value::from(label.as_str())),
                        (
                            "message".to_string(),
                            vega_obs::Value::from(message.as_str()),
                        ),
                    ],
                );
                Attempt {
                    value,
                    activation,
                    outcome: ConstructionOutcome::Crashed { message },
                    rounds: Vec::new(),
                }
            });
            config.obs.counter(outcome_metric(&attempt.outcome), 1);
            attempts.push(attempt);
        }
    }
    PairResult {
        path,
        label,
        attempts,
    }
}

/// The `phase2.outcome.*` counter a [`ConstructionOutcome`] increments.
fn outcome_metric(outcome: &ConstructionOutcome) -> &'static str {
    match outcome {
        ConstructionOutcome::Success(_) => "phase2.outcome.success",
        ConstructionOutcome::ProvenSafe { .. } => "phase2.outcome.proven_safe",
        ConstructionOutcome::FormalFailure => "phase2.outcome.formal_failure",
        ConstructionOutcome::ConversionFailure => "phase2.outcome.conversion_failure",
        ConstructionOutcome::BoundedInconclusive => "phase2.outcome.bounded_inconclusive",
        ConstructionOutcome::Crashed { .. } => "phase2.outcome.crashed",
    }
}

/// Run Error Lifting for `paths` (already filtered to unique endpoint
/// pairs) on `netlist`.
pub fn generate_suite(
    netlist: &Netlist,
    module: ModuleKind,
    paths: &[AgingPath],
    config: &LiftConfig,
) -> LiftReport {
    let _span = vega_obs::span!(
        config.obs,
        "phase2.lift",
        module = netlist.name(),
        pairs = paths.len(),
        threads = 1u64,
    );
    config.obs.counter("phase2.pairs", paths.len() as u64);
    config.obs.gauge("phase2.pairs_total", paths.len() as f64);
    config.obs.gauge("phase2.pairs_done", 0.0);
    let pairs = paths
        .iter()
        .enumerate()
        .map(|(index, &path)| {
            let pair = lift_pair(netlist, module, path, index, config);
            config.obs.gauge("phase2.pairs_done", (index + 1) as f64);
            pair
        })
        .collect();
    LiftReport {
        module,
        mitigation: config.mitigation,
        pairs,
    }
}

/// Like [`generate_suite`], but lifting pairs on `threads` worker threads
/// (each pair's instrumentation + formal query is independent). Results
/// are identical to the sequential path and returned in input order.
/// Panic isolation holds here too: a pair that crashes is recorded as
/// [`ConstructionOutcome::Crashed`] and no sibling results are lost.
pub fn generate_suite_parallel(
    netlist: &Netlist,
    module: ModuleKind,
    paths: &[AgingPath],
    config: &LiftConfig,
    threads: usize,
) -> LiftReport {
    let threads = threads.max(1);
    if threads == 1 || paths.len() <= 1 {
        return generate_suite(netlist, module, paths, config);
    }
    let _span = vega_obs::span!(
        config.obs,
        "phase2.lift",
        module = netlist.name(),
        pairs = paths.len(),
        threads = threads,
    );
    config.obs.counter("phase2.pairs", paths.len() as u64);
    config.obs.gauge("phase2.pairs_total", paths.len() as f64);
    config.obs.gauge("phase2.pairs_done", 0.0);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let done = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<PairResult>> = Vec::new();
    slots.resize_with(paths.len(), || None);
    let slots = std::sync::Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(paths.len()) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&path) = paths.get(index) else { break };
                let pair = lift_pair(netlist, module, path, index, config);
                // A worker that somehow died would poison the mutex;
                // sibling results must survive, so shrug the poison off.
                let mut slots = slots.lock().unwrap_or_else(|poison| poison.into_inner());
                slots[index] = Some(pair);
                let finished = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                config.obs.gauge("phase2.pairs_done", finished as f64);
            });
        }
    });

    let pairs = slots
        .into_inner()
        .unwrap_or_else(|poison| poison.into_inner())
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.unwrap_or_else(|| PairResult {
                path: paths[index],
                label: format!(
                    "cell{}->cell{} (?)",
                    paths[index].launch.0, paths[index].capture.0
                ),
                attempts: vec![Attempt {
                    value: FaultValue::Zero,
                    activation: FaultActivation::OnChange,
                    outcome: ConstructionOutcome::Crashed {
                        message: "worker died before recording a result".to_string(),
                    },
                    rounds: Vec::new(),
                }],
            })
        })
        .collect();
    LiftReport {
        module,
        mitigation: config.mitigation,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::{run_suite, run_test_case, TestOutcome};
    use vega_circuits::adder_example::build_paper_adder;
    use vega_sim::Simulator;
    use vega_sta::ViolationKind;

    fn adder_paths(n: &Netlist) -> Vec<AgingPath> {
        vec![
            AgingPath {
                launch: n.cell_by_name("dff4").unwrap().id,
                capture: n.cell_by_name("dff10").unwrap().id,
                violation: ViolationKind::Setup,
            },
            AgingPath {
                launch: n.cell_by_name("dff1").unwrap().id,
                capture: n.cell_by_name("dff9").unwrap().id,
                violation: ViolationKind::Hold,
            },
        ]
    }

    #[test]
    fn generates_tests_for_the_paper_adder() {
        let n = build_paper_adder();
        let report = generate_suite(
            &n,
            ModuleKind::PaperAdder,
            &adder_paths(&n),
            &LiftConfig::default(),
        );
        assert_eq!(report.pairs.len(), 2);
        for pair in &report.pairs {
            assert_eq!(pair.class(), PairClass::Success, "{}", pair.label);
            assert!(pair.attempts.len() <= 2);
            for attempt in &pair.attempts {
                assert_eq!(attempt.rounds.len(), 1, "no retries by default");
            }
        }
        let suite = report.suite();
        assert!(!suite.is_empty());
        assert!(report.suite_cpu_cycles() > 0);
        assert_eq!(report.fallback_test_count(), 0, "formal witnesses only");
        assert_eq!(report.crashed_pair_count(), 0);

        // The suite passes on the healthy netlist...
        let mut healthy = Simulator::new(&n);
        for outcome in run_suite(&mut healthy, ModuleKind::PaperAdder, &suite) {
            assert_eq!(outcome, TestOutcome::Pass);
        }
        // ...and detects each corresponding failing netlist.
        for pair in &report.pairs {
            for attempt in &pair.attempts {
                let ConstructionOutcome::Success(tc) = &attempt.outcome else {
                    continue;
                };
                let failing = crate::instrument::build_failing_netlist(
                    &n,
                    pair.path,
                    attempt.value,
                    attempt.activation,
                );
                let mut sim = Simulator::new(&failing);
                let result = run_test_case(&mut sim, ModuleKind::PaperAdder, tc);
                assert_ne!(
                    result,
                    TestOutcome::Pass,
                    "{} must detect its own failure model",
                    tc.name
                );
            }
        }
    }

    #[test]
    fn mitigation_doubles_the_attempt_space() {
        let n = build_paper_adder();
        let config = LiftConfig {
            mitigation: true,
            ..LiftConfig::default()
        };
        let report = generate_suite(&n, ModuleKind::PaperAdder, &adder_paths(&n)[..1], &config);
        assert_eq!(report.pairs[0].attempts.len(), 4, "2 C values x 2 edges");
    }

    #[test]
    fn budget_for_round_escalates_geometrically() {
        let policy = RetryPolicy {
            max_attempts: 3,
            budget_growth: 2.0,
        };
        assert_eq!(policy.budget_for_round(1000, 0), 1000);
        assert_eq!(policy.budget_for_round(1000, 1), 2000);
        assert_eq!(policy.budget_for_round(1000, 2), 4000);
        // Growth below 1 must never shrink the budget.
        let shrink = RetryPolicy {
            max_attempts: 3,
            budget_growth: 0.5,
        };
        assert_eq!(shrink.budget_for_round(1000, 2), 1000);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use vega_circuits::adder_example::build_paper_adder;
    use vega_sta::ViolationKind;

    #[test]
    fn parallel_matches_sequential() {
        let n = build_paper_adder();
        let paths: Vec<AgingPath> = [("dff4", "dff10"), ("dff2", "dff10"), ("dff1", "dff9")]
            .iter()
            .map(|(launch, capture)| AgingPath {
                launch: n.cell_by_name(launch).unwrap().id,
                capture: n.cell_by_name(capture).unwrap().id,
                violation: ViolationKind::Setup,
            })
            .collect();
        let config = LiftConfig::default();
        let sequential = generate_suite(&n, ModuleKind::PaperAdder, &paths, &config);
        let parallel = generate_suite_parallel(&n, ModuleKind::PaperAdder, &paths, &config, 3);
        assert_eq!(sequential.pairs.len(), parallel.pairs.len());
        for (a, b) in sequential.pairs.iter().zip(&parallel.pairs) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.class(), b.class());
            let suite_a: Vec<_> = a.test_cases().iter().map(|t| t.stimulus.clone()).collect();
            let suite_b: Vec<_> = b.test_cases().iter().map(|t| t.stimulus.clone()).collect();
            assert_eq!(
                suite_a, suite_b,
                "traces must be deterministic across threads"
            );
        }
    }
}
