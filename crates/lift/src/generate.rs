//! The Error Lifting driver: paths in, test suite + Table 4 taxonomy out.

use vega_formal::{check_cover, CoverOutcome, Property};
use vega_netlist::Netlist;

use crate::construct::construct_test_case;
use crate::instrument::{instrument_with_shadow, AgingPath, FaultActivation, FaultValue};
use crate::module::ModuleKind;
use crate::testcase::TestCase;

/// Configuration of one Error Lifting run.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct LiftConfig {
    /// Enable the §3.3.4 mitigation: generate edge-gated variants (up to
    /// 4 test cases per pair) instead of plain change-gated ones (up to
    /// 2 per pair).
    pub mitigation: bool,
    /// Override the module's default BMC limits (None = per-module
    /// defaults, whose budgets reproduce the paper's timeout rates).
    pub bmc: Option<vega_formal::BmcConfig>,
}


/// How one `(pair, C, activation)` attempt ended — the unit behind the
/// paper's Table 4 percentages.
#[derive(Debug, Clone)]
pub enum ConstructionOutcome {
    /// A test case was constructed ("S").
    Success(Box<TestCase>),
    /// Formally proved that the fault can never corrupt an observable
    /// output ("UR").
    ProvenSafe {
        /// k-induction depth of the proof (0 = structurally unobservable:
        /// the fault's fan-out reaches no output port).
        induction_depth: usize,
    },
    /// The formal budget ran out ("FF").
    FormalFailure,
    /// A waveform was found but could not be converted into a test case
    /// ("FC").
    ConversionFailure,
    /// The search was exhaustive to its depth without a witness, but no
    /// inductive proof closed — counted with "FF" (the tool gave up).
    BoundedInconclusive,
}

/// All attempts for one unique endpoint pair.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// The aging-prone path.
    pub path: AgingPath,
    /// Human-readable label.
    pub label: String,
    /// One outcome per attempted `(C, activation)` combination.
    pub attempts: Vec<(FaultValue, FaultActivation, ConstructionOutcome)>,
}

/// The paper's per-pair classification (Table 4 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairClass {
    /// At least one test case was constructed.
    Success,
    /// Every attempt was formally proven harmless.
    Unreachable,
    /// The formal tool gave up on at least one attempt (timeout), with no
    /// success elsewhere.
    FormalFailure,
    /// A waveform existed but no attempt could convert it.
    ConversionFailure,
}

impl PairResult {
    /// Classify this pair per the paper's priority: any success counts as
    /// "S"; otherwise all-proven is "UR"; otherwise a conversion failure
    /// anywhere is "FC"; otherwise "FF".
    pub fn class(&self) -> PairClass {
        let mut any_success = false;
        let mut all_safe = true;
        let mut any_conversion_failure = false;
        for (_, _, outcome) in &self.attempts {
            match outcome {
                ConstructionOutcome::Success(_) => any_success = true,
                ConstructionOutcome::ProvenSafe { .. } => {}
                ConstructionOutcome::ConversionFailure => {
                    all_safe = false;
                    any_conversion_failure = true;
                }
                ConstructionOutcome::FormalFailure
                | ConstructionOutcome::BoundedInconclusive => all_safe = false,
            }
        }
        if any_success {
            PairClass::Success
        } else if all_safe {
            PairClass::Unreachable
        } else if any_conversion_failure {
            PairClass::ConversionFailure
        } else {
            PairClass::FormalFailure
        }
    }

    /// The constructed test cases of this pair.
    pub fn test_cases(&self) -> Vec<&TestCase> {
        self.attempts
            .iter()
            .filter_map(|(_, _, outcome)| match outcome {
                ConstructionOutcome::Success(tc) => Some(tc.as_ref()),
                _ => None,
            })
            .collect()
    }
}

/// The result of lifting every unique pair of one module.
#[derive(Debug, Clone)]
pub struct LiftReport {
    /// The analyzed module.
    pub module: ModuleKind,
    /// Whether the mitigation was enabled.
    pub mitigation: bool,
    /// Per-pair results, in input order.
    pub pairs: Vec<PairResult>,
}

impl LiftReport {
    /// Percentages `(S, UR, FF, FC)` over pairs — one Table 4 row.
    pub fn table4_row(&self) -> (f64, f64, f64, f64) {
        let total = self.pairs.len().max(1) as f64;
        let count = |class: PairClass| {
            self.pairs.iter().filter(|p| p.class() == class).count() as f64 / total * 100.0
        };
        (
            count(PairClass::Success),
            count(PairClass::Unreachable),
            count(PairClass::FormalFailure),
            count(PairClass::ConversionFailure),
        )
    }

    /// The full test suite, in pair order.
    pub fn suite(&self) -> Vec<TestCase> {
        self.pairs
            .iter()
            .flat_map(|p| p.test_cases().into_iter().cloned())
            .collect()
    }

    /// Total estimated CPU cycles for one execution of the whole suite
    /// (one Table 5 cell).
    pub fn suite_cpu_cycles(&self) -> u64 {
        self.suite().iter().map(|t| t.cpu_cycles).sum()
    }
}

/// Run Error Lifting for `paths` (already filtered to unique endpoint
/// pairs) on `netlist`.
pub fn generate_suite(
    netlist: &Netlist,
    module: ModuleKind,
    paths: &[AgingPath],
    config: &LiftConfig,
) -> LiftReport {
    let bmc = config.bmc.unwrap_or_else(|| module.bmc_config());
    let assumptions = module.assumptions(netlist);
    let activations: &[FaultActivation] = if config.mitigation {
        &FaultActivation::MITIGATED
    } else {
        &[FaultActivation::OnChange]
    };

    let mut pairs = Vec::with_capacity(paths.len());
    for &path in paths {
        let label = path.label(netlist);
        let mut attempts = Vec::new();
        for &value in &FaultValue::FORMAL {
            for &activation in activations {
                let instrumented = instrument_with_shadow(netlist, path, value, activation);
                if instrumented.observable_pairs.is_empty() {
                    // The fault's fan-out reaches no output: trivially
                    // harmless.
                    attempts.push((
                        value,
                        activation,
                        ConstructionOutcome::ProvenSafe { induction_depth: 0 },
                    ));
                    continue;
                }
                let property = Property::any_differ(instrumented.observable_pairs.clone());
                let outcome =
                    check_cover(&instrumented.netlist, &property, &assumptions, &bmc);
                let outcome = match outcome {
                    CoverOutcome::Trace(trace) => {
                        let name = format!(
                            "{}_{}_{:?}_{:?}",
                            netlist.name(),
                            label.replace(['-', '>', ' ', '(', ')'], "_"),
                            value,
                            activation
                        )
                        .to_lowercase();
                        match construct_test_case(
                            module,
                            &instrumented,
                            &trace,
                            name,
                            label.clone(),
                        ) {
                            Ok(tc) => ConstructionOutcome::Success(Box::new(tc)),
                            Err(_) => ConstructionOutcome::ConversionFailure,
                        }
                    }
                    CoverOutcome::ProvedUnreachable { induction_depth } => {
                        ConstructionOutcome::ProvenSafe { induction_depth }
                    }
                    CoverOutcome::BudgetExhausted => ConstructionOutcome::FormalFailure,
                    CoverOutcome::BoundedOnly { .. } => {
                        ConstructionOutcome::BoundedInconclusive
                    }
                };
                attempts.push((value, activation, outcome));
            }
        }
        pairs.push(PairResult { path, label, attempts });
    }
    LiftReport { module, mitigation: config.mitigation, pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testcase::{run_suite, run_test_case, TestOutcome};
    use vega_circuits::adder_example::build_paper_adder;
    use vega_sim::Simulator;
    use vega_sta::ViolationKind;

    fn adder_paths(n: &Netlist) -> Vec<AgingPath> {
        vec![
            AgingPath {
                launch: n.cell_by_name("dff4").unwrap().id,
                capture: n.cell_by_name("dff10").unwrap().id,
                violation: ViolationKind::Setup,
            },
            AgingPath {
                launch: n.cell_by_name("dff1").unwrap().id,
                capture: n.cell_by_name("dff9").unwrap().id,
                violation: ViolationKind::Hold,
            },
        ]
    }

    #[test]
    fn generates_tests_for_the_paper_adder() {
        let n = build_paper_adder();
        let report = generate_suite(
            &n,
            ModuleKind::PaperAdder,
            &adder_paths(&n),
            &LiftConfig::default(),
        );
        assert_eq!(report.pairs.len(), 2);
        for pair in &report.pairs {
            assert_eq!(pair.class(), PairClass::Success, "{}", pair.label);
            assert!(pair.attempts.len() <= 2);
        }
        let suite = report.suite();
        assert!(!suite.is_empty());
        assert!(report.suite_cpu_cycles() > 0);

        // The suite passes on the healthy netlist...
        let mut healthy = Simulator::new(&n);
        for outcome in run_suite(&mut healthy, ModuleKind::PaperAdder, &suite) {
            assert_eq!(outcome, TestOutcome::Pass);
        }
        // ...and detects each corresponding failing netlist.
        for pair in &report.pairs {
            for (value, activation, outcome) in &pair.attempts {
                let ConstructionOutcome::Success(tc) = outcome else { continue };
                let failing = crate::instrument::build_failing_netlist(
                    &n, pair.path, *value, *activation,
                );
                let mut sim = Simulator::new(&failing);
                let result = run_test_case(&mut sim, ModuleKind::PaperAdder, tc);
                assert_ne!(
                    result,
                    TestOutcome::Pass,
                    "{} must detect its own failure model",
                    tc.name
                );
            }
        }
    }

    #[test]
    fn mitigation_doubles_the_attempt_space() {
        let n = build_paper_adder();
        let config = LiftConfig { mitigation: true, bmc: None };
        let report =
            generate_suite(&n, ModuleKind::PaperAdder, &adder_paths(&n)[..1], &config);
        assert_eq!(report.pairs[0].attempts.len(), 4, "2 C values x 2 edges");
    }
}

/// Like [`generate_suite`], but lifting pairs on `threads` worker threads
/// (each pair's instrumentation + formal query is independent). Results
/// are identical to the sequential path and returned in input order.
pub fn generate_suite_parallel(
    netlist: &Netlist,
    module: ModuleKind,
    paths: &[AgingPath],
    config: &LiftConfig,
    threads: usize,
) -> LiftReport {
    let threads = threads.max(1);
    if threads == 1 || paths.len() <= 1 {
        return generate_suite(netlist, module, paths, config);
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<PairResult>> = Vec::new();
    slots.resize_with(paths.len(), || None);
    let slots = std::sync::Mutex::new(slots);

    std::thread::scope(|scope| {
        for _ in 0..threads.min(paths.len()) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&path) = paths.get(index) else { break };
                let report = generate_suite(netlist, module, &[path], config);
                let pair = report.pairs.into_iter().next().expect("one pair in, one out");
                slots.lock().expect("no poisoned workers")[index] = Some(pair);
            });
        }
    });

    let pairs = slots
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every index was processed"))
        .collect();
    LiftReport { module, mitigation: config.mitigation, pairs }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use vega_circuits::adder_example::build_paper_adder;
    use vega_sta::ViolationKind;

    #[test]
    fn parallel_matches_sequential() {
        let n = build_paper_adder();
        let paths: Vec<AgingPath> = [("dff4", "dff10"), ("dff2", "dff10"), ("dff1", "dff9")]
            .iter()
            .map(|(launch, capture)| AgingPath {
                launch: n.cell_by_name(launch).unwrap().id,
                capture: n.cell_by_name(capture).unwrap().id,
                violation: ViolationKind::Setup,
            })
            .collect();
        let config = LiftConfig::default();
        let sequential = generate_suite(&n, ModuleKind::PaperAdder, &paths, &config);
        let parallel = generate_suite_parallel(&n, ModuleKind::PaperAdder, &paths, &config, 3);
        assert_eq!(sequential.pairs.len(), parallel.pairs.len());
        for (a, b) in sequential.pairs.iter().zip(&parallel.pairs) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.class(), b.class());
            let suite_a: Vec<_> = a.test_cases().iter().map(|t| t.stimulus.clone()).collect();
            let suite_b: Vec<_> = b.test_cases().iter().map(|t| t.stimulus.clone()).collect();
            assert_eq!(suite_a, suite_b, "traces must be deterministic across threads");
        }
    }
}
