//! Failure-model instrumentation and shadow replicas.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use vega_netlist::{CellId, CellKind, NetId, Netlist};
use vega_sta::{Endpoint, TimingPath, ViolationKind};

/// An aging-prone register-to-register path, the unit Error Lifting works
/// on: the launching flip-flop `X`, the capturing flip-flop `Y`, and
/// which timing window the path violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AgingPath {
    /// The launching flip-flop (`X`).
    pub launch: CellId,
    /// The capturing flip-flop (`Y`).
    pub capture: CellId,
    /// Setup or hold.
    pub violation: ViolationKind,
}

impl AgingPath {
    /// Convert an STA path; `None` when the path launches at a module
    /// input port (the failure models need a flip-flop launch point).
    pub fn from_timing_path(path: &TimingPath) -> Option<AgingPath> {
        match path.launch {
            Endpoint::Dff(launch) => Some(AgingPath {
                launch,
                capture: path.capture,
                violation: path.violation,
            }),
            Endpoint::Port { .. } => None,
        }
    }

    /// A short label like `dff4->dff10 (Setup)`.
    pub fn label(&self, netlist: &Netlist) -> String {
        format!(
            "{}->{} ({:?})",
            netlist.cell(self.launch).name,
            netlist.cell(self.capture).name,
            self.violation
        )
    }
}

/// The wrong value `C` sampled on a violated capture (paper §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultValue {
    /// `C = 0`.
    Zero,
    /// `C = 1`.
    One,
    /// Fresh random bit each cycle (evaluation-only; the formal search
    /// always uses a constant to bound the search space).
    Random,
}

impl FaultValue {
    /// The two constants the formal search explores.
    pub const FORMAL: [FaultValue; 2] = [FaultValue::Zero, FaultValue::One];

    /// All three evaluation fault values (`C ∈ {0, 1, random}`).
    pub const ALL: [FaultValue; 3] = [FaultValue::Zero, FaultValue::One, FaultValue::Random];

    /// Short filename/label suffix (`c0`, `c1`, `cr`).
    pub fn suffix(self) -> &'static str {
        match self {
            FaultValue::Zero => "c0",
            FaultValue::One => "c1",
            FaultValue::Random => "cr",
        }
    }
}

/// When the fault is active (paper §3.3.4's mitigation for initial-value
/// dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FaultActivation {
    /// Active whenever the launch value changed (Eqs. 2/3 verbatim).
    OnChange,
    /// Active only on a rising edge of the launch value.
    RisingEdge,
    /// Active only on a falling edge of the launch value.
    FallingEdge,
}

impl FaultActivation {
    /// The activation variants explored with the mitigation enabled.
    pub const MITIGATED: [FaultActivation; 2] =
        [FaultActivation::RisingEdge, FaultActivation::FallingEdge];
}

/// Construct, inside `netlist`, the "fault fires this cycle" condition
/// and the faulty-D signal for `path`. Returns the net carrying the value
/// `Y` would capture under the failure model.
fn build_fault_signal(
    netlist: &mut Netlist,
    path: AgingPath,
    value: FaultValue,
    activation: FaultActivation,
) -> NetId {
    let launch = netlist.cell(path.launch).clone();
    let capture = netlist.cell(path.capture).clone();
    let x_q = launch.output;

    // The wrong value C.
    let c_net = match value {
        FaultValue::Zero => {
            let c = netlist.add_cell(CellKind::Const0, netlist.fresh_name("fault_c0"), &[]);
            netlist.cell(c).output
        }
        FaultValue::One => {
            let c = netlist.add_cell(CellKind::Const1, netlist.fresh_name("fault_c1"), &[]);
            netlist.cell(c).output
        }
        FaultValue::Random => {
            let c = netlist.add_cell(CellKind::Random, netlist.fresh_name("fault_rnd"), &[]);
            netlist.cell(c).output
        }
    };

    if path.launch == path.capture {
        // Self-loop: Y's captured value depends on itself in the same
        // cycle — permanently meta-stable, always C (paper §3.3.1).
        return c_net;
    }

    // "Previous" and "next" views of X for the change detector.
    let (x_now, x_other) = match path.violation {
        ViolationKind::Setup => {
            // X(t) vs X(t-1): a history flip-flop on X's clock.
            let x_clock = launch.inputs[1];
            let hist = netlist.add_cell(
                CellKind::Dff,
                netlist.fresh_name("fault_hist"),
                &[x_q, x_clock],
            );
            (x_q, netlist.cell(hist).output)
        }
        ViolationKind::Hold => {
            // X(t) vs X(t+1): X's next value is its current D input.
            (x_q, launch.inputs[0])
        }
    };

    // Fault condition per activation mode.
    let fires = match activation {
        FaultActivation::OnChange => {
            let changed = netlist.add_cell(
                CellKind::Xor2,
                netlist.fresh_name("fault_chg"),
                &[x_now, x_other],
            );
            netlist.cell(changed).output
        }
        FaultActivation::RisingEdge | FaultActivation::FallingEdge => {
            // Setup compares against the past: rising means X(t)=1 and
            // X(t-1)=0. Hold compares against the future: rising means
            // X(t)=0 and X(t+1)=1.
            let (high_side, low_side) = match (path.violation, activation) {
                (ViolationKind::Setup, FaultActivation::RisingEdge) => (x_now, x_other),
                (ViolationKind::Setup, FaultActivation::FallingEdge) => (x_other, x_now),
                (ViolationKind::Hold, FaultActivation::RisingEdge) => (x_other, x_now),
                (ViolationKind::Hold, FaultActivation::FallingEdge) => (x_now, x_other),
                _ => unreachable!(),
            };
            let low_inv =
                netlist.add_cell(CellKind::Not, netlist.fresh_name("fault_inv"), &[low_side]);
            let low_inv_net = netlist.cell(low_inv).output;
            let edge = netlist.add_cell(
                CellKind::And2,
                netlist.fresh_name("fault_edge"),
                &[high_side, low_inv_net],
            );
            netlist.cell(edge).output
        }
    };

    // faulty_D = fires ? C : original_D.
    let orig_d = capture.inputs[0];
    let mux = netlist.add_cell(
        CellKind::Mux2,
        netlist.fresh_name("fault_mux"),
        &[orig_d, c_net, fires],
    );
    netlist.cell(mux).output
}

/// Build a **failing netlist**: the circuit-level failure model of paper
/// §3.3.2, with the fault wired directly into the capture flip-flop.
/// The module's ports are unchanged, so the failing netlist drops into
/// any environment that accepts the original (e.g. co-simulation in
/// `vega-riscv`).
pub fn build_failing_netlist(
    netlist: &Netlist,
    path: AgingPath,
    value: FaultValue,
    activation: FaultActivation,
) -> Netlist {
    let mut out = netlist.clone();
    out.set_name(format!("{}_failing", netlist.name()));
    let faulty_d = build_fault_signal(&mut out, path, value, activation);
    out.rewire_input(path.capture, 0, faulty_d);
    out.validate().expect("failing netlist must stay valid");
    out
}

/// A netlist instrumented with a failure model feeding a shadow replica.
#[derive(Debug, Clone)]
pub struct ShadowInstrumented {
    /// The instrumented netlist (original behaviour untouched; shadow
    /// cells added alongside).
    pub netlist: Netlist,
    /// `(original, shadow)` net pairs for every module output bit whose
    /// value the fault can influence — the operands of the cover
    /// property `original != shadow`.
    pub observable_pairs: Vec<(NetId, NetId)>,
    /// Names of the output ports covered by `observable_pairs`, aligned
    /// index-for-index (`port[bit]` labels).
    pub observable_labels: Vec<String>,
}

/// Instrument `netlist` with the failure model for `path` and a shadow
/// replica of everything the fault can influence (paper Fig. 7).
///
/// The original circuit is left fully intact; a copy of the capture
/// flip-flop and its transitive fan-out (crossing flip-flops, so faults
/// that take several cycles to surface are tracked) is created, with the
/// copy of `Y` fed by the failure model. Output bits driven by cloned
/// cells become the observable pairs for the cover property.
pub fn instrument_with_shadow(
    netlist: &Netlist,
    path: AgingPath,
    value: FaultValue,
    activation: FaultActivation,
) -> ShadowInstrumented {
    let mut out = netlist.clone();
    out.set_name(format!("{}_shadow", netlist.name()));
    let faulty_d = build_fault_signal(&mut out, path, value, activation);

    // The cone: Y plus every cell influenced by Y's output.
    let y_out = netlist.cell(path.capture).output;
    let cone = vega_netlist::graph::fanout_cone(
        netlist,
        y_out,
        vega_netlist::graph::ConeOptions {
            cross_dffs: true,
            follow_clock: false,
        },
    );
    let mut cloned: Vec<CellId> = vec![path.capture];
    cloned.extend(cone.iter().copied().filter(|&c| c != path.capture));

    // Clone cells; map original output net -> shadow output net.
    let mut shadow_of: HashMap<NetId, NetId> = HashMap::new();
    let mut shadow_cell_of: HashMap<CellId, CellId> = HashMap::new();
    for &cell_id in &cloned {
        let cell = netlist.cell(cell_id).clone();
        let name = out.fresh_name(&format!("{}_s", cell.name));
        let placeholder_inputs: Vec<NetId> = cell.inputs.clone();
        let new_id = out.add_cell(cell.kind, name, &placeholder_inputs);
        shadow_of.insert(cell.output, out.cell(new_id).output);
        shadow_cell_of.insert(cell_id, new_id);
    }
    // Rewire shadow inputs: a cloned cell reads the shadow version of any
    // net that was itself cloned; clock pins always stay original.
    for &cell_id in &cloned {
        let orig = netlist.cell(cell_id).clone();
        let shadow_id = shadow_cell_of[&cell_id];
        for (pin, &input) in orig.inputs.iter().enumerate() {
            if Netlist::is_clock_pin(orig.kind, pin) {
                continue;
            }
            if let Some(&shadow_net) = shadow_of.get(&input) {
                out.rewire_input(shadow_id, pin, shadow_net);
            }
        }
    }
    // The shadow Y reads the failure model instead of the original D.
    out.rewire_input(shadow_cell_of[&path.capture], 0, faulty_d);

    // Observable pairs: output port bits driven by cloned cells.
    let mut observable_pairs = Vec::new();
    let mut observable_labels = Vec::new();
    for port in netlist.outputs() {
        for (bit, &net) in port.bits.iter().enumerate() {
            if let Some(&shadow_net) = shadow_of.get(&net) {
                observable_pairs.push((net, shadow_net));
                observable_labels.push(format!("{}[{bit}]", port.name));
            }
        }
    }
    // Expose the shadow outputs as ports too, so dumped Verilog shows
    // them (the paper's `o_s` wires).
    for port in netlist.outputs() {
        let shadow_bits: Vec<NetId> = port
            .bits
            .iter()
            .map(|&net| shadow_of.get(&net).copied().unwrap_or(net))
            .collect();
        if shadow_bits.iter().zip(&port.bits).any(|(s, o)| s != o) {
            out.add_output_port(format!("{}_s", port.name), &shadow_bits);
        }
    }

    out.validate()
        .expect("shadow instrumentation must stay valid");
    ShadowInstrumented {
        netlist: out,
        observable_pairs,
        observable_labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_circuits::adder_example::build_paper_adder;
    use vega_formal::{check_cover, BmcConfig, CoverOutcome, Property};
    use vega_sim::Simulator;

    fn adder_path(netlist: &Netlist, launch: &str, capture: &str, v: ViolationKind) -> AgingPath {
        AgingPath {
            launch: netlist.cell_by_name(launch).unwrap().id,
            capture: netlist.cell_by_name(capture).unwrap().id,
            violation: v,
        }
    }

    /// Paper Figure 5/7 + Table 2: the setup violation on $4 -> $10 with
    /// C = 1 admits a trace in which o[1] and o_s[1] diverge.
    #[test]
    fn paper_example_setup_cover_trace() {
        let n = build_paper_adder();
        let path = adder_path(&n, "dff4", "dff10", ViolationKind::Setup);
        let instrumented =
            instrument_with_shadow(&n, path, FaultValue::One, FaultActivation::OnChange);
        assert!(!instrumented.observable_pairs.is_empty());
        assert!(instrumented.observable_labels.contains(&"o[1]".to_string()));

        let property = Property::any_differ(instrumented.observable_pairs.clone());
        let outcome = check_cover(&instrumented.netlist, &property, &[], &BmcConfig::default());
        let CoverOutcome::Trace(trace) = outcome else {
            panic!("expected a trace like the paper's Table 2, got {outcome:?}");
        };
        // The paper's trace fires at its cycle 3 (our 0-based cycle 2+).
        assert!(trace.fire_cycle >= 2, "needs pipeline fill: {trace}");
        assert!(trace.fire_cycle <= 4);

        // Replay the trace on the instrumented netlist in the simulator
        // and watch the shadow diverge while the original stays healthy.
        let mut sim = Simulator::new(&instrumented.netlist);
        let mut diverged = false;
        for (t, cycle) in trace.inputs.iter().enumerate() {
            for (port, value) in cycle {
                sim.set_input(port, *value);
            }
            sim.settle_inputs();
            if t == trace.fire_cycle {
                let o = sim.output("o");
                let o_s = sim.output("o_s");
                diverged = o != o_s;
            }
            sim.step();
        }
        assert!(diverged, "replay must reproduce the divergence");
    }

    /// The hold-violation failure model compares X(t) against X(t+1)
    /// (paper Fig. 6) and also admits a covering trace on $1 -> $9.
    #[test]
    fn paper_example_hold_cover_trace() {
        let n = build_paper_adder();
        let path = adder_path(&n, "dff1", "dff9", ViolationKind::Hold);
        let instrumented =
            instrument_with_shadow(&n, path, FaultValue::One, FaultActivation::OnChange);
        let property = Property::any_differ(instrumented.observable_pairs.clone());
        let outcome = check_cover(&instrumented.netlist, &property, &[], &BmcConfig::default());
        assert!(matches!(outcome, CoverOutcome::Trace(_)), "{outcome:?}");
    }

    /// A failing netlist keeps the original ports but miscomputes when
    /// the launch value toggles.
    #[test]
    fn failing_netlist_miscomputes() {
        let n = build_paper_adder();
        let path = adder_path(&n, "dff4", "dff10", ViolationKind::Setup);
        let failing = build_failing_netlist(&n, path, FaultValue::One, FaultActivation::OnChange);
        assert_eq!(failing.port("o").unwrap().width(), 2);

        // Toggle b[1] (dff4's source) across cycles: the fault fires and
        // o goes wrong.
        let mut healthy = Simulator::new(&n);
        let mut faulty = Simulator::new(&failing);
        let stimulus = [(0u64, 0u64), (0, 2), (0, 0), (0, 2), (0, 0)];
        let mut mismatched = false;
        for &(a, b) in &stimulus {
            for sim in [&mut healthy, &mut faulty] {
                sim.set_input("a", a);
                sim.set_input("b", b);
                sim.step();
            }
            if healthy.output("o") != faulty.output("o") {
                mismatched = true;
            }
        }
        assert!(mismatched, "toggling the violated path must corrupt o");

        // Hold the inputs steady: per Eq. 2 the fault stays dormant.
        let mut healthy = Simulator::new(&n);
        let mut faulty = Simulator::new(&failing);
        for _ in 0..6 {
            for sim in [&mut healthy, &mut faulty] {
                sim.set_input("a", 2);
                sim.set_input("b", 1);
                sim.step();
            }
        }
        assert_eq!(
            healthy.output("o"),
            faulty.output("o"),
            "steady launch value must not trigger the setup fault"
        );
    }

    /// Edge-gated activation (the §3.3.4 mitigation) restricts firing to
    /// one polarity of launch transition.
    #[test]
    fn edge_gated_activation() {
        let n = build_paper_adder();
        let path = adder_path(&n, "dff4", "dff10", ViolationKind::Setup);
        // C is chosen opposite to the healthy value at the firing moment
        // so the corruption is visible on `o`.
        let rising = build_failing_netlist(&n, path, FaultValue::Zero, FaultActivation::RisingEdge);
        let falling =
            build_failing_netlist(&n, path, FaultValue::One, FaultActivation::FallingEdge);

        // Drive b[1] (dff4's source); a is held 0.
        let run = |failing: &Netlist, pattern: &[u64]| -> bool {
            let mut healthy = Simulator::new(&n);
            let mut faulty = Simulator::new(failing);
            let mut mismatch = false;
            for &b in pattern {
                for sim in [&mut healthy, &mut faulty] {
                    sim.set_input("a", 0);
                    sim.set_input("b", b);
                    sim.step();
                }
                if healthy.output("o") != faulty.output("o") {
                    mismatch = true;
                }
            }
            mismatch
        };
        // b[1]: 0 -> 1 (one rising edge, no falling edge).
        assert!(run(&rising, &[0, 2, 2, 2, 2]), "rising edge fires");
        assert!(!run(&falling, &[0, 2, 2, 2, 2]), "no falling edge, no fire");
        // b[1]: 1 -> 0 (a falling edge after the initial rise; C = 1 vs a
        // healthy 0 makes it observable).
        assert!(run(&falling, &[2, 0, 0, 0, 0]), "falling edge fires");
    }

    /// A self-loop path (X == Y) models permanent meta-stability: the
    /// flip-flop always samples C.
    #[test]
    fn self_loop_is_always_faulty() {
        use vega_netlist::NetlistBuilder;
        // A toggler: q = !q every cycle.
        let mut b = NetlistBuilder::new("toggler");
        let clk = b.clock("clk");
        let q_feedback_placeholder = b.input("unused", 1)[0];
        let inv = b.cell(CellKind::Not, "inv", &[q_feedback_placeholder]);
        let q = b.dff("q", inv, clk);
        b.output("y", &[q]);
        let mut n = b.finish().unwrap();
        // Close the loop: inv reads q.
        let inv_id = n.cell_by_name("inv").unwrap().id;
        n.rewire_input(inv_id, 0, n.cell_by_name("q").unwrap().output);
        n.validate().unwrap();

        let q_id = n.cell_by_name("q").unwrap().id;
        let path = AgingPath {
            launch: q_id,
            capture: q_id,
            violation: ViolationKind::Hold,
        };
        let failing = build_failing_netlist(&n, path, FaultValue::One, FaultActivation::OnChange);
        let mut sim = Simulator::new(&failing);
        for _ in 0..4 {
            sim.step();
            assert_eq!(sim.output("y"), 1, "stuck at C = 1 instead of toggling");
        }
    }

    /// Shadow instrumentation leaves the original behaviour untouched.
    #[test]
    fn shadow_preserves_original_behaviour() {
        let n = build_paper_adder();
        let path = adder_path(&n, "dff4", "dff10", ViolationKind::Setup);
        let instrumented =
            instrument_with_shadow(&n, path, FaultValue::Zero, FaultActivation::OnChange);
        let mut plain = Simulator::new(&n);
        let mut inst = Simulator::new(&instrumented.netlist);
        for step in 0..20u64 {
            let a = step % 4;
            let b = (step / 4) % 4;
            for sim in [&mut plain, &mut inst] {
                sim.set_input("a", a);
                sim.set_input("b", b);
                sim.step();
            }
            assert_eq!(plain.output("o"), inst.output("o"), "step {step}");
        }
    }
}
