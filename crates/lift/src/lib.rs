//! Error Lifting: from aging-prone signal paths to software test cases.
//!
//! This crate implements Phase 2 of the Vega workflow (paper §3.3). For
//! every aging-prone register-to-register path `X ⤳ Y` found by the
//! aging-aware STA, it:
//!
//! 1. instruments the netlist with a **logical failure model** of the
//!    timing violation (Eqs. 2 and 3: the capturing flip-flop samples a
//!    wrong constant `C` whenever the launching value actually changed),
//!    optionally restricted to rising/falling launch edges — the paper's
//!    mitigation for initial-value dependency (§3.3.4);
//! 2. clones the fan-out cone of `Y` into a **shadow replica** wired to
//!    the failure model, so the module-wide effect of the fault can be
//!    compared against the healthy original (§3.3.2, Fig. 7);
//! 3. asks the bounded model checker to **cover** "some shadow output
//!    differs from its original" — yielding a cycle-accurate module-level
//!    input trace, a proof that the fault can never corrupt an output, or
//!    a budget exhaustion (§3.3.3, Table 4's S/UR/FF taxonomy);
//! 4. **constructs instructions** from the trace using knowledge of the
//!    module's port protocol, producing a runnable [`TestCase`] whose
//!    expected outputs come from replaying the stimulus on the healthy
//!    netlist (§3.3.5). Conversion fails (the paper's "FC") when the only
//!    observable difference is a sticky status flag that earlier cycles
//!    of the same trace already raised.
//!
//! The same instrumentation also produces standalone **failing netlists**
//! — circuit-level failure models with `C` held at 0, 1, or randomized —
//! which the evaluation uses as its fault population (§5.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod construct;
pub mod fuzz;
mod generate;
mod instrument;
mod module;
mod testcase;

pub use construct::{construct_test_case, ConversionError};
pub use fuzz::{fuzz_test_case, FuzzConfig, FuzzStats};
pub use generate::{
    generate_suite, generate_suite_parallel, lift_pair, panic_message, Attempt, BudgetRound,
    ChaosHook, ConstructionOutcome, LiftConfig, LiftReport, PairClass, PairResult,
    PortfolioSettings, RetryPolicy,
};
pub use instrument::{
    build_failing_netlist, instrument_with_shadow, AgingPath, FaultActivation, FaultValue,
    ShadowInstrumented,
};
pub use module::ModuleKind;
pub use testcase::{
    run_selected_wide, run_suite, run_suite_wide, run_test_case, validate_test_case, Check,
    Provenance, TestCase, TestOutcome,
};
pub use vega_sat::{Interrupt, SolverConfig};
