//! Module port protocols: how the analyzed units map traces to
//! instructions.

use vega_formal::{Assumption, BmcConfig};
use vega_netlist::Netlist;

/// Which analyzed hardware module a netlist implements.
///
/// The paper's Instruction Construction step needs "expert knowledge of
/// the CPU's microarchitecture" (§3.3.5): this enum carries that
/// knowledge — valid operation encodings for `assume property`
/// constraints, pipeline latency, which output ports are observable from
/// software, and how a cycle of module inputs becomes an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ModuleKind {
    /// The RV32I ALU of `vega-circuits` (`op`/`a`/`b` → `r`).
    Alu,
    /// The FP32 FPU of `vega-circuits` (valid handshake, flags, tag).
    Fpu,
    /// The paper's 2-bit example adder (`a`/`b` → `o`).
    PaperAdder,
}

impl ModuleKind {
    /// Recognize a netlist by its module name.
    pub fn detect(netlist: &Netlist) -> Option<ModuleKind> {
        match netlist.name() {
            name if name.starts_with("rv32_alu") => Some(ModuleKind::Alu),
            name if name.starts_with("rv32_fpu") => Some(ModuleKind::Fpu),
            name if name.starts_with("adder") => Some(ModuleKind::PaperAdder),
            _ => None,
        }
    }

    /// The input constraints handed to the formal tool — the paper's
    /// `assume property` restrictions to valid operations (§3.3.3).
    pub fn assumptions(self, netlist: &Netlist) -> Vec<Assumption> {
        let _ = netlist;
        match self {
            ModuleKind::Alu => vec![Assumption::PortIn {
                port: "op".into(),
                allowed: vega_circuits::alu::alu_valid_ops(),
            }],
            ModuleKind::Fpu => vec![
                Assumption::PortIn {
                    port: "op".into(),
                    allowed: vega_circuits::fpu::fpu_valid_ops(),
                },
                // The issue tag is irrelevant to fault activation; pin it
                // so traces stay clean.
                Assumption::PortIn {
                    port: "tag".into(),
                    allowed: vec![0],
                },
            ],
            ModuleKind::PaperAdder => Vec::new(),
        }
    }

    /// Pipeline latency in cycles from input to registered output.
    pub fn latency(self) -> usize {
        match self {
            ModuleKind::Alu => vega_circuits::alu::ALU_LATENCY,
            ModuleKind::Fpu => vega_circuits::fpu::FPU_LATENCY,
            ModuleKind::PaperAdder => 2,
        }
    }

    /// BMC limits tuned to the module's size. The conflict budget plays
    /// the part of the paper's formal-tool wall-clock limit; the FPU's
    /// hardest cones occasionally exhaust it, which is exactly how the
    /// paper's Table 4 "FF" rows arise.
    pub fn bmc_config(self) -> BmcConfig {
        match self {
            ModuleKind::Alu => BmcConfig {
                max_cycles: 6,
                max_induction: 3,
                conflict_budget: 2_000_000,
            },
            ModuleKind::Fpu => BmcConfig {
                max_cycles: 6,
                max_induction: 2,
                conflict_budget: 400_000,
            },
            ModuleKind::PaperAdder => BmcConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_circuits::{adder_example::build_paper_adder, alu::build_alu, fpu::build_fpu};

    #[test]
    fn detects_modules_by_name() {
        assert_eq!(ModuleKind::detect(&build_alu()), Some(ModuleKind::Alu));
        assert_eq!(ModuleKind::detect(&build_fpu()), Some(ModuleKind::Fpu));
        assert_eq!(
            ModuleKind::detect(&build_paper_adder()),
            Some(ModuleKind::PaperAdder)
        );
        // Derived names (failing netlists) still detect.
        let mut failing = build_alu();
        failing.set_name("rv32_alu_failing");
        assert_eq!(ModuleKind::detect(&failing), Some(ModuleKind::Alu));
    }

    #[test]
    fn assumptions_cover_valid_ops_only() {
        let alu = build_alu();
        let assumptions = ModuleKind::Alu.assumptions(&alu);
        assert_eq!(assumptions.len(), 1);
        match &assumptions[0] {
            vega_formal::Assumption::PortIn { port, allowed } => {
                assert_eq!(port, "op");
                assert_eq!(allowed.len(), 10);
                assert!(!allowed.contains(&15), "15 is not a valid ALU op");
            }
            other => panic!("unexpected assumption {other:?}"),
        }
        let fpu = build_fpu();
        let assumptions = ModuleKind::Fpu.assumptions(&fpu);
        assert_eq!(assumptions.len(), 2, "op restriction plus tag pin");
    }

    #[test]
    fn latencies_match_the_generators() {
        assert_eq!(ModuleKind::Alu.latency(), vega_circuits::alu::ALU_LATENCY);
        assert_eq!(ModuleKind::Fpu.latency(), vega_circuits::fpu::FPU_LATENCY);
        assert_eq!(ModuleKind::PaperAdder.latency(), 2);
    }

    #[test]
    fn budgets_scale_with_module_size() {
        let alu = ModuleKind::Alu.bmc_config();
        let fpu = ModuleKind::Fpu.bmc_config();
        assert!(
            alu.conflict_budget > fpu.conflict_budget * 2,
            "the bigger unit gets the tighter per-query budget (wall-clock parity)"
        );
    }
}
