//! Runnable test cases and the module-level test runner.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use vega_netlist::Netlist;
use vega_riscv::Instr;
use vega_sim::{Simulator, Simulator64, LANES};

use crate::module::ModuleKind;

/// One per-cycle output check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Check {
    /// `port` must equal `expected` at `cycle` (0-based stimulus cycle).
    PortAt {
        /// Cycle index within the run.
        cycle: usize,
        /// Output port name.
        port: String,
        /// Expected value.
        expected: u64,
    },
    /// The bitwise OR of `port` sampled at each of `cycles` must equal
    /// `expected` — models a sticky status CSR read once at the end
    /// (the FPU's accumulated `fflags`).
    StickyOr {
        /// Result cycles contributing to the accumulation.
        cycles: Vec<usize>,
        /// Output port name.
        port: String,
        /// Expected accumulated value.
        expected: u64,
    },
}

/// How a test case's witness stimulus was obtained. Formal witnesses are
/// proof-quality (the trace provably exposes the failure model); fuzzed
/// witnesses are best-effort fallbacks recorded when the formal budget —
/// including any escalated retries — ran out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Provenance {
    /// Constructed from a bounded-model-checking cover trace.
    #[default]
    Formal,
    /// Constructed from a randomized-simulation witness after the formal
    /// search gave up (graceful degradation, paper §6.3).
    Fuzzed,
}

/// A compact, software-executable test case for one aging-prone path
/// (the product of Error Lifting).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestCase {
    /// Unique name, e.g. `alu_dff42_dff77_setup_c1`.
    pub name: String,
    /// Human-readable target path.
    pub target: String,
    /// Per-cycle module input assignments (port → value), including any
    /// operand-preload window before the formally-derived trace window.
    pub stimulus: Vec<BTreeMap<String, u64>>,
    /// Output checks, expected values computed from the golden model.
    pub checks: Vec<Check>,
    /// The RISC-V realization of the stimulus: operand materialization,
    /// the back-to-back operations, and result compares.
    #[serde(skip)]
    pub instructions: Vec<Instr>,
    /// Estimated CPU cycles to execute `instructions`.
    pub cpu_cycles: u64,
    /// Where the witness stimulus came from (formal proof-quality search
    /// or the fuzzing fallback). Absent in pre-versioned artifacts, which
    /// were always formal.
    #[serde(default)]
    pub provenance: Provenance,
}

impl TestCase {
    /// Cycles the module-level run occupies (stimulus plus pipeline
    /// drain).
    pub fn module_cycles(&self, module: ModuleKind) -> usize {
        self.stimulus.len() + module.latency()
    }
}

/// The result of running one test case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestOutcome {
    /// Every check passed.
    Pass,
    /// A check failed: the fault was detected.
    Detected {
        /// The failing check's cycle (stimulus cycle for sticky checks,
        /// the compare point otherwise).
        cycle: usize,
        /// The mismatching port.
        port: String,
    },
    /// The result handshake (`out_valid`) failed — software would hang
    /// waiting for the unit (paper Table 6, "S").
    Stall {
        /// The cycle at which the handshake was expected.
        cycle: usize,
    },
    /// The test case could not run against this simulator at all (e.g.
    /// its stimulus drives a port the netlist does not have, or a value
    /// wider than the port). A skip is not a detection: the scheduler
    /// reports it and moves on instead of tearing down the suite.
    Skipped {
        /// Why the test case was skipped.
        reason: String,
    },
}

/// Check that `test` can actually be driven onto the netlist `sim`
/// wraps: every stimulus port must exist as an input of the right width,
/// and every checked port must exist. Returns the first problem found.
///
/// The aging library runs this before each test case so that one
/// malformed or mismatched test (a suite built for a different unit
/// revision, say) degrades to a reported skip instead of a panic that
/// takes the whole embedded suite down.
pub fn validate_test_case(netlist: &Netlist, test: &TestCase) -> Result<(), String> {
    for (cycle, inputs) in test.stimulus.iter().enumerate() {
        for (name, value) in inputs {
            let Some(port) = netlist.port(name) else {
                return Err(format!(
                    "stimulus cycle {cycle} drives missing port `{name}`"
                ));
            };
            let needed = 64 - value.leading_zeros() as usize;
            if port.width() < needed {
                return Err(format!(
                    "stimulus cycle {cycle} drives {value:#x} into {}-bit port `{name}`",
                    port.width()
                ));
            }
        }
    }
    for check in &test.checks {
        let port_name = match check {
            Check::PortAt { port, .. } | Check::StickyOr { port, .. } => port,
        };
        if netlist.port(port_name).is_none() {
            return Err(format!("check reads missing port `{port_name}`"));
        }
    }
    Ok(())
}

/// Run `test` against the module simulated by `sim` — which may wrap the
/// healthy netlist or a failing one — **without resetting** the
/// simulator. Suites run back-to-back on one simulator, so leftover state
/// from earlier tests is visible to later ones: this is precisely the
/// initial-value dependency of paper §3.3.4.
pub fn run_test_case(sim: &mut Simulator<'_>, module: ModuleKind, test: &TestCase) -> TestOutcome {
    let total = test.module_cycles(module);
    let mut sticky: BTreeMap<usize, u64> = BTreeMap::new(); // check index -> accum
    let netlist: &Netlist = sim.netlist();
    let has_valid = netlist.port("valid").is_some();

    for cycle in 0..total {
        if let Some(inputs) = test.stimulus.get(cycle) {
            for (port, value) in inputs {
                sim.set_input(port, *value);
            }
        } else if has_valid {
            // Drain window: no new operations.
            sim.set_input("valid", 0);
        }
        sim.settle_inputs();

        // Evaluate checks scheduled at this cycle.
        for (index, check) in test.checks.iter().enumerate() {
            match check {
                Check::PortAt {
                    cycle: c,
                    port,
                    expected,
                } if *c == cycle => {
                    let actual = sim.output(port);
                    if actual != *expected {
                        if port == "out_valid" {
                            return TestOutcome::Stall { cycle };
                        }
                        return TestOutcome::Detected {
                            cycle,
                            port: port.clone(),
                        };
                    }
                }
                Check::StickyOr { cycles, port, .. } if cycles.contains(&cycle) => {
                    let entry = sticky.entry(index).or_insert(0);
                    *entry |= sim.output(port);
                }
                _ => {}
            }
        }
        sim.step();
    }

    // Final sticky comparisons.
    for (index, check) in test.checks.iter().enumerate() {
        if let Check::StickyOr {
            port,
            expected,
            cycles,
        } = check
        {
            let actual = sticky.get(&index).copied().unwrap_or(0);
            if actual != *expected {
                let cycle = cycles.last().copied().unwrap_or(0);
                return TestOutcome::Detected {
                    cycle,
                    port: port.clone(),
                };
            }
        }
    }
    TestOutcome::Pass
}

/// Run a whole suite bit-parallel: up to 64 tests advance per settle
/// pass, each in its own lane of a [`Simulator64`] with its own stimulus
/// schedule (lanes are driven through a per-lane input mask).
///
/// Each test runs **from the reset state** of a fresh per-chunk
/// simulator — unlike [`run_suite`], which chains leftover state from
/// test to test on one scalar simulator (paper §3.3.4's initial-value
/// dependency). Use this runner where throughput matters and the suite's
/// tests were generated from reset anyway (fleet scan visits); use
/// [`run_suite`] to model back-to-back embedded execution.
///
/// Per-test semantics otherwise match [`run_test_case`]: drain cycles
/// drive `valid = 0` where the port exists, checks are evaluated in
/// declaration order, `out_valid` mismatches report a stall, and sticky
/// accumulations compare at the end of the test's own window. Unrunnable
/// tests ([`validate_test_case`]) are reported as [`TestOutcome::Skipped`]
/// without occupying a lane; a panicking chunk degrades to skips for the
/// tests in it.
///
/// `seed` feeds any `Random` pseudo-cells in the netlist (per-lane
/// streams, deterministic per `(seed, suite order)`).
pub fn run_suite_wide(
    netlist: &Netlist,
    module: ModuleKind,
    suite: &[TestCase],
    seed: u64,
) -> Vec<TestOutcome> {
    let all: Vec<usize> = (0..suite.len()).collect();
    run_selected_wide(netlist, module, suite, &all, seed)
}

/// [`run_suite_wide`] over a *selection* of suite indices, without
/// cloning the selected tests into a temporary suite. Outcomes are
/// returned parallel to `selected`. This is the fleet's per-visit entry
/// point: a visit runs a handful of tests out of a shared pool suite,
/// and at a million machines the per-visit `TestCase` clones the naive
/// path would make dominate the scheduler.
///
/// Seeding matches [`run_suite_wide`] run on the selection as its own
/// suite: chunking (and thus the per-chunk seed offset) is over the
/// selection's runnable tests, in selection order.
pub fn run_selected_wide(
    netlist: &Netlist,
    module: ModuleKind,
    suite: &[TestCase],
    selected: &[usize],
    seed: u64,
) -> Vec<TestOutcome> {
    let mut outcomes: Vec<Option<TestOutcome>> = selected
        .iter()
        .map(|&index| {
            validate_test_case(netlist, &suite[index])
                .err()
                .map(|reason| TestOutcome::Skipped { reason })
        })
        .collect();
    let runnable: Vec<usize> = (0..selected.len())
        .filter(|&position| outcomes[position].is_none())
        .collect();
    for (chunk_index, chunk) in runnable.chunks(LANES).enumerate() {
        let chunk_seed =
            seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chunk_index as u64));
        let suite_indices: Vec<usize> = chunk.iter().map(|&position| selected[position]).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_chunk_wide(netlist, module, suite, &suite_indices, chunk_seed)
        }));
        match result {
            Ok(chunk_outcomes) => {
                for (lane, &position) in chunk.iter().enumerate() {
                    outcomes[position] = Some(chunk_outcomes[lane].clone());
                }
            }
            Err(_) => {
                for &position in chunk {
                    outcomes[position] = Some(TestOutcome::Skipped {
                        reason: "test runner panicked".to_string(),
                    });
                }
            }
        }
    }
    outcomes
        .into_iter()
        .map(|outcome| outcome.expect("every test decided"))
        .collect()
}

/// Run up to 64 validated tests, one per lane, on a fresh simulator.
fn run_chunk_wide(
    netlist: &Netlist,
    module: ModuleKind,
    suite: &[TestCase],
    chunk: &[usize],
    seed: u64,
) -> Vec<TestOutcome> {
    let mut sim = Simulator64::with_seed(netlist, seed);
    let has_valid = netlist.port("valid").is_some();
    let totals: Vec<usize> = chunk
        .iter()
        .map(|&index| suite[index].module_cycles(module))
        .collect();
    let max_total = totals.iter().copied().max().unwrap_or(0);
    let mut decided: Vec<Option<TestOutcome>> = vec![None; chunk.len()];
    let mut sticky: Vec<BTreeMap<usize, u64>> = vec![BTreeMap::new(); chunk.len()];

    for cycle in 0..max_total {
        // Gather this cycle's drives, port by port, across lanes whose
        // test window is still open.
        let mut drives: BTreeMap<&str, ([u64; LANES], u64)> = BTreeMap::new();
        for (lane, &index) in chunk.iter().enumerate() {
            if cycle >= totals[lane] {
                continue;
            }
            let test = &suite[index];
            if let Some(inputs) = test.stimulus.get(cycle) {
                for (port, value) in inputs {
                    let entry = drives.entry(port.as_str()).or_insert(([0; LANES], 0));
                    entry.0[lane] = *value;
                    entry.1 |= 1 << lane;
                }
            } else if has_valid {
                // Drain window: no new operations in this lane.
                let entry = drives.entry("valid").or_insert(([0; LANES], 0));
                entry.0[lane] = 0;
                entry.1 |= 1 << lane;
            }
        }
        for (port, (values, mask)) in &drives {
            sim.set_input_lanes_masked(port, values, *mask);
        }
        sim.settle_inputs();

        for (lane, &index) in chunk.iter().enumerate() {
            if decided[lane].is_some() || cycle >= totals[lane] {
                continue;
            }
            let test = &suite[index];
            for (check_index, check) in test.checks.iter().enumerate() {
                match check {
                    Check::PortAt {
                        cycle: c,
                        port,
                        expected,
                    } if *c == cycle => {
                        let actual = sim.output_lane(port, lane);
                        if actual != *expected {
                            decided[lane] = Some(if port == "out_valid" {
                                TestOutcome::Stall { cycle }
                            } else {
                                TestOutcome::Detected {
                                    cycle,
                                    port: port.clone(),
                                }
                            });
                            break;
                        }
                    }
                    Check::StickyOr { cycles, port, .. } if cycles.contains(&cycle) => {
                        *sticky[lane].entry(check_index).or_insert(0) |=
                            sim.output_lane(port, lane);
                    }
                    _ => {}
                }
            }
            // The lane's window just closed: final sticky comparisons.
            if decided[lane].is_none() && cycle + 1 == totals[lane] {
                for (check_index, check) in test.checks.iter().enumerate() {
                    if let Check::StickyOr {
                        port,
                        expected,
                        cycles,
                    } = check
                    {
                        let actual = sticky[lane].get(&check_index).copied().unwrap_or(0);
                        if actual != *expected {
                            decided[lane] = Some(TestOutcome::Detected {
                                cycle: cycles.last().copied().unwrap_or(0),
                                port: port.clone(),
                            });
                            break;
                        }
                    }
                }
                if decided[lane].is_none() {
                    decided[lane] = Some(TestOutcome::Pass);
                }
            }
        }
        sim.step();
    }
    decided
        .into_iter()
        .map(|outcome| outcome.unwrap_or(TestOutcome::Pass))
        .collect()
}

/// Run a whole suite in order on one simulator (no resets in between).
/// Returns each test's outcome.
pub fn run_suite(
    sim: &mut Simulator<'_>,
    module: ModuleKind,
    suite: &[TestCase],
) -> Vec<TestOutcome> {
    suite
        .iter()
        .map(|t| run_test_case(sim, module, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_circuits::adder_example::build_paper_adder;
    use vega_sim::Simulator;

    fn one_cycle(a: u64, b: u64) -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        m.insert("a".into(), a);
        m.insert("b".into(), b);
        m
    }

    #[test]
    fn port_checks_pass_and_fail_correctly() {
        let n = build_paper_adder();
        let good = TestCase {
            name: "good".into(),
            target: "t".into(),
            stimulus: vec![one_cycle(1, 2), one_cycle(3, 3)],
            checks: vec![
                Check::PortAt {
                    cycle: 2,
                    port: "o".into(),
                    expected: 3,
                },
                Check::PortAt {
                    cycle: 3,
                    port: "o".into(),
                    expected: 2,
                },
            ],
            instructions: vec![],
            cpu_cycles: 4,
            provenance: Provenance::Formal,
        };
        let mut sim = Simulator::new(&n);
        assert_eq!(
            run_test_case(&mut sim, ModuleKind::PaperAdder, &good),
            TestOutcome::Pass
        );

        let bad = TestCase {
            checks: vec![Check::PortAt {
                cycle: 2,
                port: "o".into(),
                expected: 0,
            }],
            ..good.clone()
        };
        let mut sim = Simulator::new(&n);
        match run_test_case(&mut sim, ModuleKind::PaperAdder, &bad) {
            TestOutcome::Detected { cycle: 2, port } => assert_eq!(port, "o"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sticky_or_accumulates_over_cycles() {
        let n = build_paper_adder();
        // o over cycles: (1+0)=1 at cycle 2, (2+0)=2 at cycle 3:
        // OR of samples = 3.
        let test = TestCase {
            name: "sticky".into(),
            target: "t".into(),
            stimulus: vec![one_cycle(1, 0), one_cycle(2, 0)],
            checks: vec![Check::StickyOr {
                cycles: vec![2, 3],
                port: "o".into(),
                expected: 3,
            }],
            instructions: vec![],
            cpu_cycles: 4,
            provenance: Provenance::Formal,
        };
        let mut sim = Simulator::new(&n);
        assert_eq!(
            run_test_case(&mut sim, ModuleKind::PaperAdder, &test),
            TestOutcome::Pass
        );

        let wrong = TestCase {
            checks: vec![Check::StickyOr {
                cycles: vec![2, 3],
                port: "o".into(),
                expected: 1,
            }],
            ..test
        };
        let mut sim = Simulator::new(&n);
        assert!(matches!(
            run_test_case(&mut sim, ModuleKind::PaperAdder, &wrong),
            TestOutcome::Detected { .. }
        ));
    }

    #[test]
    fn wide_suite_matches_per_test_scalar_runs() {
        let n = build_paper_adder();
        // A mixed suite: a passing test, a failing one, a sticky pass, a
        // sticky fail, and an unrunnable one — outcome order must match
        // fresh scalar runs test-for-test.
        let passing = TestCase {
            name: "pass".into(),
            target: "t".into(),
            stimulus: vec![one_cycle(1, 2), one_cycle(3, 3)],
            checks: vec![
                Check::PortAt {
                    cycle: 2,
                    port: "o".into(),
                    expected: 3,
                },
                Check::PortAt {
                    cycle: 3,
                    port: "o".into(),
                    expected: 2,
                },
            ],
            instructions: vec![],
            cpu_cycles: 4,
            provenance: Provenance::Formal,
        };
        let failing = TestCase {
            name: "fail".into(),
            checks: vec![Check::PortAt {
                cycle: 2,
                port: "o".into(),
                expected: 0,
            }],
            ..passing.clone()
        };
        let sticky_pass = TestCase {
            name: "sticky_pass".into(),
            stimulus: vec![one_cycle(1, 0), one_cycle(2, 0)],
            checks: vec![Check::StickyOr {
                cycles: vec![2, 3],
                port: "o".into(),
                expected: 3,
            }],
            ..passing.clone()
        };
        let sticky_fail = TestCase {
            name: "sticky_fail".into(),
            checks: vec![Check::StickyOr {
                cycles: vec![2, 3],
                port: "o".into(),
                expected: 1,
            }],
            ..sticky_pass.clone()
        };
        let mut unrunnable = passing.clone();
        unrunnable.name = "unrunnable".into();
        unrunnable.stimulus[0].insert("no_such_port".into(), 1);
        let suite = vec![passing, failing, sticky_pass, sticky_fail, unrunnable];

        let wide = run_suite_wide(&n, ModuleKind::PaperAdder, &suite, 7);
        assert_eq!(wide.len(), suite.len());
        for (test, wide_outcome) in suite.iter().zip(&wide) {
            if test.name == "unrunnable" {
                assert!(matches!(wide_outcome, TestOutcome::Skipped { .. }));
                continue;
            }
            let mut sim = Simulator::new(&n);
            let scalar = run_test_case(&mut sim, ModuleKind::PaperAdder, test);
            assert_eq!(wide_outcome, &scalar, "test `{}`", test.name);
        }
    }

    #[test]
    fn wide_suite_chunks_past_64_tests() {
        let n = build_paper_adder();
        // 70 tests forces a second chunk; alternate pass/fail so both
        // outcomes appear on both sides of the chunk boundary.
        let suite: Vec<TestCase> = (0..70)
            .map(|i| TestCase {
                name: format!("t{i}"),
                target: "t".into(),
                stimulus: vec![one_cycle(1, 2)],
                checks: vec![Check::PortAt {
                    cycle: 2,
                    port: "o".into(),
                    expected: if i % 2 == 0 { 3 } else { 0 },
                }],
                instructions: vec![],
                cpu_cycles: 2,
                provenance: Provenance::Formal,
            })
            .collect();
        let outcomes = run_suite_wide(&n, ModuleKind::PaperAdder, &suite, 1);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(outcome, &TestOutcome::Pass, "test {i}");
            } else {
                assert!(matches!(outcome, TestOutcome::Detected { .. }), "test {i}");
            }
        }
    }

    #[test]
    fn module_cycles_includes_drain() {
        let test = TestCase {
            name: "t".into(),
            target: "t".into(),
            stimulus: vec![one_cycle(0, 0); 3],
            checks: vec![],
            instructions: vec![],
            cpu_cycles: 3,
            provenance: Provenance::Formal,
        };
        assert_eq!(test.module_cycles(ModuleKind::PaperAdder), 5);
        assert_eq!(test.module_cycles(ModuleKind::Fpu), 5);
    }
}
