//! Integration test: Error Lifting on the real gate-level ALU — netlist →
//! failure model → shadow replica → bounded model checking → instruction
//! construction → detection.

use vega_circuits::alu::build_alu;
use vega_lift::{
    build_failing_netlist, generate_suite, run_test_case, AgingPath, ConstructionOutcome,
    LiftConfig, ModuleKind, PairClass, TestOutcome,
};
use vega_sim::Simulator;
use vega_sta::ViolationKind;

#[test]
fn lift_one_real_alu_path_end_to_end() {
    let netlist = build_alu();
    // A real sensitizable path: operand register a[0] -> result register
    // r[0] (the ripple adder's LSB column, among other routes).
    let path = AgingPath {
        launch: netlist.cell_by_name("alu_a_q_4").expect("a_q[0]").id,
        capture: netlist.cell_by_name("alu_r_q_977").expect("r_q[0]").id,
        violation: ViolationKind::Setup,
    };

    let report = generate_suite(&netlist, ModuleKind::Alu, &[path], &LiftConfig::default());
    assert_eq!(report.pairs.len(), 1);
    let pair = &report.pairs[0];
    assert_eq!(pair.class(), PairClass::Success, "{:?}", summarize(pair));

    // Every constructed test passes on the healthy ALU and detects its
    // own failure model.
    let mut verified = 0;
    for attempt in &pair.attempts {
        let ConstructionOutcome::Success(tc) = &attempt.outcome else {
            continue;
        };
        let (value, activation) = (attempt.value, attempt.activation);
        assert!(!tc.instructions.is_empty(), "software realization exists");
        assert!(tc.cpu_cycles > 0);

        let mut healthy = Simulator::new(&netlist);
        assert_eq!(
            run_test_case(&mut healthy, ModuleKind::Alu, tc),
            TestOutcome::Pass,
            "{} must pass on healthy hardware",
            tc.name
        );

        let failing = build_failing_netlist(&netlist, path, value, activation);
        let mut faulty = Simulator::new(&failing);
        assert_ne!(
            run_test_case(&mut faulty, ModuleKind::Alu, tc),
            TestOutcome::Pass,
            "{} must detect C={value:?} {activation:?}",
            tc.name
        );
        verified += 1;
    }
    assert!(verified >= 1);
}

fn summarize(pair: &vega_lift::PairResult) -> Vec<String> {
    pair.attempts
        .iter()
        .map(|attempt| {
            let tag = match &attempt.outcome {
                ConstructionOutcome::Success(_) => "S",
                ConstructionOutcome::ProvenSafe { .. } => "UR",
                ConstructionOutcome::FormalFailure => "FF",
                ConstructionOutcome::ConversionFailure => "FC",
                ConstructionOutcome::BoundedInconclusive => "BI",
                ConstructionOutcome::Crashed { .. } => "CR",
            };
            format!("{:?}/{:?}: {tag}", attempt.value, attempt.activation)
        })
        .collect()
}
