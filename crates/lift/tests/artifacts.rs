//! The circuit-level failure models are *artifacts*: the paper ships its
//! failing netlists as Verilog for future reliability research (§3.3.2,
//! contribution 3). These tests exercise that flow — instrumented
//! netlists round-trip through structural Verilog and keep behaving
//! identically.

use vega_circuits::adder_example::build_paper_adder;
use vega_lift::{
    build_failing_netlist, instrument_with_shadow, AgingPath, FaultActivation, FaultValue,
};
use vega_netlist::verilog::{parse_verilog, write_verilog};
use vega_sim::Simulator;
use vega_sta::ViolationKind;

fn setup_path(n: &vega_netlist::Netlist) -> AgingPath {
    AgingPath {
        launch: n.cell_by_name("dff4").unwrap().id,
        capture: n.cell_by_name("dff10").unwrap().id,
        violation: ViolationKind::Setup,
    }
}

#[test]
fn failing_netlist_round_trips_through_verilog() {
    let n = build_paper_adder();
    let failing = build_failing_netlist(
        &n,
        setup_path(&n),
        FaultValue::One,
        FaultActivation::OnChange,
    );
    let text = write_verilog(&failing);
    assert!(text.contains("module adder_failing"));
    assert!(
        text.contains("MUX2"),
        "the failure-model mux is in the artifact"
    );
    assert!(text.contains("TIEHI"), "the constant C is in the artifact");

    let parsed = parse_verilog(&text).expect("artifact parses");
    assert_eq!(parsed.cell_count(), failing.cell_count());

    // Behavioural equivalence across the round trip, on a toggling
    // stimulus that fires the fault.
    let mut original = Simulator::new(&failing);
    let mut reparsed = Simulator::new(&parsed);
    for step in 0..40u64 {
        let a = step % 4;
        let b = (step / 2) % 4;
        for sim in [&mut original, &mut reparsed] {
            sim.set_input("a", a);
            sim.set_input("b", b);
            sim.step();
        }
        assert_eq!(original.output("o"), reparsed.output("o"), "step {step}");
    }
}

#[test]
fn shadow_instrumented_netlist_round_trips_with_shadow_ports() {
    let n = build_paper_adder();
    let instrumented = instrument_with_shadow(
        &n,
        setup_path(&n),
        FaultValue::One,
        FaultActivation::OnChange,
    );
    let text = write_verilog(&instrumented.netlist);
    assert!(
        text.contains("output [1:0] o_s;"),
        "shadow outputs are ports"
    );
    let parsed = parse_verilog(&text).expect("shadow artifact parses");
    assert!(parsed.port("o_s").is_some());
    assert_eq!(parsed.cell_count(), instrumented.netlist.cell_count());
}

#[test]
fn random_mode_failing_netlist_round_trips() {
    let n = build_paper_adder();
    let failing = build_failing_netlist(
        &n,
        setup_path(&n),
        FaultValue::Random,
        FaultActivation::OnChange,
    );
    let text = write_verilog(&failing);
    assert!(
        text.contains("RANDOM"),
        "the nondeterministic C cell is explicit"
    );
    let parsed = parse_verilog(&text).expect("random artifact parses");
    // Same seed, same behaviour — the RANDOM cell is part of the model.
    let mut a_sim = Simulator::with_seed(&failing, 99);
    let mut b_sim = Simulator::with_seed(&parsed, 99);
    for step in 0..30u64 {
        for sim in [&mut a_sim, &mut b_sim] {
            sim.set_input("a", step % 4);
            sim.set_input("b", 1);
            sim.step();
        }
        assert_eq!(a_sim.output("o"), b_sim.output("o"), "step {step}");
    }
}
