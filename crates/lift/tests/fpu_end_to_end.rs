//! Integration test: Error Lifting on the gate-level FPU, including the
//! handshake-stall failure mode.

use vega_circuits::fpu::build_fpu;
use vega_lift::{
    build_failing_netlist, generate_suite, run_test_case, AgingPath, ConstructionOutcome,
    LiftConfig, ModuleKind, PairClass, TestOutcome,
};
use vega_sim::Simulator;
use vega_sta::ViolationKind;

#[test]
fn lift_one_fpu_path_end_to_end() {
    let netlist = build_fpu();
    // Input operand register a[0] -> result register r[0].
    let a_q0 = netlist
        .dffs()
        .find(|c| c.name.starts_with("fpu_a_q_"))
        .expect("a_q registers")
        .id;
    let r_q0 = netlist
        .dffs()
        .find(|c| c.name.starts_with("fpu_r_q_"))
        .expect("r_q registers")
        .id;
    let path = AgingPath {
        launch: a_q0,
        capture: r_q0,
        violation: ViolationKind::Setup,
    };

    let report = generate_suite(&netlist, ModuleKind::Fpu, &[path], &LiftConfig::default());
    let pair = &report.pairs[0];
    // With the FPU's tighter budget this may occasionally time out; it
    // must never be misclassified as unreachable.
    assert_ne!(pair.class(), PairClass::Unreachable);
    if pair.class() != PairClass::Success {
        eprintln!("FPU lift inconclusive under budget: {:?}", pair.class());
        return;
    }
    for attempt in &pair.attempts {
        let ConstructionOutcome::Success(tc) = &attempt.outcome else {
            continue;
        };
        let mut healthy = Simulator::new(&netlist);
        assert_eq!(
            run_test_case(&mut healthy, ModuleKind::Fpu, tc),
            TestOutcome::Pass
        );
        let failing = build_failing_netlist(&netlist, path, attempt.value, attempt.activation);
        let mut faulty = Simulator::new(&failing);
        assert_ne!(
            run_test_case(&mut faulty, ModuleKind::Fpu, tc),
            TestOutcome::Pass
        );
    }
}

#[test]
fn handshake_fault_stalls() {
    let netlist = build_fpu();
    // Fault on the valid pipeline: valid_q -> out_valid_q (hold-style
    // cross-branch path), C = 0: the result handshake vanishes.
    let path = AgingPath {
        launch: netlist.cell_by_name("valid_q").unwrap().id,
        capture: netlist.cell_by_name("out_valid_q").unwrap().id,
        violation: ViolationKind::Hold,
    };
    let report = generate_suite(&netlist, ModuleKind::Fpu, &[path], &LiftConfig::default());
    let pair = &report.pairs[0];
    if pair.class() != PairClass::Success {
        eprintln!("valid-path lift inconclusive: {:?}", pair.class());
        return;
    }
    // Run any constructed test against the failing netlist with C = 0:
    // expect a stall (or at least a detection).
    for attempt in &pair.attempts {
        let ConstructionOutcome::Success(tc) = &attempt.outcome else {
            continue;
        };
        let failing = build_failing_netlist(&netlist, path, attempt.value, attempt.activation);
        let mut faulty = Simulator::new(&failing);
        let result = run_test_case(&mut faulty, ModuleKind::Fpu, tc);
        assert_ne!(result, TestOutcome::Pass, "{}", tc.name);
    }
}
