//! Fault-injection tests for the resilient lifting driver: injected
//! panics are isolated to their pair, injected budget exhaustions
//! escalate per the retry policy and then degrade to the fuzzing
//! fallback — and in every case the sibling pairs' results survive.

use vega_circuits::adder_example::build_paper_adder;
use vega_lift::{
    generate_suite, generate_suite_parallel, AgingPath, ChaosHook, ConstructionOutcome, FuzzConfig,
    LiftConfig, ModuleKind, PairClass, Provenance, RetryPolicy,
};
use vega_netlist::Netlist;
use vega_sta::ViolationKind;

fn adder_paths(n: &Netlist) -> Vec<AgingPath> {
    [("dff4", "dff10"), ("dff2", "dff10"), ("dff1", "dff9")]
        .iter()
        .map(|(launch, capture)| AgingPath {
            launch: n.cell_by_name(launch).unwrap().id,
            capture: n.cell_by_name(capture).unwrap().id,
            violation: ViolationKind::Setup,
        })
        .collect()
}

#[test]
fn injected_panic_is_isolated_to_its_pair() {
    let n = build_paper_adder();
    let paths = adder_paths(&n);
    let config = LiftConfig {
        chaos: ChaosHook {
            panic_at_pair: Some(1),
            ..ChaosHook::default()
        },
        ..LiftConfig::default()
    };
    let report = generate_suite(&n, ModuleKind::PaperAdder, &paths, &config);

    assert_eq!(report.pairs.len(), 3, "no sibling results are lost");
    let crashed = &report.pairs[1];
    assert!(crashed.crashed());
    assert_eq!(
        crashed.class(),
        PairClass::FormalFailure,
        "a crash is a give-up, not a proof"
    );
    for attempt in &crashed.attempts {
        let ConstructionOutcome::Crashed { message } = &attempt.outcome else {
            panic!(
                "expected every attempt of pair 1 to crash, got {:?}",
                attempt.outcome
            );
        };
        assert!(
            message.contains("chaos"),
            "panic message is captured: {message}"
        );
    }
    // The siblings lifted normally.
    assert_eq!(report.pairs[0].class(), PairClass::Success);
    assert_eq!(report.pairs[2].class(), PairClass::Success);
    assert_eq!(report.crashed_pair_count(), 1);
}

#[test]
fn injected_panic_is_isolated_in_the_parallel_driver_too() {
    let n = build_paper_adder();
    let paths = adder_paths(&n);
    let config = LiftConfig {
        chaos: ChaosHook {
            panic_at_pair: Some(0),
            ..ChaosHook::default()
        },
        ..LiftConfig::default()
    };
    let report = generate_suite_parallel(&n, ModuleKind::PaperAdder, &paths, &config, 3);
    assert_eq!(report.pairs.len(), 3);
    assert!(report.pairs[0].crashed());
    assert_eq!(report.pairs[1].class(), PairClass::Success);
    assert_eq!(report.pairs[2].class(), PairClass::Success);
    // Input order is preserved even when a worker's pair crashes.
    let clean = generate_suite(&n, ModuleKind::PaperAdder, &paths, &LiftConfig::default());
    for (resilient, clean) in report.pairs.iter().zip(&clean.pairs).skip(1) {
        assert_eq!(resilient.label, clean.label);
    }
}

#[test]
fn budget_exhaustion_escalates_and_records_every_round() {
    let n = build_paper_adder();
    let paths = adder_paths(&n);
    let config = LiftConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            budget_growth: 2.0,
        },
        chaos: ChaosHook {
            exhaust_budget_at_pair: Some(2),
            ..ChaosHook::default()
        },
        ..LiftConfig::default()
    };
    let report = generate_suite(&n, ModuleKind::PaperAdder, &paths, &config);

    let starved = &report.pairs[2];
    assert_eq!(starved.class(), PairClass::FormalFailure);
    for attempt in &starved.attempts {
        assert!(matches!(
            attempt.outcome,
            ConstructionOutcome::FormalFailure
        ));
        assert_eq!(
            attempt.rounds.len(),
            3,
            "every escalation round is recorded"
        );
        let base = attempt.rounds[0].budget;
        assert_eq!(attempt.rounds[1].budget, base * 2);
        assert_eq!(attempt.rounds[2].budget, base * 4);
        assert!(
            attempt.conflicts_spent() > 0,
            "spend is observable in the report"
        );
    }
    assert!(report.total_conflicts() >= starved.conflicts_spent());
    // Unstarved pairs succeed on their first round.
    assert_eq!(report.pairs[0].class(), PairClass::Success);
    for attempt in &report.pairs[0].attempts {
        assert_eq!(attempt.rounds.len(), 1);
    }
}

#[test]
fn exhausted_formal_search_degrades_to_the_fuzz_fallback() {
    let n = build_paper_adder();
    let paths = adder_paths(&n);
    let config = LiftConfig {
        retry: RetryPolicy {
            max_attempts: 2,
            budget_growth: 2.0,
        },
        fuzz_fallback: Some(FuzzConfig::default()),
        chaos: ChaosHook {
            exhaust_budget_at_pair: Some(0),
            ..ChaosHook::default()
        },
        ..LiftConfig::default()
    };
    let report = generate_suite(&n, ModuleKind::PaperAdder, &paths, &config);

    // The starved pair still produces a test case — via fuzzing, with the
    // degradation recorded in its provenance.
    let degraded = &report.pairs[0];
    assert_eq!(
        degraded.class(),
        PairClass::Success,
        "fallback rescues the pair"
    );
    for tc in degraded.test_cases() {
        assert_eq!(tc.provenance, Provenance::Fuzzed);
        assert!(tc.name.ends_with("_fuzzed"));
    }
    for attempt in &degraded.attempts {
        assert_eq!(
            attempt.rounds.len(),
            2,
            "formal retries ran before the fallback"
        );
    }
    assert!(report.fallback_test_count() >= 1);
    // The healthy pairs keep their proof-quality provenance.
    for tc in report.pairs[1].test_cases() {
        assert_eq!(tc.provenance, Provenance::Formal);
    }
}

#[test]
fn chaos_default_is_inert() {
    let n = build_paper_adder();
    let paths = adder_paths(&n);
    assert!(!ChaosHook::default().armed());
    let clean = generate_suite(&n, ModuleKind::PaperAdder, &paths, &LiftConfig::default());
    assert_eq!(clean.crashed_pair_count(), 0);
    assert_eq!(clean.fallback_test_count(), 0);
    assert_eq!(
        clean.table4_row().0,
        100.0,
        "all pairs succeed on the paper adder"
    );
}
